PYTHON ?= python
ARTIFACTS ?= artifacts
# Allowed fractional events/sec drop before perf-check fails (0.15
# locally; CI's perf-smoke job loosens it to 0.25 for shared runners).
PERF_THRESHOLD ?= 0.15

.PHONY: lint test check verify-fsm obs-check perf-check

lint:
	bash scripts/check.sh

test:
	$(PYTHON) -m pytest -x -q

check: lint test

# Full FSM pipeline: model-check the four machines + the RC product,
# run the suite under the transition-coverage sanitizer, then gate the
# recording against the declared tables (waivers in
# tools/iwarpcheck/waivers.txt). Reports land in $(ARTIFACTS)/.
verify-fsm:
	mkdir -p $(ARTIFACTS)
	$(PYTHON) -m iwarpcheck check --output $(ARTIFACTS)/model-check.json
	IWARP_FSM_COVERAGE=$(ARTIFACTS)/fsm-records.json PYTHONPATH=src \
		$(PYTHON) -m pytest -q
	$(PYTHON) -m iwarpcheck coverage $(ARTIFACTS)/fsm-records.json \
		--output $(ARTIFACTS)/coverage-report.json

# Hot-path performance gate (DESIGN.md §9): times the fig06/fig07
# scenario mixes, hard-fails on deterministic-counter drift, and fails
# past PERF_THRESHOLD on events/sec regressions vs the committed
# baseline. Refreshes BENCH_hotpath.json at the repo root. After a
# deliberate perf change: PYTHONPATH=src python -m repro.bench.perfgate
# --rebaseline, and commit the baseline diff.
perf-check:
	PYTHONPATH=src $(PYTHON) -m repro.bench.perfgate \
		--threshold $(PERF_THRESHOLD)

# Observability gate: metrics must not perturb the simulation (the
# determinism test), exporters must hold their golden formats, and the
# golden WR-lifecycle span sequences must be intact.
obs-check:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		tests/obs/test_determinism.py \
		tests/obs/test_export.py \
		tests/obs/test_spans.py
