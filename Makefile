PYTHON ?= python

.PHONY: lint test check

lint:
	bash scripts/check.sh

test:
	$(PYTHON) -m pytest -x -q

check: lint test
