"""Description of the simulated experimental platform.

Mirrors the paper's testbed (§VI): two nodes, each with two quad-core
2 GHz Opterons and a NetEffect 10-GigE NIC, joined by a Fujitsu 10-GigE
switch, Fedora Core 12.  The values here size the *network*; CPU costs
live in :mod:`repro.models.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costs import CostModel, default_cost_model


@dataclass
class Platform:
    """Network-level parameters of a testbed."""

    #: Link rate of every cable (NIC<->switch), bits/s.
    link_bandwidth_bps: float = 10e9
    #: One-way propagation per cable (short copper/fibre in one rack).
    link_delay_ns: int = 450
    #: Ethernet MTU.  The paper's LAN uses the standard 1500 B; §IV.B.4
    #: discusses WAN MTUs, also 1500.
    mtu: int = 1500
    #: Store-and-forward switch lookup latency.
    switch_delay_ns: int = 300
    #: NIC egress queue depth in frames (the ``tc`` pfifo the paper's
    #: loss injection replaces).
    nic_queue_frames: int = 1000

    @classmethod
    def paper_testbed(cls) -> "Platform":
        """The 10-GigE two-node platform of §VI."""
        return cls()

    @classmethod
    def wan_like(cls, delay_us: int = 20_000) -> "Platform":
        """A WAN-ish variant (longer propagation) for loss studies."""
        return cls(link_delay_ns=delay_us * 1000)


def paper_defaults() -> tuple:
    """(Platform, CostModel) as used by every figure reproduction."""
    return Platform.paper_testbed(), default_cost_model()
