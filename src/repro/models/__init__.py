"""Calibrated cost and platform models for the paper's testbed."""

from .costs import CostModel, default_cost_model, zero_cost_model
from .platform import Platform, paper_defaults

__all__ = ["CostModel", "Platform", "default_cost_model", "paper_defaults", "zero_cost_model"]
