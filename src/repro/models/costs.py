"""Calibrated CPU cost model for the software datagram-iWARP stack.

The paper evaluates a **software** (user-space) iWARP implementation over
kernel UDP/TCP sockets on 2 GHz Opteron nodes with 10-GigE NICs.  On that
platform the stack is CPU-bound (peak ~250 MB/s on a 10 Gb/s link), so
what determines every curve in Figs. 5–8 is how much CPU work each path
performs per message, per segment, and per byte.

This module centralizes those costs.  Each constant is either

* a *mechanistic* estimate (e.g. memcpy on a 2009-era Opteron sustains
  roughly 1.3 GB/s end-to-end once both cache misses and the kernel's
  copy routines are accounted for, giving ~0.75 ns/byte), or
* a *calibration* against the paper's measured numbers where the software
  artifact cannot be derived from first principles (flagged ``CALIBRATED``
  in the comment).  EXPERIMENTS.md records how well the resulting shapes
  match.

Charging points (who pays what) are documented on each field; the
protocol implementations in :mod:`repro.transport` and :mod:`repro.core`
consult exactly these fields, so re-calibrating the model re-shapes every
experiment coherently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass
class CostModel:
    """Per-operation and per-byte CPU costs, in nanoseconds.

    All byte costs are ns/byte (float); all fixed costs are ns (int).
    """

    # ------------------------------------------------------------------
    # Generic kernel costs
    # ------------------------------------------------------------------
    #: One system call (entry + exit + basic socket lookup).
    syscall_ns: int = 3_000
    #: Taking an interrupt + driver/NAPI entry.  Charged only when the
    #: receive path is idle (NAPI polls under load, so back-to-back
    #: arrivals don't each pay it) — this is what lets per-message receive
    #: cost shrink in the bandwidth tests relative to the latency tests.
    interrupt_ns: int = 2_500
    #: memcpy between user and kernel space (or between user buffers).
    copy_per_byte_ns: float = 0.65

    # ------------------------------------------------------------------
    # IP layer
    # ------------------------------------------------------------------
    #: Per-fragment transmit work (header build, route lookup amortized).
    ip_tx_per_frag_ns: int = 700
    #: Per-fragment receive work (validation, reassembly bookkeeping —
    #: kernel IP reassembly is markedly heavier than TCP's per-segment
    #: fast path, which is part of why mid-sized UD messages lose the
    #: latency race to RC in Fig. 5's 16-64 KB band).
    ip_rx_per_frag_ns: int = 1_400

    # ------------------------------------------------------------------
    # UDP
    # ------------------------------------------------------------------
    #: Fixed cost of a sendto() through the UDP/IP stack (socket lock,
    #: skb alloc, port demux on top of the syscall itself).
    udp_tx_fixed_ns: int = 5_000
    #: Fixed cost of delivering a completed datagram to a socket.
    udp_rx_fixed_ns: int = 6_000
    #: UDP checksum.  The paper recommends disabling it because the
    #: datagram-iWARP DDP layer always runs CRC32 (§V); 0 reflects that
    #: recommended configuration.  The CRC-placement ablation re-enables it.
    udp_checksum_per_byte_ns: float = 0.0

    # ------------------------------------------------------------------
    # TCP
    # ------------------------------------------------------------------
    #: Fixed cost of a send() on an established connection.
    tcp_tx_fixed_ns: int = 8_000
    #: Per-segment transmit cost (segmentation, header, timers).
    tcp_tx_per_seg_ns: int = 900
    #: Per-segment receive cost (sequence processing, reassembly, ack
    #: decision) — the heart of TCP's per-packet overhead the paper's
    #: motivation cites.
    tcp_rx_per_seg_ns: int = 1_000
    #: Building + sending a pure ACK.
    tcp_ack_tx_ns: int = 1_200
    #: Processing a received ACK on the sender.
    tcp_ack_rx_ns: int = 1_000
    #: Software TCP checksum on the receive path (the user-level stack
    #: cannot rely on NIC offload once data is copied around).
    tcp_checksum_per_byte_ns: float = 0.25
    #: Number of recv()/select() syscalls the user-space iWARP library
    #: issues per arriving RDMAP *message* on the TCP path (readiness
    #: poll + header peek + payload read).  Charged at message
    #: completion.  CALIBRATED.
    tcp_rx_syscalls_per_msg: int = 3

    # ------------------------------------------------------------------
    # iWARP: verbs / RDMAP / DDP (both transports)
    # ------------------------------------------------------------------
    #: Posting a work request (verbs + RDMAP entry).
    verbs_post_ns: int = 1_000
    #: Per-DDP-segment transmit processing (header build, iovec setup).
    ddp_tx_per_seg_ns: int = 800
    #: Per-DDP-segment receive processing (header parse, validation).
    ddp_rx_per_seg_ns: int = 600
    #: Untagged-model receive-queue matching (finding the posted WR).
    ddp_untagged_match_ns: int = 500
    #: Tagged-model STag validation + placement setup.
    ddp_tagged_validate_ns: int = 400
    #: CRC32 over the payload (required by datagram-iWARP, §IV.B item 6).
    crc_per_byte_ns: float = 1.5
    crc_fixed_ns: int = 300
    #: Writing received data to its final location (tagged placement or
    #: copy into the posted receive buffer).
    placement_per_byte_ns: float = 0.9
    #: Extra per-byte on UD send/recv reassembly of multi-segment messages
    #: (the stack-level recombination described in §IV.B.1).
    reassembly_per_byte_ns: float = 0.8
    #: Creating a completion-queue entry.
    cqe_ns: int = 500
    #: Application poll picking up a completion (the successful poll; idle
    #: polls are free because the benchmark loops block in simulation).
    poll_ns: int = 1_500
    #: Memory registration: pinning + STag setup.
    reg_mr_fixed_ns: int = 15_000
    reg_mr_per_page_ns: int = 350

    # ------------------------------------------------------------------
    # MPA (RC path only; bypassed for datagrams — §IV.B item 5)
    # ------------------------------------------------------------------
    #: Building one FPDU (length framing + padding bookkeeping).
    mpa_fpdu_ns: int = 300
    #: Inserting/stripping one marker (every 512 B of TCP stream).
    mpa_marker_ns: int = 120
    #: Stream staging copy for marker insertion/removal.  Packet marking
    #: is "a high overhead activity ... very expensive" (§IV.A); in the
    #: software stack it forces an extra pass over the data.
    mpa_copy_per_byte_ns: float = 0.2

    # ------------------------------------------------------------------
    # RC tagged-path staging (CALIBRATED)
    # ------------------------------------------------------------------
    #: Extra per-byte on the RC RDMA Write path.  The paper's measured RC
    #: RDMA Write bandwidth is ~3.5x below UD Write-Record at 512 KB
    #: (Fig. 6), far below what MPA+TCP costs alone explain; the
    #: OSC-derived software stack stages tagged messages through an
    #: intermediate buffer on both sides.  Calibrated to reproduce the
    #: 256 % headline gap.
    rc_tagged_staging_per_byte_ns: float = 8.0

    # ------------------------------------------------------------------
    # Socket interface shim (§V.A)
    # ------------------------------------------------------------------
    #: fd -> QP lookup + call interception overhead per data operation.
    shim_dispatch_ns: int = 500
    #: Copy into the user-supplied buffer (the paper's shim copies rather
    #: than re-advertising buffers, §VI.B.1 — this is why s/r and
    #: Write-Record perform identically through the shim).
    shim_copy_per_byte_ns: float = 0.65

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def crc_ns(self, nbytes: int) -> int:
        return self.crc_fixed_ns + int(self.crc_per_byte_ns * nbytes)

    def copy_ns(self, nbytes: int) -> int:
        return int(self.copy_per_byte_ns * nbytes)

    def with_overrides(self, **kw) -> "CostModel":
        """A copy of this model with selected fields replaced (ablations)."""
        return replace(self, **kw)

    def describe(self) -> Dict[str, float]:
        """Flat dict of all constants (for reports / EXPERIMENTS.md)."""
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def default_cost_model() -> CostModel:
    """The calibration used for all paper-reproduction experiments."""
    return CostModel()


def zero_cost_model() -> CostModel:
    """All CPU costs zero — used by functional tests that only care about
    protocol correctness and want wire-time-only scheduling."""
    kwargs = {}
    for name, f in CostModel.__dataclass_fields__.items():
        kwargs[name] = 0 if f.type == "int" else 0.0
    kwargs["tcp_rx_syscalls_per_msg"] = 0
    return CostModel(**kwargs)
