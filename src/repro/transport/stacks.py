"""Convenience bundle: one host's full kernel networking stack.

Binds IP + UDP + TCP to a host in one call, the way every experiment
needs them.  The iWARP device (:mod:`repro.core.verbs.device`) and raw
socket applications both reach transports through this bundle.
"""

from __future__ import annotations

from typing import List, Optional

from ..simnet.host import Host
from ..simnet.topology import Testbed
from .ip import IpStack
from .sctp import SctpStack
from .tcp.socket import TcpStack
from .udp import UdpStack


class NetStack:
    """IP/UDP/TCP/SCTP bound to one host."""

    def __init__(self, host: Host, udp_checksum: bool = False, mss: Optional[int] = None):
        self.host = host
        self.ip = IpStack(host)
        self.udp = UdpStack(host, self.ip, checksum_enabled=udp_checksum)
        self.tcp = TcpStack(host, self.ip, mss=mss)
        self.sctp = SctpStack(host, self.ip)

    @property
    def sim(self):
        return self.host.sim


def install_stacks(testbed: Testbed, udp_checksum: bool = False) -> List[NetStack]:
    """One NetStack per testbed host, in host order."""
    return [NetStack(h, udp_checksum=udp_checksum) for h in testbed.hosts]
