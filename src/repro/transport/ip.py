"""IP layer: host addressing, fragmentation, reassembly.

Fragmentation is load-bearing for the paper's results: a UDP datagram
larger than the 1500-byte Ethernet MTU is split into IP fragments, and
**loss of any fragment loses the whole datagram** after a reassembly
timeout.  That single mechanism produces the collapse of UD send/recv
bandwidth for multi-packet messages under loss (Fig. 7) and the 64 KB
cliff in the Write-Record curves (Fig. 8).

Fragments carry a reference to the original payload object plus exact
byte extents; the payload is delivered upward only once every byte of
the datagram has arrived, so loss semantics are exact while the
simulator avoids materializing per-fragment byte slices.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Tuple

from ..simnet.engine import MS, Simulator
from ..simnet.host import Host
from ..simnet.packet import Frame

IP_HEADER = 20
#: Default kernel reassembly timeout (Linux: 30 s; shortened to keep
#: simulations snappy while still far exceeding any in-flight window).
REASSEMBLY_TIMEOUT_NS = 200 * MS


class IpPacket:
    """One IP packet (possibly a fragment) as carried in a Frame.

    A plain ``__slots__`` class: large datagrams allocate one of these
    per MTU-sized fragment, so instance overhead is hot-path cost.
    """

    PROTO = "ip"

    __slots__ = ("src", "dst", "proto", "payload", "total_size", "ident",
                 "frag_offset", "frag_size", "more_frags")

    def __init__(
        self,
        src: int,
        dst: int,
        proto: str,            # upper-layer protocol name ("udp", "tcp", ...)
        payload: Any,          # the upper-layer object (shared across fragments)
        total_size: int,       # full upper-layer size in bytes
        ident: int,            # fragment group id
        frag_offset: int = 0,  # byte offset of this fragment's data
        frag_size: int = 0,    # bytes of upper-layer data in this fragment
        more_frags: bool = False,
    ):
        self.src = src
        self.dst = dst
        self.proto = proto
        self.payload = payload
        self.total_size = total_size
        self.ident = ident
        self.frag_offset = frag_offset
        self.frag_size = frag_size
        self.more_frags = more_frags

    @property
    def header_and_data_size(self) -> int:
        return IP_HEADER + self.frag_size

    @property
    def is_fragmented(self) -> bool:
        return self.more_frags or self.frag_offset > 0


class _Reassembly:
    """State for one in-progress fragmented datagram."""

    __slots__ = ("ranges", "total", "payload", "proto", "timer", "first_seen")

    def __init__(self, payload: Any, proto: str, total: int, now: int):
        self.ranges: List[Tuple[int, int]] = []  # merged (start, end) intervals
        self.total = total
        self.payload = payload
        self.proto = proto
        self.timer = None
        self.first_seen = now

    def add(self, start: int, size: int) -> None:
        end = start + size
        merged: List[Tuple[int, int]] = []
        for s, e in self.ranges:
            if e < start or s > end:
                merged.append((s, e))
            else:
                # Absorb every interval touching [start, end).
                start, end = min(s, start), max(e, end)
        merged.append((start, end))
        merged.sort()
        # Second merge pass to coalesce adjacent intervals.
        out: List[Tuple[int, int]] = []
        for s, e in merged:
            if out and s <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], e))
            else:
                out.append((s, e))
        self.ranges = out

    @property
    def complete(self) -> bool:
        return len(self.ranges) == 1 and self.ranges[0] == (0, self.total)


class IpStack:
    """Per-host IP: fragments on transmit, reassembles on receive, and
    demultiplexes complete datagrams to registered upper protocols."""

    def __init__(self, host: Host, reassembly_timeout_ns: int = REASSEMBLY_TIMEOUT_NS):
        self.host = host
        self.sim: Simulator = host.sim
        self.reassembly_timeout_ns = reassembly_timeout_ns
        self._ident = itertools.count(1)
        self._upper: Dict[str, Callable[[Any, int, int], None]] = {}
        self._reassembly: Dict[Tuple[int, int], _Reassembly] = {}
        host.register_protocol("ip", self)
        # Statistics.
        self.tx_packets = 0
        self.rx_fragments = 0
        self.reassembly_timeouts = 0
        self.delivered = 0

    # -- upward interface ---------------------------------------------------

    def register(self, proto: str, handler: Callable[[Any, int, int], None]) -> None:
        """Register ``handler(payload, src_host, size)`` for ``proto``."""
        if proto in self._upper:
            raise ValueError(f"upper protocol {proto!r} already registered")
        self._upper[proto] = handler

    # -- transmit -------------------------------------------------------------

    def mtu(self) -> int:
        link = self.host.port.link
        if link is None:
            raise RuntimeError(f"{self.host.name} NIC is not cabled")
        return link.mtu

    def fragments_needed(self, payload_size: int) -> int:
        """How many IP fragments a payload of this size produces."""
        max_data = self._max_frag_data()
        if payload_size + IP_HEADER <= self.mtu():
            return 1
        return -(-payload_size // max_data)  # ceil division

    def _max_frag_data(self) -> int:
        # Fragment data sizes must be multiples of 8 except the last.
        return (self.mtu() - IP_HEADER) // 8 * 8

    def send(self, dst: int, proto: str, payload: Any, payload_size: int) -> int:
        """Emit ``payload`` toward host ``dst``; returns fragment count.

        The caller (transport layer) is responsible for CPU accounting;
        this method only creates frames and hands them to the NIC.
        """
        if payload_size < 0:
            raise ValueError(f"negative payload size: {payload_size}")
        mtu = self.mtu()
        ident = next(self._ident)
        if payload_size + IP_HEADER <= mtu:
            pkt = IpPacket(
                src=self.host.host_id, dst=dst, proto=proto, payload=payload,
                total_size=payload_size, ident=ident,
                frag_offset=0, frag_size=payload_size, more_frags=False,
            )
            self._emit(pkt)
            return 1
        max_data = self._max_frag_data()
        offset = 0
        count = 0
        while offset < payload_size:
            size = min(max_data, payload_size - offset)
            more = offset + size < payload_size
            pkt = IpPacket(
                src=self.host.host_id, dst=dst, proto=proto, payload=payload,
                total_size=payload_size, ident=ident,
                frag_offset=offset, frag_size=size, more_frags=more,
            )
            self._emit(pkt)
            offset += size
            count += 1
        self.tx_packets += count
        return count

    def _emit(self, pkt: IpPacket) -> None:
        frame = Frame(
            src=self.host.host_id, dst=pkt.dst,
            payload=pkt, payload_size=pkt.header_and_data_size,
        )
        self.host.send_frame(frame)

    # -- receive ---------------------------------------------------------------

    def on_packet(self, pkt: IpPacket, frame: Frame) -> None:
        if not pkt.is_fragmented:
            self._deliver(pkt.proto, pkt.payload, pkt.src, pkt.total_size)
            return
        self.rx_fragments += 1
        key = (pkt.src, pkt.ident)
        state = self._reassembly.get(key)
        if state is None:
            state = _Reassembly(pkt.payload, pkt.proto, pkt.total_size, self.sim.now)
            self._reassembly[key] = state
            state.timer = self.sim.schedule(
                self.reassembly_timeout_ns, self._timeout, key
            )
        state.add(pkt.frag_offset, pkt.frag_size)
        if state.complete:
            if state.timer is not None:
                state.timer.cancel()
            del self._reassembly[key]
            self._deliver(state.proto, state.payload, pkt.src, state.total)

    def _deliver(self, proto: str, payload: Any, src: int, size: int) -> None:
        handler = self._upper.get(proto)
        if handler is None:
            return
        self.delivered += 1
        handler(payload, src, size)

    def _timeout(self, key: Tuple[int, int]) -> None:
        if key in self._reassembly:
            del self._reassembly[key]
            self.reassembly_timeouts += 1

    def pending_reassemblies(self) -> int:
        return len(self._reassembly)
