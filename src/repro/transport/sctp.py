"""SCTP-lite: the standard's *other* lower-layer protocol.

iWARP is "defined over either TCP or SCTP protocols" (§II), and the
paper repeatedly contrasts the two: SCTP "also has defined message
boundaries, but it provides even more features than those in TCP and
consequently is more complicated" (§IV.A).  This module implements the
subset that matters for iWARP-over-SCTP (RFC 5043's picture):

* four-way association establishment (INIT / INIT-ACK / COOKIE-ECHO /
  COOKIE-ACK) — the cookie mechanism is modelled, not cryptographic;
* reliable, **message-boundary-preserving** DATA transfer with per-
  message TSNs, cumulative SACKs with a gap report, fast retransmit on
  repeated gap reports, RTO retransmission with go-back semantics, and
  Reno congestion control (reusing the TCP implementation's machinery);
* ordered delivery (one stream — iWARP uses a single SCTP stream);
* graceful SHUTDOWN.

Deliberate subset: user messages must fit one MTU (no SCTP-level
fragmentation) — iWARP's DDP layer segments to MULPDU first, so this
never binds in practice; multi-homing, multiple streams, and unordered
delivery are out of scope.  Because SCTP preserves message boundaries,
iWARP over SCTP **needs no MPA layer** — no markers, no stream framing —
which is exactly the ablation `benchmarks/bench_ablations.py` runs.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple

from ..core.fsm import transition as _fsm_transition
from ..simnet.engine import Future, Simulator
from ..simnet.host import Host
from .ip import IpStack
from .tcp.congestion import RenoCongestion
from .rto import RtoEstimator

Address = Tuple[int, int]

SCTP_COMMON_HEADER = 12
DATA_CHUNK_HEADER = 16
SACK_CHUNK_SIZE = 20
CONTROL_CHUNK_SIZE = 20

# Chunk types.
CH_DATA = "DATA"
CH_INIT = "INIT"
CH_INIT_ACK = "INIT_ACK"
CH_COOKIE_ECHO = "COOKIE_ECHO"
CH_COOKIE_ACK = "COOKIE_ACK"
CH_SACK = "SACK"
CH_SHUTDOWN = "SHUTDOWN"
CH_SHUTDOWN_ACK = "SHUTDOWN_ACK"
CH_ABORT = "ABORT"

# Association states.
CLOSED = "CLOSED"
COOKIE_WAIT = "COOKIE_WAIT"
COOKIE_ECHOED = "COOKIE_ECHOED"
ESTABLISHED = "ESTABLISHED"
SHUTDOWN_SENT = "SHUTDOWN_SENT"

#: Legal transitions (RFC 4960 four-way handshake subset).  A passive
#: endpoint keeps no TCB before a valid COOKIE ECHO, so it legitimately
#: jumps CLOSED -> ESTABLISHED; COOKIE_WAIT -> ESTABLISHED covers INIT
#: collisions.  CLOSED is additionally reachable from every state via
#: ABORT.  Mirrored in ``iwarplint.invariants.SCTP_TABLE`` (IW204).
SCTP_TRANSITIONS: Dict[str, FrozenSet[str]] = {
    CLOSED: frozenset({COOKIE_WAIT, ESTABLISHED}),
    COOKIE_WAIT: frozenset({COOKIE_ECHOED, ESTABLISHED, CLOSED}),
    COOKIE_ECHOED: frozenset({ESTABLISHED, CLOSED}),
    ESTABLISHED: frozenset({SHUTDOWN_SENT, CLOSED}),
    SHUTDOWN_SENT: frozenset({CLOSED}),
}

#: Event-labelled view: ``(state, event) -> state`` (RFC 4960 arc
#: labels).  Model-checked by ``tools/iwarpcheck`` against
#: :data:`SCTP_TRANSITIONS` (projection equality).  ``cookie_echo``
#: establishes both the stateless passive side (CLOSED) and an INIT
#: collision (COOKIE_WAIT); ``abort`` covers an ABORT chunk in either
#: direction; ``peer_shutdown`` is the three-chunk teardown seen from
#: the passive side.
SCTP_EVENT_TRANSITIONS: Dict[Tuple[str, str], str] = {
    (CLOSED, "active_open"): COOKIE_WAIT,
    (CLOSED, "cookie_echo"): ESTABLISHED,
    (COOKIE_WAIT, "init_ack"): COOKIE_ECHOED,
    (COOKIE_WAIT, "cookie_echo"): ESTABLISHED,
    (COOKIE_WAIT, "abort"): CLOSED,
    (COOKIE_ECHOED, "cookie_ack"): ESTABLISHED,
    (COOKIE_ECHOED, "abort"): CLOSED,
    (ESTABLISHED, "shutdown"): SHUTDOWN_SENT,
    (ESTABLISHED, "peer_shutdown"): CLOSED,
    (ESTABLISHED, "abort"): CLOSED,
    (SHUTDOWN_SENT, "shutdown_ack"): CLOSED,
}


class SctpError(Exception):
    """Association-level failures and API misuse."""


@dataclass
class SctpChunk:
    """One SCTP chunk (packets here carry exactly one chunk; chunk
    bundling is a performance nicety this subset skips)."""

    PROTO = "sctp"

    kind: str
    src_port: int
    dst_port: int
    tsn: int = 0
    cum_ack: int = 0
    gap_start: int = 0          # first missing TSN after cum_ack (0 = none)
    payload: bytes = b""
    cookie: int = 0

    @property
    def size(self) -> int:
        if self.kind == CH_DATA:
            return SCTP_COMMON_HEADER + DATA_CHUNK_HEADER + len(self.payload)
        if self.kind == CH_SACK:
            return SCTP_COMMON_HEADER + SACK_CHUNK_SIZE
        return SCTP_COMMON_HEADER + CONTROL_CHUNK_SIZE


class SctpAssociation:
    """One endpoint of an SCTP association (single ordered stream)."""

    def __init__(self, stack: "SctpStack", local_port: int, remote: Address):
        self.stack = stack
        self.sim: Simulator = stack.sim
        self.local_port = local_port
        self.remote = remote
        self.state = CLOSED
        self.established: Future = self.sim.future()
        self.on_message: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None

        self.max_message = stack.max_message
        # Transmit side: per-message TSNs.
        self._next_tsn = 1
        self._unacked: Dict[int, bytes] = {}
        self._queue: Deque[bytes] = deque()
        self.cong = RenoCongestion(mss=self.max_message)
        self.rto = RtoEstimator()
        self._rtx_timer = None
        self._rtt_tsn: Optional[int] = None
        self._rtt_sent_at = 0
        self._gap_reports = 0
        self._last_gap = 0
        # Receive side.
        self._cum_tsn = 0
        self._ooo: Dict[int, bytes] = {}
        self._msgs_since_sack = 0
        self._cookie = 0
        # Statistics.
        self.messages_sent = 0
        self.messages_received = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    # Establishment (INIT -> INIT-ACK -> COOKIE-ECHO -> COOKIE-ACK)
    # ------------------------------------------------------------------

    def _set_state(self, new_state: str) -> None:
        """Sole state mutator after construction; validates the move
        against :data:`SCTP_TRANSITIONS` via the shared
        :func:`repro.core.fsm.transition` helper (same-state is a no-op)."""
        _fsm_transition(
            self, "SCTP", SCTP_TRANSITIONS, new_state, SctpError,
            f" ({self.local_port}<->{self.remote})",
        )

    def open_active(self) -> Future:
        if self.state != CLOSED:
            raise SctpError(f"open_active in state {self.state}")
        self._set_state(COOKIE_WAIT)
        self._send_chunk(SctpChunk(kind=CH_INIT, src_port=self.local_port,
                                   dst_port=self.remote[1]))
        self._arm_rtx()
        return self.established

    def _on_init(self, chunk: SctpChunk) -> None:
        # Stateless INIT handling: issue a cookie, keep no association
        # state until COOKIE-ECHO (SYN-flood resistance, modelled).
        cookie = self.stack.issue_cookie(self.remote)
        self._send_chunk(SctpChunk(kind=CH_INIT_ACK, src_port=self.local_port,
                                   dst_port=self.remote[1], cookie=cookie))

    def _on_init_ack(self, chunk: SctpChunk) -> None:
        if self.state != COOKIE_WAIT:
            return
        self._set_state(COOKIE_ECHOED)
        self._cookie = chunk.cookie
        self._send_chunk(SctpChunk(kind=CH_COOKIE_ECHO, src_port=self.local_port,
                                   dst_port=self.remote[1], cookie=chunk.cookie))
        self._arm_rtx()

    def _on_cookie_echo(self, chunk: SctpChunk) -> None:
        if not self.stack.validate_cookie(self.remote, chunk.cookie):
            return
        if self.state in (CLOSED, COOKIE_WAIT):
            self._set_state(ESTABLISHED)
            if not self.established.done:
                self.established.set_result(self)
        self._send_chunk(SctpChunk(kind=CH_COOKIE_ACK, src_port=self.local_port,
                                   dst_port=self.remote[1]))

    def _on_cookie_ack(self, chunk: SctpChunk) -> None:
        if self.state == COOKIE_ECHOED:
            self._set_state(ESTABLISHED)
            self._cancel_rtx()
            if not self.established.done:
                self.established.set_result(self)
            self._pump()

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------

    def send_message(self, data: bytes) -> None:
        """Queue one message (boundary preserved end-to-end).

        Messages queued before the association completes (including
        between connect() and the INIT leaving) flush on establishment.
        """
        if self.state == SHUTDOWN_SENT:
            raise SctpError(f"send in state {self.state}")
        if len(data) > self.max_message:
            raise SctpError(
                f"message of {len(data)} bytes exceeds the no-fragmentation "
                f"subset limit {self.max_message}"
            )
        self._queue.append(bytes(data))
        self._pump()

    def _pump(self) -> None:
        if self.state != ESTABLISHED:
            return
        while self._queue:
            flight = sum(len(v) for v in self._unacked.values())
            if not self.cong.send_allowance(flight, peer_window=1 << 30):
                break
            data = self._queue.popleft()
            tsn = self._next_tsn
            self._next_tsn += 1
            self._unacked[tsn] = data
            self._emit_data(tsn, data)
            if self._rtt_tsn is None:
                self._rtt_tsn = tsn
                self._rtt_sent_at = self.sim.now
        if self._unacked and self._rtx_timer is None:
            self._arm_rtx()

    def _emit_data(self, tsn: int, data: bytes) -> None:
        self.messages_sent += 1
        self._send_chunk(SctpChunk(
            kind=CH_DATA, src_port=self.local_port, dst_port=self.remote[1],
            tsn=tsn, payload=data,
        ))

    def _on_data(self, chunk: SctpChunk) -> None:
        tsn = chunk.tsn
        if tsn <= self._cum_tsn or tsn in self._ooo:
            self._send_sack()  # duplicate: re-announce state
            return
        if tsn == self._cum_tsn + 1:
            self._cum_tsn = tsn
            self._deliver(chunk.payload)
            while self._cum_tsn + 1 in self._ooo:
                self._cum_tsn += 1
                self._deliver(self._ooo.pop(self._cum_tsn))
            self._msgs_since_sack += 1
            if self._msgs_since_sack >= 2 or self._ooo:
                self._send_sack()
        else:
            self._ooo[tsn] = chunk.payload
            self._send_sack()  # immediate gap report

    def _deliver(self, data: bytes) -> None:
        self.messages_received += 1
        if self.on_message is not None:
            self.stack.deliver_to_app(self, data)

    def _send_sack(self) -> None:
        self._msgs_since_sack = 0
        gap = min(self._ooo) if self._ooo else 0
        self._send_chunk(SctpChunk(
            kind=CH_SACK, src_port=self.local_port, dst_port=self.remote[1],
            cum_ack=self._cum_tsn, gap_start=gap,
        ))

    def _on_sack(self, chunk: SctpChunk) -> None:
        newly = 0
        for tsn in [t for t in self._unacked if t <= chunk.cum_ack]:
            newly += len(self._unacked.pop(tsn))
        if newly:
            self.rto.reset_backoff()
            if self._rtt_tsn is not None and chunk.cum_ack >= self._rtt_tsn:
                self.rto.sample(self.sim.now - self._rtt_sent_at)
                self._rtt_tsn = None
            flight = sum(len(v) for v in self._unacked.values())
            self.cong.on_ack(newly, chunk.cum_ack)
            self._gap_reports = 0
        if chunk.gap_start and chunk.gap_start == self._last_gap and not newly:
            self._gap_reports += 1
            if self._gap_reports == 3:
                flight = sum(len(v) for v in self._unacked.values())
                if self.cong.on_dup_acks(flight, self._next_tsn):
                    self._fast_retransmit(chunk.cum_ack + 1)
        self._last_gap = chunk.gap_start
        if self.cong.in_recovery and newly and chunk.gap_start:
            # Partial progress with a remaining hole: resend it now.
            self._fast_retransmit(chunk.cum_ack + 1)
        if not self._unacked:
            self._cancel_rtx()
        else:
            self._arm_rtx()
        self._pump()

    def _fast_retransmit(self, tsn: int) -> None:
        data = self._unacked.get(tsn)
        if data is not None:
            self.retransmissions += 1
            self._emit_data(tsn, data)

    # -- timers ---------------------------------------------------------------

    def _arm_rtx(self) -> None:
        self._cancel_rtx()
        self._rtx_timer = self.sim.schedule(self.rto.rto_ns, self._on_rtx_timeout)

    def _cancel_rtx(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_rtx_timeout(self) -> None:
        self._rtx_timer = None
        if self.state == COOKIE_WAIT:
            self._send_chunk(SctpChunk(kind=CH_INIT, src_port=self.local_port,
                                       dst_port=self.remote[1]))
            self.retransmissions += 1
            self._arm_rtx()
            return
        if self.state == COOKIE_ECHOED:
            self._send_chunk(SctpChunk(kind=CH_COOKIE_ECHO, src_port=self.local_port,
                                       dst_port=self.remote[1], cookie=self._cookie))
            self.retransmissions += 1
            self._arm_rtx()
            return
        if not self._unacked:
            return
        self.cong.on_timeout(sum(len(v) for v in self._unacked.values()))
        self.rto.on_timeout()
        self._rtt_tsn = None
        # Go-back: resend every outstanding message from the hole forward
        # (they are whole messages, so this is cheap bookkeeping).
        for tsn in sorted(self._unacked):
            self.retransmissions += 1
            self._emit_data(tsn, self._unacked[tsn])
        self._arm_rtx()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        if self.state != ESTABLISHED:
            self._become_closed()
            return
        self._set_state(SHUTDOWN_SENT)
        self._send_chunk(SctpChunk(kind=CH_SHUTDOWN, src_port=self.local_port,
                                   dst_port=self.remote[1], cum_ack=self._cum_tsn))

    def abort(self) -> None:
        if self.state != CLOSED:
            self._send_chunk(SctpChunk(kind=CH_ABORT, src_port=self.local_port,
                                       dst_port=self.remote[1]))
        self._become_closed()

    def _on_shutdown(self, chunk: SctpChunk) -> None:
        self._send_chunk(SctpChunk(kind=CH_SHUTDOWN_ACK, src_port=self.local_port,
                                   dst_port=self.remote[1]))
        self._become_closed()

    def _on_shutdown_ack(self, chunk: SctpChunk) -> None:
        self._become_closed()

    def _become_closed(self) -> None:
        if self.state == CLOSED:
            return
        self._set_state(CLOSED)
        self._cancel_rtx()
        self.stack.forget(self)
        if not self.established.done:
            self.established.set_result(None)
        if self.on_close is not None:
            self.on_close()

    # ------------------------------------------------------------------
    # Chunk I/O
    # ------------------------------------------------------------------

    def _send_chunk(self, chunk: SctpChunk) -> None:
        self.stack.transmit_chunk(self, chunk)

    def on_chunk(self, chunk: SctpChunk) -> None:
        handler = {
            CH_DATA: self._on_data,
            CH_INIT: self._on_init,
            CH_INIT_ACK: self._on_init_ack,
            CH_COOKIE_ECHO: self._on_cookie_echo,
            CH_COOKIE_ACK: self._on_cookie_ack,
            CH_SACK: self._on_sack,
            CH_SHUTDOWN: self._on_shutdown,
            CH_SHUTDOWN_ACK: self._on_shutdown_ack,
            CH_ABORT: lambda c: self._become_closed(),
        }.get(chunk.kind)
        if handler is not None:
            handler(chunk)


class SctpListener:
    """Passive open endpoint."""

    def __init__(self, stack: "SctpStack", port: int):
        self.stack = stack
        self.port = port
        self._ready: Deque[SctpAssociation] = deque()
        self._waiters: Deque[Future] = deque()
        self.on_accept: Optional[Callable[[SctpAssociation], None]] = None

    def _deliver(self, assoc: SctpAssociation) -> None:
        if self.on_accept is not None:
            self.on_accept(assoc)
        elif self._waiters:
            self._waiters.popleft().set_result(assoc)
        else:
            self._ready.append(assoc)

    def accept_future(self) -> Future:
        fut = self.stack.sim.future()
        if self._ready:
            fut.set_result(self._ready.popleft())
        else:
            self._waiters.append(fut)
        return fut

    def close(self) -> None:
        self.stack._listeners.pop(self.port, None)


class SctpStack:
    """Per-host SCTP: association table, cookies, CPU accounting.

    CPU costs reuse the TCP fields with a +25 % complexity factor — the
    paper's characterization that SCTP "provides even more features ...
    and consequently is more complicated" (§IV.A), while keeping one
    source of calibrated constants.
    """

    EPHEMERAL_BASE = 52000
    COMPLEXITY = 1.25

    def __init__(self, host: Host, ip: IpStack, max_message: Optional[int] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.ip = ip
        # No-fragmentation subset: one message per MTU-sized packet.
        self.max_message = (
            max_message if max_message is not None
            else ip.mtu() - 20 - SCTP_COMMON_HEADER - DATA_CHUNK_HEADER
        )
        self._assocs: Dict[Tuple[int, int, int], SctpAssociation] = {}
        self._listeners: Dict[int, SctpListener] = {}
        self._ephemeral = itertools.count(self.EPHEMERAL_BASE)
        self._cookie_seq = itertools.count(0x1000)
        self._valid_cookies: Dict[int, Address] = {}
        ip.register("sctp", self._on_ip_delivery)
        self.rx_no_association = 0

    # -- cookies -----------------------------------------------------------

    def issue_cookie(self, peer: Address) -> int:
        cookie = next(self._cookie_seq)
        self._valid_cookies[cookie] = peer
        return cookie

    def validate_cookie(self, peer: Address, cookie: int) -> bool:
        return self._valid_cookies.get(cookie) == peer

    # -- association management ------------------------------------------------

    def listen(self, port: int) -> SctpListener:
        if port in self._listeners:
            raise SctpError(f"SCTP port {port} already listening")
        listener = SctpListener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, remote: Address, local_port: Optional[int] = None) -> SctpAssociation:
        lport = local_port if local_port is not None else next(self._ephemeral)
        assoc = self._new_association(lport, remote)
        self.host.cpu.submit(self.host.costs.syscall_ns, assoc.open_active)
        return assoc

    def _new_association(self, local_port: int, remote: Address) -> SctpAssociation:
        key = (local_port, remote[0], remote[1])
        if key in self._assocs:
            raise SctpError(f"association {key} already exists")
        assoc = SctpAssociation(self, local_port, remote)
        self._assocs[key] = assoc
        return assoc

    def forget(self, assoc: SctpAssociation) -> None:
        self._assocs.pop(
            (assoc.local_port, assoc.remote[0], assoc.remote[1]), None
        )

    def open_associations(self) -> int:
        return len(self._assocs)

    # -- transmit ---------------------------------------------------------------

    def transmit_chunk(self, assoc: SctpAssociation, chunk: SctpChunk) -> None:
        costs = self.host.costs
        if chunk.kind == CH_DATA:
            # SCTP carries its own CRC32c over every packet — in a
            # software stack that is a real per-byte pass, the analogue
            # of the DDP-level CRC the UD path pays.
            cost = int(costs.tcp_tx_per_seg_ns * self.COMPLEXITY) \
                + costs.crc_ns(len(chunk.payload))
        elif chunk.kind == CH_SACK:
            cost = int(costs.tcp_ack_tx_ns * self.COMPLEXITY)
        else:
            cost = costs.tcp_tx_per_seg_ns
        self.host.cpu.charge(cost)
        self.ip.send(assoc.remote[0], "sctp", chunk, chunk.size)

    # -- receive -----------------------------------------------------------------

    def _on_ip_delivery(self, chunk: SctpChunk, src_host: int, size: int) -> None:
        costs = self.host.costs
        if chunk.kind == CH_DATA:
            cost = int(costs.tcp_rx_per_seg_ns * self.COMPLEXITY) \
                + costs.crc_ns(len(chunk.payload))
            if self.host.cpu.free_at <= self.sim.now:
                cost += costs.interrupt_ns
        elif chunk.kind == CH_SACK:
            cost = int(costs.tcp_ack_rx_ns * self.COMPLEXITY)
        else:
            cost = costs.tcp_rx_per_seg_ns
        self.host.cpu.submit(cost, self._demux, chunk, src_host)

    def _demux(self, chunk: SctpChunk, src_host: int) -> None:
        key = (chunk.dst_port, src_host, chunk.src_port)
        assoc = self._assocs.get(key)
        if assoc is not None:
            assoc.on_chunk(chunk)
            return
        listener = self._listeners.get(chunk.dst_port)
        if listener is None:
            self.rx_no_association += 1
            return
        if chunk.kind == CH_INIT:
            # Stateless: reply with a cookie, create nothing yet.
            temp = SctpAssociation(self, chunk.dst_port, (src_host, chunk.src_port))
            temp._on_init(chunk)
            return
        if chunk.kind == CH_COOKIE_ECHO:
            assoc = self._new_association(chunk.dst_port, (src_host, chunk.src_port))
            assoc.on_chunk(chunk)
            if assoc.state == ESTABLISHED:
                listener._deliver(assoc)
            return
        self.rx_no_association += 1

    def deliver_to_app(self, assoc: SctpAssociation, data: bytes) -> None:
        cost = self.host.costs.copy_ns(len(data))
        self.host.cpu.submit(cost, self._app_upcall, assoc, data)

    @staticmethod
    def _app_upcall(assoc: SctpAssociation, data: bytes) -> None:
        if assoc.on_message is not None:
            assoc.on_message(data)
