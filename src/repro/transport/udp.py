"""UDP over the simulated IP layer.

This is the lower-layer protocol (LLP) under datagram-iWARP (Fig. 4 of
the paper): unreliable, unordered, message-oriented, with the standard
~64 KB datagram ceiling.  CPU costs for the kernel UDP path — syscall,
user/kernel copy, protocol processing, per-fragment IP work — are
charged to the host CPU here, so higher layers inherit realistic send
and receive overheads without duplicating accounting.

Checksumming is configurable and off by default, matching the paper's
recommendation to disable UDP checksums because datagram-iWARP's DDP
layer always applies CRC32 (§V).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from ..simnet.engine import Future, Simulator
from ..simnet.host import Host
from .ip import IpStack

UDP_HEADER = 8
#: Maximum UDP payload: 65535 - IP header (20) - UDP header (8).
UDP_MAX_PAYLOAD = 65507

Address = Tuple[int, int]  # (host_id, port)


class UdpError(Exception):
    """Base class for UDP usage errors."""


class MessageTooLongError(UdpError):
    """Datagram exceeds UDP_MAX_PAYLOAD (EMSGSIZE)."""


class AddressInUseError(UdpError):
    """Port already bound (EADDRINUSE)."""


@dataclass
class UdpDatagram:
    """The upper-layer object IP carries for us."""

    src_port: int
    dst_port: int
    data: bytes
    checksummed: bool = False

    @property
    def size(self) -> int:
        return UDP_HEADER + len(self.data)


class UdpSocket:
    """A bound UDP endpoint.

    Receive side offers three styles: a synchronous ``poll()`` of the
    queue, a ``recv_future()`` for process-style code, and an
    ``on_datagram`` callback for protocol layers (datagram-iWARP binds
    here).
    """

    def __init__(self, stack: "UdpStack", port: int):
        self.stack = stack
        self.port = port
        self.rcvbuf_bytes = 4 * 1024 * 1024
        self._queued_bytes = 0
        self._queue: Deque[Tuple[bytes, Address]] = deque()
        self._waiters: Deque[Future] = deque()
        self.on_datagram: Optional[Callable[[bytes, Address], None]] = None
        self.closed = False
        # Statistics.
        self.tx_datagrams = 0
        self.rx_datagrams = 0
        self.drops_rcvbuf = 0

    # -- send ----------------------------------------------------------------

    def sendto(self, data: bytes, addr: Address) -> None:
        """Send one datagram.  Charges the kernel transmit path on the
        host CPU, then hands the datagram to IP."""
        if self.closed:
            raise UdpError("socket is closed")
        if len(data) > UDP_MAX_PAYLOAD:
            raise MessageTooLongError(
                f"{len(data)} bytes exceeds UDP maximum {UDP_MAX_PAYLOAD}"
            )
        self.stack.transmit(self, bytes(data), addr)
        self.tx_datagrams += 1

    def sendto_uncharged(self, data: bytes, addr: Address) -> None:
        """Send with CPU costs already accounted by the caller (used by
        in-process protocol layers that batch their accounting).  Must be
        called from CPU-execution context."""
        if self.closed:
            raise UdpError("socket is closed")
        if len(data) > UDP_MAX_PAYLOAD:
            raise MessageTooLongError(
                f"{len(data)} bytes exceeds UDP maximum {UDP_MAX_PAYLOAD}"
            )
        dgram = UdpDatagram(
            src_port=self.port, dst_port=addr[1], data=bytes(data),
            checksummed=self.stack.checksum_enabled,
        )
        self.stack.ip.send(addr[0], "udp", dgram, dgram.size)
        self.tx_datagrams += 1

    # -- receive ---------------------------------------------------------------

    def deliver(self, data: bytes, src: Address) -> None:
        """Called by the stack once receive-path CPU costs are paid."""
        if self.closed:
            return
        self.rx_datagrams += 1
        if self.on_datagram is not None:
            self.on_datagram(data, src)
            return
        if self._waiters:
            self._waiters.popleft().set_result((data, src))
            return
        if self._queued_bytes + len(data) > self.rcvbuf_bytes:
            self.drops_rcvbuf += 1
            return
        self._queue.append((data, src))
        self._queued_bytes += len(data)

    def poll(self) -> Optional[Tuple[bytes, Address]]:
        """Non-blocking receive; None if nothing queued."""
        if not self._queue:
            return None
        data, src = self._queue.popleft()
        self._queued_bytes -= len(data)
        return (data, src)

    def recv_future(self) -> Future:
        """Future resolving to ``(data, src_addr)`` — for process code."""
        fut = self.stack.sim.future()
        queued = self.poll()
        if queued is not None:
            fut.set_result(queued)
        else:
            self._waiters.append(fut)
        return fut

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.stack.unbind(self.port)


class UdpStack:
    """Per-host UDP: port table, CPU accounting, checksum policy."""

    EPHEMERAL_BASE = 49152

    def __init__(self, host: Host, ip: IpStack, checksum_enabled: bool = False):
        self.host = host
        self.sim: Simulator = host.sim
        self.ip = ip
        #: Optional wire-corruption injection (simnet.loss.BitErrorModel):
        #: applied to arriving datagram payloads before delivery, standing
        #: in for corruption the disabled UDP checksum would miss.
        self.corruption = None
        #: The paper recommends disabling UDP checksums under
        #: datagram-iWARP (DDP CRC32 covers integrity); tests and the CRC
        #: ablation can re-enable them.
        self.checksum_enabled = checksum_enabled
        self._sockets: Dict[int, UdpSocket] = {}
        self._ephemeral = itertools.count(self.EPHEMERAL_BASE)
        ip.register("udp", self._on_ip_delivery)
        self.rx_no_socket = 0

    # -- sockets -------------------------------------------------------------

    def socket(self, port: Optional[int] = None) -> UdpSocket:
        """Create and bind a socket (ephemeral port when None)."""
        if port is None:
            port = next(self._ephemeral)
            while port in self._sockets:
                port = next(self._ephemeral)
        if port in self._sockets:
            raise AddressInUseError(f"UDP port {port} in use on {self.host.name}")
        sock = UdpSocket(self, port)
        self._sockets[port] = sock
        return sock

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def bound_ports(self) -> int:
        return len(self._sockets)

    # -- transmit path -----------------------------------------------------------

    def transmit(self, sock: UdpSocket, data: bytes, addr: Address) -> None:
        dst_host, dst_port = addr
        costs = self.host.costs
        dgram = UdpDatagram(
            src_port=sock.port, dst_port=dst_port, data=data,
            checksummed=self.checksum_enabled,
        )
        nfrags = self.ip.fragments_needed(dgram.size)
        cost = (
            costs.syscall_ns
            + costs.copy_ns(len(data))
            + costs.udp_tx_fixed_ns
            + costs.ip_tx_per_frag_ns * nfrags
        )
        if self.checksum_enabled:
            cost += int(costs.udp_checksum_per_byte_ns * len(data))
        self.host.cpu.submit(cost, self.ip.send, dst_host, "udp", dgram, dgram.size)

    # -- receive path ------------------------------------------------------------

    def _on_ip_delivery(self, dgram: UdpDatagram, src_host: int, size: int) -> None:
        costs = self.host.costs
        cost = costs.udp_rx_fixed_ns + costs.copy_ns(len(dgram.data))
        if self.checksum_enabled and dgram.checksummed:
            cost += int(costs.udp_checksum_per_byte_ns * len(dgram.data))
        # Per-fragment IP receive work + interrupt (only charged when the
        # CPU is idle, approximating NAPI interrupt coalescing).
        nfrags = self.ip.fragments_needed(size)
        cost += costs.ip_rx_per_frag_ns * nfrags
        if self.host.cpu.free_at <= self.sim.now:
            cost += costs.interrupt_ns
        sock = self._sockets.get(dgram.dst_port)
        if sock is None:
            self.rx_no_socket += 1
            return
        data = dgram.data if self.corruption is None else self.corruption.apply(dgram.data)
        self.host.cpu.submit(cost, sock.deliver, data, (src_host, dgram.src_port))
