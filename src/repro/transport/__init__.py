"""Transport substrates: IP (fragmentation), UDP, TCP, reliable-UDP."""

from .ip import IpStack, IpPacket, IP_HEADER
from .udp import (
    AddressInUseError, MessageTooLongError, UDP_HEADER, UDP_MAX_PAYLOAD,
    UdpDatagram, UdpError, UdpSocket, UdpStack,
)

__all__ = [
    "AddressInUseError", "IP_HEADER", "IpPacket", "IpStack",
    "MessageTooLongError", "UDP_HEADER", "UDP_MAX_PAYLOAD", "UdpDatagram",
    "UdpError", "UdpSocket", "UdpStack",
]
