"""Reliable UDP: the Reliable Datagram (RD) lower layer.

The paper's design is explicitly dual-mode: unreliable datagrams for
loss-tolerant applications, and "a reliability mechanism (like reliable
UDP) for those applications that cannot deal with data loss" (§I), with
RD LLPs expected to provide order and reliability guarantees (§IV.B
item 3).  This module supplies that LLP: a message-oriented sliding
window over UDP with cumulative ACKs, in-order delivery, and
retransmission — but none of TCP's stream semantics, so message
boundaries survive and the MPA layer stays bypassed.

Loss recovery is the part RDMA transports live or die by, so it is done
properly rather than minimally:

* **Adaptive RTO** — a per-peer RFC 6298 estimator
  (:class:`~repro.transport.rto.RtoEstimator`) replaces any fixed
  timeout; every ACK echoes the sequence number whose arrival produced
  it, so RTT samples never fold in head-of-line stalls, Karn's rule is
  applied (retransmitted sequence numbers never produce samples) and
  expiries back off exponentially with a cap.
* **Fast retransmit** — duplicate cumulative ACKs (the receiver acks
  every arrival) resend the missing message after ``dup_ack_threshold``
  duplicates, so a single drop costs roughly one RTT instead of an RTO.
* **SACK ranges** — ACKs optionally carry up to ``sack_ranges``
  ``(start, end)`` blocks describing out-of-order data already held, so
  the sender never retransmits messages that arrived behind a hole.
* **Failure surfacing** — per-message ``on_result`` callbacks report
  delivery (cumulatively ACKed) or failure (peer declared dead, socket
  closed), which the verbs layer turns into FLUSH_ERR completions
  instead of silently dropping queued data.

Headers are genuinely encoded into the datagram bytes (struct-packed),
so tests exercise real parsing, and the 9-byte header participates in
wire sizing.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..obs import sim_registry, wr_span
from ..simnet.engine import MS, SEC, US, Future, Simulator
from .rto import RtoEstimator
from .udp import UDP_MAX_PAYLOAD, UdpSocket

Address = Tuple[int, int]

_HEADER = struct.Struct("!BQ")  # kind, sequence number
_ACK_ECHO = struct.Struct("!Q")  # seq whose arrival triggered this ACK
_SACK_RANGE = struct.Struct("!QQ")  # inclusive [start, end] sequence range
# Precomputed fast path for the overwhelmingly common ACK shape — no
# SACK ranges — packing header and echo in one call.  The bytes are
# identical to _HEADER.pack(...) + _ACK_ECHO.pack(...).
_ACK_NOSACK = struct.Struct("!BQQ")  # kind, cumulative seq, echo seq
KIND_DATA = 1
KIND_ACK = 2

RUDP_HEADER = _HEADER.size  # 9 bytes
RUDP_MAX_PAYLOAD = UDP_MAX_PAYLOAD - RUDP_HEADER

#: SACK range count travels in one byte, capping ranges per ACK.
SACK_RANGES_MAX = 255


def encode_ack(
    cum_seq: int, echo_seq: int, ranges: List[Tuple[int, int]]
) -> bytes:
    """Encode a complete ACK datagram (header included).

    Wire layout: ``!BQ`` header (KIND_ACK, cumulative seq), ``!Q`` echo
    seq, then — only when present — a count byte followed by ``!QQ``
    inclusive SACK pairs.
    """
    if not ranges:
        return _ACK_NOSACK.pack(KIND_ACK, cum_seq, echo_seq)
    if len(ranges) > SACK_RANGES_MAX:
        raise RudpError(f"{len(ranges)} SACK ranges exceed the count byte")
    return (
        _ACK_NOSACK.pack(KIND_ACK, cum_seq, echo_seq)
        + bytes([len(ranges)])
        + b"".join(_SACK_RANGE.pack(s, e) for s, e in ranges)
    )


def decode_ack_payload(payload: bytes) -> Tuple[int, List[Tuple[int, int]]]:
    """Decode an ACK payload (everything after the ``!BQ`` header) into
    ``(echo_seq, sack_ranges)``.  Truncated trailing ranges are dropped;
    inverted ranges (start > end) are ignored."""
    n = len(payload)
    if n < 8:
        return 0, []
    if n == 8:  # no SACK block — the common case, one unpack, no slicing
        return _ACK_ECHO.unpack(payload)[0], []
    (echo,) = _ACK_ECHO.unpack_from(payload)
    count = payload[8]
    ranges: List[Tuple[int, int]] = []
    offset = 9
    for _ in range(count):
        if offset + 16 > n:
            break  # truncated: use what parsed cleanly
        start, end = _SACK_RANGE.unpack_from(payload, offset)
        offset += 16
        if start <= end:
            ranges.append((start, end))
    return echo, ranges

#: RD runs on a LAN fabric: the RTO floor is far below TCP's 200 ms
#: (which would be ruinous next to microsecond RTTs) but still well
#: above any observed RTT plus its variance.
RD_MIN_RTO_NS = 200 * US
RD_MAX_RTO_NS = 2 * SEC

ResultCallback = Callable[[bool], None]


class RudpError(Exception):
    """Reliable-UDP usage errors."""


@dataclass
class PeerStats:
    """Per-peer reliability counters (exposed for benchmarks/tests)."""

    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    backoff_events: int = 0
    rto_samples: int = 0
    sack_blocks: int = 0
    #: Snapshot of the estimator when the peer was last observed.
    srtt_ns: float = 0.0
    rto_ns: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "retransmissions": self.retransmissions,
            "fast_retransmits": self.fast_retransmits,
            "timeouts": self.timeouts,
            "backoff_events": self.backoff_events,
            "rto_samples": self.rto_samples,
            "sack_blocks": self.sack_blocks,
            "srtt_ns": self.srtt_ns,
            "rto_ns": self.rto_ns,
        }


class _PeerTx:
    """Sender-side state toward one peer."""

    __slots__ = (
        "next_seq", "unacked", "queue", "timer", "sent_at", "rtx", "sacked",
        "retries", "cbs", "estimator", "ack_floor", "dup_acks",
        "fast_rtx_armed", "recover", "stats",
    )

    def __init__(self, estimator: RtoEstimator) -> None:
        self.next_seq = 1
        self.unacked: Dict[int, bytes] = {}
        self.queue: Deque[Tuple[bytes, Optional[ResultCallback]]] = deque()
        self.timer = None
        self.sent_at: Dict[int, int] = {}       # first-transmission time
        self.rtx: Set[int] = set()              # retransmitted (Karn: no samples)
        self.sacked: Set[int] = set()           # held by the peer beyond a hole
        self.retries: Dict[int, int] = {}
        self.cbs: Dict[int, Optional[ResultCallback]] = {}
        self.estimator = estimator
        self.ack_floor = 1                      # highest cumulative ACK seen
        self.dup_acks = 0
        self.fast_rtx_armed = True              # one fast rtx per loss event
        self.recover = 0                        # NewReno recovery horizon
        self.stats = PeerStats()


class _PeerRx:
    """Receiver-side state from one peer."""

    __slots__ = ("rcv_nxt", "ooo", "pending_acks", "ack_timer")

    def __init__(self) -> None:
        self.rcv_nxt = 1
        self.ooo: Dict[int, bytes] = {}
        self.pending_acks = 0   # in-order arrivals not yet acknowledged
        self.ack_timer = None   # pending-ACK flush timer (batched mode)


class RudpSocket:
    """Reliable, ordered, message-preserving endpoint over a UdpSocket.

    One RudpSocket can converse with many peers (per-peer sequence
    spaces), matching how a datagram QP serves many remote endpoints.

    ``rto_ns`` seeds the per-peer estimator (it is the timeout used
    before the first RTT sample lands).  With ``adaptive=False`` the
    socket degrades to the original fixed-RTO design — no estimator, no
    backoff, no fast retransmit, no SACK — kept as the baseline the
    robustness benchmarks compare against.

    ``ack_every`` > 1 batches acknowledgements: in-order arrivals are
    acknowledged once per ``ack_every`` datagrams (or after
    ``ack_delay_ns``, whichever comes first — one pending-ACK timer per
    peer, not one per datagram), while anything anomalous — a gap, a
    duplicate, out-of-order data — still flushes an ACK immediately so
    fast retransmit and SACK recovery keep their one-ACK-per-anomaly
    timing.  Timer-fired ACKs echo sequence 0, which never produces an
    RTT sample (the delay would otherwise contaminate SRTT).  The
    default of 1 is the paper's ack-every-arrival behaviour.
    """

    def __init__(
        self,
        udp: UdpSocket,
        window_msgs: int = 64,
        rto_ns: int = 5 * MS,
        max_retries: int = 20,
        adaptive: bool = True,
        min_rto_ns: int = RD_MIN_RTO_NS,
        max_rto_ns: int = RD_MAX_RTO_NS,
        sack_ranges: int = 3,
        dup_ack_threshold: int = 3,
        ack_every: int = 1,
        ack_delay_ns: int = 100 * US,
    ):
        if window_msgs < 1:
            raise RudpError("window must be at least 1 message")
        if ack_every < 1:
            raise RudpError("ack_every must be at least 1")
        if ack_delay_ns <= 0:
            raise RudpError("ack_delay_ns must be positive")
        self.udp = udp
        self.sim: Simulator = udp.stack.sim
        self.window_msgs = window_msgs
        self.rto_ns = rto_ns
        self.max_retries = max_retries
        self.adaptive = adaptive
        self.min_rto_ns = min(min_rto_ns, rto_ns)
        self.max_rto_ns = max(max_rto_ns, rto_ns)
        self.sack_ranges = min(sack_ranges, SACK_RANGES_MAX) if adaptive else 0
        self.dup_ack_threshold = dup_ack_threshold if adaptive else 0
        # The fixed-RTO baseline predates delayed ACKs; it keeps the
        # original ack-every-arrival behaviour regardless of ack_every.
        self.ack_every = ack_every if adaptive else 1
        self.ack_delay_ns = ack_delay_ns
        self.closed = False
        self._tx: Dict[Address, _PeerTx] = {}
        self._rx: Dict[Address, _PeerRx] = {}
        self.on_message: Optional[Callable[[bytes, Address], None]] = None
        self.on_peer_failed: Optional[Callable[[Address], None]] = None
        self._queue: Deque[Tuple[bytes, Address]] = deque()
        self._waiters: Deque[Future] = deque()
        udp.on_datagram = self._on_datagram
        # Statistics (aggregate across peers; per-peer via peer_stats()).
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.backoff_events = 0
        self.rto_samples = 0
        self.sack_blocks_received = 0
        self.duplicates_dropped = 0
        self.acks_sent = 0
        self.peer_failures = 0
        self.messages_failed = 0
        # Every retransmission attributed to the mechanism that fired it:
        # RTO expiry, fast retransmit (the dup-ACK-triggered hole), the
        # extra SACK-inferred hole resends in the same recovery round, or
        # a NewReno partial-ACK resend.  Sums to ``retransmissions``.
        self.retransmits_by_cause: Dict[str, int] = {
            "rto": 0, "fast": 0, "sack": 0, "partial_ack": 0,
        }
        self.host = udp.stack.host
        self.obs = sim_registry(self.sim)
        if self.obs.enabled:
            self.obs.add_collector(self._obs_samples)

    def _obs_samples(self):
        """Pull collector: the aggregate ints (still the source of truth
        for ``stats()``) as ``transport.rudp.*`` series, plus the
        per-cause retransmit breakdown."""
        labels = {"host": self.host.name, "port": str(self.port)}
        for key, value in self.stats().items():
            yield ("transport.rudp." + key, labels, "counter", value)
        for cause in sorted(self.retransmits_by_cause):
            yield (
                "transport.rudp.retransmits",
                {"cause": cause, **labels},
                "counter",
                self.retransmits_by_cause[cause],
            )

    @property
    def port(self) -> int:
        return self.udp.port

    def _new_estimator(self) -> RtoEstimator:
        return RtoEstimator(
            initial_rto_ns=self.rto_ns,
            min_rto_ns=self.min_rto_ns,
            max_rto_ns=self.max_rto_ns,
        )

    # -- send ------------------------------------------------------------

    def sendto(
        self,
        data: bytes,
        addr: Address,
        on_result: Optional[ResultCallback] = None,
    ) -> None:
        """Reliably send one message (delivered exactly once, in order).

        ``on_result`` (optional) fires exactly once: ``True`` when the
        message is cumulatively acknowledged, ``False`` if the peer is
        declared unreachable or the socket closes first.
        """
        if self.closed:
            raise RudpError("socket is closed")
        if len(data) > RUDP_MAX_PAYLOAD:
            raise RudpError(
                f"{len(data)} bytes exceeds RUDP maximum {RUDP_MAX_PAYLOAD}"
            )
        tx = self._tx.get(addr)
        if tx is None:
            tx = self._tx.setdefault(addr, _PeerTx(self._new_estimator()))
        # Snapshot mutable buffers so later caller-side writes can't
        # alias into the retransmission store; immutable bytes are
        # enqueued as-is (bytes(data) on bytes would copy for nothing).
        if not isinstance(data, bytes):
            data = bytes(data)
        tx.queue.append((data, on_result))
        self._pump(addr, tx)

    def _pump(self, addr: Address, tx: _PeerTx) -> None:
        while tx.queue and len(tx.unacked) < self.window_msgs:
            data, cb = tx.queue.popleft()
            seq = tx.next_seq
            tx.next_seq += 1
            tx.unacked[seq] = data
            tx.cbs[seq] = cb
            tx.sent_at[seq] = self.sim.now
            self._emit(addr, seq, data)
        if tx.unacked and tx.timer is None:
            self._arm_timer(addr, tx)

    def _emit(self, addr: Address, seq: int, data: bytes) -> None:
        self.udp.sendto(_HEADER.pack(KIND_DATA, seq) + data, addr)

    def _current_rto(self, tx: _PeerTx) -> int:
        return tx.estimator.rto_ns if self.adaptive else self.rto_ns

    def _arm_timer(self, addr: Address, tx: _PeerTx) -> None:
        if tx.timer is not None:
            tx.timer.cancel()
        tx.timer = self.sim.schedule(self._current_rto(tx), self._on_timeout, addr)

    def _on_timeout(self, addr: Address) -> None:
        tx = self._tx.get(addr)
        if tx is None:
            return
        tx.timer = None
        if not tx.unacked:
            return
        # Retransmit the earliest message the peer has not SACKed; fall
        # back to the overall earliest (an all-SACKed window means the
        # cumulative ACKs themselves were lost — provoke a fresh one).
        unsacked = [s for s in tx.unacked if s not in tx.sacked]
        seq = min(unsacked) if unsacked else min(tx.unacked)
        retries = tx.retries.get(seq, 0) + 1
        if retries > self.max_retries:
            self._fail_peer(addr, tx)
            return
        tx.retries[seq] = retries
        tx.rtx.add(seq)
        tx.stats.timeouts += 1
        self.timeouts += 1
        if self.adaptive:
            tx.estimator.on_timeout()
            tx.stats.backoff_events += 1
            self.backoff_events += 1
        self._retransmit(addr, tx, seq, "rto")
        self._arm_timer(addr, tx)

    def _retransmit(self, addr: Address, tx: _PeerTx, seq: int, cause: str) -> None:
        tx.stats.retransmissions += 1
        self.retransmissions += 1
        self.retransmits_by_cause[cause] += 1
        wr_span(
            self.host, "retransmit", proto="rudp", cause=cause,
            seq=seq, port=self.port, peer=addr,
        )
        self._emit(addr, seq, tx.unacked[seq])

    def _fail_peer(self, addr: Address, tx: _PeerTx) -> None:
        """Peer unreachable: drop all state toward it and notify — every
        queued or in-flight message is reported failed, never silently
        discarded."""
        if tx.timer is not None:
            tx.timer.cancel()
            tx.timer = None
        del self._tx[addr]
        self.peer_failures += 1
        callbacks: List[ResultCallback] = []
        for seq in sorted(tx.unacked):
            cb = tx.cbs.get(seq)
            if cb is not None:
                callbacks.append(cb)
        for _, cb in tx.queue:
            if cb is not None:
                callbacks.append(cb)
        self.messages_failed += len(tx.unacked) + len(tx.queue)
        tx.unacked.clear()
        tx.queue.clear()
        tx.cbs.clear()
        for cb in callbacks:
            cb(False)
        if self.on_peer_failed is not None:
            self.on_peer_failed(addr)

    # -- receive -------------------------------------------------------------

    def _on_datagram(self, data: bytes, src: Address) -> None:
        if len(data) < RUDP_HEADER:
            return
        kind, seq = _HEADER.unpack_from(data)
        if kind == KIND_ACK:
            self._on_ack(seq, data[RUDP_HEADER:], src)
        elif kind == KIND_DATA:
            self._on_data(seq, data[RUDP_HEADER:], src)

    def _parse_ack_payload(
        self, payload: bytes
    ) -> Tuple[int, List[Tuple[int, int]]]:
        """ACK payload: the echo seq (whose arrival triggered this ACK),
        then optional SACK ranges (count byte + inclusive pairs)."""
        return decode_ack_payload(payload)

    def _on_ack(self, ack_seq: int, payload: bytes, src: Address) -> None:
        """Cumulative: acknowledges every sequence number < ack_seq.
        The payload carries the triggering seq (the RTT echo) plus SACK
        ranges for out-of-order data the peer is already holding."""
        tx = self._tx.get(src)
        if tx is None:
            return
        echo, sacks = self._parse_ack_payload(payload)
        # RTT sampling uses ONLY the echo: the receiver says exactly
        # which segment's arrival produced this ACK, so the sample never
        # includes reordering stalls — and Karn's rule (no samples from
        # retransmitted seqs) still applies.  Anything subtler (sampling
        # on cumulative advance or on SACK receipt) turns out to fold
        # head-of-line waiting time into SRTT under sustained loss and
        # drives the RTO toward its cap.
        if (
            self.adaptive
            and echo in tx.sent_at
            and echo not in tx.rtx
        ):
            tx.estimator.sample(self.sim.now - tx.sent_at[echo])
            tx.stats.rto_samples += 1
            self.rto_samples += 1
        for start, end in sacks:
            tx.stats.sack_blocks += 1
            self.sack_blocks_received += 1
            for seq in tx.unacked:
                if start <= seq <= end:
                    tx.sacked.add(seq)
        newly_acked = sorted(s for s in tx.unacked if s < ack_seq)
        if newly_acked:
            self._on_ack_progress(src, tx, ack_seq, newly_acked)
        elif ack_seq == tx.ack_floor and tx.unacked:
            # A duplicate ACK is a re-assertion of the *current*
            # cumulative point (RFC 5681); a stale ACK reordered from
            # before the window advanced (ack_seq < floor) says nothing
            # about the current hole and must not count toward fast
            # retransmit.
            self._on_dup_ack(src, tx, ack_seq)
        self._pump(src, tx)

    def _on_ack_progress(
        self, src: Address, tx: _PeerTx, ack_seq: int, newly_acked: List[int]
    ) -> None:
        callbacks: List[ResultCallback] = []
        for seq in newly_acked:
            del tx.unacked[seq]
            tx.sent_at.pop(seq, None)
            tx.retries.pop(seq, None)
            tx.rtx.discard(seq)
            tx.sacked.discard(seq)
            cb = tx.cbs.pop(seq, None)
            if cb is not None:
                callbacks.append(cb)
        tx.ack_floor = max(tx.ack_floor, ack_seq)
        tx.dup_acks = 0
        if ack_seq > tx.recover:
            # Recovery (if any) is over: re-arm the fast-retransmit path.
            tx.fast_rtx_armed = True
        elif (
            self.dup_ack_threshold > 0
            and ack_seq in tx.unacked
            and ack_seq not in tx.sacked
        ):
            # NewReno partial ack: progress inside the recovery window
            # stopped at a fresh hole — one of the recovery
            # retransmissions was itself lost.  Resend it immediately
            # rather than waiting for a (backed-off) timeout.
            tx.rtx.add(ack_seq)
            self._retransmit(src, tx, ack_seq, "partial_ack")
        if self.adaptive:
            tx.estimator.reset_backoff()
        tx.stats.srtt_ns = tx.estimator.srtt
        tx.stats.rto_ns = self._current_rto(tx)
        if tx.timer is not None:
            tx.timer.cancel()
            tx.timer = None
        if tx.unacked:
            self._arm_timer(src, tx)
        for cb in callbacks:
            cb(True)

    def _on_dup_ack(self, src: Address, tx: _PeerTx, ack_seq: int) -> None:
        """The peer re-asserted its cumulative point: something after it
        arrived while ``ack_seq`` is still missing."""
        if self.dup_ack_threshold <= 0:
            return
        tx.dup_acks += 1
        if not tx.fast_rtx_armed or tx.dup_acks < self.dup_ack_threshold:
            return
        missing = ack_seq
        if missing not in tx.unacked or missing in tx.sacked:
            return
        tx.fast_rtx_armed = False  # once per loss event, like NewReno
        tx.recover = tx.next_seq - 1  # recovery covers everything sent so far
        tx.stats.fast_retransmits += 1
        self.fast_retransmits += 1
        # SACK-based recovery: resend every inferred hole — any unacked,
        # unSACKed seq below something the peer does hold — in one RTT,
        # not one hole per (backed-off) timeout.
        horizon = max(tx.sacked, default=missing)
        for seq in sorted(tx.unacked):
            if seq > horizon or seq in tx.sacked:
                continue
            tx.rtx.add(seq)
            # The dup-ACK-named hole is the classic fast retransmit; the
            # other holes are inferred from SACK coverage.
            self._retransmit(src, tx, seq, "fast" if seq == missing else "sack")
        self._arm_timer(src, tx)

    def _on_data(self, seq: int, payload: bytes, src: Address) -> None:
        rx = self._rx.setdefault(src, _PeerRx())
        anomaly = True
        if seq < rx.rcv_nxt or seq in rx.ooo:
            self.duplicates_dropped += 1
        elif seq == rx.rcv_nxt:
            rx.rcv_nxt += 1
            self._deliver(payload, src)
            while rx.rcv_nxt in rx.ooo:
                self._deliver(rx.ooo.pop(rx.rcv_nxt), src)
                rx.rcv_nxt += 1
            # Clean in-order progress (no gap still parked) may be
            # acknowledged lazily; everything else must flush now so the
            # sender's dup-ACK/SACK machinery sees each anomaly.
            anomaly = bool(rx.ooo)
        else:
            rx.ooo[seq] = payload
        rx.pending_acks += 1
        if anomaly or rx.pending_acks >= self.ack_every:
            # Ack with the cumulative in-order point, echoing the seq
            # that triggered this ACK (plus SACK ranges for whatever is
            # parked out of order).
            self._flush_ack(rx, src, seq)
        elif rx.ack_timer is None:
            rx.ack_timer = self.sim.schedule(
                self.ack_delay_ns, self._on_ack_timer, src
            )

    def _on_ack_timer(self, src: Address) -> None:
        """Pending-ACK timer: acknowledge whatever arrived in-order since
        the last ACK.  Echoes seq 0 — never a valid trigger — so the
        sender takes no RTT sample from a deliberately delayed ACK."""
        rx = self._rx.get(src)
        if rx is None:
            return
        rx.ack_timer = None
        if rx.pending_acks:
            self._flush_ack(rx, src, 0)

    def _ooo_ranges(self, rx: _PeerRx) -> List[Tuple[int, int]]:
        """First ``sack_ranges`` contiguous runs of out-of-order data."""
        if not self.sack_ranges or not rx.ooo:
            return []
        seqs = sorted(rx.ooo)
        ranges: List[Tuple[int, int]] = []
        start = prev = seqs[0]
        for s in seqs[1:]:
            if s == prev + 1:
                prev = s
                continue
            ranges.append((start, prev))
            if len(ranges) >= self.sack_ranges:
                return ranges
            start = prev = s
        ranges.append((start, prev))
        return ranges[: self.sack_ranges]

    def _flush_ack(self, rx: _PeerRx, src: Address, trigger_seq: int) -> None:
        if rx.ack_timer is not None:
            rx.ack_timer.cancel()
            rx.ack_timer = None
        rx.pending_acks = 0
        self.acks_sent += 1
        self.udp.sendto(
            encode_ack(rx.rcv_nxt, trigger_seq, self._ooo_ranges(rx)), src
        )

    def _deliver(self, data: bytes, src: Address) -> None:
        if self.on_message is not None:
            self.on_message(data, src)
        elif self._waiters:
            self._waiters.popleft().set_result((data, src))
        else:
            self._queue.append((data, src))

    def recv_future(self) -> Future:
        """Future resolving to ``(data, src)`` — or ``None`` if the
        socket closes before anything arrives."""
        fut = self.sim.future()
        if self._queue:
            fut.set_result(self._queue.popleft())
        elif self.closed:
            fut.set_result(None)
        else:
            self._waiters.append(fut)
        return fut

    # -- introspection ----------------------------------------------------

    def unacked_messages(self, addr: Address) -> int:
        tx = self._tx.get(addr)
        return len(tx.unacked) if tx else 0

    def current_rto_ns(self, addr: Address) -> int:
        """The retransmission timeout currently in force toward a peer."""
        tx = self._tx.get(addr)
        return self._current_rto(tx) if tx else self.rto_ns

    def peer_stats(self, addr: Address) -> Optional[PeerStats]:
        tx = self._tx.get(addr)
        if tx is None:
            return None
        tx.stats.srtt_ns = tx.estimator.srtt
        tx.stats.rto_ns = self._current_rto(tx)
        return tx.stats

    def stats(self) -> Dict[str, int]:
        """Aggregate reliability counters (all peers)."""
        return {
            "retransmissions": self.retransmissions,
            "fast_retransmits": self.fast_retransmits,
            "timeouts": self.timeouts,
            "backoff_events": self.backoff_events,
            "rto_samples": self.rto_samples,
            "sack_blocks_received": self.sack_blocks_received,
            "duplicates_dropped": self.duplicates_dropped,
            "acks_sent": self.acks_sent,
            "peer_failures": self.peer_failures,
            "messages_failed": self.messages_failed,
        }

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Tear the endpoint down: cancel timers, fail every in-flight
        and queued message, wake pending receivers (with ``None``), and
        detach from the UDP socket before closing it."""
        if self.closed:
            return
        self.closed = True
        callbacks: List[ResultCallback] = []
        for tx in self._tx.values():
            if tx.timer is not None:
                tx.timer.cancel()
                tx.timer = None
            for seq in sorted(tx.unacked):
                cb = tx.cbs.get(seq)
                if cb is not None:
                    callbacks.append(cb)
            for _, cb in tx.queue:
                if cb is not None:
                    callbacks.append(cb)
            self.messages_failed += len(tx.unacked) + len(tx.queue)
            tx.unacked.clear()
            tx.queue.clear()
            tx.cbs.clear()
        self._tx.clear()
        for rx in self._rx.values():
            if rx.ack_timer is not None:
                rx.ack_timer.cancel()
                rx.ack_timer = None
        # Detach before failing callbacks: nothing may re-enter a closed
        # socket through a stale UDP delivery path.
        if self.udp.on_datagram == self._on_datagram:
            self.udp.on_datagram = None
        for cb in callbacks:
            cb(False)
        waiters, self._waiters = self._waiters, deque()
        for fut in waiters:
            if not fut.done:
                fut.set_result(None)
        self.udp.close()
