"""Reliable UDP: the Reliable Datagram (RD) lower layer.

The paper's design is explicitly dual-mode: unreliable datagrams for
loss-tolerant applications, and "a reliability mechanism (like reliable
UDP) for those applications that cannot deal with data loss" (§I), with
RD LLPs expected to provide order and reliability guarantees (§IV.B
item 3).  This module supplies that LLP: a message-oriented sliding
window over UDP with cumulative ACKs, in-order delivery, and
timeout-based retransmission — but none of TCP's stream semantics, so
message boundaries survive and the MPA layer stays bypassed.

Headers are genuinely encoded into the datagram bytes (struct-packed),
so tests exercise real parsing, and the 9-byte header participates in
wire sizing.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..simnet.engine import MS, Future, Simulator
from .udp import UDP_MAX_PAYLOAD, UdpSocket

Address = Tuple[int, int]

_HEADER = struct.Struct("!BQ")  # kind, sequence number
KIND_DATA = 1
KIND_ACK = 2

RUDP_HEADER = _HEADER.size  # 9 bytes
RUDP_MAX_PAYLOAD = UDP_MAX_PAYLOAD - RUDP_HEADER


class RudpError(Exception):
    """Reliable-UDP usage errors."""


class _PeerTx:
    """Sender-side state toward one peer."""

    __slots__ = ("next_seq", "unacked", "queue", "timer")

    def __init__(self) -> None:
        self.next_seq = 1
        self.unacked: Dict[int, bytes] = {}
        self.queue: Deque[bytes] = deque()
        self.timer = None


class _PeerRx:
    """Receiver-side state from one peer."""

    __slots__ = ("rcv_nxt", "ooo")

    def __init__(self) -> None:
        self.rcv_nxt = 1
        self.ooo: Dict[int, bytes] = {}


class RudpSocket:
    """Reliable, ordered, message-preserving endpoint over a UdpSocket.

    One RudpSocket can converse with many peers (per-peer sequence
    spaces), matching how a datagram QP serves many remote endpoints.
    """

    def __init__(
        self,
        udp: UdpSocket,
        window_msgs: int = 64,
        rto_ns: int = 5 * MS,
        max_retries: int = 20,
    ):
        if window_msgs < 1:
            raise RudpError("window must be at least 1 message")
        self.udp = udp
        self.sim: Simulator = udp.stack.sim
        self.window_msgs = window_msgs
        self.rto_ns = rto_ns
        self.max_retries = max_retries
        self._tx: Dict[Address, _PeerTx] = {}
        self._rx: Dict[Address, _PeerRx] = {}
        self._retries: Dict[Tuple[Address, int], int] = {}
        self.on_message: Optional[Callable[[bytes, Address], None]] = None
        self.on_peer_failed: Optional[Callable[[Address], None]] = None
        self._queue: Deque[Tuple[bytes, Address]] = deque()
        self._waiters: Deque[Future] = deque()
        udp.on_datagram = self._on_datagram
        # Statistics.
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.acks_sent = 0

    @property
    def port(self) -> int:
        return self.udp.port

    # -- send ------------------------------------------------------------

    def sendto(self, data: bytes, addr: Address) -> None:
        """Reliably send one message (delivered exactly once, in order)."""
        if len(data) > RUDP_MAX_PAYLOAD:
            raise RudpError(
                f"{len(data)} bytes exceeds RUDP maximum {RUDP_MAX_PAYLOAD}"
            )
        tx = self._tx.setdefault(addr, _PeerTx())
        tx.queue.append(bytes(data))
        self._pump(addr, tx)

    def _pump(self, addr: Address, tx: _PeerTx) -> None:
        while tx.queue and len(tx.unacked) < self.window_msgs:
            data = tx.queue.popleft()
            seq = tx.next_seq
            tx.next_seq += 1
            tx.unacked[seq] = data
            self._emit(addr, seq, data)
        if tx.unacked and tx.timer is None:
            tx.timer = self.sim.schedule(self.rto_ns, self._on_timeout, addr)

    def _emit(self, addr: Address, seq: int, data: bytes) -> None:
        self.udp.sendto(_HEADER.pack(KIND_DATA, seq) + data, addr)

    def _on_timeout(self, addr: Address) -> None:
        tx = self._tx.get(addr)
        if tx is None:
            return
        tx.timer = None
        if not tx.unacked:
            return
        seq = min(tx.unacked)
        key = (addr, seq)
        retries = self._retries.get(key, 0) + 1
        if retries > self.max_retries:
            # Peer unreachable: drop all state toward it and notify.
            del self._tx[addr]
            self._retries = {k: v for k, v in self._retries.items() if k[0] != addr}
            if self.on_peer_failed is not None:
                self.on_peer_failed(addr)
            return
        self._retries[key] = retries
        self.retransmissions += 1
        self._emit(addr, seq, tx.unacked[seq])
        tx.timer = self.sim.schedule(self.rto_ns, self._on_timeout, addr)

    # -- receive -------------------------------------------------------------

    def _on_datagram(self, data: bytes, src: Address) -> None:
        if len(data) < RUDP_HEADER:
            return
        kind, seq = _HEADER.unpack_from(data)
        if kind == KIND_ACK:
            self._on_ack(seq, src)
        elif kind == KIND_DATA:
            self._on_data(seq, data[RUDP_HEADER:], src)

    def _on_ack(self, ack_seq: int, src: Address) -> None:
        """Cumulative: acknowledges every sequence number < ack_seq."""
        tx = self._tx.get(src)
        if tx is None:
            return
        for seq in [s for s in tx.unacked if s < ack_seq]:
            del tx.unacked[seq]
            self._retries.pop((src, seq), None)
        if tx.timer is not None:
            tx.timer.cancel()
            tx.timer = None
        self._pump(src, tx)

    def _on_data(self, seq: int, payload: bytes, src: Address) -> None:
        rx = self._rx.setdefault(src, _PeerRx())
        if seq < rx.rcv_nxt:
            self.duplicates_dropped += 1
        elif seq == rx.rcv_nxt:
            rx.rcv_nxt += 1
            self._deliver(payload, src)
            while rx.rcv_nxt in rx.ooo:
                self._deliver(rx.ooo.pop(rx.rcv_nxt), src)
                rx.rcv_nxt += 1
        else:
            rx.ooo[seq] = payload
        # Always ack with the cumulative in-order point.
        self.acks_sent += 1
        self.udp.sendto(_HEADER.pack(KIND_ACK, rx.rcv_nxt), src)

    def _deliver(self, data: bytes, src: Address) -> None:
        if self.on_message is not None:
            self.on_message(data, src)
        elif self._waiters:
            self._waiters.popleft().set_result((data, src))
        else:
            self._queue.append((data, src))

    def recv_future(self) -> Future:
        fut = self.sim.future()
        if self._queue:
            fut.set_result(self._queue.popleft())
        else:
            self._waiters.append(fut)
        return fut

    def unacked_messages(self, addr: Address) -> int:
        tx = self._tx.get(addr)
        return len(tx.unacked) if tx else 0

    def close(self) -> None:
        for tx in self._tx.values():
            if tx.timer is not None:
                tx.timer.cancel()
        self.udp.close()
