"""Backwards-compatible re-export: the estimator moved to
:mod:`repro.transport.rto` so the reliable-datagram LLP can share it."""

from ..rto import RtoEstimator

__all__ = ["RtoEstimator"]
