"""TCP Reno congestion control.

Slow start, congestion avoidance, fast retransmit/fast recovery, and
timeout collapse — the reliability/flow-control machinery whose overhead
the paper's motivation targets ("high overhead reliability and
flow-control measures in TCP", §I).  Keeping it faithful lets the
benchmarks show TCP behaving like TCP (in-order blocking under loss,
window growth on LANs) rather than like an idealized pipe.
"""

from __future__ import annotations


class RenoCongestion:
    """Byte-counting Reno (RFC 5681 style)."""

    def __init__(self, mss: int, initial_window_segments: int = 10):
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.mss = mss
        # RFC 6928 initial window (Linux default since 2.6.39).
        self.cwnd = initial_window_segments * mss
        self.ssthresh = 1 << 62
        self.in_recovery = False
        self.recovery_point = 0  # snd_nxt at loss detection
        # Counters for tests/reports.
        self.fast_retransmits = 0
        self.timeouts = 0

    # -- events ------------------------------------------------------------

    def on_ack(self, newly_acked: int, snd_una: int) -> None:
        """New data acknowledged."""
        if newly_acked <= 0:
            return
        if self.in_recovery:
            if snd_una >= self.recovery_point:
                # Full recovery: deflate to ssthresh.
                self.in_recovery = False
                self.cwnd = self.ssthresh
            else:
                # Partial ack: stay in recovery (NewReno-lite).
                return
        elif self.cwnd < self.ssthresh:
            # Slow start: grow by bytes acked (capped per-ACK at MSS).
            self.cwnd += min(newly_acked, self.mss)
        else:
            # Congestion avoidance: ~one MSS per RTT.
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def on_dup_acks(self, flight_size: int, snd_nxt: int) -> bool:
        """Third duplicate ACK: enter fast recovery.  Returns True if the
        caller should fast-retransmit the lost segment."""
        if self.in_recovery:
            return False
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_recovery = True
        self.recovery_point = snd_nxt
        self.fast_retransmits += 1
        return True

    def on_dup_ack_in_recovery(self) -> None:
        """Each further dup-ACK inflates the window by one MSS."""
        if self.in_recovery:
            self.cwnd += self.mss

    def on_timeout(self, flight_size: int) -> None:
        """RTO expiry: collapse to one segment."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self.timeouts += 1

    # -- queries ------------------------------------------------------------

    def send_allowance(self, flight_size: int, peer_window: int) -> int:
        """How many more bytes may be in flight right now."""
        return max(0, min(self.cwnd, peer_window) - flight_size)
