"""TCP segment representation and flag constants."""

from __future__ import annotations

from dataclasses import dataclass

TCP_HEADER = 20

# Flag bits.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10

_FLAG_NAMES = [(SYN, "SYN"), (ACK, "ACK"), (FIN, "FIN"), (RST, "RST"), (PSH, "PSH")]


def flag_names(flags: int) -> str:
    return "|".join(name for bit, name in _FLAG_NAMES if flags & bit) or "-"


@dataclass
class TcpSegment:
    """One TCP segment as carried by IP.

    ``seq`` numbers bytes; SYN and FIN each consume one sequence number,
    exactly as in the real protocol, so the connection state machine and
    the tests exercise genuine sequence arithmetic.
    """

    src_port: int
    dst_port: int
    seq: int
    ack_seq: int
    flags: int
    window: int
    payload: bytes = b""

    @property
    def size(self) -> int:
        return TCP_HEADER + len(self.payload)

    @property
    def seq_span(self) -> int:
        """Sequence space consumed: payload bytes plus SYN/FIN."""
        span = len(self.payload)
        if self.flags & SYN:
            span += 1
        if self.flags & FIN:
            span += 1
        return span

    @property
    def end_seq(self) -> int:
        return self.seq + self.seq_span

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpSeg {self.src_port}->{self.dst_port} {flag_names(self.flags)} "
            f"seq={self.seq} ack={self.ack_seq} len={len(self.payload)}>"
        )
