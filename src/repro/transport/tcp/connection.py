"""TCP connection state machine.

A deliberately faithful (if SACK-less) TCP: three-way handshake, MSS
segmentation, sliding window against both the peer's advertised window
and Reno's cwnd, cumulative ACKs with duplicate-ACK fast retransmit,
RFC 6298 retransmission timeouts with Karn's rule, optional Nagle, and
orderly FIN teardown.

Faithfulness matters to the reproduction: the paper's case for
datagram-iWARP rests on what connection-oriented transports *do* — ACK
processing, in-order head-of-line blocking, per-connection state — so
the RC baseline must earn its overheads mechanically rather than having
them asserted.

Sequence numbers are plain Python ints (no 32-bit wrap); simulations
move far less than 2**63 bytes, and the arithmetic stays honest.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Tuple

from ...core.fsm import transition as _fsm_transition
from ...obs import sim_registry, wr_span
from ...simnet.engine import Future, Simulator
from .congestion import RenoCongestion
from ..rto import RtoEstimator
from .segment import ACK, FIN, PSH, RST, SYN, TcpSegment

#: Dead-prefix size at which the send buffer is physically compacted.
#: Below this, ACK processing advances an offset instead of memmoving
#: the whole buffer, which is what made large-message RC runs O(n^2).
_SNDBUF_COMPACT = 256 * 1024

# Connection states.
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
CLOSING = "CLOSING"
TIME_WAIT = "TIME_WAIT"

#: Legal transitions (RFC 793 figure 6 subset; CLOSED is additionally
#: reachable from every state via RST/abort).  Mirrored in
#: ``iwarplint.invariants.TCP_TABLE``; drift is flagged (IW204).
TCP_TRANSITIONS: Dict[str, FrozenSet[str]] = {
    CLOSED: frozenset({SYN_SENT, SYN_RCVD}),
    SYN_SENT: frozenset({ESTABLISHED, CLOSED}),
    SYN_RCVD: frozenset({ESTABLISHED, FIN_WAIT_1, CLOSED}),
    ESTABLISHED: frozenset({FIN_WAIT_1, CLOSE_WAIT, CLOSED}),
    FIN_WAIT_1: frozenset({FIN_WAIT_2, CLOSING, TIME_WAIT, CLOSED}),
    FIN_WAIT_2: frozenset({TIME_WAIT, CLOSED}),
    CLOSE_WAIT: frozenset({LAST_ACK, CLOSED}),
    LAST_ACK: frozenset({CLOSED}),
    CLOSING: frozenset({TIME_WAIT, CLOSED}),
    TIME_WAIT: frozenset({CLOSED}),
}

#: Event-labelled view: ``(state, event) -> state`` (RFC 793 figure 6
#: arc labels).  Model-checked by ``tools/iwarpcheck``, whose projection
#: check keeps this table and :data:`TCP_TRANSITIONS` identical.
#: ``reset`` covers both an arriving RST and a local abort; losing,
#: duplicating, or reordering a data segment never moves this machine
#: (retransmission absorbs it), which the product model in iwarpcheck
#: states explicitly.
TCP_EVENT_TRANSITIONS: Dict[Tuple[str, str], str] = {
    (CLOSED, "active_open"): SYN_SENT,
    (CLOSED, "passive_syn"): SYN_RCVD,
    (SYN_SENT, "syn_ack"): ESTABLISHED,
    (SYN_SENT, "close"): CLOSED,
    (SYN_SENT, "reset"): CLOSED,
    (SYN_RCVD, "handshake_ack"): ESTABLISHED,
    (SYN_RCVD, "close"): FIN_WAIT_1,
    (SYN_RCVD, "reset"): CLOSED,
    (ESTABLISHED, "close"): FIN_WAIT_1,
    (ESTABLISHED, "peer_fin"): CLOSE_WAIT,
    (ESTABLISHED, "reset"): CLOSED,
    (FIN_WAIT_1, "fin_acked"): FIN_WAIT_2,
    (FIN_WAIT_1, "peer_fin"): CLOSING,
    (FIN_WAIT_1, "peer_fin_acked"): TIME_WAIT,
    (FIN_WAIT_1, "reset"): CLOSED,
    (FIN_WAIT_2, "peer_fin"): TIME_WAIT,
    (FIN_WAIT_2, "reset"): CLOSED,
    (CLOSE_WAIT, "close"): LAST_ACK,
    (CLOSE_WAIT, "reset"): CLOSED,
    (LAST_ACK, "fin_acked"): CLOSED,
    (CLOSING, "fin_acked"): TIME_WAIT,
    (CLOSING, "reset"): CLOSED,
    (TIME_WAIT, "msl_timeout"): CLOSED,
}


class TcpError(Exception):
    """Connection-level failures (reset, send on closed socket, ...)."""


class TcpConnection:
    """One endpoint of a TCP connection, driven entirely by events."""

    def __init__(
        self,
        stack,                                # TcpStack (avoid circular import)
        local_port: int,
        remote: Tuple[int, int],
        iss: int,
        mss: int,
        nagle: bool = False,
        rcvbuf_bytes: int = 16 * 1024 * 1024,
        ack_every: int = 2,
    ):
        self.stack = stack
        self.sim: Simulator = stack.sim
        self.local_port = local_port
        self.remote = remote
        self.mss = mss
        self.nagle = nagle
        self.ack_every = max(1, ack_every)
        self.state = CLOSED

        # Send side.
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.snd_max = iss            # highest sequence ever sent
        self._sndbuf = bytearray()
        # seq of the first *live* send-buffer byte (after SYN).  ACKed
        # bytes are consumed by advancing _snd_head instead of deleting
        # the buffer prefix (an O(buffer) memmove per ACK); the dead
        # prefix is dropped in one amortized delete once it exceeds
        # _SNDBUF_COMPACT.
        self._snd_base = iss + 1
        self._snd_head = 0                # physical offset of _snd_base
        self.peer_window = 64 * 1024
        self.cong = RenoCongestion(mss)
        self.rto = RtoEstimator()
        self._rtx_timer = None
        self._dup_acks = 0
        self._rtt_seq: Optional[int] = None   # end-seq being timed (Karn)
        self._rtt_sent_at = 0
        self._fin_queued = False
        self._fin_sent = False
        self._fin_seq: Optional[int] = None

        # Receive side.
        self.irs = 0
        self.rcv_nxt = 0
        self.rcvbuf_bytes = rcvbuf_bytes
        self._ooo: Dict[int, bytes] = {}   # seq -> payload (out of order)
        self._ooo_fin: Optional[int] = None  # seq of a FIN parked beyond a gap
        self._segs_since_ack = 0
        self._remote_fin = False

        # Upcalls.
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.established: Future = self.sim.future()
        self.closed_future: Future = self.sim.future()

        # Statistics.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmissions = 0
        self.dup_acks_total = 0
        # Retransmissions attributed to the mechanism that fired them
        # (sums to ``retransmissions``): RTO expiry (including go-back-N
        # rewinds), dup-ACK fast retransmit, NewReno partial-ACK resend.
        self.retransmits_by_cause: Dict[str, int] = {
            "rto": 0, "fast": 0, "partial_ack": 0,
        }
        self.obs = sim_registry(self.sim)
        if self.obs.enabled:
            self.obs.add_collector(self._obs_samples)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _obs_labels(self) -> Dict[str, str]:
        return {
            "host": self.stack.host.name,
            "conn": f"{self.local_port}-{self.remote[0]}:{self.remote[1]}",
        }

    def _obs_samples(self):
        """Pull collector (registered only when metrics are enabled, so a
        disabled run never keeps closed connections alive through the
        registry).  The plain ints above stay the source of truth."""
        labels = self._obs_labels()
        yield ("transport.tcp.segments", {"dir": "tx", **labels}, "counter", self.segments_sent)
        yield ("transport.tcp.segments", {"dir": "rx", **labels}, "counter", self.segments_received)
        yield ("transport.tcp.bytes", {"dir": "tx", **labels}, "counter", self.bytes_sent)
        yield ("transport.tcp.bytes", {"dir": "rx", **labels}, "counter", self.bytes_received)
        yield ("transport.tcp.retransmissions", labels, "counter", self.retransmissions)
        yield ("transport.tcp.dup_acks", labels, "counter", self.dup_acks_total)
        for cause in sorted(self.retransmits_by_cause):
            yield (
                "transport.tcp.retransmits",
                {"cause": cause, **labels},
                "counter",
                self.retransmits_by_cause[cause],
            )
        yield ("transport.tcp.rto_backoffs", labels, "counter", self.rto.backoffs)
        yield ("transport.tcp.cwnd_bytes", labels, "gauge", self.cong.cwnd)
        yield ("transport.tcp.ssthresh_bytes", labels, "gauge", self.cong.ssthresh)
        yield ("transport.tcp.rto_ns", labels, "gauge", self.rto.rto_ns)

    def obs_stats(self) -> Dict[str, object]:
        """Per-connection stats snapshot (plain dict, registry-free)."""
        return {
            "segments_sent": self.segments_sent,
            "segments_received": self.segments_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "retransmissions": self.retransmissions,
            "retransmits_by_cause": dict(self.retransmits_by_cause),
            "dup_acks": self.dup_acks_total,
            "rto_backoffs": self.rto.backoffs,
            "cwnd_bytes": self.cong.cwnd,
            "ssthresh_bytes": self.cong.ssthresh,
            "rto_ns": self.rto.rto_ns,
        }

    def _note_retransmit(self, cause: str, seq: int) -> None:
        self.retransmissions += 1
        self.retransmits_by_cause[cause] += 1
        wr_span(
            self.stack.host, "retransmit", proto="tcp", cause=cause,
            seq=seq, conn=self.local_port,
        )

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def _set_state(self, new_state: str) -> None:
        """Sole state mutator after construction; validates the move
        against :data:`TCP_TRANSITIONS` via the shared
        :func:`repro.core.fsm.transition` helper (same-state is a no-op)."""
        _fsm_transition(
            self, "TCP", TCP_TRANSITIONS, new_state, TcpError,
            f" ({self.local_port}<->{self.remote})",
        )

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------

    def open_active(self) -> Future:
        if self.state != CLOSED:
            raise TcpError(f"open_active in state {self.state}")
        self._set_state(SYN_SENT)
        self._transmit(self.iss, SYN, b"")
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self._arm_rtx()
        return self.established

    def open_passive(self, syn: TcpSegment) -> None:
        """Transition LISTEN->SYN_RCVD for an arriving SYN (called by the
        stack, which created this connection object for it)."""
        self.irs = syn.seq
        self.rcv_nxt = syn.seq + 1
        self._set_state(SYN_RCVD)
        self._transmit(self.iss, SYN | ACK, b"")
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self._arm_rtx()

    # ------------------------------------------------------------------
    # Application send / close
    # ------------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Queue application bytes (CPU already charged by the socket)."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise TcpError(f"send in state {self.state}")
        if self._fin_queued:
            raise TcpError("send after close")
        if not data:
            return
        self._sndbuf.extend(data)
        self._try_output()

    def close(self) -> None:
        """Half-close: FIN goes out after queued data drains."""
        if self.state in (CLOSED, TIME_WAIT, LAST_ACK, CLOSING, FIN_WAIT_1, FIN_WAIT_2):
            return
        self._fin_queued = True
        if self.state == SYN_SENT:
            self._become_closed()
            return
        self._try_output()

    def abort(self) -> None:
        """Send RST and drop all state."""
        if self.state not in (CLOSED, TIME_WAIT):
            self._transmit(self.snd_nxt, RST | ACK, b"")
        self._become_closed()

    # ------------------------------------------------------------------
    # Output engine
    # ------------------------------------------------------------------

    def _unsent_bytes(self) -> int:
        return (
            self._snd_base + len(self._sndbuf) - self._snd_head - self.snd_nxt
        )

    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def _try_output(self) -> None:
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, CLOSING, LAST_ACK):
            return
        while True:
            unsent = self._unsent_bytes()
            allowance = self.cong.send_allowance(self.flight_size(), self.peer_window)
            if unsent > 0 and allowance > 0:
                take = min(unsent, allowance, self.mss)
                if self.nagle and take < self.mss and self.flight_size() > 0:
                    # Nagle: hold sub-MSS data while anything is unacked.
                    break
                off = self._snd_head + self.snd_nxt - self._snd_base
                # One copy, not two: a memoryview slice is zero-copy and
                # bytes() materializes the immutable segment payload.
                payload = bytes(memoryview(self._sndbuf)[off : off + take])
                flags = ACK
                if take == unsent:
                    flags |= PSH
                self._transmit(self.snd_nxt, flags, payload)
                self.snd_nxt += take
                self.snd_max = max(self.snd_max, self.snd_nxt)
                self.bytes_sent += take
                if self._rtt_seq is None:
                    self._rtt_seq = self.snd_nxt
                    self._rtt_sent_at = self.sim.now
                self._arm_rtx()
                continue
            break
        # FIN once everything queued has been sent (also re-sent here
        # after a go-back-N rewind, in which case the state already
        # advanced past ESTABLISHED/CLOSE_WAIT).
        if (
            self._fin_queued
            and not self._fin_sent
            and self._unsent_bytes() == 0
            and self.state in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, CLOSING, LAST_ACK)
        ):
            self._fin_seq = self.snd_nxt
            self._transmit(self.snd_nxt, FIN | ACK, b"")
            self.snd_nxt += 1
            self.snd_max = max(self.snd_max, self.snd_nxt)
            self._fin_sent = True
            if self.state == ESTABLISHED:
                self._set_state(FIN_WAIT_1)
            elif self.state == CLOSE_WAIT:
                self._set_state(LAST_ACK)
            self._arm_rtx()

    def _transmit(self, seq: int, flags: int, payload: bytes) -> None:
        seg = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote[1],
            seq=seq,
            ack_seq=self.rcv_nxt if flags & ACK else 0,
            flags=flags,
            window=self._advertised_window(),
            payload=payload,
        )
        self.segments_sent += 1
        self._segs_since_ack = 0  # any segment we send carries our ACK
        self._cancel_delayed_ack()
        self.stack.transmit_segment(self, seg)

    def _advertised_window(self) -> int:
        pending = sum(len(p) for p in self._ooo.values())
        return max(0, self.rcvbuf_bytes - pending)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _arm_rtx(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
        self._rtx_timer = self.sim.schedule(self.rto.rto_ns, self._on_rtx_timeout)

    def _cancel_rtx(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_rtx_timeout(self) -> None:
        self._rtx_timer = None
        if self.state == CLOSED:
            return
        if self.flight_size() == 0:
            return
        self.cong.on_timeout(self.flight_size())
        self.rto.on_timeout()
        self._rtt_seq = None  # Karn: abandon the in-flight RTT sample
        if self.state in (SYN_SENT, SYN_RCVD) or (
            self._fin_sent and self.snd_una == self._fin_seq
        ):
            # Handshake frames and a lone unacked FIN are single-shot.
            self._retransmit_front("rto")
        else:
            # Go-back-N: rewind to the cumulative-ACK point and let the
            # output engine resend the window forward in slow start —
            # without this, a multi-loss window only heals one MSS per
            # (exponentially backed-off) timeout.
            self._note_retransmit("rto", self.snd_una)
            if self._fin_sent:
                self._fin_sent = False  # FIN re-follows the data
            self.snd_nxt = self.snd_una
            self._try_output()
        self._arm_rtx()

    def _retransmit_front(self, cause: str) -> None:
        """Resend the oldest unacknowledged chunk."""
        self._note_retransmit(cause, self.snd_una)
        if self.state == SYN_SENT:
            self._transmit(self.iss, SYN, b"")
            return
        if self.state == SYN_RCVD:
            self._transmit(self.iss, SYN | ACK, b"")
            return
        if self._fin_sent and self.snd_una == self._fin_seq:
            self._transmit(self._fin_seq, FIN | ACK, b"")
            return
        off = self._snd_head + self.snd_una - self._snd_base
        take = min(self.mss, len(self._sndbuf) - off)
        if take <= 0:
            return
        payload = bytes(memoryview(self._sndbuf)[off : off + take])
        self._transmit(self.snd_una, ACK | PSH, payload)

    # -- delayed ACK -------------------------------------------------------

    _delack_timer = None
    DELAYED_ACK_NS = 40_000_000  # 40 ms, Linux-like

    def _schedule_ack(self, force: bool) -> None:
        self._segs_since_ack += 1
        if force or self._segs_since_ack >= self.ack_every:
            self._send_ack()
            return
        if self._delack_timer is None:
            self._delack_timer = self.sim.schedule(self.DELAYED_ACK_NS, self._send_ack)

    def _send_ack(self) -> None:
        self._cancel_delayed_ack()
        if self.state == CLOSED:
            return
        seg = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote[1],
            seq=self.snd_nxt,
            ack_seq=self.rcv_nxt,
            flags=ACK,
            window=self._advertised_window(),
            payload=b"",
        )
        self.segments_sent += 1
        self._segs_since_ack = 0
        self.stack.transmit_segment(self, seg, pure_ack=True)

    def _cancel_delayed_ack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    # ------------------------------------------------------------------
    # Input
    # ------------------------------------------------------------------

    def on_segment(self, seg: TcpSegment) -> None:
        self.segments_received += 1
        if seg.has(RST):
            self._become_closed(error=True)
            return
        if self.state == SYN_SENT:
            self._input_syn_sent(seg)
            return
        if self.state == CLOSED:
            return
        # Window update + ACK processing first.
        if seg.has(ACK):
            self.peer_window = seg.window
            self._process_ack(seg)
            if self.state == CLOSED:
                return
        # SYN retransmission of our peer (SYN_RCVD): re-ack.
        if seg.has(SYN):
            self._send_ack()
            return
        if seg.payload or seg.has(FIN):
            self._process_payload(seg)

    def _input_syn_sent(self, seg: TcpSegment) -> None:
        if not (seg.has(SYN) and seg.has(ACK) and seg.ack_seq == self.iss + 1):
            return
        self.irs = seg.seq
        self.rcv_nxt = seg.seq + 1
        self.snd_una = seg.ack_seq
        self.peer_window = seg.window
        self._cancel_rtx()
        self._set_state(ESTABLISHED)
        self._send_ack()
        if not self.established.done:
            self.established.set_result(self)
        self._try_output()

    def _process_ack(self, seg: TcpSegment) -> None:
        ack = seg.ack_seq
        if ack > self.snd_max:
            return  # acks data we never sent
        if ack > self.snd_una:
            # After a go-back-N rewind the cumulative ACK can land beyond
            # snd_nxt (it covers data sent before the rewind): fast-forward.
            self.snd_nxt = max(self.snd_nxt, ack)
            newly = ack - self.snd_una
            self.snd_una = ack
            self._dup_acks = 0
            self.rto.reset_backoff()
            # Karn-valid RTT sample?
            if self._rtt_seq is not None and ack >= self._rtt_seq:
                self.rto.sample(self.sim.now - self._rtt_sent_at)
                self._rtt_seq = None
            # Trim the send buffer below snd_una (SYN/FIN consume no
            # buffer).  Advancing the head offset is O(1); the dead
            # prefix is physically freed only once it grows large.
            data_start = max(self._snd_base, self.snd_una)
            trim = min(
                data_start - self._snd_base, len(self._sndbuf) - self._snd_head
            )
            if trim > 0:
                self._snd_head += trim
                self._snd_base += trim
                if self._snd_head >= _SNDBUF_COMPACT:
                    del self._sndbuf[: self._snd_head]
                    self._snd_head = 0
            self.cong.on_ack(newly, self.snd_una)
            if self.cong.in_recovery:
                # NewReno partial ack: the cumulative ACK moved but not
                # past the recovery point, so the next hole starts at the
                # new snd_una — retransmit it now instead of stalling for
                # an RTO (RFC 6582).
                self._retransmit_front("partial_ack")
            if self.flight_size() == 0:
                self._cancel_rtx()
            else:
                self._arm_rtx()
            self._handshake_and_fin_acks()
            self._try_output()
        elif (
            ack == self.snd_una
            and not seg.payload
            and not seg.has(SYN)
            and not seg.has(FIN)
            and self.flight_size() > 0
        ):
            self._dup_acks += 1
            self.dup_acks_total += 1
            if self._dup_acks == 3:
                if self.cong.on_dup_acks(self.flight_size(), self.snd_nxt):
                    self._retransmit_front("fast")
            elif self._dup_acks > 3:
                self.cong.on_dup_ack_in_recovery()
                self._try_output()

    def _handshake_and_fin_acks(self) -> None:
        if self.state == SYN_RCVD and self.snd_una >= self.iss + 1:
            self._set_state(ESTABLISHED)
            if not self.established.done:
                self.established.set_result(self)
        if self._fin_sent and self._fin_seq is not None and self.snd_una > self._fin_seq:
            if self.state == FIN_WAIT_1:
                self._set_state(FIN_WAIT_2)
            elif self.state == CLOSING:
                self._enter_time_wait()
            elif self.state == LAST_ACK:
                self._become_closed()

    def _process_payload(self, seg: TcpSegment) -> None:
        seq, payload = seg.seq, seg.payload
        fin = seg.has(FIN)
        # FIN and out-of-order arrivals force an immediate ACK; PSH does
        # not (it affects delivery urgency, not ACK scheduling).
        force_ack = fin
        if seq == self.rcv_nxt:
            if payload:
                self._deliver(payload)
                self.rcv_nxt += len(payload)
            self._drain_ooo()
            if fin and seq + len(payload) == self.rcv_nxt and not self._remote_fin:
                self._remote_fin = True
                self.rcv_nxt += 1
                self._on_remote_fin()
            self._schedule_ack(force=force_ack or bool(self._ooo))
        elif seq > self.rcv_nxt:
            if payload and seq not in self._ooo:
                self._ooo[seq] = payload
            if fin:
                self._ooo_fin = seq + len(payload)
            self._send_ack()  # duplicate ACK for the gap
        else:
            # Old/overlapping data: re-ack so the sender advances.
            overlap = self.rcv_nxt - seq
            if overlap < len(payload):
                self._deliver(payload[overlap:])
                self.rcv_nxt += len(payload) - overlap
                self._drain_ooo()
                self._schedule_ack(force=True)
            else:
                self._send_ack()

    def _drain_ooo(self) -> None:
        while True:
            payload = self._ooo.pop(self.rcv_nxt, None)
            if payload is None:
                if self._ooo_fin == self.rcv_nxt:
                    self._ooo_fin = None
                    self._remote_fin = True
                    self.rcv_nxt += 1
                    self._on_remote_fin()
                return
            if payload:
                self._deliver(payload)
                self.rcv_nxt += len(payload)
            else:
                return

    def _deliver(self, data: bytes) -> None:
        self.bytes_received += len(data)
        self.stack.deliver_to_app(self, data)

    def _on_remote_fin(self) -> None:
        if self.state == ESTABLISHED:
            self._set_state(CLOSE_WAIT)
        elif self.state == FIN_WAIT_1:
            self._set_state(CLOSING)
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()
        if self.on_close is not None:
            self.on_close()

    def _enter_time_wait(self) -> None:
        self._set_state(TIME_WAIT)
        self._send_ack()
        # 2*MSL shortened: long enough to ack a retransmitted FIN in-sim.
        self.sim.schedule(50_000_000, self._become_closed)

    def _become_closed(self, error: bool = False) -> None:
        if self.state == CLOSED:
            return
        self._set_state(CLOSED)
        self._cancel_rtx()
        self._cancel_delayed_ack()
        self.stack.forget(self)
        if not self.established.done and error:
            self.established.set_result(None)
        if not self.closed_future.done:
            self.closed_future.set_result(error)
        if error and self.on_close is not None:
            self.on_close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConn {self.local_port}<->{self.remote} {self.state} "
            f"una={self.snd_una} nxt={self.snd_nxt} rcv={self.rcv_nxt}>"
        )
