"""TCP stack (per host) and stream-socket API.

The stack owns the port space, demultiplexes segments to connections,
and charges kernel CPU costs at the same points the UDP stack does, so
the RC-vs-UD comparisons in the benchmarks are apples-to-apples:

* transmit: per-segment processing on the sender CPU;
* receive: per-segment processing + software checksum on the receiver
  CPU (pure ACKs pay the cheaper ACK-processing cost);
* delivery: kernel→user copy when bytes reach the application.

``TcpSocket`` is the thin stream-socket face over a connection
(connect / send / on_data / close); the iWARP MPA layer binds to it the
same way an application would.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ...simnet.engine import Future, Simulator
from ...simnet.host import Host
from ..ip import IpStack
from .connection import ESTABLISHED, TcpConnection, TcpError
from .segment import SYN, TcpSegment

Address = Tuple[int, int]


class TcpStack:
    """Per-host TCP: port table, ISS generation, CPU accounting."""

    EPHEMERAL_BASE = 49152

    def __init__(self, host: Host, ip: IpStack, mss: Optional[int] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.ip = ip
        # MSS from the link MTU unless overridden (IP 20 + TCP 20).
        self.mss = mss if mss is not None else ip.mtu() - 40
        self._conns: Dict[Tuple[int, int, int], TcpConnection] = {}
        self._listeners: Dict[int, "TcpListener"] = {}
        self._ephemeral = itertools.count(self.EPHEMERAL_BASE)
        self._iss = itertools.count(1)
        ip.register("tcp", self._on_ip_delivery)
        self.rx_no_socket = 0

    # -- port management ---------------------------------------------------

    def _alloc_port(self) -> int:
        port = next(self._ephemeral)
        while any(key[0] == port for key in self._conns) or port in self._listeners:
            port = next(self._ephemeral)
        return port

    def listen(self, port: int) -> "TcpListener":
        if port in self._listeners:
            raise TcpError(f"TCP port {port} already listening on {self.host.name}")
        listener = TcpListener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, remote: Address, local_port: Optional[int] = None) -> "TcpSocket":
        """Active open; returns a socket whose ``established`` future
        resolves at handshake completion."""
        lport = local_port if local_port is not None else self._alloc_port()
        conn = self._new_connection(lport, remote)
        sock = TcpSocket(self, conn)
        # Connect costs one syscall before the SYN leaves.
        self.host.cpu.submit(self.host.costs.syscall_ns, conn.open_active)
        return sock

    def _new_connection(self, local_port: int, remote: Address) -> TcpConnection:
        key = (local_port, remote[0], remote[1])
        if key in self._conns:
            raise TcpError(f"connection {key} already exists")
        conn = TcpConnection(
            self,
            local_port=local_port,
            remote=remote,
            iss=next(self._iss) * 1_000_000,
            mss=self.mss,
        )
        self._conns[key] = conn
        return conn

    def forget(self, conn: TcpConnection) -> None:
        self._conns.pop((conn.local_port, conn.remote[0], conn.remote[1]), None)

    def open_connections(self) -> int:
        return len(self._conns)

    # -- transmit path ------------------------------------------------------

    def transmit_segment(
        self, conn: TcpConnection, seg: TcpSegment, pure_ack: bool = False
    ) -> None:
        costs = self.host.costs
        cost = costs.tcp_ack_tx_ns if pure_ack else costs.tcp_tx_per_seg_ns
        # Charge the per-segment stack cost but hand the segment to IP
        # immediately: the output engine runs inside CPU-execution
        # context already, and a queued handoff here would serialize a
        # whole window of segments behind unrelated queued work.
        self.host.cpu.charge(cost)
        self.ip.send(conn.remote[0], "tcp", seg, seg.size)

    def charge_send_call(self, nbytes: int, then: Callable, *args) -> None:
        """syscall + user→kernel copy for one send() call."""
        costs = self.host.costs
        self.host.cpu.submit(
            costs.syscall_ns + costs.tcp_tx_fixed_ns + costs.copy_ns(nbytes),
            then, *args,
        )

    # -- receive path ---------------------------------------------------------

    def _on_ip_delivery(self, seg: TcpSegment, src_host: int, size: int) -> None:
        costs = self.host.costs
        if seg.payload:
            cost = costs.tcp_rx_per_seg_ns + int(
                costs.tcp_checksum_per_byte_ns * len(seg.payload)
            )
            # NAPI: the interrupt is only taken when the receive path is
            # idle; pure ACKs coalesce into existing poll cycles.
            if self.host.cpu.free_at <= self.sim.now:
                cost += costs.interrupt_ns
        else:
            cost = costs.tcp_ack_rx_ns
        self.host.cpu.submit(cost, self._demux, seg, src_host)

    def _demux(self, seg: TcpSegment, src_host: int) -> None:
        key = (seg.dst_port, src_host, seg.src_port)
        conn = self._conns.get(key)
        if conn is not None:
            conn.on_segment(seg)
            return
        listener = self._listeners.get(seg.dst_port)
        if listener is not None and seg.has(SYN):
            listener._on_syn(seg, src_host)
            return
        self.rx_no_socket += 1

    def deliver_to_app(self, conn: TcpConnection, data: bytes) -> None:
        """kernel→user copy, then the socket's data upcall."""
        sock = getattr(conn, "socket", None)
        cost = self.host.costs.copy_ns(len(data))
        self.host.cpu.submit(cost, self._app_upcall, sock, conn, data)

    @staticmethod
    def _app_upcall(sock: Optional["TcpSocket"], conn: TcpConnection, data: bytes) -> None:
        if sock is not None:
            sock._on_data(data)


class TcpListener:
    """Passive open endpoint (listen/accept)."""

    def __init__(self, stack: TcpStack, port: int):
        self.stack = stack
        self.port = port
        self._ready: Deque[TcpSocket] = deque()
        self._accept_waiters: Deque[Future] = deque()
        self.on_accept: Optional[Callable[["TcpSocket"], None]] = None

    def _on_syn(self, seg: TcpSegment, src_host: int) -> None:
        remote = (src_host, seg.src_port)
        try:
            conn = self.stack._new_connection(self.port, remote)
        except TcpError:
            return  # duplicate SYN for an in-progress connection
        sock = TcpSocket(self.stack, conn)
        conn.established.add_callback(lambda _: self._on_established(sock))
        conn.open_passive(seg)

    def _on_established(self, sock: "TcpSocket") -> None:
        if self.on_accept is not None:
            self.on_accept(sock)
        elif self._accept_waiters:
            self._accept_waiters.popleft().set_result(sock)
        else:
            self._ready.append(sock)

    def accept_future(self) -> Future:
        fut = self.stack.sim.future()
        if self._ready:
            fut.set_result(self._ready.popleft())
        else:
            self._accept_waiters.append(fut)
        return fut

    def close(self) -> None:
        self.stack._listeners.pop(self.port, None)


class TcpSocket:
    """Stream socket over one connection."""

    def __init__(self, stack: TcpStack, conn: TcpConnection):
        self.stack = stack
        self.conn = conn
        conn.socket = self  # type: ignore[attr-defined]
        self._rx: Deque[bytes] = deque()
        self._rx_waiters: Deque[Future] = deque()
        self.on_data: Optional[Callable[[bytes], None]] = None
        # Statistics mirror the connection's.

    @property
    def established(self) -> Future:
        return self.conn.established

    @property
    def remote(self) -> Address:
        return self.conn.remote

    @property
    def connected(self) -> bool:
        return self.conn.state == ESTABLISHED

    def send(self, data: bytes) -> None:
        """Queue bytes on the stream (charges syscall + copy, then feeds
        the connection's output engine)."""
        # The CPU charge defers _send_now, so mutable buffers must be
        # snapshotted here; immutable bytes can be handed through as-is.
        if not isinstance(data, bytes):
            data = bytes(data)
        self.stack.charge_send_call(len(data), self._send_now, data)

    def _send_now(self, data: bytes) -> None:
        state = self.conn.state
        if state == "CLOSED":
            return  # connection died while the syscall was in flight
        if state in ("SYN_SENT", "SYN_RCVD"):
            # Data written before the handshake completes is buffered and
            # flushed on establishment (blocking-connect semantics).
            self.conn.established.add_callback(
                lambda result: self._send_now(data) if result else None
            )
            return
        if state in ("ESTABLISHED", "CLOSE_WAIT"):
            self.conn.send(data)
        # Any other state: stream is shutting down; data is discarded
        # exactly as a write-after-shutdown would be.

    def send_from_stack(self, data: bytes) -> None:
        """Queue bytes without per-call CPU accounting — for in-process
        protocol layers (the iWARP library) that batch writes and charge
        their own syscall/copy costs.  Must be called from CPU-execution
        context (an event callback), like all stack internals."""
        if self.conn.state != "CLOSED":
            # No snapshot needed: conn.send copies into the send buffer
            # synchronously, before control returns to the caller.
            self.conn.send(data)

    def _on_data(self, data: bytes) -> None:
        if self.on_data is not None:
            self.on_data(data)
            return
        if self._rx_waiters:
            self._rx_waiters.popleft().set_result(data)
        else:
            self._rx.append(data)

    def recv_future(self) -> Future:
        """Future resolving to the next chunk of stream bytes."""
        fut = self.stack.sim.future()
        if self._rx:
            fut.set_result(self._rx.popleft())
        else:
            self._rx_waiters.append(fut)
        return fut

    def close(self) -> None:
        # Ordered behind any queued send syscalls on the same CPU, so
        # send(); close() flushes the data before the FIN.
        self.stack.host.cpu.submit(self.stack.host.costs.syscall_ns, self.conn.close)

    def abort(self) -> None:
        self.conn.abort()
