"""TCP over the simulated IP layer (the RC lower-layer protocol)."""

from .congestion import RenoCongestion
from .connection import CLOSED, ESTABLISHED, TcpConnection, TcpError
from .rto import RtoEstimator
from .segment import ACK, FIN, PSH, RST, SYN, TcpSegment, flag_names
from .socket import TcpListener, TcpSocket, TcpStack

__all__ = [
    "ACK", "CLOSED", "ESTABLISHED", "FIN", "PSH", "RST", "RenoCongestion",
    "RtoEstimator", "SYN", "TcpConnection", "TcpError", "TcpListener",
    "TcpSegment", "TcpSocket", "TcpStack", "flag_names",
]
