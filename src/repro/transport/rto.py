"""Retransmission-timeout estimation (RFC 6298).

SRTT/RTTVAR smoothing with Karn's rule applied by the caller (samples
are only taken from segments that were never retransmitted) and
exponential backoff on timeout.

Shared by every reliable transport in the stack: TCP, SCTP, and the
reliable-datagram (RD) LLP each keep their own instances — TCP/SCTP one
per connection, RD one per peer — with bounds tuned to their deployment
(TCP keeps the RFC's conservative 200 ms floor; the RD LLP runs on a
10-GigE LAN and floors far lower).
"""

from __future__ import annotations

from ..simnet.engine import MS, SEC


class RtoEstimator:
    """Classic Jacobson/Karels estimator in integer nanoseconds."""

    ALPHA = 1 / 8
    BETA = 1 / 4
    K = 4
    MAX_BACKOFF_SHIFT = 10

    def __init__(
        self,
        initial_rto_ns: int = 1 * SEC,
        min_rto_ns: int = 200 * MS,
        max_rto_ns: int = 60 * SEC,
    ):
        if not (0 < min_rto_ns <= max_rto_ns):
            raise ValueError("require 0 < min_rto <= max_rto")
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self._rto: int = initial_rto_ns
        self._backoff: int = 0
        self.samples: int = 0
        self.backoffs: int = 0

    def sample(self, rtt_ns: int) -> None:
        """Feed one RTT measurement (never from a retransmitted segment)."""
        if rtt_ns < 0:
            raise ValueError(f"negative RTT sample: {rtt_ns}")
        if self.samples == 0:
            self.srtt = float(rtt_ns)
            self.rttvar = rtt_ns / 2.0
        else:
            err = abs(self.srtt - rtt_ns)
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * err
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt_ns
        self.samples += 1
        self._backoff = 0
        self._rto = int(self.srtt + max(self.K * self.rttvar, 1.0))
        self._rto = max(self.min_rto_ns, min(self._rto, self.max_rto_ns))

    def on_timeout(self) -> None:
        """Exponential backoff after an expiry (capped)."""
        self._backoff = min(self._backoff + 1, self.MAX_BACKOFF_SHIFT)
        self.backoffs += 1

    def reset_backoff(self) -> None:
        """Forward progress observed (new cumulative ACK): drop the
        exponential backoff (RFC 6298 §5.7 behaviour)."""
        self._backoff = 0

    @property
    def rto_ns(self) -> int:
        return min(self._rto << self._backoff, self.max_rto_ns)
