"""Application workloads: media streaming (VLC-like), SIP (SIPp-like), MPI-like."""
