"""MPI-flavoured interface over datagram-iWARP (the paper's §VII
future-work extension: MPI using RDMA Write-Record rendezvous)."""

from .comm import ANY_SOURCE, ANY_TAG, Communicator, EAGER_THRESHOLD, MpiError, MpiWorld

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "EAGER_THRESHOLD",
           "MpiError", "MpiWorld"]
