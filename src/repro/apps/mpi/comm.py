"""MPI-flavoured message passing over datagram-iWARP.

The paper closes with: "We would also like to extend this work by
creating an interface to allow MPI to take advantage of the new RDMA
Write-Record over datagram-iWARP" (§VII), building on the send/recv
datagram-iWARP MPI of [22].  This module implements that extension as a
small mpi4py-shaped interface:

* every rank owns a reliable-datagram (RD) QP — MPI requires reliable
  delivery, and the RD LLP provides it without connections, preserving
  the memory-scalability story;
* **eager protocol**: messages up to the eager threshold travel as
  tagged-header send/recv datagrams;
* **rendezvous protocol**: larger messages use RDMA Write-Record — the
  receiver advertises the matched buffer's steering tag, the sender
  Write-Records straight into it, and the arrival record doubles as the
  completion notification (no final ACK message needed);
* collectives (barrier, bcast, allreduce) built from point-to-point,
  using the classic dissemination / binomial-tree / recursive-doubling
  algorithms.

API style follows mpi4py's lowercase methods: process-style code yields
the returned futures (``data = yield comm.recv(src, tag)``).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from ...core.verbs import CompletionQueue, RecvWR, RnicDevice, SendWR, Sge, WorkCompletion, WrOpcode
from ...memory.region import Access
from ...simnet.engine import Future, MS, Simulator
from ...simnet.topology import Testbed, build_testbed
from ...transport.stacks import install_stacks

ANY_SOURCE = -1
ANY_TAG = -1

# Wire header on every MPI message: kind, source rank, tag, length.
_HDR = struct.Struct("!BiiQ")
_KIND_EAGER = 1
_KIND_RTS = 2      # rendezvous request-to-send
_KIND_CTS = 3      # clear-to-send: carries the sink stag + offset
_CTS = struct.Struct("!BiiQIQ")  # kind, src, tag, length, stag, offset

#: Messages at or below this ride the eager path.
EAGER_THRESHOLD = 16 * 1024


class MpiError(Exception):
    pass


class Communicator:
    """One rank's endpoint (think ``MPI.COMM_WORLD`` from that rank)."""

    MPI_BASE_PORT = 11000

    def __init__(self, world: "MpiWorld", rank: int, device: RnicDevice):
        self.world = world
        self.rank = rank
        self.device = device
        self.sim: Simulator = device.sim
        self.pd = device.alloc_pd()
        self.cq: CompletionQueue = device.create_cq(depth=1 << 14)
        self.qp = device.create_ud_qp(
            self.pd, self.cq, port=self.MPI_BASE_PORT + rank, reliable=True,
        )
        # Eager receive pool.
        self._slots = {}
        for _ in range(64):
            mr = device.reg_mr(EAGER_THRESHOLD + _HDR.size, Access.local_only(), self.pd)
            self._slots[id(mr)] = mr
            self.qp.post_recv(RecvWR(sges=[Sge(mr)], wr_id=id(mr)))
        # Matching state.
        self._unexpected: Deque[Tuple[int, int, bytes]] = deque()  # (src, tag, data)
        self._posted: Deque[dict] = deque()
        # Rendezvous state.
        self._pending_rts: Deque[Tuple[int, int, int]] = deque()  # src, tag, length
        self._rendezvous_sinks: Dict[Tuple[int, int], dict] = {}
        self._drain_arm()

    @property
    def size(self) -> int:
        return self.world.size

    def _addr(self, rank: int) -> Tuple[int, int]:
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} outside world of {self.size}")
        return (rank, self.MPI_BASE_PORT + rank)

    # ------------------------------------------------------------------
    # Progress engine
    # ------------------------------------------------------------------

    def _drain_arm(self) -> None:
        self.cq.poll_wait(timeout_ns=None).add_callback(self._on_completions)

    def _on_completions(self, wcs) -> None:
        for wc in wcs:
            self._handle_wc(wc)
        self._drain_arm()

    def _handle_wc(self, wc: WorkCompletion) -> None:
        if wc.opcode is WrOpcode.RDMA_WRITE_RECORD:
            if wc.ok:
                self._finish_rendezvous(wc)
            return
        if wc.opcode not in (WrOpcode.SEND, WrOpcode.SEND_SE):
            return
        mr = self._slots.get(wc.wr_id)
        if mr is None:
            return
        if wc.ok and wc.byte_len >= 1:
            kind = mr.view(0, 1)[0]
            if kind == _KIND_EAGER:
                _k, src, tag, length = _HDR.unpack(bytes(mr.view(0, _HDR.size)))
                data = bytes(mr.view(_HDR.size, length))
                self._deliver(src, tag, data)
            elif kind == _KIND_RTS:
                _k, src, tag, length = _HDR.unpack(bytes(mr.view(0, _HDR.size)))
                self._on_rts(src, tag, length)
            elif kind == _KIND_CTS:
                (_k, dst, tag, length, stag, offset) = _CTS.unpack(
                    bytes(mr.view(0, _CTS.size))
                )
                self._on_cts(dst, tag, length, stag, offset)
        self.qp.post_recv(RecvWR(sges=[Sge(mr)], wr_id=id(mr)))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def _deliver(self, src: int, tag: int, data: bytes) -> None:
        for waiter in list(self._posted):
            if waiter["future"].done:
                self._posted.remove(waiter)
                continue
            if self._matches(waiter, src, tag):
                self._posted.remove(waiter)
                waiter["future"].set_result((data, src, tag))
                return
        self._unexpected.append((src, tag, data))

    @staticmethod
    def _matches(waiter: dict, src: int, tag: int) -> bool:
        return (waiter["source"] in (ANY_SOURCE, src)
                and waiter["tag"] in (ANY_TAG, tag))

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------

    def send(self, data: bytes, dest: int, tag: int = 0) -> None:
        """Non-blocking from the caller's perspective; RD guarantees
        delivery.  Large messages switch to Write-Record rendezvous."""
        data = bytes(data)
        if len(data) <= EAGER_THRESHOLD:
            payload = _HDR.pack(_KIND_EAGER, self.rank, tag, len(data)) + data
            self._post_send_bytes(payload, dest)
            return
        # Rendezvous: announce, stash the payload until CTS.
        self.world._rendezvous_payloads[(self.rank, dest, tag)] = data
        self._post_send_bytes(
            _HDR.pack(_KIND_RTS, self.rank, tag, len(data)), dest
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Future:
        """Future resolving to ``(data, src, tag)``."""
        fut = self.sim.future()
        for item in list(self._unexpected):
            src, t, data = item
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                self._unexpected.remove(item)
                fut.set_result((data, src, t))
                return fut
        self._posted.append({"future": fut, "source": source, "tag": tag})
        return fut

    def sendrecv(self, data: bytes, peer: int, tag: int = 0) -> Future:
        self.send(data, peer, tag)
        return self.recv(peer, tag)

    def _post_send_bytes(self, payload: bytes, dest: int) -> None:
        mr = self.device.reg_mr(bytearray(payload), Access.local_only(), self.pd)
        self.qp.post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(mr)], dest=self._addr(dest),
            signaled=False,
        ))

    # -- rendezvous ---------------------------------------------------------

    def _on_rts(self, src: int, tag: int, length: int) -> None:
        """Register a sink for the announced message and send CTS."""
        sink = self.device.reg_mr(length, Access.remote_write(), self.pd)
        self._rendezvous_sinks[(src, tag)] = {"mr": sink, "length": length}
        cts = _CTS.pack(_KIND_CTS, self.rank, tag, length, sink.stag, 0)
        self._post_send_bytes(cts, src)

    def _on_cts(self, _dst: int, tag: int, length: int, stag: int, offset: int) -> None:
        """Receiver is ready: Write-Record the stashed payload."""
        data = self.world._rendezvous_payloads.pop((self.rank, _dst, tag), None)
        if data is None:
            return
        mr = self.device.reg_mr(bytearray(data), Access.local_only(), self.pd)
        self.qp.post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD,
            sges=[Sge(mr)],
            dest=self._addr(_dst),
            remote_stag=stag,
            remote_offset=offset,
            signaled=False,
        ))

    def _finish_rendezvous(self, wc: WorkCompletion) -> None:
        """The Write-Record arrival record IS the completion: no extra
        notification message, the paper's one-sided payoff."""
        src_rank = wc.src[0] if wc.src else ANY_SOURCE
        for (src, tag), sink in list(self._rendezvous_sinks.items()):
            if src == src_rank and sink["length"] == wc.validity.total:
                del self._rendezvous_sinks[(src, tag)]
                data = bytes(sink["mr"].view(0, sink["length"]))
                self._deliver(src, tag, data)
                return

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    _COLL_TAG_BARRIER = -1000
    _COLL_TAG_BCAST = -1001
    _COLL_TAG_REDUCE = -1002

    def barrier(self):
        """Dissemination barrier: ceil(log2(P)) rounds (generator)."""
        size, rank = self.size, self.rank
        round_num = 0
        distance = 1
        while distance < size:
            peer_to = (rank + distance) % size
            peer_from = (rank - distance) % size
            tag = self._COLL_TAG_BARRIER - round_num
            self.send(b"", peer_to, tag)
            yield self.recv(peer_from, tag)
            distance <<= 1
            round_num += 1

    def bcast(self, data: Optional[bytes], root: int = 0):
        """Binomial-tree broadcast (generator; returns the data)."""
        size = self.size
        vrank = (self.rank - root) % size
        # Climb the mask to the bit where this rank receives (non-roots),
        # or past the world size (root).
        mask = 1
        while mask < size and not (vrank & mask):
            mask <<= 1
        if vrank != 0:
            got = yield self.recv(
                ((vrank - mask) + root) % size, self._COLL_TAG_BCAST
            )
            data = got[0]
        elif data is None:
            raise MpiError("root must supply data to bcast")
        # Forward to children at decreasing offsets below my receive bit.
        m = mask >> 1
        while m >= 1:
            if vrank + m < size:
                self.send(data, ((vrank + m) + root) % size, self._COLL_TAG_BCAST)
            m >>= 1
        return data

    def allreduce_sum(self, value: float):
        """Recursive-doubling allreduce (generator; returns the sum).

        World sizes that are not powers of two fall back to a
        gather-to-root + bcast at the same tag space.
        """
        size = self.size
        total = float(value)
        if size & (size - 1) == 0:
            distance = 1
            while distance < size:
                peer = self.rank ^ distance
                tag = self._COLL_TAG_REDUCE - distance
                self.send(struct.pack("!d", total), peer, tag)
                got = yield self.recv(peer, tag)
                total += struct.unpack("!d", got[0])[0]
                distance <<= 1
            return total
        # Non-power-of-two: everyone sends to root; root reduces + bcasts.
        if self.rank == 0:
            for _ in range(size - 1):
                got = yield self.recv(ANY_SOURCE, self._COLL_TAG_REDUCE)
                total += struct.unpack("!d", got[0])[0]
            for peer in range(1, size):
                self.send(struct.pack("!d", total), peer, self._COLL_TAG_REDUCE - 1)
            return total
        self.send(struct.pack("!d", total), 0, self._COLL_TAG_REDUCE)
        got = yield self.recv(0, self._COLL_TAG_REDUCE - 1)
        return struct.unpack("!d", got[0])[0]


class MpiWorld:
    """A world of P ranks, one per testbed host."""

    def __init__(self, size: int = 2, testbed: Optional[Testbed] = None):
        if size < 2:
            raise MpiError("world needs at least 2 ranks")
        self.testbed = testbed or build_testbed(size)
        if len(self.testbed.hosts) < size:
            raise MpiError("testbed has fewer hosts than ranks")
        self.size = size
        self.sim = self.testbed.sim
        nets = install_stacks(self.testbed)
        self._rendezvous_payloads: Dict[Tuple[int, int, int], bytes] = {}
        self.comms = [
            Communicator(self, rank, RnicDevice(nets[rank]))
            for rank in range(size)
        ]

    def run(self, rank_main: Callable[[Communicator], Any], limit_ns: int = 60_000 * MS):
        """Run ``rank_main(comm)`` (a generator function) on every rank to
        completion; returns the per-rank results."""
        procs = [self.sim.process(rank_main(comm), name=f"rank{comm.rank}")
                 for comm in self.comms]
        for proc in procs:
            self.sim.run_until(proc.finished, limit=limit_ns)
        return [p.result for p in procs]
