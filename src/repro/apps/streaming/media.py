"""Media source model for the VLC streaming study.

Produces deterministic pseudo-content at a configurable bitrate and
packetization, mirroring how VLC streams: UDP mode emits ~1316-byte
RTP-sized packets (7 × 188-byte MPEG-TS cells), HTTP mode serves the
same bytes as a continuous body.
"""

from __future__ import annotations

from dataclasses import dataclass

#: VLC's classic UDP payload: seven MPEG-TS packets.
TS_PACKET = 188
UDP_MEDIA_PAYLOAD = 7 * TS_PACKET  # 1316 bytes


@dataclass
class MediaSource:
    """A finite piece of media."""

    bitrate_bps: float = 8_000_000.0   # 8 Mb/s SD stream
    duration_s: float = 60.0
    packet_bytes: int = UDP_MEDIA_PAYLOAD

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0 or self.duration_s <= 0 or self.packet_bytes <= 0:
            raise ValueError("media parameters must be positive")

    @property
    def total_bytes(self) -> int:
        return int(self.bitrate_bps * self.duration_s / 8)

    def packet_count(self) -> int:
        return -(-self.total_bytes // self.packet_bytes)

    def packet(self, index: int) -> bytes:
        """Deterministic content for packet ``index`` (last may be short)."""
        start = index * self.packet_bytes
        if start >= self.total_bytes:
            raise IndexError(f"packet {index} beyond end of media")
        size = min(self.packet_bytes, self.total_bytes - start)
        # Cheap deterministic filler: a rotating 4-byte counter pattern.
        seed = (index * 2654435761) & 0xFFFFFFFF
        block = seed.to_bytes(4, "big") * (size // 4 + 1)
        return block[:size]

    def packet_interval_ns(self) -> int:
        """Wall-clock spacing between packets at the nominal bitrate
        (used for steady-state pacing after the prebuffer burst)."""
        return int(self.packet_bytes * 8 / self.bitrate_bps * 1e9)
