"""VLC-like media streaming workload (Fig. 9)."""

from .client import StreamingClient
from .media import MediaSource, UDP_MEDIA_PAYLOAD
from .server import HttpVodConfig, StreamingServer, UdpStreamConfig

__all__ = [
    "HttpVodConfig", "MediaSource", "StreamingClient", "StreamingServer",
    "UDP_MEDIA_PAYLOAD", "UdpStreamConfig",
]
