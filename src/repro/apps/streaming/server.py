"""Streaming server: VLC-style UDP streaming and HTTP-over-TCP VOD.

Two serving modes, matching the §VI.B.1 comparison:

* **UDP mode** — the client sends ``PLAY <bytes>``; the server bursts the
  requested media as ~1316-byte datagrams (prebuffer fill runs at full
  rate, as VLC's cache fill does).

* **HTTP mode** — the client issues ranged ``GET`` requests over a
  stream socket and the server answers each with headers + a block of
  body.  The per-request turnaround and per-block server work model the
  documented inefficiency of VLC-era HTTP VOD (the paper itself notes
  "there is more inherent overhead involved in the HTTP based method"
  and attributes only part of Fig. 9's gap to the transport).

Both modes run over any socket API object (native kernel sockets or the
iWARP shim), which is how the shim-overhead measurement and the UD/RC
comparison reuse one server implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...simnet.engine import MS, Simulator
from ...core.socketif.interface import SOCK_DGRAM, SOCK_STREAM
from .media import MediaSource


@dataclass
class HttpVodConfig:
    """Knobs for the HTTP serving path (CALIBRATED to VLC-era VOD)."""

    #: Bytes of body returned per ranged GET.
    block_bytes: int = 4096
    #: Response header size (status line + entity headers).
    header_bytes: int = 320
    #: Request size.
    request_bytes: int = 220
    #: Server-side work per request: parse, seek, read block.
    server_per_request_ns: int = 55_000
    #: Client-side work per response: header parse + buffer insert.
    client_per_response_ns: int = 35_000


@dataclass
class UdpStreamConfig:
    """Knobs for the UDP serving path."""

    #: Server-side work per packet (TS mux + timestamping).
    server_per_packet_ns: int = 3_000
    #: Client-side work per packet (demux insert).
    client_per_packet_ns: int = 3_000
    #: Packets per burst before yielding the CPU (socket batching).
    burst_packets: int = 16


class StreamingServer:
    """Serves one MediaSource in either mode, any number of clients."""

    def __init__(
        self,
        api,
        host,
        port: int,
        media: MediaSource,
        mode: str,
        http_cfg: Optional[HttpVodConfig] = None,
        udp_cfg: Optional[UdpStreamConfig] = None,
        paced: bool = False,
    ):
        if mode not in ("udp", "http"):
            raise ValueError(f"unknown streaming mode {mode!r}")
        self.api = api
        self.host = host            # simnet Host (for CPU charging)
        self.sim: Simulator = host.sim
        self.port = port
        self.media = media
        self.mode = mode
        self.http_cfg = http_cfg or HttpVodConfig()
        self.udp_cfg = udp_cfg or UdpStreamConfig()
        #: When True the UDP stream is clocked at the media bitrate (a
        #: live stream); when False it bursts at full speed (cache fill).
        self.paced = paced
        self.clients_served = 0
        self.bytes_served = 0
        self._stop = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.mode == "udp":
            self.sim.process(self._serve_udp(), name="stream-server-udp")
        else:
            self.sim.process(self._serve_http(), name="stream-server-http")

    def stop(self) -> None:
        self._stop = True

    # -- UDP mode ---------------------------------------------------------

    def _serve_udp(self):
        fd = self.api.socket(SOCK_DGRAM, port=self.port)
        while not self._stop:
            req = yield self.api.recvfrom_future(fd, 2048, timeout_ns=None)
            if req is None:
                continue
            data, client = req
            try:
                text = bytes(data).decode()
                if not text.startswith("PLAY "):
                    continue
                want = min(int(text.split()[1]), self.media.total_bytes)
            except (ValueError, IndexError, UnicodeDecodeError):
                continue
            self.sim.process(self._stream_to(fd, client, want), name="stream-burst")

    def _stream_to(self, fd, client, want: int):
        cfg = self.udp_cfg
        self.clients_served += 1
        sent = 0
        index = 0
        while sent < want and not self._stop:
            for _ in range(cfg.burst_packets):
                if sent >= want:
                    break
                pkt = self.media.packet(index)
                self.host.cpu.charge(cfg.server_per_packet_ns)
                self.api.sendto(fd, pkt, client)
                sent += len(pkt)
                index += 1
            if self.paced:
                yield self.udp_cfg.burst_packets * self.media.packet_interval_ns()
            else:
                # Yield so the CPU queue drains between bursts (the real
                # server's send loop blocks in sendto once buffers fill).
                yield max(1, self.host.cpu.free_at - self.sim.now)
        self.bytes_served += sent
        self.api.sendto(fd, b"END", client)

    # -- HTTP mode ----------------------------------------------------------

    def _serve_http(self):
        lfd = self.api.socket(SOCK_STREAM)
        self.api.listen(lfd, self.port)
        while not self._stop:
            cfd = yield self.api.accept_future(lfd)
            self.clients_served += 1
            self.sim.process(self._serve_http_client(cfd), name="http-conn")

    def _serve_http_client(self, cfd):
        cfg = self.http_cfg
        buf = b""
        while not self._stop:
            # Read one request line ("GET <offset> <length>").
            while b"\n" not in buf:
                chunk = yield self.api.recv_future(cfd, 4096, timeout_ns=2000 * MS)
                if not chunk:
                    self.api.close(cfd)
                    return
                buf += chunk
            line, _, buf = buf.partition(b"\n")
            try:
                parts = line.decode().split()
                if parts[0] == "QUIT":
                    self.api.close(cfd)
                    return
                offset, length = int(parts[1]), int(parts[2])
            except (ValueError, IndexError, UnicodeDecodeError):
                self.api.close(cfd)
                return
            length = max(0, min(length, self.media.total_bytes - offset))
            self.host.cpu.charge(cfg.server_per_request_ns)
            body = self._media_bytes(offset, length)
            header = f"HTTP/1.1 206 OK len={length}".encode()
            header += b" " * max(0, cfg.header_bytes - len(header)) + b"\n"
            self.api.send(cfd, header + body)
            self.bytes_served += length

    def _media_bytes(self, offset: int, length: int) -> bytes:
        """Assemble body bytes from the packetized media content."""
        out = bytearray()
        idx = offset // self.media.packet_bytes
        skip = offset - idx * self.media.packet_bytes
        while len(out) < length:
            pkt = self.media.packet(idx)
            out += pkt[skip:]
            skip = 0
            idx += 1
        return bytes(out[:length])
