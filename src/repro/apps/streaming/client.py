"""Streaming client: measures initial buffering time (Fig. 9's metric).

The client requests media and fills a prebuffer; ``buffering_time_ns``
is the elapsed simulated time from the first request to the prebuffer
threshold being reached — VLC's "Buffering..." phase.  In UDP mode the
client is loss-tolerant: it counts whatever datagrams arrive (missing
data is "skipped over with little noticeable degradation", §I) and also
tracks how much it missed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...simnet.engine import MS, Simulator
from ...core.socketif.interface import SOCK_DGRAM, SOCK_STREAM
from .media import MediaSource
from .server import HttpVodConfig, UdpStreamConfig


class StreamingClient:
    """One viewer session."""

    def __init__(
        self,
        api,
        host,
        server_addr: Tuple[int, int],
        media: MediaSource,
        mode: str,
        prebuffer_bytes: int = 4 * 1024 * 1024,
        http_cfg: Optional[HttpVodConfig] = None,
        udp_cfg: Optional[UdpStreamConfig] = None,
    ):
        if mode not in ("udp", "http"):
            raise ValueError(f"unknown streaming mode {mode!r}")
        self.api = api
        self.host = host
        self.sim: Simulator = host.sim
        self.server_addr = server_addr
        self.media = media
        self.mode = mode
        self.prebuffer_bytes = min(prebuffer_bytes, media.total_bytes)
        self.http_cfg = http_cfg or HttpVodConfig()
        self.udp_cfg = udp_cfg or UdpStreamConfig()
        # Results.
        self.buffering_time_ns: Optional[int] = None
        self.bytes_buffered = 0
        self.packets_received = 0
        self.failed = False

    def run(self):
        """Spawn the session; returns the Process (await ``.finished``)."""
        gen = self._run_udp() if self.mode == "udp" else self._run_http()
        return self.sim.process(gen, name=f"stream-client-{self.mode}")

    # -- UDP --------------------------------------------------------------

    def _run_udp(self):
        fd = self.api.socket(SOCK_DGRAM)
        t0 = self.sim.now
        self.api.sendto(fd, f"PLAY {self.prebuffer_bytes}".encode(), self.server_addr)
        while self.bytes_buffered < self.prebuffer_bytes:
            got = yield self.api.recvfrom_future(fd, 65536, timeout_ns=500 * MS)
            if got is None:
                # Stream stalled: tolerate loss by accepting what arrived
                # if it is nearly complete, else fail.
                self.failed = self.bytes_buffered < self.prebuffer_bytes * 0.98
                break
            data, _src = got
            if data == b"END":
                break
            self.host.cpu.charge(self.udp_cfg.client_per_packet_ns)
            self.packets_received += 1
            self.bytes_buffered += len(data)
        self.buffering_time_ns = self.sim.now - t0
        self.api.close(fd)

    # -- HTTP ---------------------------------------------------------------

    def _run_http(self):
        cfg = self.http_cfg
        fd = self.api.socket(SOCK_STREAM)
        t0 = self.sim.now
        established = yield self.api.connect_future(fd, self.server_addr)
        if established is None:
            self.failed = True
            self.buffering_time_ns = self.sim.now - t0
            return
        offset = 0
        buf = b""
        while self.bytes_buffered < self.prebuffer_bytes:
            want = min(cfg.block_bytes, self.prebuffer_bytes - self.bytes_buffered)
            request = f"GET {offset} {want}".encode()
            request += b" " * max(0, cfg.request_bytes - len(request)) + b"\n"
            self.api.send(fd, request)
            need = cfg.header_bytes + 1 + want
            while len(buf) < need:
                chunk = yield self.api.recv_future(fd, 1 << 16, timeout_ns=2000 * MS)
                if not chunk:
                    self.failed = True
                    self.buffering_time_ns = self.sim.now - t0
                    return
                buf += chunk
            self.host.cpu.charge(cfg.client_per_response_ns)
            body = buf[cfg.header_bytes + 1 : need]
            buf = buf[need:]
            self.bytes_buffered += len(body)
            self.packets_received += 1
            offset += len(body)
        self.buffering_time_ns = self.sim.now - t0
        self.api.send(fd, b"QUIT".ljust(self.http_cfg.request_bytes) + b"\n")
        self.api.close(fd)

    @property
    def buffering_time_ms(self) -> float:
        if self.buffering_time_ns is None:
            raise RuntimeError("session has not completed")
        return self.buffering_time_ns / 1e6
