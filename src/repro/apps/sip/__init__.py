"""SIP (SIPp-like) workload: response time and memory scalability."""

from . import messages
from .client import SipClient
from .server import SipAppConfig, SipServer
from .workload import (
    build_sip_testbed, measure_memory, measure_response_time,
    memory_improvement_percent,
)

__all__ = [
    "SipAppConfig", "SipClient", "SipServer", "build_sip_testbed",
    "measure_memory", "measure_response_time", "memory_improvement_percent",
    "messages",
]
