"""SIP client (SIPp-uac-like): drives calls and measures response time.

The Fig. 10 metric — "the base response time for interaction with the
SIPp server ... under light load" — is the time from sending a request
to its first response arriving, *including* connection establishment on
RC (SIP-over-TCP opens a connection per dialog; the paper attributes
the UD win precisely "to the TCP overhead incurred").
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from ...simnet.engine import MS, Simulator
from ...core.socketif.interface import SOCK_DGRAM, SOCK_STREAM
from . import messages
from .server import SipAppConfig, _split_sip_stream

Address = Tuple[int, int]

_call_ids = itertools.count(1)


class SipCallFailed(Exception):
    pass


class SipClient:
    """One user agent placing calls (its own socket = its own UDP port,
    matching the paper's one-port-per-client SIPp configuration)."""

    def __init__(
        self,
        api,
        host,
        server_addr: Address,
        mode: str = "ud",
        config: Optional[SipAppConfig] = None,
        user: str = "alice",
    ):
        if mode not in ("ud", "rc"):
            raise ValueError(f"unknown SIP transport mode {mode!r}")
        self.api = api
        self.host = host
        self.sim: Simulator = host.sim
        self.server_addr = server_addr
        self.mode = mode
        self.config = config or SipAppConfig()
        self.user = user
        self.response_times_ns: List[int] = []
        self.calls_completed = 0
        self.failed = False
        self._fd = None
        self._rc_buf = b""

    # -- transport helpers -------------------------------------------------

    def _open(self):
        if self.mode == "ud":
            self._fd = self.api.socket(SOCK_DGRAM)
            return
        self.host.cpu.charge(self.config.rc_connect_ns)
        self._fd = self.api.socket(SOCK_STREAM)
        established = yield self.api.connect_future(self._fd, self.server_addr)
        if established is None:
            raise SipCallFailed("RC connect failed")

    def _send(self, msg) -> None:
        self.host.cpu.charge(self.config.build_ns)
        data = msg.encode()
        if self.mode == "ud":
            self.api.sendto(self._fd, data, self.server_addr)
        else:
            self.api.send(self._fd, data)

    def _recv_response(self, timeout_ns: int = 2000 * MS):
        """Process-style: yields until one SIP message arrives (parsed)."""
        if self.mode == "ud":
            got = yield self.api.recvfrom_future(self._fd, 8192, timeout_ns=timeout_ns)
            if got is None:
                raise SipCallFailed("UD response timeout")
            data, _src = got
        else:
            while True:
                msg_bytes, rest = _split_sip_stream(self._rc_buf)
                if msg_bytes is not None:
                    self._rc_buf = rest
                    data = msg_bytes
                    break
                chunk = yield self.api.recv_future(self._fd, 8192, timeout_ns=timeout_ns)
                if not chunk:
                    raise SipCallFailed("RC stream closed")
                self._rc_buf += chunk
        self.host.cpu.charge(self.config.parse_ns)
        return messages.parse(bytes(data))

    # -- call flows --------------------------------------------------------------

    def run_call(self, hold_time_ns: int = 0, do_register: bool = False):
        """One SipStone basic call; appends the INVITE->180 response time."""
        return self.sim.process(self._call(hold_time_ns, do_register),
                                name=f"sip-call-{self.user}")

    def _call(self, hold_time_ns: int, do_register: bool):
        try:
            # The measured window starts at call initiation: for RC that
            # includes connection establishment (TCP handshake + MPA
            # negotiation + per-connection setup) — "attributed to the
            # TCP overhead incurred" (§VI.B.2).
            t0 = self.sim.now
            yield from self._open()
            call_id = f"call-{next(_call_ids)}@client.example.invalid"
            cseq = 1
            if do_register:
                self._send(messages.build_request(
                    "REGISTER", call_id, cseq, from_user=self.user))
                resp = yield from self._recv_response()
                if resp.status != 200:
                    raise SipCallFailed(f"REGISTER got {resp.status}")
                cseq += 1
            self._send(messages.build_request(
                "INVITE", call_id, cseq, from_user=self.user))
            resp = yield from self._recv_response()
            self.response_times_ns.append(self.sim.now - t0)
            # Collect until 200 OK.
            while resp.status != 200:
                resp = yield from self._recv_response()
            self._send(messages.build_request("ACK", call_id, cseq,
                                              from_user=self.user))
            if hold_time_ns:
                yield hold_time_ns
            cseq += 1
            self._send(messages.build_request("BYE", call_id, cseq,
                                              from_user=self.user))
            resp = yield from self._recv_response()
            while resp.status != 200:
                resp = yield from self._recv_response()
            self.calls_completed += 1
        except SipCallFailed:
            self.failed = True
        finally:
            if self._fd is not None:
                self.api.close(self._fd)
                self._fd = None
                self._rc_buf = b""

    def hold_call(self, established_event, release_event):
        """Place a call and hold it until ``release_event`` resolves —
        used by the Fig. 11 concurrent-call memory study.  Signals
        ``established_event`` (a counter dict) when the call is up."""
        return self.sim.process(
            self._hold(established_event, release_event),
            name=f"sip-hold-{self.user}",
        )

    def _hold(self, established, release_event):
        try:
            yield from self._open()
            call_id = f"call-{next(_call_ids)}@client.example.invalid"
            # RFC 3261 timer-A style INVITE retransmission: unreliable
            # transports retransmit the request until a response arrives.
            invite = messages.build_request("INVITE", call_id, 1,
                                            from_user=self.user)
            resp = None
            for _attempt in range(7):
                self._send(invite)
                try:
                    resp = yield from self._recv_response(timeout_ns=500 * MS)
                    break
                except SipCallFailed:
                    continue
            if resp is None:
                raise SipCallFailed("INVITE retransmissions exhausted")
            while resp.status != 200:
                resp = yield from self._recv_response(timeout_ns=30_000 * MS)
            self._send(messages.build_request("ACK", call_id, 1,
                                              from_user=self.user))
            established["count"] += 1
            if established["count"] >= established.get("target", 0):
                fut = established.get("future")
                if fut is not None and not fut.done:
                    fut.set_result(True)
            yield release_event
            self._send(messages.build_request("BYE", call_id, 2,
                                              from_user=self.user))
            resp = yield from self._recv_response(timeout_ns=30_000 * MS)
            self.calls_completed += 1
        except SipCallFailed:
            self.failed = True
        finally:
            if self._fd is not None:
                self.api.close(self._fd)
                self._fd = None
                self._rc_buf = b""
