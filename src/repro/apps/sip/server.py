"""SIP server (SIPp-uas-like) over UD or RC iWARP sockets.

Implements the server side of the SipStone basic call flow the paper's
§VI.B.2 load test uses: INVITE → 180 Ringing → 200 OK → (ACK) → call
active → BYE → 200 OK, plus REGISTER → 200.

Memory accounting mirrors the paper's measurement ("the sum of the SIPp
application memory usage and the allocated slab buffer space used to
create the required sockets"): each new client costs a kernel socket, an
iWARP QP context and per-call application state, with UD mode paying the
extra call-state bookkeeping the paper blames for the 4 % gap between
predicted and measured savings.  Objects are freed when the call ends,
so the meter's high-water mark is the concurrent-call footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...memory.accounting import FootprintModel, MemoryMeter
from ...simnet.engine import MS, Simulator
from ...core.socketif.interface import SOCK_DGRAM, SOCK_STREAM
from . import messages
from .messages import SipParseError

Address = Tuple[int, int]


@dataclass
class SipAppConfig:
    """Application-level processing costs (SIPp-era string handling on a
    2 GHz Opteron; CALIBRATED against Fig. 10's absolute times)."""

    parse_ns: int = 60_000
    build_ns: int = 55_000
    #: Server-side cost of accepting a SIP-over-TCP connection (thread
    #: dispatch, per-connection transaction state) — part of "the TCP
    #: overhead incurred" that Fig. 10 attributes the UD win to.
    rc_accept_ns: int = 150_000
    #: Client-side cost of opening the TCP connection (socket setup,
    #: connect bookkeeping).
    rc_connect_ns: int = 80_000


class SipServer:
    """One SIP user-agent server handling many concurrent calls."""

    def __init__(
        self,
        api,
        host,
        port: int = 5060,
        mode: str = "ud",
        meter: Optional[MemoryMeter] = None,
        config: Optional[SipAppConfig] = None,
    ):
        if mode not in ("ud", "rc"):
            raise ValueError(f"unknown SIP transport mode {mode!r}")
        self.api = api
        self.host = host
        self.sim: Simulator = host.sim
        self.port = port
        self.mode = mode
        self.meter = meter or MemoryMeter(FootprintModel())
        self.config = config or SipAppConfig()
        # Call state: call-id -> phase; client registry: peer -> state.
        self.calls: Dict[str, str] = {}
        self._clients: Dict[object, dict] = {}
        self.requests_handled = 0
        self.parse_errors = 0
        self.active_calls = 0
        self.total_calls = 0
        self._stop = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.mode == "ud":
            self.sim.process(self._serve_ud(), name="sip-server-ud")
        else:
            self.sim.process(self._serve_rc(), name="sip-server-rc")

    def stop(self) -> None:
        self._stop = True

    # -- client lifecycle & memory accounting ------------------------------

    def _client_new(self, key) -> dict:
        state = self._clients.get(key)
        if state is None:
            state = {"calls": set()}
            self._clients[key] = state
            if self.mode == "ud":
                self.meter.alloc("udp_socket")
                self.meter.alloc("ud_qp")
                self.meter.alloc("ud_bookkeeping")
            else:
                self.meter.alloc("tcp_socket")
                self.meter.alloc("rc_qp")
        return state

    def _client_gone(self, key) -> None:
        state = self._clients.pop(key, None)
        if state is None:
            return
        for call_id in state["calls"]:
            if self.calls.pop(call_id, None) is not None:
                self.meter.free("app_call")
                self.active_calls -= 1
        if self.mode == "ud":
            self.meter.free("udp_socket")
            self.meter.free("ud_qp")
            self.meter.free("ud_bookkeeping")
        else:
            self.meter.free("tcp_socket")
            self.meter.free("rc_qp")

    # -- transaction core ---------------------------------------------------

    def _handle(self, data: bytes, client_key, send) -> None:
        """Process one request; ``send(bytes)`` returns the response(s)."""
        costs = self.config
        self.host.cpu.charge(costs.parse_ns)
        try:
            msg = messages.parse(bytes(data))
        except SipParseError:
            self.parse_errors += 1
            return
        if not msg.is_request:
            return  # responses (e.g. to our 200) need no action here
        self.requests_handled += 1
        state = self._client_new(client_key)
        call_id = msg.call_id

        def reply(status: int, reason: str) -> None:
            self.host.cpu.charge(costs.build_ns)
            send(messages.build_response(msg, status, reason).encode())

        if msg.method == "REGISTER":
            reply(200, "OK")
        elif msg.method == "OPTIONS":
            reply(200, "OK")
        elif msg.method == "INVITE":
            if call_id not in self.calls:
                self.calls[call_id] = "ringing"
                state["calls"].add(call_id)
                self.meter.alloc("app_call")
                self.active_calls += 1
                self.total_calls += 1
            reply(180, "Ringing")
            reply(200, "OK")
        elif msg.method == "ACK":
            if self.calls.get(call_id) == "ringing":
                self.calls[call_id] = "active"
        elif msg.method == "BYE":
            if call_id in self.calls:
                del self.calls[call_id]
                state["calls"].discard(call_id)
                self.meter.free("app_call")
                self.active_calls -= 1
            reply(200, "OK")
            if not state["calls"] and self.mode == "ud":
                # The UD bookkeeping exists precisely to learn this
                # moment: all of the peer's calls ended, close its port.
                self._client_gone(client_key)
        elif msg.method == "CANCEL":
            reply(200, "OK")

    # -- UD transport ---------------------------------------------------------

    def _serve_ud(self):
        fd = self.api.socket(SOCK_DGRAM, port=self.port)
        while not self._stop:
            got = yield self.api.recvfrom_future(fd, 4096, timeout_ns=None)
            if got is None:
                continue
            data, src = got
            self._handle(data, src, lambda payload, s=src: self.api.sendto(fd, payload, s))

    # -- RC transport -----------------------------------------------------------

    def _serve_rc(self):
        lfd = self.api.socket(SOCK_STREAM)
        self.api.listen(lfd, self.port)
        while not self._stop:
            cfd = yield self.api.accept_future(lfd)
            self.host.cpu.charge(self.config.rc_accept_ns)
            self.sim.process(self._serve_rc_client(cfd), name="sip-rc-conn")

    def _serve_rc_client(self, cfd):
        buf = b""
        while not self._stop:
            chunk = yield self.api.recv_future(cfd, 8192, timeout_ns=10_000 * MS)
            if not chunk:
                break
            buf += chunk
            while True:
                msg_bytes, rest = _split_sip_stream(buf)
                if msg_bytes is None:
                    break
                buf = rest
                self._handle(msg_bytes, cfd, lambda payload: self.api.send(cfd, payload))
        self._client_gone(cfd)
        self.api.close(cfd)


def _split_sip_stream(buf: bytes):
    """Extract one complete SIP message from a TCP byte stream using
    Content-Length framing.  Returns (message, rest) or (None, buf)."""
    sep = buf.find(b"\r\n\r\n")
    if sep < 0:
        return None, buf
    head = buf[:sep].decode(errors="replace")
    length = 0
    for line in head.split("\r\n"):
        if line.lower().startswith("content-length"):
            try:
                length = int(line.split(":", 1)[1])
            except (ValueError, IndexError):
                length = 0
    end = sep + 4 + length
    if len(buf) < end:
        return None, buf
    return buf[:end], buf[end:]
