"""SipStone-style load generation and the two §VI.B.2 measurements.

* :func:`measure_response_time` — Fig. 10: average request/response time
  under light load (sequential calls).
* :func:`measure_memory` — Fig. 11: ramp N concurrent calls (one client
  socket/port each, as SIPp was configured), hold them all, and read the
  server's memory high-water mark in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...memory.accounting import FootprintModel, MemoryMeter
from ...simnet.engine import MS, SEC, Simulator
from ...simnet.topology import Testbed, build_testbed
from ...transport.stacks import install_stacks
from ...core.verbs.device import RnicDevice
from ...core.socketif.interface import IwSocketInterface
from .client import SipClient
from .server import SipServer

SIP_PORT = 5060


@dataclass
class SipTestbed:
    testbed: Testbed
    server: SipServer
    server_api: IwSocketInterface
    client_api: IwSocketInterface
    meter: MemoryMeter

    @property
    def sim(self) -> Simulator:
        return self.testbed.sim


def build_sip_testbed(
    mode: str,
    footprint: Optional[FootprintModel] = None,
    pool_slots: int = 32,
    pool_slot_bytes: int = 4096,
) -> SipTestbed:
    """Two-node testbed: host 0 runs the server, host 1 the clients.

    SIP messages are small, so the shim's receive pools are sized down
    (the defaults would pin 2 MB per socket, absurd for SIP)."""
    tb = build_testbed(2)
    nets = install_stacks(tb)
    devs = [RnicDevice(n) for n in nets]
    server_api = IwSocketInterface(
        devs[0], rdma_mode=False, pool_slots=pool_slots,
        pool_slot_bytes=pool_slot_bytes,
    )
    client_api = IwSocketInterface(
        devs[1], rdma_mode=False, pool_slots=pool_slots,
        pool_slot_bytes=pool_slot_bytes,
    )
    meter = MemoryMeter(footprint or FootprintModel())
    server = SipServer(server_api, tb.hosts[0], SIP_PORT, mode=mode, meter=meter)
    server.start()
    return SipTestbed(tb, server, server_api, client_api, meter)


def measure_response_time(mode: str, calls: int = 20) -> Dict[str, float]:
    """Fig. 10: mean INVITE->first-response time (ms), sequential calls
    under light load (small receive pools, idle gaps)."""
    bed = build_sip_testbed(mode, pool_slots=4)
    sim = bed.sim
    times = []

    def driver():
        for i in range(calls):
            client = SipClient(
                bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT),
                mode=mode, user=f"user{i}",
            )
            proc = client.run_call()
            yield proc.finished
            if client.failed:
                raise RuntimeError(f"SIP call {i} failed in mode {mode}")
            times.extend(client.response_times_ns)
            yield 1 * MS  # light load: idle gap between calls

    done = sim.process(driver()).finished
    sim.run_until(done, limit=600 * SEC)
    mean_ms = sum(times) / len(times) / 1e6
    return {"mean_ms": mean_ms, "samples": len(times)}


def measure_memory(
    mode: str,
    concurrent_calls: int,
    footprint: Optional[FootprintModel] = None,
) -> Dict[str, float]:
    """Fig. 11: server memory with N concurrent held calls."""
    bed = build_sip_testbed(mode, footprint=footprint)
    sim = bed.sim
    release = sim.future()
    established = {"count": 0, "target": concurrent_calls, "future": sim.future()}

    clients = []

    def ramp():
        for i in range(concurrent_calls):
            client = SipClient(
                bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT),
                mode=mode, user=f"user{i}",
            )
            clients.append(client)
            client.hold_call(established, release)
            # Self-pacing ramp: never run more than a window of calls
            # ahead of what the server has established, so the receive
            # pools are not overrun (SIPp rate-limits the same way).
            while established["count"] < i - 8:
                yield 200_000
            yield 50_000
        yield established["future"]
        # Everything is up: the high-water mark is now set.
        release.set_result(True)

    done = sim.process(ramp()).finished
    sim.run_until(done, limit=3_000 * SEC)
    sim.run(until=sim.now + 500 * MS)  # drain BYEs
    failed = sum(1 for c in clients if c.failed)
    if failed:
        raise RuntimeError(f"{failed}/{concurrent_calls} calls failed in {mode}")
    return {
        "high_water_bytes": bed.meter.high_water,
        "final_bytes": bed.meter.bytes_now,
        "concurrent_calls": concurrent_calls,
    }


def memory_improvement_percent(
    concurrent_calls: int, footprint: Optional[FootprintModel] = None
) -> Dict[str, float]:
    """UD-vs-RC whole-application memory improvement at one load point,
    from live measurement (the closed-form prediction lives on
    :class:`FootprintModel`)."""
    rc = measure_memory("rc", concurrent_calls, footprint)
    ud = measure_memory("ud", concurrent_calls, footprint)
    imp = 100.0 * (rc["high_water_bytes"] - ud["high_water_bytes"]) / rc["high_water_bytes"]
    return {
        "improvement_percent": imp,
        "rc_bytes": rc["high_water_bytes"],
        "ud_bytes": ud["high_water_bytes"],
    }
