"""Minimal SIP message builder/parser.

Real textual SIP messages (request line / status line + the headers a
transaction layer needs), sized realistically (~350-600 bytes), so the
workload exercises the transports with genuine SIP-shaped traffic and
the parser is genuinely exercised by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

SIP_VERSION = "SIP/2.0"

REQUEST_METHODS = ("REGISTER", "INVITE", "ACK", "BYE", "OPTIONS", "CANCEL")


class SipParseError(Exception):
    """Structurally invalid SIP message."""


@dataclass
class SipMessage:
    """Either a request (method set) or a response (status set)."""

    method: Optional[str] = None
    uri: str = ""
    status: Optional[int] = None
    reason: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""

    @property
    def is_request(self) -> bool:
        return self.method is not None

    @property
    def call_id(self) -> str:
        return self.headers.get("Call-ID", "")

    @property
    def cseq(self) -> str:
        return self.headers.get("CSeq", "")

    def encode(self) -> bytes:
        if self.is_request:
            start = f"{self.method} {self.uri} {SIP_VERSION}"
        else:
            start = f"{SIP_VERSION} {self.status} {self.reason}"
        lines = [start]
        lines += [f"{k}: {v}" for k, v in self.headers.items()]
        lines.append(f"Content-Length: {len(self.body)}")
        lines.append("")
        lines.append(self.body)
        return "\r\n".join(lines).encode()


def _standard_headers(call_id: str, cseq: int, method: str, from_user: str,
                      to_user: str, branch: str) -> Dict[str, str]:
    return {
        "Via": f"SIP/2.0/UDP client.example.invalid;branch=z9hG4bK{branch}",
        "Max-Forwards": "70",
        "From": f"<sip:{from_user}@example.invalid>;tag=t{abs(hash(from_user)) % 99999}",
        "To": f"<sip:{to_user}@example.invalid>",
        "Call-ID": call_id,
        "CSeq": f"{cseq} {method}",
        "Contact": f"<sip:{from_user}@client.example.invalid:5060>",
        "User-Agent": "repro-sipp/1.0",
    }


def build_request(
    method: str,
    call_id: str,
    cseq: int,
    from_user: str = "alice",
    to_user: str = "bob",
    body: str = "",
) -> SipMessage:
    if method not in REQUEST_METHODS:
        raise ValueError(f"unsupported SIP method {method!r}")
    msg = SipMessage(
        method=method,
        uri=f"sip:{to_user}@example.invalid",
        headers=_standard_headers(call_id, cseq, method, from_user, to_user,
                                  branch=f"{call_id}.{cseq}"),
        body=body,
    )
    if method == "INVITE" and not body:
        # A small SDP offer, as SIPp's default scenario carries.
        msg.body = (
            "v=0\r\no=user 53655765 2353687637 IN IP4 127.0.0.1\r\n"
            "s=-\r\nc=IN IP4 127.0.0.1\r\nt=0 0\r\n"
            "m=audio 6000 RTP/AVP 0\r\na=rtpmap:0 PCMU/8000\r\n"
        )
        msg.headers["Content-Type"] = "application/sdp"
    return msg


def build_response(request: SipMessage, status: int, reason: str) -> SipMessage:
    """Response echoing the transaction-identifying headers (RFC 3261)."""
    headers = {
        k: request.headers[k]
        for k in ("Via", "From", "To", "Call-ID", "CSeq")
        if k in request.headers
    }
    headers["Server"] = "repro-sip-server/1.0"
    headers["Contact"] = "<sip:server.example.invalid:5060>"
    return SipMessage(status=status, reason=reason, headers=headers)


def parse(data: bytes) -> SipMessage:
    try:
        text = data.decode()
    except UnicodeDecodeError as exc:
        raise SipParseError(f"not text: {exc}") from None
    head, _, body = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    if not lines or not lines[0]:
        raise SipParseError("empty message")
    start = lines[0]
    msg = SipMessage(body=body)
    if start.startswith(SIP_VERSION):
        parts = start.split(" ", 2)
        if len(parts) < 3:
            raise SipParseError(f"bad status line {start!r}")
        try:
            msg.status = int(parts[1])
        except ValueError:
            raise SipParseError(f"bad status code in {start!r}") from None
        msg.reason = parts[2]
    else:
        parts = start.split(" ")
        if len(parts) != 3 or parts[2] != SIP_VERSION:
            raise SipParseError(f"bad request line {start!r}")
        msg.method, msg.uri = parts[0], parts[1]
        if msg.method not in REQUEST_METHODS:
            raise SipParseError(f"unknown method {msg.method!r}")
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise SipParseError(f"bad header line {line!r}")
        msg.headers[name.strip()] = value.strip()
    return msg
