"""repro — reproduction of "RDMA Capable iWARP over Datagrams" (IPDPS 2011).

Public layers, bottom-up:

* :mod:`repro.simnet` — discrete-event testbed (hosts, CPUs, NICs, switch,
  loss injection).
* :mod:`repro.transport` — IP (with fragmentation), UDP, TCP, reliable-UDP.
* :mod:`repro.memory` — registered memory regions, STags, validity maps,
  memory-footprint accounting.
* :mod:`repro.core` — the iWARP stack: MPA, DDP, RDMAP (including RDMA
  Write-Record), verbs, and the iWARP socket interface.
* :mod:`repro.apps` — VLC-like streaming and SIPp-like workloads.
* :mod:`repro.bench` — harnesses reproducing every figure in the paper.
"""

__version__ = "1.0.0"
