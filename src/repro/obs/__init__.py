"""Observability support layer: metrics registry, WR spans, exporters.

Usage from the stack (obs is a support layer — importable anywhere,
imports no stack code):

    from repro.obs import sim_registry
    self.obs = sim_registry(device.sim)
    if self.obs.enabled:
        self.obs.counter("verbs.qp.posts", qp=..., op=...).inc()

Enable per testbed (``build_testbed(..., metrics=True)``) or globally
with ``IWARP_OBS=1``.  See DESIGN.md §8.
"""

from .export import (
    dicts_to_samples,
    dump_tracked,
    merge_samples,
    samples_to_dicts,
    to_json,
    to_json_obj,
    to_prometheus,
)
from .metrics import (
    DEFAULT_BUCKETS,
    METRIC_LAYERS,
    METRIC_NAME_PATTERN,
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    Registry,
    RegistryError,
    Sample,
    default_enabled,
    diff,
    sim_registry,
    tracked_registries,
    validate_name,
)
from .spans import (
    SPAN_KIND,
    STAGES,
    merge_timelines,
    spans,
    stage_sequence,
    timeline,
    wr_span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_LAYERS",
    "METRIC_NAME_PATTERN",
    "SPAN_KIND",
    "STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "Registry",
    "RegistryError",
    "Sample",
    "default_enabled",
    "dicts_to_samples",
    "diff",
    "dump_tracked",
    "merge_samples",
    "merge_timelines",
    "samples_to_dicts",
    "sim_registry",
    "spans",
    "stage_sequence",
    "timeline",
    "to_json",
    "to_json_obj",
    "to_prometheus",
    "tracked_registries",
    "validate_name",
    "wr_span",
]
