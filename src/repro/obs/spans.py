"""WR-lifecycle spans layered on the simnet :class:`Tracer`.

A *span* is one sim-timestamped stage in the life of a work request:

    post → segment → wire → (retransmit)* → delivery → cqe

Each stage is recorded as a ``wr.span`` event on the host's
``wr_tracer`` — the same append-only :class:`repro.simnet.trace.Tracer`
the tests already use for frame-level events, so spans inherit its
timestamping and cost-free semantics.  When no tracer is attached
(``host.wr_tracer is None``, the default) recording is a single
attribute check, so the stack can call :func:`wr_span` unconditionally.

Spans are independent of the metrics registry: tracing is opt-in per
host (attach a Tracer), metrics are opt-in per simulator (enable the
registry); neither affects simulated time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: The Tracer event kind every span is recorded under.
SPAN_KIND = "wr.span"

#: The stage taxonomy, in lifecycle order (DESIGN.md §8).
STAGES: Tuple[str, ...] = (
    "post",        # verbs accepted the WR (qp.post_send / post_recv)
    "segment",     # RDMAP/DDP cut the message into LLP segments
    "wire",        # a segment handed to the LLP for transmission
    "retransmit",  # the LLP resent a segment (fields: proto, cause, seq)
    "delivery",    # RDMAP received/placed a segment at the sink
    "cqe",         # a completion was pushed (fields: queue, status)
)


def wr_span(host: Any, stage: str, **fields: Any) -> None:
    """Record one lifecycle stage on ``host``'s WR tracer, if attached."""
    tracer = getattr(host, "wr_tracer", None)
    if tracer is not None:
        tracer.record(SPAN_KIND, stage=stage, **fields)


def spans(tracer: Any, **match: Any) -> List[Any]:
    """All ``wr.span`` trace records on ``tracer`` whose fields equal
    ``match`` (returns :class:`repro.simnet.trace.TraceRecord` objects)."""
    out: List[Any] = []
    for rec in tracer.records:
        if rec.kind != SPAN_KIND:
            continue
        ok = True
        for key, want in match.items():
            if rec.fields.get(key) != want:
                ok = False
                break
        if ok:
            out.append(rec)
    return out


def stage_sequence(tracer: Any, **match: Any) -> List[str]:
    """Just the ordered stage names — what golden span tests assert on."""
    return [rec.fields["stage"] for rec in spans(tracer, **match)]


def timeline(tracer: Any, **match: Any) -> List[Tuple[int, str]]:
    """Ordered ``(sim_time_ns, stage)`` pairs for matching spans."""
    return [(rec.time, rec.fields["stage"]) for rec in spans(tracer, **match)]


def merge_timelines(*tracers: Any, match: Optional[Dict[str, Any]] = None) -> List[Any]:
    """Spans from several hosts' tracers merged into one sim-time order.

    Useful when source and sink record on different hosts: the sender
    logs post/segment/wire/retransmit, the receiver delivery/cqe.
    """
    fields = match or {}
    out: List[Any] = []
    for tracer in tracers:
        out.extend(spans(tracer, **fields))
    out.sort(key=lambda rec: rec.time)
    return out
