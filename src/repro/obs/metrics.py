"""Named metrics registry: counters, gauges, fixed-bucket histograms.

The observability layer the evaluation figures lean on.  Design rules:

* **Stdlib only, support layer.**  ``repro.obs`` imports nothing from
  the protocol stack (iwarplint treats it like ``memory``/``models``:
  any layer may import it, it may import none of them).
* **~zero cost when disabled.**  A disabled :class:`Registry` hands out
  shared null instruments whose methods do nothing, and components guard
  hot-path instrument creation behind ``registry.enabled``.  Metrics
  never schedule events, never branch protocol logic, and never read
  simulated state except at snapshot time — so an enabled run and a
  disabled run produce bit-identical simulations (tested in
  ``tests/obs/test_determinism.py``).
* **Hybrid push/pull.**  Genuinely new metrics are event-push
  instruments created through the registry.  The plain-int counters the
  stack already keeps (NIC ports, RUDP, TCP, RDMAP) remain the source
  of truth for existing tests; the registry exposes them through *pull
  collectors* — callables that yield ``(name, labels, kind, value)``
  samples at snapshot/export time, Prometheus-collector style.
* **Documented naming scheme** (DESIGN.md §8): every metric name is
  ``layer.component.name`` — at least three lowercase dot-separated
  segments, first segment one of :data:`METRIC_LAYERS`.  Violations are
  a runtime :class:`RegistryError` here and a static IW501 in iwarplint
  (the pattern is mirrored in ``tools/iwarplint/invariants.py``).

One registry exists per :class:`~repro.simnet.engine.Simulator`, lazily
attached by :func:`sim_registry` — per-testbed isolation without any
global mutable state (beyond the opt-in ``IWARP_OBS_DUMP`` tracking
used to merge a whole test session's snapshots into one CI artifact).
"""

from __future__ import annotations

import os
import re
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

#: Mirrored in ``tools/iwarplint/invariants.py`` (IW501 checks source
#: literals against the same pattern).
METRIC_NAME_PATTERN = r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$"

#: Legal first segments: the stack layers plus the support layers that
#: own measurable state.
METRIC_LAYERS = frozenset({
    "apps", "bench", "socketif", "verbs", "rdmap", "ddp", "mpa",
    "transport", "simnet", "memory", "models", "obs",
})

#: Default histogram upper edges (powers of two: batch sizes, counts).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

_NAME_RE = re.compile(METRIC_NAME_PATTERN)

LabelItems = Tuple[Tuple[str, str], ...]
#: What a pull collector yields: (name, labels, kind, value).
CollectorSample = Tuple[str, Dict[str, str], str, Union[int, float]]
Collector = Callable[[], Iterable[CollectorSample]]


class RegistryError(Exception):
    """Metric misuse: bad name, kind collision, bucket mismatch."""


def validate_name(name: str) -> str:
    """Check ``name`` against the ``layer.component.name`` scheme."""
    if not _NAME_RE.match(name):
        raise RegistryError(
            f"metric name {name!r} does not match the layer.component.name "
            f"scheme (pattern {METRIC_NAME_PATTERN})"
        )
    layer = name.split(".", 1)[0]
    if layer not in METRIC_LAYERS:
        raise RegistryError(
            f"metric name {name!r} starts with unknown layer {layer!r} "
            f"(known: {', '.join(sorted(METRIC_LAYERS))})"
        )
    return name


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time value (cwnd, queue depth, window)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def set_max(self, v: float) -> None:
        """High-water-mark update."""
        if v > self.value:
            self.value = v

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``edges`` are ascending inclusive upper bounds; an observation lands
    in the first bucket whose edge is ``>= value``, or in the implicit
    ``+Inf`` overflow bucket.
    """

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        if not edges:
            raise RegistryError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise RegistryError(f"bucket edges must be strictly ascending: {edges}")
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(edges) + 1)  # last = +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[Union[float, str], int]]:
        """``(upper_edge, cumulative_count)`` pairs ending with +Inf."""
        out: List[Tuple[Union[float, str], int]] = []
        running = 0
        for edge, n in zip(self.edges, self.counts):
            running += n
            out.append((edge, running))
        out.append(("+Inf", self.count))
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; bucket edges must match exactly."""
        if other.edges != self.edges:
            raise RegistryError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": [[edge, cum] for edge, cum in self.cumulative()],
        }

    def reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.sum = 0.0
        self.count = 0


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def set_max(self, v: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


# ---------------------------------------------------------------------------
# Samples (the exporter/snapshot interchange unit)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Sample:
    """One exported data point."""

    name: str
    labels: LabelItems
    kind: str  # "counter" | "gauge" | "histogram"
    value: Any  # number, or Histogram.as_dict() for histograms

    def key(self) -> str:
        """Canonical flat key: ``name{k="v",...}``."""
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class Registry:
    """Named instruments plus pull collectors, with snapshot/export."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}
        # name -> (kind, histogram edges or None): collision detection.
        self._kinds: Dict[str, Tuple[str, Optional[Tuple[float, ...]]]] = {}
        self._collectors: List[Collector] = []
        self._validated: set = set()  # names already regex-checked

    # -- instrument factories ---------------------------------------------

    def _get(self, name: str, kind: str, labels: Dict[str, Any],
             edges: Optional[Tuple[float, ...]] = None) -> Any:
        self._check_name(name)
        registered = self._kinds.get(name)
        if registered is not None and registered != (kind, edges):
            raise RegistryError(
                f"metric {name!r} already registered as {registered[0]} "
                f"{'' if registered[1] is None else f'with edges {registered[1]} '}"
                f"— cannot re-register as {kind}"
                f"{'' if edges is None else f' with edges {edges}'}"
            )
        key = (name, _label_items(labels))
        inst = self._instruments.get(key)
        if inst is None:
            if kind == "counter":
                inst = Counter()
            elif kind == "gauge":
                inst = Gauge()
            else:
                assert edges is not None
                inst = Histogram(edges)
            self._instruments[key] = inst
            self._kinds[name] = (kind, edges)
        return inst

    def counter(self, name: str, **labels: Any) -> Any:
        """Get or create a counter (returns a null instrument when the
        registry is disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._get(name, "counter", labels)

    def gauge(self, name: str, **labels: Any) -> Any:
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._get(name, "gauge", labels)

    def histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS, **labels: Any
    ) -> Any:
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._get(
            name, "histogram", labels, edges=tuple(float(b) for b in buckets)
        )

    # -- pull collectors ---------------------------------------------------

    def add_collector(self, fn: Collector) -> None:
        """Register a callable yielding ``(name, labels, kind, value)``
        samples read at snapshot/export time.  No-op when disabled, so a
        disabled registry holds no references into the stack."""
        if self.enabled:
            self._collectors.append(fn)

    # -- reading -----------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if name not in self._validated:
            validate_name(name)
            self._validated.add(name)

    def collect(self) -> List[Sample]:
        """Every sample: registry-owned instruments plus collector pulls,
        sorted by (name, labels)."""
        out: List[Sample] = []
        for (name, labels), inst in self._instruments.items():
            if isinstance(inst, Histogram):
                out.append(Sample(name, labels, "histogram", inst.as_dict()))
            elif isinstance(inst, Gauge):
                out.append(Sample(name, labels, "gauge", inst.value))
            else:
                out.append(Sample(name, labels, "counter", inst.value))
        for fn in self._collectors:
            for name, labels, kind, value in fn():
                self._check_name(name)
                out.append(Sample(name, _label_items(labels), kind, value))
        out.sort(key=lambda s: (s.name, s.labels))
        return out

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """Flat ``{canonical_key: value}`` dict (histograms appear as
        their ``as_dict()`` form).  ``prefix`` filters by name prefix."""
        out: Dict[str, Any] = {}
        for s in self.collect():
            if prefix is not None and not s.name.startswith(prefix):
                continue
            out[s.key()] = s.value
        return out

    def reset(self) -> None:
        """Zero every registry-owned instrument, keeping registrations
        (names, kinds, label sets, collectors).  Collector-backed values
        live in the components and are not touched."""
        for inst in self._instruments.values():
            inst.reset()


def diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Per-key delta of two :meth:`Registry.snapshot` dicts.

    Keys present only in ``after`` count from zero; keys that vanished
    are dropped.  Histogram values diff count/sum/buckets element-wise.
    """
    out: Dict[str, Any] = {}
    for key, after_v in after.items():
        before_v = before.get(key)
        if isinstance(after_v, dict):
            if not isinstance(before_v, dict):
                before_v = {"count": 0, "sum": 0.0, "buckets": []}
            before_cum = {edge: cum for edge, cum in before_v.get("buckets", [])}
            out[key] = {
                "count": after_v["count"] - before_v.get("count", 0),
                "sum": after_v["sum"] - before_v.get("sum", 0.0),
                "buckets": [
                    [edge, cum - before_cum.get(edge, 0)]
                    for edge, cum in after_v.get("buckets", [])
                ],
            }
        else:
            out[key] = after_v - (before_v or 0)
    return out


# ---------------------------------------------------------------------------
# Per-simulator attachment
# ---------------------------------------------------------------------------

#: Registries created while ``IWARP_OBS_DUMP`` names a path — merged
#: into one snapshot artifact at test-session end (see repro.obs.export
#: and tests/conftest.py).
_TRACKED: List[Registry] = []


def default_enabled() -> bool:
    """Metrics default: the ``IWARP_OBS`` environment switch."""
    return os.environ.get("IWARP_OBS", "") not in ("", "0")


def sim_registry(sim: Any, enable: Optional[bool] = None) -> Registry:
    """The one :class:`Registry` attached to ``sim`` (lazily created).

    ``enable`` pins the enabled state at creation; ``None`` defers to
    :func:`default_enabled`.  The first caller wins — components created
    under the same simulator all see the same registry, which is why
    :func:`repro.simnet.topology.build_testbed` resolves it before any
    port or stack exists.
    """
    reg = getattr(sim, "obs_registry", None)
    if reg is None:
        reg = Registry(enabled=default_enabled() if enable is None else enable)
        sim.obs_registry = reg
        if os.environ.get("IWARP_OBS_DUMP"):
            _TRACKED.append(reg)
    return reg


def tracked_registries() -> List[Registry]:
    return list(_TRACKED)
