"""Snapshot exporters: JSON (the dump-file format) and Prometheus text.

The JSON form is the interchange format everywhere metrics leave a
process: ``BENCH_*.json`` rows, the ``IWARP_OBS_DUMP`` session artifact
CI uploads, and the ``python -m repro.obs`` CLI all read/write

    {"metrics": [{"name": ..., "labels": {...}, "kind": ...,
                  "value": ...} | {..., "count": ..., "sum": ...,
                  "buckets": [[le, cumulative], ...]}]}

sorted by (name, labels) so diffs are stable.  The Prometheus text form
follows the exposition format (dots become underscores, histograms
expand to ``_bucket``/``_sum``/``_count`` series) for eyeballing with
standard tooling.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .metrics import Histogram, Registry, Sample, _TRACKED, _label_items


def samples_to_dicts(samples: Iterable[Sample]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for s in samples:
        row: Dict[str, Any] = {
            "name": s.name,
            "labels": {k: v for k, v in s.labels},
            "kind": s.kind,
        }
        if s.kind == "histogram":
            row["count"] = s.value["count"]
            row["sum"] = s.value["sum"]
            row["buckets"] = s.value["buckets"]
        else:
            row["value"] = s.value
        out.append(row)
    return out


def dicts_to_samples(rows: Iterable[Dict[str, Any]]) -> List[Sample]:
    out: List[Sample] = []
    for row in rows:
        labels = _label_items(row.get("labels", {}))
        if row["kind"] == "histogram":
            value: Any = {
                "count": row["count"],
                "sum": row["sum"],
                "buckets": [list(b) for b in row.get("buckets", [])],
            }
        else:
            value = row["value"]
        out.append(Sample(row["name"], labels, row["kind"], value))
    return out


def to_json_obj(reg: Registry) -> Dict[str, Any]:
    return {"metrics": samples_to_dicts(reg.collect())}


def to_json(reg: Registry, indent: int = 2) -> str:
    return json.dumps(to_json_obj(reg), indent=indent, sort_keys=True)


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_labels(items: Iterable[Any], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(v: Any) -> str:
    if isinstance(v, float) and v == int(v):
        return str(int(v))
    return str(v)


def to_prometheus_lines(samples: Iterable[Sample]) -> List[str]:
    """Prometheus text-exposition lines for an already-sorted sample list."""
    lines: List[str] = []
    typed: set = set()
    for s in samples:
        pname = _prom_name(s.name)
        if s.name not in typed:
            lines.append(f"# TYPE {pname} {s.kind}")
            typed.add(s.name)
        if s.kind == "histogram":
            for edge, cum in s.value["buckets"]:
                le = _prom_value(edge) if edge != "+Inf" else "+Inf"
                labels = _prom_labels(s.labels, 'le="%s"' % le)
                lines.append(f"{pname}_bucket{labels} {cum}")
            lines.append(f"{pname}_sum{_prom_labels(s.labels)} {_prom_value(s.value['sum'])}")
            lines.append(f"{pname}_count{_prom_labels(s.labels)} {s.value['count']}")
        else:
            lines.append(f"{pname}{_prom_labels(s.labels)} {_prom_value(s.value)}")
    return lines


def to_prometheus(reg: Registry) -> str:
    return "\n".join(to_prometheus_lines(reg.collect())) + "\n"


# ---------------------------------------------------------------------------
# Session-wide dump (IWARP_OBS_DUMP)
# ---------------------------------------------------------------------------


def merge_samples(sample_lists: Iterable[List[Sample]]) -> List[Sample]:
    """Fold many registries' samples into one list.

    Counters and histogram buckets sum; gauges keep their max (they are
    high-water-style values once a simulator is done).  Entries merge on
    identical (name, labels, kind).
    """
    merged: Dict[Any, Sample] = {}
    for samples in sample_lists:
        for s in samples:
            key = (s.name, s.labels, s.kind)
            prev = merged.get(key)
            if prev is None:
                if s.kind == "histogram":
                    value = {
                        "count": s.value["count"],
                        "sum": s.value["sum"],
                        "buckets": [list(b) for b in s.value["buckets"]],
                    }
                    merged[key] = Sample(s.name, s.labels, s.kind, value)
                else:
                    merged[key] = s
            elif s.kind == "counter":
                merged[key] = Sample(s.name, s.labels, s.kind, prev.value + s.value)
            elif s.kind == "gauge":
                merged[key] = Sample(s.name, s.labels, s.kind, max(prev.value, s.value))
            else:
                pv = prev.value
                pv["count"] += s.value["count"]
                pv["sum"] += s.value["sum"]
                prev_edges = [b[0] for b in pv["buckets"]]
                new_edges = [b[0] for b in s.value["buckets"]]
                if prev_edges != new_edges:
                    raise ValueError(
                        f"cannot merge histogram {s.name} with differing buckets"
                    )
                for i, (_, cum) in enumerate(s.value["buckets"]):
                    pv["buckets"][i][1] += cum
    out = list(merged.values())
    out.sort(key=lambda s: (s.name, s.labels))
    return out


def dump_tracked(path: str) -> int:
    """Write every ``IWARP_OBS_DUMP``-tracked registry, merged, to
    ``path`` in the JSON interchange format.  Returns the sample count."""
    samples = merge_samples(reg.collect() for reg in _TRACKED)
    with open(path, "w") as fh:
        json.dump({"metrics": samples_to_dicts(samples)}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(samples)
