"""``python -m repro.obs`` — dump/summarize/diff metrics snapshot files.

Operates purely on the JSON interchange files written by
``IWARP_OBS_DUMP``, the bench harness, or :func:`repro.obs.export.to_json`
— no stack imports, so it works on artifacts from any run.

    python -m repro.obs dump artifacts/metrics-snapshot.json
    python -m repro.obs dump snap.json --format prom
    python -m repro.obs summarize snap.json
    python -m repro.obs diff before.json after.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .export import dicts_to_samples, samples_to_dicts, to_prometheus_lines
from .metrics import Sample, diff as snapshot_diff


def _load(path: str) -> List[Sample]:
    with open(path) as fh:
        obj = json.load(fh)
    return dicts_to_samples(obj.get("metrics", []))


def _as_snapshot(samples: List[Sample]) -> Dict[str, Any]:
    return {s.key(): s.value for s in samples}


def _cmd_dump(args: argparse.Namespace) -> int:
    samples = _load(args.file)
    if args.prefix:
        samples = [s for s in samples if s.name.startswith(args.prefix)]
    if args.format == "prom":
        for line in to_prometheus_lines(samples):
            print(line)
    else:
        json.dump({"metrics": samples_to_dicts(samples)}, sys.stdout,
                  indent=2, sort_keys=True)
        print()
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    samples = _load(args.file)
    by_layer: Dict[str, Dict[str, int]] = {}
    for s in samples:
        layer = s.name.split(".", 1)[0]
        agg = by_layer.setdefault(layer, {"series": 0, "events": 0})
        agg["series"] += 1
        if s.kind == "counter":
            agg["events"] += int(s.value)
        elif s.kind == "histogram":
            agg["events"] += int(s.value["count"])
    print(f"{len(samples)} series across {len(by_layer)} layers")
    for layer in sorted(by_layer):
        agg = by_layer[layer]
        print(f"  {layer:<12} {agg['series']:>5} series  {agg['events']:>10} events")
    counters = sorted(
        (s for s in samples if s.kind == "counter"),
        key=lambda s: (-s.value, s.name, s.labels),
    )
    if counters:
        print(f"top counters (of {len(counters)}):")
        for s in counters[: args.top]:
            print(f"  {s.value:>10}  {s.key()}")
    hists = [s for s in samples if s.kind == "histogram"]
    if hists:
        print("histograms:")
        for s in hists:
            count = s.value["count"]
            mean = s.value["sum"] / count if count else 0.0
            print(f"  {s.key()}: count={count} mean={mean:.2f}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = _as_snapshot(_load(args.before))
    after = _as_snapshot(_load(args.after))
    delta = snapshot_diff(before, after)
    changed = 0
    for key in sorted(delta):
        value = delta[key]
        if isinstance(value, dict):
            if value["count"]:
                print(f"  {key}: count +{value['count']} sum +{value['sum']}")
                changed += 1
        elif value:
            sign = "+" if value > 0 else ""
            print(f"  {key}: {sign}{value}")
            changed += 1
    print(f"{changed} series changed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect metrics snapshot files (JSON interchange format).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dump = sub.add_parser("dump", help="re-render a snapshot file")
    p_dump.add_argument("file")
    p_dump.add_argument("--format", choices=("json", "prom"), default="json")
    p_dump.add_argument("--prefix", help="only metrics whose name starts with this")
    p_dump.set_defaults(fn=_cmd_dump)

    p_sum = sub.add_parser("summarize", help="per-layer totals and top counters")
    p_sum.add_argument("file")
    p_sum.add_argument("--top", type=int, default=10)
    p_sum.set_defaults(fn=_cmd_summarize)

    p_diff = sub.add_parser("diff", help="changed series between two snapshots")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.set_defaults(fn=_cmd_diff)

    args = parser.parse_args(argv)
    return int(args.fn(args))
