"""Simulated host: CPU + NIC + protocol dispatch.

A host stands in for one of the paper's Opteron nodes.  It owns a
serialized :class:`~repro.simnet.cpu.CpuResource` (all kernel and iWARP
software costs are charged there), one or more NIC ports, and a registry
of network-layer protocol handlers keyed by the frame payload's
``PROTO`` tag (in practice a single IP stack).

The host itself knows nothing about IP/UDP/TCP/iWARP — those stacks from
:mod:`repro.transport` and :mod:`repro.core` bind themselves to a host
with :meth:`register_protocol`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .cpu import CpuResource
from .engine import Simulator
from .nic import NicPort
from .packet import Frame


class Host:
    """One endpoint node of the testbed."""

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        name: str = "",
        costs: Optional[Any] = None,
    ):
        self.sim = sim
        self.host_id = int(host_id)
        self.name = name or f"host{host_id}"
        self.cpu = CpuResource(sim, name=f"{self.name}.cpu")
        # The calibrated cost model (repro.models.costs.CostModel).  Held
        # here so every protocol layer bound to the host shares one model.
        self.costs = costs
        self.ports: List[NicPort] = []
        self._protocols: Dict[str, Any] = {}
        # Optional repro.simnet.trace.Tracer receiving WR-lifecycle spans
        # (repro.obs.spans.wr_span); None keeps span recording a no-op.
        self.wr_tracer: Optional[Any] = None

    # -- hardware ----------------------------------------------------------

    def add_port(self, queue_frames: int = 1000) -> NicPort:
        port = NicPort(
            self.sim, owner=self,
            name=f"{self.name}.nic{len(self.ports)}",
            queue_frames=queue_frames,
        )
        self.ports.append(port)
        return port

    @property
    def port(self) -> NicPort:
        """The primary NIC (all testbeds in this reproduction use one)."""
        if not self.ports:
            raise RuntimeError(f"{self.name} has no NIC port")
        return self.ports[0]

    # -- protocol binding ----------------------------------------------------

    def register_protocol(self, proto: str, handler: Any) -> None:
        """Bind a network-layer handler; ``handler.on_packet(payload, frame)``
        is invoked for every arriving frame whose payload declares that
        ``PROTO``."""
        if proto in self._protocols:
            raise ValueError(f"protocol {proto!r} already registered on {self.name}")
        self._protocols[proto] = handler

    def protocol(self, proto: str) -> Any:
        return self._protocols[proto]

    # -- frame I/O -------------------------------------------------------------

    def send_frame(self, frame: Frame, port: Optional[NicPort] = None) -> bool:
        return (port or self.port).enqueue(frame)

    def on_frame(self, frame: Frame, port: NicPort) -> None:
        if frame.dst not in (self.host_id,) and frame.dst != -1:
            # Not ours (can happen under broadcast flooding); ignore.
            return
        proto = getattr(frame.payload, "PROTO", None)
        handler = self._protocols.get(proto)
        if handler is None:
            return
        handler.on_packet(frame.payload, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name!r} id={self.host_id}>"
