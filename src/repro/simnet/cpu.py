"""Serialized per-host CPU resource.

The paper's software iWARP stack is **CPU-bound**, not link-bound: the
peak ~250 MB/s it reports on 10-GigE hardware is set by per-byte copy,
checksum and protocol-processing costs on the host, and the headline
bandwidth gaps between datagram-iWARP and TCP-based iWARP come from how
much CPU work each path does per message.  Modelling the CPU as a
serialized FIFO resource makes those effects emergent: when per-message
work exceeds the wire time, the CPU queue (not the link) paces the flow.

Work items submitted to a :class:`CpuResource` execute in submission
order; each occupies the CPU for its stated cost and its completion
callback fires when the CPU finishes it.
"""

from __future__ import annotations

from typing import Any, Callable

from .engine import Simulator


class CpuResource:
    """Non-preemptive FIFO CPU attached to a host.

    ``submit(cost_ns, fn, *args)`` charges ``cost_ns`` of CPU time and
    invokes ``fn(*args)`` when that work completes.  Back-to-back
    submissions queue behind one another, which is exactly how a single
    core servicing a protocol stack behaves.
    """

    def __init__(self, sim: Simulator, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self._free_at: int = 0
        self.busy_ns: int = 0          # total CPU time consumed
        self.work_items: int = 0       # number of items executed

    def submit(self, cost_ns: int, fn: Callable, *args: Any) -> int:
        """Charge ``cost_ns`` and schedule ``fn`` at completion.

        Returns the absolute simulated time at which the work finishes.
        A zero-cost submission still round-trips through the event queue
        (after any queued work) to preserve ordering.
        """
        cost_ns = int(cost_ns)
        if cost_ns < 0:
            raise ValueError(f"negative CPU cost: {cost_ns}")
        start = max(self.sim.now, self._free_at)
        done = start + cost_ns
        self._free_at = done
        self.busy_ns += cost_ns
        self.work_items += 1
        # Fire-and-forget: completion callbacks are never cancelled, so
        # the recyclable-event fast path applies (this is the hottest
        # allocation site in the bandwidth benchmarks).
        self.sim.call_at(done, fn, *args)
        return done

    def charge(self, cost_ns: int) -> int:
        """Charge CPU time with no completion callback (fire-and-forget
        accounting, e.g. interrupt overhead that delays later work)."""
        return self.submit(cost_ns, _noop)

    @property
    def free_at(self) -> int:
        """Absolute time at which currently queued work drains."""
        return max(self._free_at, self.sim.now)

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this CPU spent busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)


def _noop() -> None:
    return None
