"""Wire-level frame representation and header-size constants.

A :class:`Frame` is what traverses links: an Ethernet frame whose payload
is a network-layer object (normally an :class:`repro.transport.ip.IpPacket`).
Payloads are carried as Python object references — the simulator never
serializes protocol objects to bytes at the link layer — but every frame
carries an exact ``wire_size`` so serialization delays and queue
occupancy are computed from real on-the-wire byte counts.
"""

from __future__ import annotations

import itertools
from typing import Any

# Ethernet sizing.  ETH_OVERHEAD covers header (14) + FCS (4) + preamble/
# SFD (8) + inter-frame gap (12), i.e. the full per-frame cost on the wire.
ETH_HEADER = 14
ETH_FCS = 4
ETH_PREAMBLE_IFG = 20
ETH_OVERHEAD = ETH_HEADER + ETH_FCS + ETH_PREAMBLE_IFG  # 38 bytes
ETH_MIN_PAYLOAD = 46
ETH_MTU = 1500  # default link MTU (IP packet size limit)

_frame_ids = itertools.count(1)


class Frame:
    """One Ethernet frame in flight.

    ``src`` / ``dst`` are host ids (our stand-in for MAC addresses; the
    testbeds built here are small enough that a flat id space is exact).
    ``payload_size`` is the size in bytes of the encapsulated network-layer
    packet; ``wire_size`` adds Ethernet framing and padding.

    Implemented as a plain ``__slots__`` class (not a dataclass):
    bandwidth runs allocate one per MTU of traffic, so construction cost
    and per-instance dict overhead are on the hot path.  ``wire_size`` is
    precomputed at construction — frames are immutable once in flight.
    """

    __slots__ = ("src", "dst", "payload", "payload_size", "frame_id", "wire_size")

    def __init__(self, src: int, dst: int, payload: Any, payload_size: int,
                 frame_id: int = 0):
        if payload_size < 0:
            raise ValueError(f"negative payload size: {payload_size}")
        self.src = src
        self.dst = dst
        self.payload = payload
        self.payload_size = payload_size
        self.frame_id = frame_id if frame_id else next(_frame_ids)
        # Bytes this frame occupies on the wire, padding included.
        self.wire_size = (
            payload_size if payload_size >= ETH_MIN_PAYLOAD else ETH_MIN_PAYLOAD
        ) + ETH_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame #{self.frame_id} {self.src}->{self.dst} "
            f"{self.payload_size}B {type(self.payload).__name__}>"
        )


BROADCAST = -1


def serialization_ns(size_bytes: int, bandwidth_bps: float) -> int:
    """Time to clock ``size_bytes`` onto a link of ``bandwidth_bps``."""
    if bandwidth_bps <= 0:
        raise ValueError(f"non-positive bandwidth: {bandwidth_bps}")
    return int(round(size_bytes * 8 * 1e9 / bandwidth_bps))
