"""Discrete-event simulation engine.

The engine is the substrate everything else in :mod:`repro` runs on: it
stands in for the wall clock of the paper's two-node 10-GigE testbed.
Time is kept in **integer nanoseconds** so event ordering is exact and
runs are bit-for-bit reproducible.

Two programming styles are supported:

* **callback style** — ``sim.schedule(delay_ns, fn, *args)``; used by the
  protocol stacks, which are naturally event-driven.
* **process style** — generator coroutines driven by :class:`Process`
  (a deliberately small simpy-like facility); used by applications and
  benchmarks, which read much better as sequential code::

      def client(sim, sock):
          yield sim.timeout(1 * MS)
          fut = sock.recv_future()
          data, src = yield fut

Yielding an ``int`` sleeps that many nanoseconds; yielding a
:class:`Future` suspends until its result is set.

Hot-path notes
--------------

The heap stores ``(time, seq, event)`` tuples so ordering is decided by
C-level integer comparisons — ``Event.__lt__`` is never consulted by the
event loop (``seq`` is unique, so comparison never reaches the event).

Cancellation is *lazy*: :meth:`Event.cancel` marks a tombstone that the
run loop discards when popped.  A dead-entry counter triggers an in-place
compaction once tombstones dominate the heap (retransmission timers that
are re-armed on every ACK would otherwise grow it without bound).

Fire-and-forget callbacks scheduled through :meth:`Simulator.call_after`
/ :meth:`Simulator.call_at` return no handle, so their ``Event`` shells
are recycled through a free list.  Handles returned by ``schedule``/
``at`` are never recycled — the caller may hold one indefinitely and
``cancel()`` it long after it fired.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

# Convenient time-unit multipliers (all in nanoseconds).
NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

#: Tombstone count below which compaction is never attempted (small heaps
#: are cheap to pop through; rebuilding them would cost more than it saves).
_COMPACT_MIN_DEAD = 256

#: Maximum number of fired event shells kept for reuse.
_FREE_LIST_MAX = 1024


def _noop() -> None:
    """Placeholder callback for recycled event shells."""


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule` so the
    caller can cancel it (e.g. a retransmission timer that is no longer
    needed)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_recyclable")

    def __init__(self, time: int, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Owning simulator while the event sits in the heap; cleared when
        # it fires (or is discarded) so late cancels don't skew the
        # tombstone accounting.
        self._sim: Optional["Simulator"] = None
        # True only for events created via call_after/call_at, whose
        # handles never escape to callers and are safe to recycle.
        self._recyclable = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly,
        and safe to call after the event has fired (a no-op)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Future:
    """A one-shot value a :class:`Process` can wait on.

    Protocol objects hand futures to application processes ("the next
    datagram", "connection established", ...).  Multiple waiters are
    allowed; all are resumed with the same result.
    """

    __slots__ = ("sim", "done", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.done = False
        self.value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    def set_result(self, value: Any = None) -> None:
        if self.done:
            raise SimulationError("Future already resolved")
        self.done = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            # Resume waiters through the event queue so resumption order
            # is deterministic and re-entrancy is impossible.
            self.sim.call_after(0, cb, value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        if self.done:
            self.sim.call_after(0, cb, self.value)
        else:
            self._callbacks.append(cb)


class Timeout:
    """Yieldable sleep marker (``yield sim.timeout(10 * US)``)."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = int(delay)


class AnyOf:
    """Wait for the first of several futures; yields ``(index, value)``."""

    __slots__ = ("futures",)

    def __init__(self, futures: Iterable[Future]):
        self.futures = list(futures)


class Process:
    """Drives a generator coroutine inside the simulation.

    The generator may yield:

    * an ``int`` or :class:`Timeout` — sleep,
    * a :class:`Future` — wait for its value (sent back into the generator),
    * an :class:`AnyOf` — wait for the first of several futures,
    * another :class:`Process` — wait for it to finish (its return value is
      sent back).

    When the generator returns, :attr:`result` holds its return value and
    :attr:`finished` becomes a resolved :class:`Future`.
    """

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.result: Any = None
        self.finished = Future(sim)
        self._fired = False
        sim.call_after(0, self._step, None)

    def _step(self, send_value: Any) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.result = stop.value
            self.finished.set_result(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, int):
            self.sim.call_after(yielded, self._step, None)
        elif isinstance(yielded, Timeout):
            self.sim.call_after(yielded.delay, self._step, None)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._step)
        elif isinstance(yielded, Process):
            yielded.finished.add_callback(self._step)
        elif isinstance(yielded, AnyOf):
            self._wait_any(yielded)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _wait_any(self, anyof: AnyOf) -> None:
        fired = {"done": False}

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if fired["done"]:
                    return
                fired["done"] = True
                self._step((i, value))

            return cb

        for i, fut in enumerate(anyof.futures):
            fut.add_callback(make_cb(i))


#: Heap entry: ``(time, seq, event)``.  Ordering is settled by the two
#: leading ints; the event itself is never compared.
_HeapEntry = Tuple[int, int, Event]


class Simulator:
    """The event loop.  One instance per experiment run."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self.events_processed: int = 0
        # Tombstone accounting for lazily-cancelled entries still queued.
        self._dead: int = 0
        # Recycled shells for handle-less events (call_after/call_at).
        self._free: List[Event] = []
        # Lazily populated by repro.obs.sim_registry (a support layer the
        # engine must not import); None means no registry attached yet.
        self.obs_registry: Optional[Any] = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        return self.at(self.now + int(delay_ns), fn, *args)

    def at(self, time_ns: int, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time_ns``."""
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        self._seq += 1
        ev = Event(int(time_ns), self._seq, fn, args)
        ev._sim = self
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def call_after(self, delay_ns: int, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellable handle is
        returned, which lets the engine recycle the event shell."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        self.call_at(self.now + int(delay_ns), fn, *args)

    def call_at(self, time_ns: int, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`at`: no cancellable handle is returned."""
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        t = int(time_ns)
        self._seq += 1
        seq = self._seq
        free = self._free
        if free:
            ev = free.pop()
            ev.time = t
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(t, seq, fn, args)
            ev._recyclable = True
        ev._sim = self
        heapq.heappush(self._heap, (t, seq, ev))

    # -- tombstone bookkeeping ------------------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is heap-resident."""
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify in place (the heap list
        identity is preserved so a run loop holding a reference keeps
        seeing the live heap)."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._dead = 0

    # -- process/future helpers -----------------------------------------

    def timeout(self, delay_ns: int) -> Timeout:
        return Timeout(delay_ns)

    def future(self) -> Future:
        return Future(self)

    def process(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        return Process(self, gen, name)

    def any_of(self, futures: Iterable[Future]) -> AnyOf:
        return AnyOf(futures)

    # -- running ---------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue is empty, the clock passes
        ``until``, or ``max_events`` have been processed.  Returns the
        number of events processed by this call."""
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        free = self._free
        while heap:
            entry = heap[0]
            if until is not None and entry[0] > until:
                self.now = until
                break
            heappop(heap)
            ev = entry[2]
            if ev.cancelled:
                self._dead -= 1
                continue
            self.now = entry[0]
            # Detach before firing: a cancel() from inside the callback
            # (or long after) must be a no-op on the heap accounting.
            ev._sim = None
            fn = ev.fn
            args = ev.args
            if ev._recyclable and len(free) < _FREE_LIST_MAX:
                # Shell goes back to the pool *before* the callback runs;
                # fn/args are already saved in locals, so reuse by a
                # call_after issued inside the callback is safe.
                ev.fn = _noop
                ev.args = ()
                free.append(ev)
            fn(*args)
            processed += 1
            self.events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        else:
            if until is not None and until > self.now:
                self.now = until
        return processed

    def run_until(self, fut: Future, limit: Optional[int] = None) -> Any:
        """Run until ``fut`` resolves; returns its value.

        Raises :class:`SimulationError` if the event queue drains (or the
        optional time ``limit`` passes) first — that always indicates a
        deadlock in the experiment being simulated.
        """
        while not fut.done:
            if not self._heap:
                raise SimulationError("event queue drained before future resolved")
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"future unresolved at time limit {limit}")
            self.run(max_events=1)
        # Drain the zero-delay resumption cascade so callers observe a
        # settled state (e.g. process bookkeeping done at the same instant).
        return fut.value

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)
