"""Point-to-point full-duplex link.

A link joins two ports (host NICs or switch ports).  Each direction has
independent capacity: bandwidth sets serialization time, ``delay_ns`` is
propagation.  The *sending port* owns the transmit queue and performs
serialization (see :mod:`repro.simnet.nic`); the link only knows who is
on each end and the physical parameters.
"""

from __future__ import annotations

from typing import Dict

from .packet import ETH_MTU, serialization_ns


class Link:
    """Physical parameters of a cable plus its two endpoints.

    Endpoints are attached with :meth:`attach`; each must expose
    ``on_frame(frame)`` (called when a frame fully arrives) and have the
    link assigned to its ``link`` attribute by the caller.
    """

    def __init__(
        self,
        bandwidth_bps: float = 10e9,
        delay_ns: int = 500,
        mtu: int = ETH_MTU,
        name: str = "",
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_ns < 0:
            raise ValueError(f"negative propagation delay: {delay_ns}")
        if mtu < 576:
            # 576 is the minimum IP MTU; anything smaller breaks fragmentation.
            raise ValueError(f"MTU too small: {mtu}")
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay_ns = int(delay_ns)
        self.mtu = int(mtu)
        self.name = name
        self._a = None
        self._b = None
        # Aggregate traffic counters (both directions), maintained by the
        # transmitting NicPort; exported by the cable() metrics collector.
        self.frames = 0
        self.bytes = 0
        # Serialization-time memo: traffic is dominated by a handful of
        # distinct wire sizes (full MTU, minimum frame, ACKs), so each is
        # computed once — the cached value is bit-identical to calling
        # packet.serialization_ns directly.
        self._ser_cache: Dict[int, int] = {}

    def serialization_ns(self, wire_size: int) -> int:
        """Time to clock ``wire_size`` bytes onto this link (memoized)."""
        t = self._ser_cache.get(wire_size)
        if t is None:
            t = self._ser_cache[wire_size] = serialization_ns(
                wire_size, self.bandwidth_bps
            )
        return t

    def attach(self, a, b) -> None:
        """Connect the two endpoint ports."""
        if self._a is not None or self._b is not None:
            raise RuntimeError(f"link {self.name!r} already attached")
        self._a, self._b = a, b

    def peer_of(self, port):
        """The port on the other end from ``port``."""
        if port is self._a:
            return self._b
        if port is self._b:
            return self._a
        raise ValueError("port is not attached to this link")

    @property
    def attached(self) -> bool:
        return self._a is not None and self._b is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gbps = self.bandwidth_bps / 1e9
        return f"<Link {self.name!r} {gbps:g}Gb/s delay={self.delay_ns}ns mtu={self.mtu}>"
