"""Testbed construction helpers.

Every experiment in the paper runs on two nodes joined by a 10-GigE
switch; :func:`build_testbed` assembles exactly that (generalized to N
hosts for the scalability studies).  The returned :class:`Testbed`
exposes the simulator, hosts, switch, and convenience hooks for loss
injection at any NIC egress queue — the same injection point as the
paper's ``tc`` configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..models.costs import CostModel, default_cost_model
from ..models.platform import Platform
from ..obs import Registry, sim_registry
from .engine import Simulator
from .faults import FaultModel
from .host import Host
from .link import Link
from .loss import LossModel
from .nic import cable
from .switch import Switch


@dataclass
class Testbed:
    """A constructed topology, ready for protocol stacks to bind to."""

    sim: Simulator
    platform: Platform
    costs: CostModel
    hosts: List[Host]
    switch: Optional[Switch]

    def host(self, i: int) -> Host:
        return self.hosts[i]

    @property
    def registry(self) -> Registry:
        """The simulator's metrics registry (see :mod:`repro.obs`)."""
        return sim_registry(self.sim)

    def set_egress_loss(self, host_index: int, model: LossModel) -> None:
        """Drop frames leaving ``hosts[host_index]`` per ``model`` —
        equivalent to the paper's ``tc`` FIFO-with-drop on that node."""
        self.hosts[host_index].port.set_loss_model(model)

    def set_switch_loss(self, toward_host_index: int, model: LossModel) -> None:
        """Drop frames on the switch port facing a host (congested-core
        emulation)."""
        if self.switch is None:
            raise RuntimeError("testbed has no switch")
        self.switch.ports[toward_host_index].set_loss_model(model)

    def set_egress_faults(self, host_index: int, model: Optional[FaultModel]) -> None:
        """Attach a composable fault model (reorder, duplication, delay
        jitter, link flap — see :mod:`repro.simnet.faults`) at
        ``hosts[host_index]``'s NIC egress, the same injection point as
        :meth:`set_egress_loss`.  ``None`` detaches."""
        self.hosts[host_index].port.set_fault_model(model)

    def set_switch_faults(self, toward_host_index: int, model: Optional[FaultModel]) -> None:
        """Attach a fault model on the switch port facing a host."""
        if self.switch is None:
            raise RuntimeError("testbed has no switch")
        self.switch.ports[toward_host_index].set_fault_model(model)


def build_testbed(
    n_hosts: int = 2,
    platform: Optional[Platform] = None,
    costs: Optional[CostModel] = None,
    use_switch: bool = True,
    sim: Optional[Simulator] = None,
    metrics: Optional[bool] = None,
) -> Testbed:
    """Build N hosts star-wired through one switch (or, with
    ``use_switch=False`` and exactly two hosts, a direct cable).

    ``metrics`` pins the simulator's :mod:`repro.obs` registry state
    (``None`` defers to the ``IWARP_OBS`` environment switch).  The
    registry is resolved *before* any host or port exists so every
    component collector sees the final enabled state."""
    if n_hosts < 2:
        raise ValueError("a testbed needs at least two hosts")
    platform = platform or Platform.paper_testbed()
    costs = costs or default_cost_model()
    sim = sim or Simulator()
    sim_registry(sim, enable=metrics)

    hosts = [Host(sim, host_id=i, costs=costs) for i in range(n_hosts)]
    for h in hosts:
        h.add_port(queue_frames=platform.nic_queue_frames)

    def new_link(name: str) -> Link:
        return Link(
            bandwidth_bps=platform.link_bandwidth_bps,
            delay_ns=platform.link_delay_ns,
            mtu=platform.mtu,
            name=name,
        )

    if not use_switch:
        if n_hosts != 2:
            raise ValueError("direct cabling only supports exactly two hosts")
        cable(sim, hosts[0].port, hosts[1].port, new_link("h0-h1"))
        return Testbed(sim, platform, costs, hosts, switch=None)

    switch = Switch(sim, forward_delay_ns=platform.switch_delay_ns)
    for h in hosts:
        sw_port = switch.add_port(
            hosts_behind=[h.host_id], queue_frames=platform.nic_queue_frames
        )
        cable(sim, h.port, sw_port, new_link(f"h{h.host_id}-sw"))
    # Each switch port must also know how to reach every *other* host:
    # with a star topology the table built in add_port (one host per
    # port) is already complete.
    return Testbed(sim, platform, costs, hosts, switch=switch)
