"""Packet-loss models.

The paper injects loss with Linux ``tc``: a FIFO queue that "normally
dequeues messages as fast as they can be delivered to the underlying
hardware was configured to drop packets at a defined rate" (§VI.A.2).
We attach loss models at the same point — the NIC egress queue — so a
dropped packet never consumes wire time, exactly like ``tc`` netem.

All models draw from their own seeded :class:`random.Random` so loss
patterns are reproducible and independent of any other randomness.

Every :class:`LossModel` exposes the same two counters — ``seen`` (all
frames offered) and ``dropped`` (frames the model discarded) — kept by
the shared base class; subclasses only implement the per-frame decision
in :meth:`LossModel._decide`.
"""

from __future__ import annotations

import random

from .packet import Frame


class LossModel:
    """Base class: decides, per frame, whether the egress queue drops it.

    Maintains the uniform ``seen``/``dropped`` counters for every
    subclass; the drop decision itself lives in :meth:`_decide`.  When
    :meth:`_decide` runs, ``seen`` has already been incremented, so it
    doubles as the 1-based index of the frame under consideration.
    """

    def __init__(self) -> None:
        self.seen = 0
        self.dropped = 0

    def should_drop(self, frame: Frame) -> bool:
        self.seen += 1
        if self._decide(frame):
            self.dropped += 1
            return True
        return False

    def _decide(self, frame: Frame) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the model to its initial state (reseeding RNGs)."""
        self.seen = 0
        self.dropped = 0


class NoLoss(LossModel):
    """Lossless egress (the default)."""

    def _decide(self, frame: Frame) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent drop with probability ``rate`` — the model the paper's
    ``tc`` configuration implements (0.1 %, 0.5 %, 1 %, 5 % in Figs. 7–8)."""

    def __init__(self, rate: float, seed: int = 0):
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed)

    def _decide(self, frame: Frame) -> bool:
        return self.rate > 0.0 and self._rng.random() < self.rate

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (good/bad channel).

    WAN loss is bursty rather than independent; the Gilbert-Elliott model
    is the standard way to express that.  ``p_gb``/``p_bg`` are the
    per-frame transition probabilities good→bad and bad→good;
    ``loss_good``/``loss_bad`` the drop probabilities within each state.
    """

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int = 0,
    ):
        super().__init__()
        for name, v in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.seed = seed
        self._rng = random.Random(seed)
        self.bad = False

    def average_loss_rate(self) -> float:
        """Stationary loss rate implied by the chain parameters."""
        denom = self.p_gb + self.p_bg
        if denom == 0:
            return self.loss_bad if self.bad else self.loss_good
        pi_bad = self.p_gb / denom
        return pi_bad * self.loss_bad + (1 - pi_bad) * self.loss_good

    def _decide(self, frame: Frame) -> bool:
        if self.bad:
            if self._rng.random() < self.p_bg:
                self.bad = False
        else:
            if self._rng.random() < self.p_gb:
                self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        return rate > 0.0 and self._rng.random() < rate

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self.bad = False


class PatternLoss(LossModel):
    """Deterministically drop every ``n``-th frame after ``offset``
    (frame indices count from 1: the first drop hits frame
    ``offset + every_nth``).

    Used by tests that need exact, reproducible loss placement — e.g.
    "drop precisely the last segment of a Write-Record message".
    """

    def __init__(self, every_nth: int, offset: int = 0):
        super().__init__()
        if every_nth < 1:
            raise ValueError(f"every_nth must be >= 1, got {every_nth}")
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self.every_nth = every_nth
        self.offset = offset

    def _decide(self, frame: Frame) -> bool:
        # ``seen`` was just incremented by the base class, so it is this
        # frame's 1-based index.
        return (
            self.seen > self.offset
            and (self.seen - self.offset) % self.every_nth == 0
        )


class ExplicitLoss(LossModel):
    """Drop exactly the frames whose 1-based egress index is listed.

    The sharpest tool for unit tests: "drop frames 3 and 7" is stated
    directly instead of being reverse-engineered from probabilities.
    """

    def __init__(self, indices):
        super().__init__()
        self.indices = set(int(i) for i in indices)
        if any(i < 1 for i in self.indices):
            raise ValueError("frame indices are 1-based")

    def _decide(self, frame: Frame) -> bool:
        return self.seen in self.indices


class BitErrorModel:
    """Per-datagram payload corruption.

    Models wire corruption that slips past link-layer checks — precisely
    the failure datagram-iWARP's mandatory CRC32 exists to catch
    (§IV.B item 6), especially with the UDP checksum disabled as the
    paper recommends.  ``apply`` returns the (possibly corrupted) bytes;
    the original buffer is never mutated because in-flight data is
    shared with the sender in the simulation.
    """

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed ^ 0x5EED)
        self.corrupted = 0
        self.seen = 0

    def apply(self, data: bytes) -> bytes:
        self.seen += 1
        if not data or self.rate <= 0.0 or self._rng.random() >= self.rate:
            return data
        self.corrupted += 1
        index = self._rng.randrange(len(data))
        flipped = bytearray(data)
        flipped[index] ^= 1 << self._rng.randrange(8)
        return bytes(flipped)

    def reset(self) -> None:
        self._rng = random.Random(self.seed ^ 0x5EED)
        self.corrupted = 0
        self.seen = 0
