"""Packet-loss models.

The paper injects loss with Linux ``tc``: a FIFO queue that "normally
dequeues messages as fast as they can be delivered to the underlying
hardware was configured to drop packets at a defined rate" (§VI.A.2).
We attach loss models at the same point — the NIC egress queue — so a
dropped packet never consumes wire time, exactly like ``tc`` netem.

All models draw from their own seeded :class:`random.Random` so loss
patterns are reproducible and independent of any other randomness.
"""

from __future__ import annotations

import random
from typing import Optional

from .packet import Frame


class LossModel:
    """Base class: decides, per frame, whether the egress queue drops it."""

    def should_drop(self, frame: Frame) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the model to its initial state (reseeding RNGs)."""


class NoLoss(LossModel):
    """Lossless egress (the default)."""

    def should_drop(self, frame: Frame) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent drop with probability ``rate`` — the model the paper's
    ``tc`` configuration implements (0.1 %, 0.5 %, 1 %, 5 % in Figs. 7–8)."""

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed)
        self.dropped = 0
        self.seen = 0

    def should_drop(self, frame: Frame) -> bool:
        self.seen += 1
        if self.rate > 0.0 and self._rng.random() < self.rate:
            self.dropped += 1
            return True
        return False

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self.dropped = 0
        self.seen = 0


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (good/bad channel).

    WAN loss is bursty rather than independent; the Gilbert-Elliott model
    is the standard way to express that.  ``p_gb``/``p_bg`` are the
    per-frame transition probabilities good→bad and bad→good;
    ``loss_good``/``loss_bad`` the drop probabilities within each state.
    """

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int = 0,
    ):
        for name, v in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.seed = seed
        self._rng = random.Random(seed)
        self.bad = False
        self.dropped = 0
        self.seen = 0

    def average_loss_rate(self) -> float:
        """Stationary loss rate implied by the chain parameters."""
        denom = self.p_gb + self.p_bg
        if denom == 0:
            return self.loss_bad if self.bad else self.loss_good
        pi_bad = self.p_gb / denom
        return pi_bad * self.loss_bad + (1 - pi_bad) * self.loss_good

    def should_drop(self, frame: Frame) -> bool:
        self.seen += 1
        if self.bad:
            if self._rng.random() < self.p_bg:
                self.bad = False
        else:
            if self._rng.random() < self.p_gb:
                self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        if rate > 0.0 and self._rng.random() < rate:
            self.dropped += 1
            return True
        return False

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self.bad = False
        self.dropped = 0
        self.seen = 0


class PatternLoss(LossModel):
    """Deterministically drop every ``n``-th frame (counting from 1).

    Used by tests that need exact, reproducible loss placement — e.g.
    "drop precisely the last segment of a Write-Record message".
    """

    def __init__(self, every_nth: int, offset: int = 0):
        if every_nth < 1:
            raise ValueError(f"every_nth must be >= 1, got {every_nth}")
        self.every_nth = every_nth
        self.offset = offset
        self._count = 0
        self.dropped = 0

    def should_drop(self, frame: Frame) -> bool:
        self._count += 1
        if (self._count - self.offset) % self.every_nth == 0 and self._count > self.offset:
            self.dropped += 1
            return True
        return False

    def reset(self) -> None:
        self._count = 0
        self.dropped = 0


class BitErrorModel:
    """Per-datagram payload corruption.

    Models wire corruption that slips past link-layer checks — precisely
    the failure datagram-iWARP's mandatory CRC32 exists to catch
    (§IV.B item 6), especially with the UDP checksum disabled as the
    paper recommends.  ``apply`` returns the (possibly corrupted) bytes;
    the original buffer is never mutated because in-flight data is
    shared with the sender in the simulation.
    """

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed ^ 0x5EED)
        self.corrupted = 0
        self.seen = 0

    def apply(self, data: bytes) -> bytes:
        self.seen += 1
        if not data or self.rate <= 0.0 or self._rng.random() >= self.rate:
            return data
        self.corrupted += 1
        index = self._rng.randrange(len(data))
        flipped = bytearray(data)
        flipped[index] ^= 1 << self._rng.randrange(8)
        return bytes(flipped)

    def reset(self) -> None:
        self._rng = random.Random(self.seed ^ 0x5EED)
        self.corrupted = 0
        self.seen = 0


class ExplicitLoss(LossModel):
    """Drop exactly the frames whose 1-based egress index is listed.

    The sharpest tool for unit tests: "drop frames 3 and 7" is stated
    directly instead of being reverse-engineered from probabilities.
    """

    def __init__(self, indices):
        self.indices = set(int(i) for i in indices)
        if any(i < 1 for i in self.indices):
            raise ValueError("frame indices are 1-based")
        self._count = 0
        self.dropped = 0

    def should_drop(self, frame: Frame) -> bool:
        self._count += 1
        if self._count in self.indices:
            self.dropped += 1
            return True
        return False

    def reset(self) -> None:
        self._count = 0
        self.dropped = 0
