"""Network interface with a FIFO egress queue.

The NIC is where the paper's loss injection lives (a ``tc`` FIFO queue in
front of the hardware, §VI.A.2), so the egress path is modelled
explicitly:

1. the protocol stack enqueues a frame (drop-tail if the queue is full,
   loss-model drop if one is attached — both before any wire time is
   spent, like ``tc``);
2. when the transmitter is idle the head frame is serialized for
   ``wire_size * 8 / bandwidth``;
3. after propagation delay the frame arrives at the link peer's
   ``on_frame``.

Reception is passive: arriving frames are handed to the owner (host or
switch) immediately; receive-side CPU costs are charged by the protocol
stacks, which know what processing each frame actually needs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional, Tuple, Union

from typing import TYPE_CHECKING

from ..obs import sim_registry
from .engine import Simulator
from .link import Link
from .loss import LossModel, NoLoss
from .packet import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .faults import FaultModel

#: Maximum number of back-to-back frames whose serialization-finish
#: events are scheduled in one go when the transmitter wakes up.
TX_BATCH = 8


class NicPort:
    """One port: egress queue + transmitter + attachment to a link."""

    def __init__(
        self,
        sim: Simulator,
        owner,
        name: str = "nic",
        queue_frames: int = 1000,
    ):
        if queue_frames < 1:
            raise ValueError(f"queue must hold at least one frame, got {queue_frames}")
        self.sim = sim
        self.owner = owner                     # object with .on_frame(frame, port)
        self.name = name
        self.queue_frames = queue_frames
        self.link: Optional[Link] = None
        self.loss_model: LossModel = NoLoss()
        self.fault_model: Optional["FaultModel"] = None
        self._queue: Deque[Frame] = deque()
        self._transmitting = False
        self._batch_left = 0               # finish events outstanding in the batch
        self._peer: Optional["NicPort"] = None  # lazily cached link peer
        # Counters for tests and reports.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.drops_queue_full = 0
        self.drops_loss_model = 0
        self.drops_fault = 0
        self.dup_frames = 0
        self.held_frames = 0
        self.queue_hwm = 0                     # egress queue high-water mark
        self.tracer = None                     # optional repro.simnet.trace.Tracer
        obs = sim_registry(sim)
        if obs.enabled:
            obs.add_collector(self._obs_samples)

    # -- egress -----------------------------------------------------------

    def enqueue(self, frame: Frame) -> bool:
        """Queue a frame for transmission.  Returns False if dropped.

        A frame held back by the fault model (delay/reorder) counts as
        accepted: it enters the FIFO when its hold time elapses.
        """
        if self.link is None:
            raise RuntimeError(f"port {self.name!r} is not cabled to a link")
        if self.loss_model.should_drop(frame):
            self.drops_loss_model += 1
            if self.tracer:
                self.tracer.record("drop.loss", port=self.name, frame=frame)
            return False
        if self.fault_model is None:
            return self._admit(frame)
        emissions = self.fault_model.admit(frame, self.sim.now)
        if not emissions:
            self.drops_fault += 1
            if self.tracer:
                self.tracer.record("drop.fault", port=self.name, frame=frame)
            return False
        if len(emissions) > 1:
            self.dup_frames += len(emissions) - 1
        accepted = False
        for delay, out in emissions:
            if delay <= 0:
                accepted = self._admit(out) or accepted
            else:
                self.held_frames += 1
                self.sim.schedule(delay, self._admit, out)
                accepted = True
        return accepted

    def _admit(self, frame: Frame) -> bool:
        """Append to the egress FIFO (drop-tail) and kick the transmitter."""
        if len(self._queue) >= self.queue_frames:
            self.drops_queue_full += 1
            if self.tracer:
                self.tracer.record("drop.queue", port=self.name, frame=frame)
            return False
        self._queue.append(frame)
        if len(self._queue) > self.queue_hwm:
            self.queue_hwm = len(self._queue)
        if not self._transmitting:
            self._start_next()
        return True

    def _start_next(self) -> None:
        """Wake the transmitter: serialize the head frame and pre-schedule
        finish events for up to :data:`TX_BATCH` back-to-back frames.

        Only the head frame leaves the FIFO here; each successor is
        popped by its predecessor's ``_finish_tx`` — the exact instant
        its own serialization starts — so drop-tail occupancy is
        identical to a chained one-frame-at-a-time scheduler.
        """
        queue = self._queue
        if not queue:
            self._transmitting = False
            return
        self._transmitting = True
        sim = self.sim
        link = self.link
        n = len(queue)
        if n > TX_BATCH:
            n = TX_BATCH
        self._batch_left = n
        first = queue.popleft()
        t = sim.now + link.serialization_ns(first.wire_size)
        sim.call_at(t, self._finish_tx, first)
        for i in range(n - 1):
            frame = queue[i]
            t += link.serialization_ns(frame.wire_size)
            sim.call_at(t, self._finish_tx, frame)

    def _finish_tx(self, frame: Frame) -> None:
        self.tx_frames += 1
        self.tx_bytes += frame.wire_size
        link = self.link
        link.frames += 1
        link.bytes += frame.wire_size
        if self.tracer:
            self.tracer.record("tx", port=self.name, frame=frame)
        peer = self._peer
        if peer is None:
            peer = self._peer = link.peer_of(self)
        self.sim.call_after(link.delay_ns, peer.deliver, frame)
        self._batch_left -= 1
        if self._batch_left:
            # The successor's serialization starts this instant; it exits
            # the FIFO now (its finish event is already on the heap).
            self._queue.popleft()
        else:
            self._start_next()

    # -- ingress ----------------------------------------------------------

    def deliver(self, frame: Frame) -> None:
        """Called by the link when a frame fully arrives at this port."""
        self.rx_frames += 1
        self.rx_bytes += frame.wire_size
        if self.tracer:
            self.tracer.record("rx", port=self.name, frame=frame)
        self.owner.on_frame(frame, self)

    # -- configuration ----------------------------------------------------

    def set_loss_model(self, model: LossModel) -> None:
        self.loss_model = model

    def set_fault_model(self, model: Optional["FaultModel"]) -> None:
        """Attach a composable fault model (reorder/dup/delay/flap) at
        the same egress point as the loss model; None detaches."""
        self.fault_model = model

    def queue_depth(self) -> int:
        return len(self._queue)

    # -- metrics -----------------------------------------------------------

    def _obs_samples(
        self,
    ) -> Iterator[Tuple[str, Dict[str, str], str, Union[int, float]]]:
        """Pull collector for the registry: the port's plain-int counters
        (which remain the source of truth for tests), its queue
        high-water mark, and whatever loss/fault models are attached."""
        labels = {"port": self.name}
        yield ("simnet.port.tx_frames", labels, "counter", self.tx_frames)
        yield ("simnet.port.tx_bytes", labels, "counter", self.tx_bytes)
        yield ("simnet.port.rx_frames", labels, "counter", self.rx_frames)
        yield ("simnet.port.rx_bytes", labels, "counter", self.rx_bytes)
        yield ("simnet.port.drops_queue_full", labels, "counter", self.drops_queue_full)
        yield ("simnet.port.drops_loss_model", labels, "counter", self.drops_loss_model)
        yield ("simnet.port.drops_fault", labels, "counter", self.drops_fault)
        yield ("simnet.port.dup_frames", labels, "counter", self.dup_frames)
        yield ("simnet.port.held_frames", labels, "counter", self.held_frames)
        yield ("simnet.port.queue_hwm", labels, "gauge", self.queue_hwm)
        if self.loss_model.seen:
            yield ("simnet.loss.seen", labels, "counter", self.loss_model.seen)
            yield ("simnet.loss.dropped", labels, "counter", self.loss_model.dropped)
        if self.fault_model is not None:
            stats = self.fault_model.stats()
            for key in sorted(stats):
                yield ("simnet.faults." + key, labels, "counter", stats[key])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NicPort {self.name!r} q={len(self._queue)} tx={self.tx_frames} rx={self.rx_frames}>"


def cable(sim: Simulator, port_a: NicPort, port_b: NicPort, link: Link) -> Link:
    """Wire two ports together with ``link``."""
    link.attach(port_a, port_b)
    port_a.link = link
    port_b.link = link
    obs = sim_registry(sim)
    if obs.enabled:
        name = link.name or f"{port_a.name}-{port_b.name}"

        def samples() -> Iterator[Tuple[str, Dict[str, str], str, Union[int, float]]]:
            labels = {"link": name}
            yield ("simnet.link.tx_frames", labels, "counter", link.frames)
            yield ("simnet.link.tx_bytes", labels, "counter", link.bytes)

        obs.add_collector(samples)
    return link
