"""Store-and-forward Ethernet switch.

The paper's testbed connects the two nodes through a Fujitsu 10-GigE
switch; store-and-forward adds one extra serialization per hop, which is
a visible component of small-message latency.  The switch here forwards
by destination host id using a static table populated as ports are added
(flooding is unnecessary in the closed testbeds we build).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .engine import Simulator
from .nic import NicPort
from .packet import BROADCAST, Frame


class Switch:
    """N-port store-and-forward switch with per-port egress queues."""

    def __init__(self, sim: Simulator, name: str = "switch", forward_delay_ns: int = 300):
        if forward_delay_ns < 0:
            raise ValueError(f"negative forwarding delay: {forward_delay_ns}")
        self.sim = sim
        self.name = name
        # Fixed lookup/crossbar latency per forwarded frame (cut-through
        # silicon would be lower; 300 ns is typical 10GE store-and-forward).
        self.forward_delay_ns = forward_delay_ns
        self.ports: List[NicPort] = []
        self._table: Dict[int, NicPort] = {}
        self.forwarded = 0
        self.unroutable = 0

    def add_port(self, hosts_behind: Iterable[int], queue_frames: int = 1000) -> NicPort:
        """Create a port; frames for any host id in ``hosts_behind`` go out it."""
        port = NicPort(
            self.sim, owner=self, name=f"{self.name}.p{len(self.ports)}",
            queue_frames=queue_frames,
        )
        self.ports.append(port)
        for hid in hosts_behind:
            if hid in self._table:
                raise ValueError(f"host {hid} already routed on {self.name}")
            self._table[hid] = port
        return port

    def on_frame(self, frame: Frame, ingress: NicPort) -> None:
        if frame.dst == BROADCAST:
            for port in self.ports:
                if port is not ingress:
                    self.sim.call_after(self.forward_delay_ns, port.enqueue, frame)
            self.forwarded += 1
            return
        out = self._table.get(frame.dst)
        if out is None or out is ingress:
            self.unroutable += 1
            return
        self.forwarded += 1
        self.sim.call_after(self.forward_delay_ns, out.enqueue, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name!r} ports={len(self.ports)} fwd={self.forwarded}>"
