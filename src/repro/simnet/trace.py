"""Event tracing for tests and debugging.

A :class:`Tracer` can be attached to NIC ports (``port.tracer = tracer``)
and used directly by protocol layers.  It records ``(time, kind, fields)``
tuples; tests assert on them ("exactly three fragments left host A",
"the retransmission happened after one RTO") without poking at protocol
internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .engine import Simulator


@dataclass
class TraceRecord:
    time: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time}ns] {self.kind} {kv}"


class Tracer:
    """Append-only trace buffer with simple filtering."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped_records = 0

    def record(self, kind: str, **fields: Any) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped_records += 1
            return
        self.records.append(TraceRecord(self.sim.now, kind, fields))

    def select(
        self,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        **fields: Any,
    ) -> List[TraceRecord]:
        """Records matching ``kind``, the optional ``predicate``, and
        exact equality on any keyword ``fields`` (e.g.
        ``select("wr.span", stage="retransmit")``)."""
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        for key, want in fields.items():
            out = [r for r in out if r.fields.get(key) == want]
        return list(out)

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def clear(self) -> None:
        self.records.clear()
        self.dropped_records = 0
