"""Composable fault injection at the NIC egress queue.

Loss (:mod:`repro.simnet.loss`) models the paper's ``tc`` drop
configuration; real networks also **reorder**, **duplicate**, **delay**
and **flap**.  The models here express those faults at the same
injection point — the NIC egress queue, before any wire time is spent —
so every experiment that sweeps loss can sweep the rest of the failure
space too (the netem feature set, seeded and reproducible).

A :class:`FaultModel` maps one offered frame to zero or more scheduled
emissions ``(delay_ns, frame)``:

* ``[]`` — the frame is dropped (link down, random early drop, ...);
* ``[(0, frame)]`` — pass-through;
* ``[(d, frame)]`` with ``d > 0`` — the frame is held for ``d`` ns
  before entering the egress FIFO, letting later frames overtake it
  (netem-style delay/reorder);
* ``[(0, frame), (0, frame)]`` — duplication.

Models compose with :class:`FaultPipeline`, which feeds each emission of
one stage through the next and accumulates hold times.  Every model
keeps the same ``seen``/``dropped`` counters as the loss models, plus
model-specific ones (``reordered``, ``duplicated``, ``delayed``).  All
randomness comes from per-model seeded :class:`random.Random` instances,
so chaos runs are bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from .loss import LossModel
from .packet import Frame

#: One scheduled emission: (extra delay before entering the egress
#: queue, the frame itself).
Emission = Tuple[int, Frame]


class FaultModel:
    """Base class: maps one offered frame to scheduled emissions."""

    def __init__(self) -> None:
        self.seen = 0
        self.dropped = 0

    def admit(self, frame: Frame, now: int) -> List[Emission]:
        """Offer ``frame`` to the model at simulated time ``now``."""
        self.seen += 1
        out = self._admit(frame, now)
        if not out:
            self.dropped += 1
        return out

    def _admit(self, frame: Frame, now: int) -> List[Emission]:
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        """Uniform counter dict (subclasses extend with their own keys);
        read by the NIC port's metrics collector."""
        return {"seen": self.seen, "dropped": self.dropped}

    def reset(self) -> None:
        """Restore the model to its initial state (reseeding RNGs)."""
        self.seen = 0
        self.dropped = 0


class LossFault(FaultModel):
    """Adapter: run any :class:`~repro.simnet.loss.LossModel` inside a
    fault pipeline (so loss composes with reorder/dup/delay/flap)."""

    def __init__(self, loss: LossModel):
        super().__init__()
        self.loss = loss

    def _admit(self, frame: Frame, now: int) -> List[Emission]:
        if self.loss.should_drop(frame):
            return []
        return [(0, frame)]

    def reset(self) -> None:
        super().reset()
        self.loss.reset()


class DelayJitter(FaultModel):
    """Random per-frame hold time: uniform jitter in
    ``[0, jitter_ns]`` plus, with probability ``spike_prob``, a latency
    spike of ``spike_ns`` (a GC pause, a congested queue upstream...)."""

    def __init__(
        self,
        jitter_ns: int,
        spike_ns: int = 0,
        spike_prob: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        if jitter_ns < 0 or spike_ns < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= spike_prob <= 1.0:
            raise ValueError(f"spike_prob must be in [0, 1], got {spike_prob}")
        self.jitter_ns = int(jitter_ns)
        self.spike_ns = int(spike_ns)
        self.spike_prob = spike_prob
        self.seed = seed
        self._rng = random.Random(seed ^ 0xD31A)
        self.delayed = 0
        self.spikes = 0

    def _admit(self, frame: Frame, now: int) -> List[Emission]:
        delay = self._rng.randrange(self.jitter_ns + 1) if self.jitter_ns else 0
        if self.spike_ns and self._rng.random() < self.spike_prob:
            delay += self.spike_ns
            self.spikes += 1
        if delay:
            self.delayed += 1
        return [(delay, frame)]

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        out["delayed"] = self.delayed
        out["spikes"] = self.spikes
        return out

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed ^ 0xD31A)
        self.delayed = 0
        self.spikes = 0


class Reorder(FaultModel):
    """netem-style reordering: with probability ``prob`` a frame is held
    for ``hold_ns`` so frames offered after it reach the wire first."""

    def __init__(self, prob: float, hold_ns: int, seed: int = 0):
        super().__init__()
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        if hold_ns <= 0:
            raise ValueError(f"hold_ns must be positive, got {hold_ns}")
        self.prob = prob
        self.hold_ns = int(hold_ns)
        self.seed = seed
        self._rng = random.Random(seed ^ 0x0DD5)
        self.reordered = 0

    def _admit(self, frame: Frame, now: int) -> List[Emission]:
        if self.prob > 0.0 and self._rng.random() < self.prob:
            self.reordered += 1
            return [(self.hold_ns, frame)]
        return [(0, frame)]

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        out["reordered"] = self.reordered
        return out

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed ^ 0x0DD5)
        self.reordered = 0


class Duplicate(FaultModel):
    """With probability ``prob``, emit an extra copy of the frame (the
    payload bytes are immutable, so both copies share them safely)."""

    def __init__(self, prob: float, seed: int = 0):
        super().__init__()
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        self.prob = prob
        self.seed = seed
        self._rng = random.Random(seed ^ 0xD0B)
        self.duplicated = 0

    def _admit(self, frame: Frame, now: int) -> List[Emission]:
        if self.prob > 0.0 and self._rng.random() < self.prob:
            self.duplicated += 1
            return [(0, frame), (0, frame)]
        return [(0, frame)]

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        out["duplicated"] = self.duplicated
        return out

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed ^ 0xD0B)
        self.duplicated = 0


class LinkFlap(FaultModel):
    """Scheduled link down/up windows: every frame offered while the
    link is down is dropped (carrier loss — nothing is queued).

    ``windows`` is a sequence of absolute ``(down_ns, up_ns)`` simulated
    times, ``down_ns`` inclusive and ``up_ns`` exclusive.
    """

    def __init__(self, windows: Sequence[Tuple[int, int]]):
        super().__init__()
        self.windows: List[Tuple[int, int]] = []
        for down, up in windows:
            if down < 0 or up <= down:
                raise ValueError(f"bad flap window ({down}, {up})")
            self.windows.append((int(down), int(up)))
        self.windows.sort()

    @classmethod
    def single(cls, down_ns: int, duration_ns: int) -> "LinkFlap":
        """One flap: down at ``down_ns`` for ``duration_ns``."""
        return cls([(down_ns, down_ns + duration_ns)])

    @classmethod
    def periodic(
        cls, first_down_ns: int, duration_ns: int, period_ns: int, repeats: int
    ) -> "LinkFlap":
        """``repeats`` flaps of ``duration_ns`` every ``period_ns``."""
        if period_ns <= 0 or repeats < 1:
            raise ValueError("need a positive period and at least one flap")
        return cls(
            [
                (first_down_ns + i * period_ns, first_down_ns + i * period_ns + duration_ns)
                for i in range(repeats)
            ]
        )

    def is_down(self, now: int) -> bool:
        return any(down <= now < up for down, up in self.windows)

    def _admit(self, frame: Frame, now: int) -> List[Emission]:
        if self.is_down(now):
            return []
        return [(0, frame)]


class FaultPipeline(FaultModel):
    """Sequential composition: each stage's emissions feed the next
    stage, with hold times accumulating.  A drop by any stage drops that
    emission (and possibly the whole frame)."""

    def __init__(self, *stages: FaultModel):
        super().__init__()
        flat: List[FaultModel] = []
        for stage in stages:
            # Accept a single iterable of stages too.
            if isinstance(stage, FaultModel):
                flat.append(stage)
            else:
                flat.extend(stage)
        if not flat:
            raise ValueError("a pipeline needs at least one stage")
        self.stages: List[FaultModel] = flat

    def _admit(self, frame: Frame, now: int) -> List[Emission]:
        emissions: List[Emission] = [(0, frame)]
        for stage in self.stages:
            nxt: List[Emission] = []
            for delay, f in emissions:
                for extra, out in stage.admit(f, now + delay):
                    nxt.append((delay + extra, out))
            emissions = nxt
            if not emissions:
                break
        return emissions

    def stats(self) -> Dict[str, int]:
        """Pipeline-level seen/dropped plus every stage's model-specific
        counters summed by key (``seen``/``dropped`` of individual stages
        are *not* folded in — they would double-count the pipeline's)."""
        out = super().stats()
        for stage in self.stages:
            for key, value in stage.stats().items():
                if key in ("seen", "dropped"):
                    continue
                out[key] = out.get(key, 0) + value
        return out

    def reset(self) -> None:
        super().reset()
        for stage in self.stages:
            stage.reset()


def seeded_chaos(
    seed: int,
    loss: LossModel = None,
    reorder_prob: float = 0.0,
    reorder_hold_ns: int = 0,
    dup_prob: float = 0.0,
    jitter_ns: int = 0,
    flap_windows: Iterable[Tuple[int, int]] = (),
) -> FaultPipeline:
    """Convenience builder for the chaos harness: compose whichever
    faults are enabled into one pipeline, all derived from ``seed``."""
    stages: List[FaultModel] = []
    if loss is not None:
        stages.append(LossFault(loss))
    if reorder_prob > 0.0:
        stages.append(Reorder(reorder_prob, reorder_hold_ns, seed=seed + 1))
    if dup_prob > 0.0:
        stages.append(Duplicate(dup_prob, seed=seed + 2))
    if jitter_ns > 0:
        stages.append(DelayJitter(jitter_ns, seed=seed + 3))
    windows = list(flap_windows)
    if windows:
        stages.append(LinkFlap(windows))
    if not stages:
        raise ValueError("no faults enabled")
    return FaultPipeline(*stages)
