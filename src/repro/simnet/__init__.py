"""Discrete-event network simulator: the testbed substrate.

Stands in for the paper's two-node 10-GigE platform: an event engine
with integer-nanosecond time, serialized per-host CPUs (the software
iWARP stack is CPU-bound), NICs with FIFO egress queues where loss is
injected ``tc``-style, a store-and-forward switch, and full-duplex
links.
"""

from .cpu import CpuResource
from .engine import MS, NS, SEC, US, AnyOf, Event, Future, Process, SimulationError, Simulator, Timeout
from .faults import (
    DelayJitter, Duplicate, FaultModel, FaultPipeline, LinkFlap, LossFault,
    Reorder, seeded_chaos,
)
from .host import Host
from .link import Link
from .loss import BernoulliLoss, BitErrorModel, ExplicitLoss, GilbertElliottLoss, LossModel, NoLoss, PatternLoss
from .nic import NicPort, cable
from .packet import BROADCAST, ETH_MTU, ETH_OVERHEAD, Frame, serialization_ns
from .switch import Switch
from .topology import Testbed, build_testbed
from .trace import TraceRecord, Tracer

__all__ = [
    "AnyOf", "BROADCAST", "BernoulliLoss", "BitErrorModel", "CpuResource",
    "DelayJitter", "Duplicate", "ETH_MTU",
    "ETH_OVERHEAD", "Event", "ExplicitLoss", "FaultModel", "FaultPipeline",
    "Frame", "Future",
    "GilbertElliottLoss", "Host", "Link", "LinkFlap", "LossFault",
    "LossModel", "MS", "NS",
    "NicPort", "NoLoss", "PatternLoss", "Process", "Reorder", "SEC",
    "SimulationError",
    "Simulator", "Switch", "Testbed", "Timeout", "TraceRecord", "Tracer",
    "US", "build_testbed", "cable", "seeded_chaos", "serialization_ns",
]
