"""Shared FSM transition core: one validator, one observation point.

The four guarded state machines in the stack (QP ladder, TCP
connection, MPA negotiation, SCTP association) all follow the same
discipline: a module-level transition table, a single ``_set_state``
mutator, same-state writes as no-ops (that is what makes teardown paths
idempotent), and a machine-specific exception on an illegal move.
Those four validators used to be copy-pasted; :func:`transition` is the
one shared implementation.

Funnelling every state change through one call site also creates the
hook the runtime transition-coverage sanitizer needs
(``tools/iwarpcheck``): an observer registered here sees the complete
``(machine, from_state, to_state)`` stream of a run, which the test
suite records and checks against the declared tables — every runtime
transition must be declared, and every declared transition must be
exercised (or explicitly waived).

Observers must be cheap and must not raise: they run synchronously
inside protocol event handlers.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Mapping, Protocol

#: ``observer(machine, from_state, to_state)`` — called after the write,
#: only for real moves (same-state no-ops are invisible, matching the
#: declared tables, which do not contain self-loops).
TransitionObserver = Callable[[str, str, str], None]

_observers: List[TransitionObserver] = []


class Stateful(Protocol):
    """Anything carrying a guarded ``state`` attribute."""

    state: str


def add_transition_observer(observer: TransitionObserver) -> None:
    """Register ``observer`` for every subsequent state transition."""
    if observer not in _observers:
        _observers.append(observer)


def remove_transition_observer(observer: TransitionObserver) -> None:
    """Deregister ``observer`` (a no-op if it is not registered)."""
    try:
        _observers.remove(observer)
    except ValueError:
        pass


def transition(
    machine: Stateful,
    name: str,
    table: Mapping[str, FrozenSet[str]],
    new_state: str,
    error: Callable[[str], Exception],
    detail: str = "",
) -> bool:
    """Validated state change: the body of every ``_set_state``.

    A same-state "transition" is a no-op returning False.  An undeclared
    move raises ``error(message)`` with the machine's own exception type
    and leaves the state untouched.  A declared move writes the state,
    notifies registered observers, and returns True.
    """
    current = machine.state
    if new_state == current:
        return False
    if new_state not in table.get(current, frozenset()):
        raise error(
            f"illegal {name} state transition {current} -> {new_state}{detail}"
        )
    machine.state = new_state
    for observer in tuple(_observers):
        observer(name, current, new_state)
    return True
