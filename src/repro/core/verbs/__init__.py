"""Verbs interface: devices, PDs, memory registration, QPs, CQs, WRs."""

from .cq import CompletionQueue, CqError
from .device import DEFAULT_RC_MULPDU, DeviceError, RcListener, RnicDevice
from .qp import ERROR, QpError, QueuePair, RcQp, RESET, RTS, UdQp
from .wr import (
    Address, MULTICAST_HOST, RecvWR, SendWR, Sge, WcStatus, WorkCompletion,
    WrOpcode, gather, multicast_address, scatter, sge_total,
)

__all__ = [
    "Address", "CompletionQueue", "CqError", "DEFAULT_RC_MULPDU",
    "DeviceError", "ERROR", "MULTICAST_HOST", "QpError", "QueuePair",
    "RESET", "RTS", "multicast_address",
    "RcListener", "RcQp", "RecvWR", "RnicDevice", "SendWR", "Sge", "UdQp",
    "WcStatus", "WorkCompletion", "WrOpcode", "gather", "scatter",
    "sge_total",
]
