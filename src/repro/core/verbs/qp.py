"""Queue pairs: RC (connected, over MPA/TCP) and UD (datagram, over UDP).

The datagram QP is the paper's central verbs extension (§IV.B item 4):
"We require a datagram type QP, as well as a method for initializing
datagram QPs ... verbs that allow for the inclusion of destination
addresses and ports when posting a send request ... a datagram receive
verb that allows for the sender's address and port to be reported back".
All of that is implemented here; the RC QP exists as the faithful
baseline the paper compares against.

Error semantics follow §IV.B item 2: an RC stream error terminates the
connection and flushes the QP; a UD QP reports errors (counters, error
completions) but keeps working.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, FrozenSet, Optional, Set, Tuple

from ..fsm import transition as _fsm_transition

from ...memory.region import Access
from ...obs import sim_registry, wr_span
from ...simnet.engine import Future
from ...transport.ip import IP_HEADER
from ...transport.rudp import RUDP_HEADER, RudpSocket
from ...transport.udp import UDP_HEADER, UDP_MAX_PAYLOAD
from ..ddp.headers import (
    CTRL_SIZE, OP_TERMINATE, TAGGED_SIZE, UDEXT_SIZE, UNTAGGED_SIZE,
    DdpSegment, HeaderError, decode_segment,
)
from ..mpa.connection import MpaConnection
from ..mpa.crc import CRC_SIZE, CrcError, append_crc, split_and_verify
from ..rdmap.engine import RdmapRx, RdmapTx
from .cq import CompletionQueue
from .wr import Address, RecvWR, SendWR, WcStatus, WorkCompletion, WrOpcode

if TYPE_CHECKING:
    from ...transport.sctp import SctpAssociation
    from .device import RnicDevice

# QP states: the IB/iWARP modify_qp ladder.  The paper keeps standard
# verbs semantics for datagram QPs (§IV.B item 1), so both QP types
# honour the same table; UD QPs simply self-transition RESET -> RTS at
# creation because there is no connection to wait for.
RESET = "RESET"
INIT = "INIT"        # queues allocated, receives may be posted
RTR = "RTR"          # ready to receive
RTS = "RTS"          # ready to send (and receive)
SQD = "SQD"          # send-queue drained: posting sends is rejected
ERROR = "ERROR"

#: Legal transitions, mirrored in ``iwarplint.invariants.QP_TABLE`` —
#: the iwarplint FSM rule (IW204) flags any drift between the two.
#: ERROR is reachable from everywhere; RESET recycles a QP.
QP_TRANSITIONS: Dict[str, FrozenSet[str]] = {
    RESET: frozenset({INIT, RTS, ERROR}),
    INIT: frozenset({RTR, RESET, ERROR}),
    RTR: frozenset({RTS, RESET, ERROR}),
    RTS: frozenset({SQD, RESET, ERROR}),
    SQD: frozenset({RTS, RESET, ERROR}),
    ERROR: frozenset({RESET}),
}

#: Event-labelled view of the same machine: ``(state, event) -> state``.
#: ``tools/iwarpcheck`` model-checks this table (reachability, liveness,
#: dead transitions) and verifies that its projection onto (from, to)
#: pairs equals :data:`QP_TRANSITIONS` exactly, so the two views cannot
#: drift.  ``connect_ready`` covers the three creation paths that jump
#: RESET -> RTS (UD creation, MPA negotiation, SCTP association);
#: ``terminate`` covers both local fatal errors and a peer TERMINATE.
QP_EVENT_TRANSITIONS: Dict[Tuple[str, str], str] = {
    (RESET, "modify_qp"): INIT,
    (RESET, "connect_ready"): RTS,
    (RESET, "close"): ERROR,
    (INIT, "modify_qp"): RTR,
    (INIT, "recycle"): RESET,
    (INIT, "close"): ERROR,
    (RTR, "modify_qp"): RTS,
    (RTR, "recycle"): RESET,
    (RTR, "close"): ERROR,
    (RTS, "sq_drain"): SQD,
    (RTS, "recycle"): RESET,
    (RTS, "terminate"): ERROR,
    (RTS, "close"): ERROR,
    (SQD, "sq_resume"): RTS,
    (SQD, "recycle"): RESET,
    (SQD, "terminate"): ERROR,
    (SQD, "close"): ERROR,
    (ERROR, "recycle"): RESET,
}

#: Worst-case DDP header: control + tagged/untagged + UD extension.
MAX_HEADER = CTRL_SIZE + max(TAGGED_SIZE, UNTAGGED_SIZE) + UDEXT_SIZE

_qp_nums = itertools.count(1)


@dataclass
class _RdPendingSend:
    """A message posted on a reliable-datagram QP whose completion is
    deferred until the RD layer ACKs (or fails) all of its segments."""

    wr: SendWR
    byte_len: int
    remaining: int


class QpError(Exception):
    """Invalid verb usage against this QP."""


class QueuePair:
    """State and queues common to both QP types."""

    is_datagram = False

    def __init__(
        self, device: RnicDevice, pd: int, sq_cq: CompletionQueue, rq_cq: CompletionQueue
    ) -> None:
        self.device = device
        self.host = device.host
        self.sim = device.sim
        self.pd = pd
        self.sq_cq = sq_cq
        self.rq_cq = rq_cq
        self.qp_num = next(_qp_nums)
        self.state = RESET
        self.rq: Deque[RecvWR] = deque()
        self.tx = RdmapTx(self)
        self.rx = RdmapRx(self)
        self.ready: Future = self.sim.future()
        self.terminate_reason: Optional[str] = None
        # Metrics (repro.obs): shared per-simulator registry.  Hot paths
        # guard on ``self.obs.enabled`` so a disabled registry costs one
        # attribute read; the pull collector exposes the plain-int
        # counters that remain the source of truth for tests.
        self.obs = sim_registry(device.sim)
        if self.obs.enabled:
            self.obs.add_collector(self._obs_samples)

    # -- state machine -----------------------------------------------------

    def _set_state(self, new_state: str) -> None:
        """The only way the QP state may change after construction.
        Validates the move against :data:`QP_TRANSITIONS` via the shared
        :func:`repro.core.fsm.transition` helper; a same-state
        "transition" is a no-op, which is what makes teardown paths
        (``close`` after an error, double ``close``) idempotent."""
        _fsm_transition(
            self, "QP", QP_TRANSITIONS, new_state, QpError,
            f" on QP {self.qp_num}",
        )

    def modify_qp(self, new_state: str) -> None:
        """Drive the standard verbs ladder (``ibv_modify_qp`` analogue):
        RESET -> INIT -> RTR -> RTS, RTS <-> SQD to drain/resume the
        send queue, anything -> ERROR, ERROR -> RESET to recycle."""
        self._set_state(new_state)
        if new_state == RESET:
            self.terminate_reason = None

    # -- metrics -----------------------------------------------------------

    def _obs_labels(self) -> Dict[str, str]:
        return {"qp": str(self.qp_num), "host": self.host.name}

    def _obs_samples(self) -> Any:
        """Pull collector: the RDMAP receive engine's plain-int counters
        plus the UD-specific ones, when this QP type keeps them."""
        labels = self._obs_labels()
        rx = self.rx
        yield ("rdmap.rx.drops_no_recv_posted", labels, "counter", rx.drops_no_recv_posted)
        yield ("rdmap.rx.drops_malformed", labels, "counter", rx.drops_malformed)
        yield ("rdmap.rx.remote_access_errors", labels, "counter", rx.remote_access_errors)
        yield ("rdmap.rx.reaped_partial", labels, "counter", rx.reaped_partial)
        yield ("rdmap.rx.duplicate_segments", labels, "counter", rx.duplicate_segments)
        for name, attr in (
            ("verbs.qp.crc_drops", "crc_drops"),
            ("verbs.qp.drops_closed", "drops_closed"),
            ("verbs.qp.rd_flushed_wrs", "rd_flushed_wrs"),
        ):
            value = getattr(self, attr, None)
            if value is not None:
                yield (name, labels, "counter", value)

    def _note_completion(self, queue: str, wc: WorkCompletion) -> None:
        status = wc.status.name.lower()
        if self.obs.enabled:
            self.obs.counter(
                "verbs.qp.completions", queue=queue, status=status,
                **self._obs_labels(),
            ).inc()
        wr_span(
            self.host, "cqe", qp=self.qp_num, wr_id=wc.wr_id,
            queue=queue, status=status, msg_id=wc.msg_id,
        )

    # -- verbs ------------------------------------------------------------

    def post_send(self, wr: SendWR) -> None:
        if self.state != RTS:
            raise QpError(f"post_send on QP {self.qp_num} in state {self.state}")
        self._validate_send(wr)
        op = wr.opcode.name.lower()
        if self.obs.enabled:
            labels = self._obs_labels()
            self.obs.counter("verbs.qp.posts", op=op, **labels).inc()
            self.obs.counter("verbs.qp.post_bytes", op=op, **labels).inc(wr.length)
        wr_span(self.host, "post", qp=self.qp_num, wr_id=wr.wr_id, op=op)
        self.tx.post(wr)

    def post_recv(self, wr: RecvWR) -> None:
        if self.state == ERROR:
            raise QpError(f"post_recv on QP {self.qp_num} in ERROR state")
        for sge in wr.sges:
            if not (sge.mr.access & Access.LOCAL_WRITE):
                raise QpError("receive SGE lacks LOCAL_WRITE")
        if self.obs.enabled:
            self.obs.counter("verbs.qp.recv_posts", **self._obs_labels()).inc()
        self.rq.append(wr)

    def _validate_send(self, wr: SendWR) -> None:
        for sge in wr.sges:
            if not (sge.mr.access & Access.LOCAL_READ):
                raise QpError("send SGE lacks LOCAL_READ")
        if self.is_datagram and wr.dest is None:
            raise QpError("datagram send requires a destination address")
        if not self.is_datagram and wr.dest is not None:
            raise QpError("connected QPs do not take per-WR destinations")

    # -- hooks used by the engines ---------------------------------------------

    def pop_recv(self) -> Optional[RecvWR]:
        return self.rq.popleft() if self.rq else None

    def push_rq_completion(self, wc: WorkCompletion) -> None:
        self._note_completion("rq", wc)
        self.host.cpu.submit(self.host.costs.cqe_ns, self.rq_cq.push, wc)

    def push_sq_completion(self, wc: WorkCompletion) -> None:
        self._note_completion("sq", wc)
        self.host.cpu.submit(self.host.costs.cqe_ns, self.sq_cq.push, wc)

    def sent_to_llp(
        self, wr: SendWR, byte_len: int, msg_id: Optional[int], nsegs: int
    ) -> None:
        """All of a message's segments were handed to the LLP.  Default
        contract (§IV.B.3): the source completes the operation "at the
        moment that the last bit of the message is passed to the
        transport layer".  Reliable-datagram QPs override this to defer
        the completion until the RD layer ACKs (or fails) the message."""
        if not wr.signaled:
            return
        self.push_sq_completion(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=wr.opcode,
                status=WcStatus.SUCCESS,
                byte_len=byte_len,
                msg_id=msg_id,
            )
        )

    def channel_send(
        self, seg: DdpSegment, dest: Optional[Address], first: bool = True, msg_len: int = 0
    ) -> None:
        """Emit one DDP segment.  ``first`` marks the first segment of an
        RDMAP message and ``msg_len`` its total length — used to charge
        per-message (as opposed to per-segment) costs at the right
        moment."""
        raise NotImplementedError

    @property
    def max_seg_payload(self) -> int:
        raise NotImplementedError

    # -- teardown ---------------------------------------------------------------

    def terminate(self, reason: str) -> None:
        """Local fatal error: notify the peer, error the QP (RC only —
        UD QPs never call this for data-path errors)."""
        if self.state == ERROR:
            return
        try:
            self.tx.send_terminate(reason)
        except Exception:
            pass
        self._enter_error(reason)

    def on_remote_terminate(self, reason: str) -> None:
        if self.is_datagram:
            # Reported, not fatal (§IV.B item 2).
            self.terminate_reason = reason
            return
        self._enter_error(reason)

    def _enter_error(self, reason: str) -> None:
        self._set_state(ERROR)
        self.terminate_reason = reason
        self._flush_recv_queue()
        if not self.ready.done:
            self.ready.set_result(None)

    def _flush_recv_queue(self) -> None:
        """Complete every still-posted receive with FLUSHED so pollers
        observe the teardown instead of waiting forever."""
        if self.rq and self.obs.enabled:
            self.obs.counter("verbs.qp.flushes", **self._obs_labels()).inc(len(self.rq))
        while self.rq:
            wr = self.rq.popleft()
            self.rq_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id, opcode=WrOpcode.SEND, status=WcStatus.FLUSHED
                )
            )

    def _release_channel(self) -> None:
        """Close the underlying transport channel (idempotent)."""
        raise NotImplementedError

    def close(self) -> None:
        """Application teardown: release the channel, error the QP and
        flush outstanding receive WRs (standard verbs semantics — a
        destroyed/errored QP completes posted WRs with FLUSHED rather
        than leaking them).  Idempotent; after an error it only makes
        sure the channel is really released."""
        self._release_channel()
        if self.state == ERROR:
            return
        self._set_state(ERROR)
        self._flush_recv_queue()
        if not self.ready.done:
            # Nobody will ever connect/complete this QP now.
            self.ready.set_result(None)


class UdQp(QueuePair):
    """Datagram QP over UDP (or reliable-UDP when ``reliable=True``).

    One UD QP can exchange messages with any number of peers — the
    scalability property the paper's memory study banks on.
    """

    is_datagram = True

    def __init__(
        self,
        device: RnicDevice,
        pd: int,
        sq_cq: CompletionQueue,
        rq_cq: CompletionQueue,
        port: Optional[int] = None,
        reliable: bool = False,
        rd_opts: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(device, pd, sq_cq, rq_cq)
        self.reliable = reliable
        udp_sock = device.net.udp.socket(port)
        if reliable:
            self.rd = RudpSocket(udp_sock, **(rd_opts or {}))
            self.rd.on_message = self._on_datagram
            self.rd.on_peer_failed = self._on_rd_peer_failed
            self._sock = self.rd
            overhead = MAX_HEADER + CRC_SIZE + RUDP_HEADER
            # RD segments are retransmission units: keep each inside one
            # MTU.  A 64 KB datagram spans ~45 IP fragments, and losing
            # ANY fragment loses the datagram — at 5 % frame loss that
            # is a ~91 % datagram loss rate, which both cripples goodput
            # and can push a healthy peer past the retry cap.  (UD mode
            # keeps 64 KB datagrams: partial placement wants the big
            # segments, and there is nothing to retransmit.)
            mtu_budget = (
                device.net.ip.mtu() - IP_HEADER - UDP_HEADER - overhead
            )
            self._max_seg = min(UDP_MAX_PAYLOAD - overhead, mtu_budget)
        else:
            self.rd = None
            udp_sock.on_datagram = self._on_datagram
            self._sock = udp_sock
            overhead = MAX_HEADER + CRC_SIZE
            self._max_seg = UDP_MAX_PAYLOAD - overhead
        self._udp_sock = udp_sock
        # RD: messages posted but not yet ACKed by the reliability layer,
        # keyed by RDMAP message id; peers declared unreachable.
        self._rd_pending: Dict[int, _RdPendingSend] = {}
        self.failed_peers: Set[Address] = set()
        self.crc_drops = 0
        self.drops_closed = 0
        self.rd_flushed_wrs = 0
        # No connection to wait for: a datagram QP is usable at creation.
        self._set_state(RTS)
        self.ready.set_result(self)

    @property
    def address(self) -> Address:
        return (self.host.host_id, self._udp_sock.port)

    @property
    def max_seg_payload(self) -> int:
        return self._max_seg

    # -- transmit ---------------------------------------------------------

    def channel_send(
        self, seg: DdpSegment, dest: Optional[Address], first: bool = True, msg_len: int = 0
    ) -> None:
        if dest is None:
            raise QpError("UD segment without destination")
        if dest[0] == -1 and self.reliable:
            # Reliable datagrams are peer-to-peer: per-peer ACK state
            # cannot exist for a flooded destination.
            raise QpError("multicast requires an unreliable (UD) QP")
        costs = self.host.costs
        cost = costs.ddp_tx_per_seg_ns + costs.crc_ns(len(seg.payload))
        if seg.tagged:
            cost += costs.ddp_tagged_validate_ns
        if not self.reliable:
            # Fold the kernel sendto() path into the same charge so the
            # whole per-segment send cost is one CPU work item — the
            # message's segments then pipeline onto the wire.  (RD mode
            # keeps the charged socket path: retransmissions must pay.)
            wire_len = seg.wire_size + CRC_SIZE
            nfrags = self.device.net.ip.fragments_needed(wire_len + UDP_HEADER)
            cost += (
                costs.syscall_ns
                + costs.udp_tx_fixed_ns
                + costs.copy_ns(wire_len)
                + costs.ip_tx_per_frag_ns * nfrags
            )
        self.host.cpu.submit(cost, self._emit, seg, dest)

    def _emit(self, seg: DdpSegment, dest: Address) -> None:
        if self._udp_sock.closed:
            # The application closed the socket with emissions still
            # queued in the stack: datagram semantics, the data is gone —
            # but on RD a tracked message must flush, never vanish.
            self.drops_closed += 1
            if self.reliable and seg.msg_id is not None:
                self._on_rd_segment_result(seg.msg_id, False)
            return
        wr_span(
            self.host, "wire", qp=self.qp_num,
            proto="rudp" if self.reliable else "udp",
            msg_id=seg.msg_id, last=seg.last,
        )
        data = append_crc(seg.encode())
        if self.reliable:
            if seg.msg_id is not None and seg.msg_id in self._rd_pending:
                self.rd.sendto(
                    data, dest,
                    on_result=lambda ok, m=seg.msg_id: self._on_rd_segment_result(m, ok),
                )
            else:
                self.rd.sendto(data, dest)
        else:
            self._udp_sock.sendto_uncharged(data, dest)

    # -- RD reliability plumbing ------------------------------------------

    def sent_to_llp(
        self, wr: SendWR, byte_len: int, msg_id: Optional[int], nsegs: int
    ) -> None:
        """On RD the LLP-handoff contract is not honest enough: the
        message may still die in the retransmission machinery.  Hold the
        WR until every segment is cumulatively ACKed (SUCCESS) or the
        peer is declared unreachable (FLUSH_ERR)."""
        if not self.reliable or msg_id is None:
            super().sent_to_llp(wr, byte_len, msg_id, nsegs)
            return
        self._rd_pending[msg_id] = _RdPendingSend(wr, byte_len, nsegs)

    def _on_rd_segment_result(self, msg_id: int, ok: bool) -> None:
        pend = self._rd_pending.get(msg_id)
        if pend is None:
            return
        if not ok:
            del self._rd_pending[msg_id]
            self.rd_flushed_wrs += 1
            if pend.wr.signaled:
                self.push_sq_completion(
                    WorkCompletion(
                        wr_id=pend.wr.wr_id,
                        opcode=pend.wr.opcode,
                        status=WcStatus.FLUSHED,
                        byte_len=pend.byte_len,
                        msg_id=msg_id,
                    )
                )
            return
        pend.remaining -= 1
        if pend.remaining <= 0:
            del self._rd_pending[msg_id]
            if pend.wr.signaled:
                self.push_sq_completion(
                    WorkCompletion(
                        wr_id=pend.wr.wr_id,
                        opcode=pend.wr.opcode,
                        status=WcStatus.SUCCESS,
                        byte_len=pend.byte_len,
                        msg_id=msg_id,
                    )
                )

    def _on_rd_peer_failed(self, addr: Address) -> None:
        """§IV.B item 2, "report, don't kill": the failure is surfaced —
        the peer is recorded, its queued WRs flush with FLUSH_ERR through
        their per-message callbacks (the RD layer fires those before this
        notification) — but the QP stays in RTS for every other peer."""
        self.failed_peers.add(addr)
        self.terminate_reason = f"RD peer {addr} unreachable"

    def _validate_send(self, wr: SendWR) -> None:
        super()._validate_send(wr)
        if self.reliable and wr.dest in self.failed_peers:
            raise QpError(
                f"RD peer {wr.dest} was declared unreachable; its WRs were flushed"
            )

    # -- receive ------------------------------------------------------------

    def _on_datagram(self, data: bytes, src: Address) -> None:
        try:
            body = split_and_verify(data)
            seg = decode_segment(body, ud=True)
        except (CrcError, HeaderError):
            self.crc_drops += 1
            return
        costs = self.host.costs
        cost = costs.ddp_rx_per_seg_ns + costs.crc_ns(len(data))
        if seg.tagged:
            cost += costs.ddp_tagged_validate_ns
        else:
            cost += costs.ddp_untagged_match_ns
        cost += int(costs.placement_per_byte_ns * len(seg.payload))
        self.host.cpu.submit(cost, self.rx.on_segment, seg, src)

    def _release_channel(self) -> None:
        self._sock.close()


class RcQp(QueuePair):
    """Connected QP over MPA/TCP — the traditional iWARP baseline."""

    is_datagram = False

    def __init__(
        self,
        device: RnicDevice,
        pd: int,
        sq_cq: CompletionQueue,
        rq_cq: CompletionQueue,
        mpa: MpaConnection,
        remote: Address,
    ) -> None:
        super().__init__(device, pd, sq_cq, rq_cq)
        self.mpa = mpa
        self.remote = remote
        self._max_seg = device.rc_mulpdu - MAX_HEADER
        mpa.on_ulpdu = self._on_ulpdu
        mpa.on_error = lambda exc: self._enter_error(str(exc))
        mpa.ready.add_callback(self._on_mpa_ready)

    def _on_mpa_ready(self, result: Optional[object]) -> None:
        if result is None:
            self._enter_error("MPA negotiation failed")
            return
        self._set_state(RTS)
        if not self.ready.done:
            self.ready.set_result(self)

    @property
    def max_seg_payload(self) -> int:
        return self._max_seg

    # -- transmit ---------------------------------------------------------

    def channel_send(
        self, seg: DdpSegment, dest: Optional[Address], first: bool = True, msg_len: int = 0
    ) -> None:
        costs = self.host.costs
        cost = costs.ddp_tx_per_seg_ns
        if seg.tagged:
            cost += costs.ddp_tagged_validate_ns
        if first:
            # One send() call covers the whole message's FPDU train
            # (writev batching): syscall + kernel fixed + user->kernel copy.
            cost += costs.syscall_ns + costs.tcp_tx_fixed_ns + costs.copy_ns(msg_len)
        cost += self.mpa.frame_cost_ns(seg.wire_size)
        self.host.cpu.submit(cost, self._emit, seg)

    def _emit(self, seg: DdpSegment) -> None:
        if self.mpa.state != "OPERATIONAL":
            return
        if self.state == ERROR and seg.opcode != OP_TERMINATE:
            # Once errored only the TERMINATE notification may leave.
            return
        wr_span(
            self.host, "wire", qp=self.qp_num, proto="tcp",
            msg_id=seg.msg_id, last=seg.last,
        )
        self.mpa.emit_ulpdu_now(seg.encode())

    # -- receive ------------------------------------------------------------

    def _on_ulpdu(self, ulpdu: bytes) -> None:
        try:
            seg = decode_segment(ulpdu, ud=False)
        except HeaderError:
            self.terminate("malformed DDP segment")
            return
        costs = self.host.costs
        cost = costs.ddp_rx_per_seg_ns
        if seg.tagged:
            cost += costs.ddp_tagged_validate_ns
            # The RC software stack stages tagged payloads through an
            # intermediate buffer (CALIBRATED — see CostModel).
            cost += int(
                (costs.placement_per_byte_ns + costs.rc_tagged_staging_per_byte_ns)
                * len(seg.payload)
            )
        else:
            cost += costs.ddp_untagged_match_ns
            cost += int(costs.placement_per_byte_ns * len(seg.payload))
        if seg.last:
            # The user-space library's per-message recv/select syscalls.
            cost += costs.tcp_rx_syscalls_per_msg * costs.syscall_ns
        self.host.cpu.submit(cost, self.rx.on_segment, seg, self.remote)

    def _release_channel(self) -> None:
        self.mpa.close()


class RcSctpQp(QueuePair):
    """Connected QP over SCTP — the standard's other LLP (RFC 5043
    shape): SCTP's own message boundaries replace the entire MPA layer,
    and its built-in CRC32c replaces the DDP-level CRC.  Everything else
    (in-order MSN matching, fatal stream errors, the RC software stack's
    tagged staging) matches the TCP-based RC QP, so comparing the two
    isolates exactly the TCP-adaptation overhead the paper discusses in
    §IV.A."""

    is_datagram = False

    def __init__(
        self,
        device: RnicDevice,
        pd: int,
        sq_cq: CompletionQueue,
        rq_cq: CompletionQueue,
        assoc: SctpAssociation,
        remote: Address,
    ) -> None:
        super().__init__(device, pd, sq_cq, rq_cq)
        self.assoc = assoc
        self.remote = remote
        self._max_seg = assoc.max_message - MAX_HEADER
        assoc.on_message = self._on_message
        assoc.established.add_callback(self._on_assoc_ready)

    def _on_assoc_ready(self, result: Optional[object]) -> None:
        if result is None:
            self._enter_error("SCTP association failed")
            return
        self._set_state(RTS)
        if not self.ready.done:
            self.ready.set_result(self)

    @property
    def max_seg_payload(self) -> int:
        return self._max_seg

    # -- transmit ---------------------------------------------------------

    def channel_send(
        self, seg: DdpSegment, dest: Optional[Address], first: bool = True, msg_len: int = 0
    ) -> None:
        costs = self.host.costs
        cost = costs.ddp_tx_per_seg_ns
        if seg.tagged:
            cost += costs.ddp_tagged_validate_ns
        if first:
            cost += costs.syscall_ns + costs.tcp_tx_fixed_ns + costs.copy_ns(msg_len)
        self.host.cpu.submit(cost, self._emit, seg)

    def _emit(self, seg: DdpSegment) -> None:
        if self.assoc.state == "CLOSED":
            return
        if self.state == ERROR and seg.opcode != OP_TERMINATE:
            return
        wr_span(
            self.host, "wire", qp=self.qp_num, proto="sctp",
            msg_id=seg.msg_id, last=seg.last,
        )
        self.assoc.send_message(seg.encode())

    # -- receive ------------------------------------------------------------

    def _on_message(self, data: bytes) -> None:
        try:
            seg = decode_segment(data, ud=False)
        except HeaderError:
            self.terminate("malformed DDP segment")
            return
        costs = self.host.costs
        cost = costs.ddp_rx_per_seg_ns
        if seg.tagged:
            cost += costs.ddp_tagged_validate_ns
            cost += int(
                (costs.placement_per_byte_ns + costs.rc_tagged_staging_per_byte_ns)
                * len(seg.payload)
            )
        else:
            cost += costs.ddp_untagged_match_ns
            cost += int(costs.placement_per_byte_ns * len(seg.payload))
        if seg.last:
            cost += costs.tcp_rx_syscalls_per_msg * costs.syscall_ns
        self.host.cpu.submit(cost, self.rx.on_segment, seg, self.remote)

    def _release_channel(self) -> None:
        self.assoc.shutdown()
