"""Work requests, scatter/gather elements, and work completions.

The verbs-level vocabulary of the stack.  The datagram extensions the
paper specifies (§IV.B item 4) are visible here:

* send-side work requests on UD QPs carry a **destination address**;
* completions carry the **source address and port** of incoming data
  ("the completion queue elements need to be altered to include
  information concerning the source address and port");
* Write-Record completions carry a :class:`~repro.memory.validity.ValidityMap`
  describing which byte ranges of the message landed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ...memory.sge import Sge, gather, scatter, sge_total  # noqa: F401 (public API)
from ...memory.validity import ValidityMap

Address = Tuple[int, int]

#: Destination host id that floods the fabric (Ethernet broadcast).
#: A UD send addressed to ``multicast_address(port)`` reaches every QP
#: bound to that port on any host — the "broadcast and multicast
#: support" the paper calls an attractive feature of datagrams (§IV.A).
MULTICAST_HOST = -1


def multicast_address(group_port: int) -> Address:
    """The datagram address of a multicast group (a shared UDP port).

    Joining the group is simply creating a UD QP bound to that port
    (``device.create_ud_qp(pd, cq, port=group_port)``); no group-
    management signalling exists, matching UDP multicast's data-plane
    simplicity.  One-sided operations cannot be multicast: steering tags
    are per-device, so Write-Record needs a unicast destination.
    """
    return (MULTICAST_HOST, group_port)


class WrOpcode(Enum):
    SEND = "SEND"
    SEND_SE = "SEND_SE"                  # send with solicited event
    RDMA_WRITE = "RDMA_WRITE"
    RDMA_WRITE_RECORD = "RDMA_WRITE_RECORD"  # the paper's new operation
    RDMA_READ = "RDMA_READ"


class WcStatus(Enum):
    SUCCESS = "SUCCESS"
    LOCAL_LENGTH_ERROR = "LOCAL_LENGTH_ERROR"
    LOCAL_PROTECTION_ERROR = "LOCAL_PROTECTION_ERROR"
    REMOTE_ACCESS_ERROR = "REMOTE_ACCESS_ERROR"
    PARTIAL_MESSAGE = "PARTIAL_MESSAGE"   # UD reassembly timed out (data loss)
    FLUSHED = "FLUSHED"                   # QP went to ERROR with WR queued
    TIMEOUT = "TIMEOUT"                   # reserved for pollers


_wr_ids = itertools.count(1)


@dataclass
class SendWR:
    """A send-queue work request."""

    opcode: WrOpcode
    sges: List[Sge] = field(default_factory=list)
    wr_id: int = field(default_factory=lambda: next(_wr_ids))
    #: UD only: destination (host, port) — the datagram-verbs extension.
    dest: Optional[Address] = None
    #: Tagged ops: remote stag and base tagged offset.
    remote_stag: int = 0
    remote_offset: int = 0
    #: Request a completion (unsignaled sends complete silently).
    signaled: bool = True

    @property
    def length(self) -> int:
        return sge_total(self.sges)


@dataclass
class RecvWR:
    """A receive-queue work request."""

    sges: List[Sge] = field(default_factory=list)
    wr_id: int = field(default_factory=lambda: next(_wr_ids))

    @property
    def capacity(self) -> int:
        return sge_total(self.sges)


@dataclass
class WorkCompletion:
    """One completion-queue entry."""

    wr_id: int
    opcode: WrOpcode
    status: WcStatus
    byte_len: int = 0
    #: Datagram extension: where the data came from.
    src: Optional[Address] = None
    #: Write-Record: which byte ranges are valid (aggregated map form;
    #: ``validity.ranges()`` yields the per-chunk entries form).
    validity: Optional[ValidityMap] = None
    #: Message id (UD) — lets applications correlate partial messages.
    msg_id: Optional[int] = None
    #: Write-Record: the tagged offset the message's byte 0 landed at —
    #: together with ``validity`` this is the "data chunk location and
    #: size recorded in completion queue" of Fig. 3.
    base_offset: int = 0
    solicited: bool = False

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS
