"""RNIC device: the root verbs object on each host.

Owns the steering-tag registry, protection domains, and QP creation —
including the connection establishment machinery for RC (TCP connect +
MPA negotiation) and the datagram QP initialization verb the paper adds
(§IV.B item 4: "a method for initializing datagram QPs").

Note the paper's §IV.B item 6 for datagrams: "there is no initial set up
of operating conditions exchanged when the QP is created; the operation
conditions are set locally" — visible here as ``create_ud_qp`` returning
a ready QP with no wire traffic, versus ``rc_connect`` which performs a
full TCP + MPA handshake.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

from ...memory.region import Access, MemoryRegion
from ...memory.registry import StagRegistry
from ...simnet.engine import Future, Simulator
from ...transport.stacks import NetStack
from ..mpa.connection import MpaConnection
from .cq import CompletionQueue
from .qp import QueuePair, RcQp, RcSctpQp, UdQp
from .wr import Address

if TYPE_CHECKING:
    from ...transport.sctp import SctpAssociation
    from ...transport.tcp.socket import TcpSocket

#: Default maximum ULPDU on the RC path: sized so one DDP segment plus
#: MPA framing and markers fits a standard-MTU TCP segment (RFC 5044's
#: MULPDU guidance).
DEFAULT_RC_MULPDU = 1408


class DeviceError(Exception):
    """Verbs-level misuse of the device."""


class RnicDevice:
    """One simulated RNIC bound to a host's network stacks."""

    def __init__(self, net: NetStack, rc_mulpdu: int = DEFAULT_RC_MULPDU):
        if rc_mulpdu < 128:
            raise DeviceError(f"MULPDU too small: {rc_mulpdu}")
        self.net = net
        self.host = net.host
        self.sim: Simulator = net.sim
        self.rc_mulpdu = rc_mulpdu
        self.registry = StagRegistry()
        self._pds = itertools.count(1)
        self._listeners: Dict[int, Union[RcListener, RcSctpListener]] = {}

    # -- protection domains & memory -----------------------------------------

    def alloc_pd(self) -> int:
        return next(self._pds)

    def reg_mr(
        self,
        buffer: Union[int, bytes, bytearray],
        access: Access = Access.local_only(),
        pd: int = 0,
    ) -> MemoryRegion:
        """Register memory (charges the pin/translate cost)."""
        mr = self.registry.register(buffer, access, pd_handle=pd)
        costs = self.host.costs
        self.host.cpu.charge(
            costs.reg_mr_fixed_ns + costs.reg_mr_per_page_ns * mr.pages
        )
        return mr

    def dereg_mr(self, mr: MemoryRegion) -> None:
        self.registry.deregister(mr)

    # -- completion queues ------------------------------------------------------

    def create_cq(self, depth: int = 4096) -> CompletionQueue:
        return CompletionQueue(self.sim, self.host, depth=depth)

    # -- datagram QPs -------------------------------------------------------------

    def create_ud_qp(
        self,
        pd: int,
        sq_cq: CompletionQueue,
        rq_cq: Optional[CompletionQueue] = None,
        port: Optional[int] = None,
        reliable: bool = False,
        rd_opts: Optional[Dict[str, Any]] = None,
    ) -> UdQp:
        """The new datagram-QP initialization verb.  Ready immediately —
        no connection setup, no wire traffic.  ``rd_opts`` (RD mode only)
        passes reliability knobs through to the underlying
        :class:`~repro.transport.rudp.RudpSocket` (window, RTO bounds,
        ``adaptive``, SACK, retry budget...)."""
        return UdQp(
            self, pd, sq_cq, rq_cq or sq_cq, port=port, reliable=reliable,
            rd_opts=rd_opts,
        )

    # -- connected QPs ---------------------------------------------------------------

    def rc_connect(
        self,
        remote: Address,
        pd: int,
        sq_cq: CompletionQueue,
        rq_cq: Optional[CompletionQueue] = None,
        markers: bool = True,
        crc: bool = True,
        transport: str = "tcp",
    ) -> QueuePair:
        """Active side.  ``transport="tcp"`` (the default): TCP connect +
        MPA negotiation.  ``transport="sctp"``: an SCTP association —
        message boundaries make the whole MPA layer unnecessary
        (RFC 5043 shape).  The returned QP's ``ready`` future resolves
        (with the QP) once it reaches RTS."""
        if transport == "sctp":
            assoc = self.net.sctp.connect(remote)
            return RcSctpQp(self, pd, sq_cq, rq_cq or sq_cq, assoc, remote)
        if transport != "tcp":
            raise DeviceError(f"unknown RC transport {transport!r}")
        sock = self.net.tcp.connect(remote)
        mpa = MpaConnection(sock, initiator=True, markers=markers, crc=crc)
        return RcQp(self, pd, sq_cq, rq_cq or sq_cq, mpa, remote)

    def rc_listen(
        self,
        port: int,
        pd: int,
        sq_cq_factory: Callable[[], CompletionQueue],
        on_qp: Optional[Callable[[RcQp], None]] = None,
        markers: bool = True,
        crc: bool = True,
        transport: str = "tcp",
    ) -> Union["RcListener", "RcSctpListener"]:
        listener: Union[RcListener, RcSctpListener]
        if transport == "sctp":
            listener = RcSctpListener(self, port, pd, sq_cq_factory, on_qp)
        elif transport == "tcp":
            listener = RcListener(self, port, pd, sq_cq_factory, on_qp, markers, crc)
        else:
            raise DeviceError(f"unknown RC transport {transport!r}")
        self._listeners[port] = listener
        return listener


class RcListener:
    """Passive-side RC endpoint: accepts TCP connections, runs MPA
    negotiation, and hands out ready QPs."""

    def __init__(
        self,
        device: RnicDevice,
        port: int,
        pd: int,
        cq_factory: Callable[[], CompletionQueue],
        on_qp: Optional[Callable[[RcQp], None]],
        markers: bool,
        crc: bool,
    ):
        self.device = device
        self.port = port
        self.pd = pd
        self.cq_factory = cq_factory
        self.on_qp = on_qp
        self.markers = markers
        self.crc = crc
        self._pending: List[RcQp] = []
        self._waiters: List[Future] = []
        self._tcp_listener = device.net.tcp.listen(port)
        self._tcp_listener.on_accept = self._on_tcp_accept

    def _on_tcp_accept(self, sock: TcpSocket) -> None:
        mpa = MpaConnection(sock, initiator=False, markers=self.markers, crc=self.crc)
        cq = self.cq_factory()
        qp = RcQp(self.device, self.pd, cq, cq, mpa, sock.remote)
        qp.ready.add_callback(lambda result: self._on_qp_ready(qp, result))

    def _on_qp_ready(self, qp: RcQp, result: Optional[object]) -> None:
        if result is None:
            return
        if self.on_qp is not None:
            self.on_qp(qp)
        elif self._waiters:
            self._waiters.pop(0).set_result(qp)
        else:
            self._pending.append(qp)

    def accept_future(self) -> Future:
        fut = self.device.sim.future()
        if self._pending:
            fut.set_result(self._pending.pop(0))
        else:
            self._waiters.append(fut)
        return fut

    def close(self) -> None:
        self._tcp_listener.close()
        self.device._listeners.pop(self.port, None)


class RcSctpListener:
    """Passive-side RC-over-SCTP endpoint."""

    def __init__(
        self,
        device: RnicDevice,
        port: int,
        pd: int,
        cq_factory: Callable[[], CompletionQueue],
        on_qp: Optional[Callable[[RcSctpQp], None]] = None,
    ):
        self.device = device
        self.port = port
        self.pd = pd
        self.cq_factory = cq_factory
        self.on_qp = on_qp
        self._pending: List[RcSctpQp] = []
        self._waiters: List[Future] = []
        self._sctp_listener = device.net.sctp.listen(port)
        self._sctp_listener.on_accept = self._on_assoc

    def _on_assoc(self, assoc: SctpAssociation) -> None:
        cq = self.cq_factory()
        qp = RcSctpQp(self.device, self.pd, cq, cq, assoc, assoc.remote)
        qp.ready.add_callback(lambda result: self._on_qp_ready(qp, result))

    def _on_qp_ready(self, qp: RcSctpQp, result: Optional[object]) -> None:
        if result is None:
            return
        if self.on_qp is not None:
            self.on_qp(qp)
        elif self._waiters:
            self._waiters.pop(0).set_result(qp)
        else:
            self._pending.append(qp)

    def accept_future(self) -> Future:
        fut = self.device.sim.future()
        if self._pending:
            fut.set_result(self._pending.pop(0))
        else:
            self._waiters.append(fut)
        return fut

    def close(self) -> None:
        self._sctp_listener.close()
        self.device._listeners.pop(self.port, None)
