"""Completion queues with timeout polling.

The paper makes timeout polling a requirement of the datagram design:
"In order to prevent polling on operations that will never complete (in
the event that incoming data are lost and no more incoming data are
expected) it is essential that the completion queue be polled with a
defined timeout period" (§IV.B.1).  :meth:`CompletionQueue.poll_wait`
implements exactly that contract: it resolves with completions, or with
an empty list when the timeout passes first — the caller's signal that
the operation it was waiting for was lost.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional

from ...obs import sim_registry
from ...simnet.engine import Future, Simulator

if TYPE_CHECKING:
    from ...simnet.host import Host
    from .wr import WorkCompletion


class CqError(Exception):
    """Completion-queue misuse (overflow, ...)."""


_cq_nums = itertools.count(1)


class CompletionQueue:
    """FIFO of work completions shared by any number of QPs."""

    def __init__(self, sim: Simulator, host: Optional[Host], depth: int = 4096):
        if depth < 1:
            raise CqError(f"CQ depth must be positive, got {depth}")
        self.sim = sim
        self.host = host
        self.depth = depth
        self.cq_num = next(_cq_nums)
        self._entries: Deque[WorkCompletion] = deque()
        self._waiters: Deque[Dict[str, Any]] = deque()
        self.overflows = 0
        self.completions_total = 0
        # Event notification (ibv_req_notify_cq-style): None = disarmed.
        self._armed: Optional[str] = None
        #: Callback fired (via the event queue) when armed and matched.
        self.on_event: Optional[Callable[[CompletionQueue], None]] = None
        self.events_raised = 0
        # Metrics (repro.obs): the poll-batch histogram is the one
        # event-push instrument here; the plain ints above stay the
        # source of truth and are exposed via the pull collector.
        self.obs = sim_registry(sim)
        if self.obs.enabled:
            self._poll_hist = self.obs.histogram(
                "verbs.cq.poll_batch", **self._obs_labels()
            )
            self.obs.add_collector(self._obs_samples)

    # -- metrics -----------------------------------------------------------

    def _obs_labels(self) -> Dict[str, str]:
        host = self.host.name if self.host is not None else ""
        return {"cq": str(self.cq_num), "host": host}

    def _obs_samples(self) -> Any:
        labels = self._obs_labels()
        yield ("verbs.cq.completions", labels, "counter", self.completions_total)
        yield ("verbs.cq.overflows", labels, "counter", self.overflows)
        yield ("verbs.cq.events", labels, "counter", self.events_raised)

    # -- event notification ------------------------------------------------

    ARM_NEXT = "next"          # any next completion raises an event
    ARM_SOLICITED = "solicited"  # only solicited completions do

    def req_notify(self, solicited_only: bool = False) -> None:
        """Arm the CQ: the next completion (or next *solicited*
        completion — the send-with-solicited-event machinery the paper
        contrasts Write-Record against, §IV.B.3) raises one event via
        ``on_event`` and disarms."""
        self._armed = self.ARM_SOLICITED if solicited_only else self.ARM_NEXT

    def _maybe_raise_event(self, wc: WorkCompletion) -> None:
        if self._armed is None:
            return
        if self._armed == self.ARM_SOLICITED and not getattr(wc, "solicited", False):
            return
        self._armed = None
        self.events_raised += 1
        if self.on_event is not None:
            # Events are interrupt-like: delivered through the queue so
            # the handler never runs inside the pushing stack frame.
            self.sim.schedule(0, self.on_event, self)

    # -- producer side (the stack) ------------------------------------------

    def push(self, wc: WorkCompletion) -> None:
        """Add a completion (charges CQE-generation cost upstream)."""
        self.completions_total += 1
        self._maybe_raise_event(wc)
        while self._waiters:
            waiter = self._waiters[0]
            if waiter["future"].done:
                self._waiters.popleft()
                continue
            self._waiters.popleft()
            if waiter["timer"] is not None:
                waiter["timer"].cancel()
            self._charge_poll(1)
            waiter["future"].set_result([wc])
            return
        if len(self._entries) >= self.depth:
            self.overflows += 1
            return
        self._entries.append(wc)

    # -- consumer side (the application) ----------------------------------------

    def poll(self, max_entries: int = 1) -> List[WorkCompletion]:
        """Non-blocking poll: up to ``max_entries`` completions, possibly
        none."""
        out: List[WorkCompletion] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        if out:
            self._charge_poll(len(out))
        return out

    def poll_wait(self, timeout_ns: Optional[int] = None, max_entries: int = 1) -> Future:
        """Future resolving to a non-empty completion list, or to ``[]``
        if ``timeout_ns`` elapses first (the datagram-iWARP loss-detection
        contract)."""
        fut = self.sim.future()
        ready = self.poll(max_entries)
        if ready:
            fut.set_result(ready)
            return fut
        waiter: Dict[str, Any] = {"future": fut, "timer": None}
        if timeout_ns is not None:
            waiter["timer"] = self.sim.schedule(timeout_ns, self._expire, waiter)
        self._waiters.append(waiter)
        return fut

    def _expire(self, waiter: Dict[str, Any]) -> None:
        if not waiter["future"].done:
            waiter["future"].set_result([])

    def _charge_poll(self, n: int) -> None:
        if self.obs.enabled:
            self._poll_hist.observe(n)
        if self.host is not None:
            self.host.cpu.charge(self.host.costs.poll_ns * n)

    def __len__(self) -> int:
        return len(self._entries)
