"""The iWARP stack: MPA, DDP, RDMAP (with RDMA Write-Record), verbs,
and the iWARP socket interface."""
