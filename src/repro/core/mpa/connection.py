"""MPA connection: negotiation + framed, marked, CRC-protected stream.

Binds the marker writer/reader and FPDU framer to one TCP socket, with
the MPA Request/Reply negotiation exchange (markers and CRC are
negotiated capabilities in RFC 5044; both sides here must agree, and
the marker epoch — stream position 0 — starts after negotiation).

CPU accounting happens here for the whole RC-side iWARP framing burden:
per-FPDU framing work, per-marker insertion/stripping, the staging copy
over the payload, CRC computation, and the user-space library's recv
syscalls — everything §IV.A argues datagram-iWARP avoids.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from ..fsm import transition as _fsm_transition
from ...simnet.engine import Future
from ...transport.tcp.socket import TcpSocket
from .crc import CrcError
from .fpdu import MAX_ULPDU, build_fpdu, parse_fpdu
from .markers import MarkedStreamReader, MarkedStreamWriter

_NEG = struct.Struct("!HBB4x")  # magic, type, flags, reserved
NEG_SIZE = _NEG.size
_MAGIC = 0x4D50  # "MP"
_TYPE_REQ = 1
_TYPE_REP = 2
_FLAG_MARKERS = 0x1
_FLAG_CRC = 0x2

NEGOTIATING = "NEGOTIATING"
OPERATIONAL = "OPERATIONAL"
FAILED = "FAILED"

#: Legal lifecycle moves (RFC 5044: startup exchange, then full
#: operation until the stream dies).  Mirrored in
#: ``iwarplint.invariants.MPA_TABLE``; drift is flagged (IW204).
MPA_TRANSITIONS: "Dict[str, FrozenSet[str]]" = {
    NEGOTIATING: frozenset({OPERATIONAL, FAILED}),
    OPERATIONAL: frozenset({FAILED}),
    FAILED: frozenset(),
}

#: Event-labelled view: ``(state, event) -> state``.  Model-checked by
#: ``tools/iwarpcheck`` against :data:`MPA_TRANSITIONS` (projection
#: equality).  ``neg_reject`` covers every negotiation failure (bad
#: magic, capability mismatch, unexpected type); ``crc_mismatch`` is a
#: corrupted FPDU on an operational stream, ``stream_error`` any other
#: fatal stream condition.  FAILED is terminal: an MPA stream is never
#: revived, the ULP tears the QP down instead.
MPA_EVENT_TRANSITIONS: "Dict[Tuple[str, str], str]" = {
    (NEGOTIATING, "neg_complete"): OPERATIONAL,
    (NEGOTIATING, "neg_reject"): FAILED,
    (OPERATIONAL, "crc_mismatch"): FAILED,
    (OPERATIONAL, "stream_error"): FAILED,
}


class MpaError(Exception):
    """Negotiation failure or stream corruption."""


class MpaConnection:
    """Full-duplex MPA endpoint over an established TCP socket."""

    def __init__(
        self,
        sock: TcpSocket,
        initiator: bool,
        markers: bool = True,
        crc: bool = True,
    ):
        self.sock = sock
        self.host = sock.stack.host
        self.sim = sock.stack.sim
        self.initiator = initiator
        self.markers = markers
        self.crc = crc
        self.state = NEGOTIATING
        self.ready: Future = self.sim.future()
        self.on_ulpdu: Optional[Callable[[bytes], None]] = None
        self.on_error: Optional[Callable[[Exception], None]] = None

        self._writer = MarkedStreamWriter(enabled=markers)
        self._reader = MarkedStreamReader(enabled=markers)
        self._rxbuf = bytearray()     # de-marked FPDU byte stream
        self._negbuf = bytearray()
        self.ulpdus_sent = 0
        self.ulpdus_received = 0

        sock.on_data = self._on_bytes
        if initiator:
            sock.established.add_callback(lambda _: self._send_negotiation(_TYPE_REQ))

    # ------------------------------------------------------------------
    # Negotiation
    # ------------------------------------------------------------------

    def _send_negotiation(self, neg_type: int) -> None:
        flags = (_FLAG_MARKERS if self.markers else 0) | (_FLAG_CRC if self.crc else 0)
        self.sock.send(_NEG.pack(_MAGIC, neg_type, flags))

    def _handle_negotiation(self, frame: bytes) -> None:
        magic, neg_type, flags = _NEG.unpack(frame)
        if magic != _MAGIC:
            self._fail(MpaError(f"bad negotiation magic {magic:#06x}"))
            return
        peer_markers = bool(flags & _FLAG_MARKERS)
        peer_crc = bool(flags & _FLAG_CRC)
        if peer_markers != self.markers or peer_crc != self.crc:
            self._fail(
                MpaError(
                    f"capability mismatch: peer markers={peer_markers} crc={peer_crc}, "
                    f"local markers={self.markers} crc={self.crc}"
                )
            )
            return
        if neg_type == _TYPE_REQ and not self.initiator:
            self._send_negotiation(_TYPE_REP)
            self._become_operational()
        elif neg_type == _TYPE_REP and self.initiator:
            self._become_operational()
        else:
            self._fail(MpaError(f"unexpected negotiation type {neg_type}"))

    def _set_state(self, new_state: str) -> None:
        """Sole state mutator after construction; validates the move
        against :data:`MPA_TRANSITIONS` via the shared
        :func:`repro.core.fsm.transition` helper (same-state is a no-op)."""
        _fsm_transition(self, "MPA", MPA_TRANSITIONS, new_state, MpaError)

    def _become_operational(self) -> None:
        self._set_state(OPERATIONAL)
        if not self.ready.done:
            self.ready.set_result(self)

    def _fail(self, exc: Exception) -> None:
        self._set_state(FAILED)
        if not self.ready.done:
            self.ready.set_result(None)
        if self.on_error is not None:
            self.on_error(exc)

    # ------------------------------------------------------------------
    # Transmit
    # ------------------------------------------------------------------

    def frame_cost_ns(self, ulpdu_len: int) -> int:
        """CPU cost of framing one ULPDU (FPDU build + staging copy +
        CRC).  Exposed so the QP can fold it into a single per-segment
        charge — keeping the send side pipelined instead of queueing all
        framing work behind all DDP work."""
        costs = self.host.costs
        cost = costs.mpa_fpdu_ns
        if self.markers:
            # The staging pass over the payload exists to weave/strip
            # markers; markerless MPA streams the FPDU directly.
            cost += int(costs.mpa_copy_per_byte_ns * ulpdu_len)
        if self.crc:
            cost += costs.crc_ns(ulpdu_len)
        return cost

    def send_ulpdu(self, ulpdu: bytes) -> None:
        """Frame, mark, CRC and transmit one ULPDU (a DDP segment),
        charging the framing cost here (standalone use)."""
        if self.state != OPERATIONAL:
            raise MpaError(f"send_ulpdu in state {self.state}")
        if len(ulpdu) > MAX_ULPDU:
            raise MpaError(f"ULPDU of {len(ulpdu)} bytes exceeds {MAX_ULPDU}")
        self.host.cpu.submit(self.frame_cost_ns(len(ulpdu)), self._emit, ulpdu)

    def emit_ulpdu_now(self, ulpdu: bytes) -> None:
        """Emit with the framing cost already charged by the caller.
        Must run in CPU-execution context."""
        if self.state != OPERATIONAL:
            raise MpaError(f"emit_ulpdu_now in state {self.state}")
        if len(ulpdu) > MAX_ULPDU:
            raise MpaError(f"ULPDU of {len(ulpdu)} bytes exceeds {MAX_ULPDU}")
        self._emit(ulpdu)

    def _emit(self, ulpdu: bytes) -> None:
        fpdu = build_fpdu(ulpdu, crc_enabled=self.crc)
        wire, inserted = self._writer.emit_fpdu(fpdu)
        if inserted:
            self.host.cpu.charge(self.host.costs.mpa_marker_ns * inserted)
        self.ulpdus_sent += 1
        # The library batches FPDUs of one message into one send() call;
        # the per-call syscall/kernel-fixed/copy costs are charged by the
        # RC QP at the first segment of each message, so the stream write
        # here bypasses the socket's per-call accounting.
        self.sock.send_from_stack(wire)

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def _on_bytes(self, chunk: bytes) -> None:
        if self.state == FAILED:
            return
        if self.state == NEGOTIATING:
            self._negbuf += chunk
            if len(self._negbuf) < NEG_SIZE:
                return
            frame = bytes(self._negbuf[:NEG_SIZE])
            rest = bytes(self._negbuf[NEG_SIZE:])
            self._negbuf.clear()
            self._handle_negotiation(frame)
            if self.state != OPERATIONAL or not rest:
                return
            chunk = rest
        self._rxbuf += self._reader.feed(chunk)
        self._drain_fpdus()

    def _drain_fpdus(self) -> None:
        costs = self.host.costs
        offset = 0
        markers_before = self._reader.markers_stripped
        while True:
            try:
                parsed = parse_fpdu(self._rxbuf, offset, crc_enabled=self.crc)
            except CrcError as exc:
                self._fail(exc)
                return
            if parsed is None:
                break
            ulpdu, consumed = parsed
            offset += consumed
            self.ulpdus_received += 1
            cost = costs.mpa_fpdu_ns
            if self.markers:
                cost += int(costs.mpa_copy_per_byte_ns * len(ulpdu))
            if self.crc:
                cost += costs.crc_ns(len(ulpdu))
            self.host.cpu.submit(cost, self._deliver, ulpdu)
        if offset:
            del self._rxbuf[:offset]
        stripped = self._reader.markers_stripped - markers_before
        if stripped:
            self.host.cpu.charge(self.host.costs.mpa_marker_ns * stripped)

    def _deliver(self, ulpdu: bytes) -> None:
        if self.on_ulpdu is not None:
            self.on_ulpdu(ulpdu)

    def close(self) -> None:
        self.sock.close()
