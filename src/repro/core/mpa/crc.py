"""CRC-32 as used by MPA framing and datagram-iWARP DDP segments.

Datagram-iWARP "always requires the use of Cyclic Redundancy Check
(CRC32) when sending messages" (§IV.B item 6); on the RC path the CRC
lives in the MPA FPDU trailer.  zlib's CRC-32 (the same polynomial
family) stands in for CRC32c — the protection property, not the exact
polynomial, is what the reproduction needs.
"""

from __future__ import annotations

import struct
import zlib

CRC_SIZE = 4
_CRC = struct.Struct("!I")


def crc32(data: bytes, seed: int = 0) -> int:
    return zlib.crc32(data, seed) & 0xFFFFFFFF


def append_crc(data: bytes) -> bytes:
    """``data`` with its 4-byte CRC trailer."""
    return data + _CRC.pack(crc32(data))


class CrcError(Exception):
    """CRC mismatch on a received FPDU or DDP segment."""


def split_and_verify(data: bytes) -> bytes:
    """Strip and verify a CRC trailer; returns the protected bytes."""
    if len(data) < CRC_SIZE:
        raise CrcError(f"{len(data)} bytes cannot hold a CRC trailer")
    body, trailer = data[:-CRC_SIZE], data[-CRC_SIZE:]
    (expect,) = _CRC.unpack(trailer)
    actual = crc32(body)
    if actual != expect:
        raise CrcError(f"CRC mismatch: computed {actual:#010x}, trailer {expect:#010x}")
    return body
