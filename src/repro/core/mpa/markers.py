"""MPA marker insertion and removal.

Markers are 4-byte back-pointers woven into the TCP stream at every
position that is a multiple of 512 bytes (counted over the marked
stream, markers included, from the start of full-operation mode).  Each
marker records the distance back to the header of the FPDU it falls
inside (0 when it lands exactly on an FPDU boundary), letting a receiver
that lost framing re-locate FPDU headers in arriving segments
(RFC 5044).

The paper singles this machinery out as a key overhead of TCP-based
iWARP: "Packet marking, which is used to correct the semantic mismatch
between message-based iWARP and stream-based TCP, is a high overhead
activity and is very expensive to implement in hardware" (§IV.A).  The
implementation here is real — markers are inserted into and stripped
from the actual byte stream — so both the correctness tests and the
marker-cost ablation run against genuine framing.
"""

from __future__ import annotations

import struct
from typing import Tuple

MARKER_SIZE = 4
MARKER_SPACING = 512
_MARKER = struct.Struct("!HH")  # reserved, FPDU pointer (bytes back to header)


class MarkerError(Exception):
    """Inconsistent marker content observed by the receiver."""


class MarkedStreamWriter:
    """Sender side: weaves markers into outgoing FPDU bytes.

    ``stream_pos`` counts every byte emitted (markers included) since
    full-operation mode began; the receiver mirrors the count, which is
    what makes position-based stripping exact.
    """

    def __init__(self, enabled: bool = True, spacing: int = MARKER_SPACING):
        if spacing % 4 != 0 or spacing <= MARKER_SIZE:
            raise ValueError(f"invalid marker spacing {spacing}")
        self.enabled = enabled
        self.spacing = spacing
        self.stream_pos = 0
        self.markers_emitted = 0

    def emit_fpdu(self, fpdu: bytes) -> Tuple[bytes, int]:
        """Return ``(wire_bytes, markers_inserted)`` for one FPDU."""
        if not self.enabled:
            self.stream_pos += len(fpdu)
            return fpdu, 0
        out = bytearray()
        fpdu_start = self.stream_pos
        idx = 0
        inserted = 0
        while idx < len(fpdu):
            if self.stream_pos % self.spacing == 0:
                # FPDUPTR is 16-bit; spec-conformant MULPDUs keep the
                # distance under the marker spacing, but oversized test
                # FPDUs must not crash the writer.
                back = (self.stream_pos - fpdu_start) & 0xFFFF
                out += _MARKER.pack(0, back)
                self.stream_pos += MARKER_SIZE
                inserted += 1
                continue
            take = min(
                self.spacing - self.stream_pos % self.spacing,
                len(fpdu) - idx,
            )
            out += fpdu[idx : idx + take]
            idx += take
            self.stream_pos += take
        self.markers_emitted += inserted
        return bytes(out), inserted


class MarkedStreamReader:
    """Receiver side: strips markers by stream position and returns the
    de-marked FPDU byte stream.  Marker back-pointers are validated
    against the receiver's own framing state when possible."""

    def __init__(self, enabled: bool = True, spacing: int = MARKER_SPACING):
        if spacing % 4 != 0 or spacing <= MARKER_SIZE:
            raise ValueError(f"invalid marker spacing {spacing}")
        self.enabled = enabled
        self.spacing = spacing
        self.stream_pos = 0
        self._pending_marker = 0  # marker bytes still to swallow
        self._marker_buf = bytearray()
        self.markers_stripped = 0
        self.last_marker_pointer = 0

    def feed(self, chunk: bytes) -> bytes:
        """Consume raw TCP bytes; return de-marked FPDU bytes."""
        if not self.enabled:
            self.stream_pos += len(chunk)
            return chunk
        out = bytearray()
        idx = 0
        while idx < len(chunk):
            if self._pending_marker > 0:
                take = min(self._pending_marker, len(chunk) - idx)
                self._marker_buf += chunk[idx : idx + take]
                self._pending_marker -= take
                idx += take
                self.stream_pos += take
                if self._pending_marker == 0:
                    _, pointer = _MARKER.unpack(bytes(self._marker_buf))
                    self.last_marker_pointer = pointer
                    self._marker_buf.clear()
                    self.markers_stripped += 1
                continue
            if self.stream_pos % self.spacing == 0:
                self._pending_marker = MARKER_SIZE
                continue
            take = min(
                self.spacing - self.stream_pos % self.spacing,
                len(chunk) - idx,
            )
            out += chunk[idx : idx + take]
            idx += take
            self.stream_pos += take
        return bytes(out)


def marker_count_for(fpdu_len: int, stream_pos: int, spacing: int = MARKER_SPACING) -> int:
    """How many markers a sender at ``stream_pos`` weaves into an FPDU of
    ``fpdu_len`` bytes (for cost accounting without materializing it)."""
    count = 0
    pos = stream_pos
    remaining = fpdu_len
    while remaining > 0:
        if pos % spacing == 0:
            pos += MARKER_SIZE
            count += 1
            continue
        take = min(spacing - pos % spacing, remaining)
        pos += take
        remaining -= take
    return count
