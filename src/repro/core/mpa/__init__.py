"""MPA layer: FPDU framing, stream markers, CRC (RC path only)."""

from .connection import MpaConnection, MpaError, NEGOTIATING, OPERATIONAL
from .crc import CRC_SIZE, CrcError, append_crc, crc32, split_and_verify
from .fpdu import FramingError, MAX_ULPDU, build_fpdu, fpdu_size, parse_fpdu
from .markers import (
    MARKER_SIZE, MARKER_SPACING, MarkedStreamReader, MarkedStreamWriter,
    MarkerError, marker_count_for,
)

__all__ = [
    "CRC_SIZE", "CrcError", "FramingError", "MARKER_SIZE", "MARKER_SPACING",
    "MAX_ULPDU", "MarkedStreamReader", "MarkedStreamWriter", "MarkerError",
    "MpaConnection", "MpaError", "NEGOTIATING", "OPERATIONAL", "append_crc",
    "build_fpdu", "crc32", "fpdu_size", "marker_count_for", "parse_fpdu",
    "split_and_verify",
]
