"""FPDU framing: length prefix, padding, CRC trailer.

An FPDU (Framed PDU) is how MPA delimits DDP segments inside the TCP
byte stream::

    +-----------+---------+---------+---------+
    | ULPDU len |  ULPDU  | padding |  CRC32  |
    |   2 B     |         | 0-3 B   |   4 B   |
    +-----------+---------+---------+---------+

Padding brings the pre-CRC length to a 4-byte multiple (RFC 5044).
This is the work — together with marker insertion — that datagram-iWARP
deletes entirely: "datagram-iWARP does not require the MPA layer"
(§IV.B item 5).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from .crc import CRC_SIZE, CrcError, append_crc, crc32

_LEN = struct.Struct("!H")
LEN_SIZE = _LEN.size
#: Largest ULPDU a 16-bit length prefix can frame.
MAX_ULPDU = 0xFFFF


class FramingError(Exception):
    """Structurally invalid FPDU in the stream."""


def pad_for(ulpdu_len: int) -> int:
    return (-(LEN_SIZE + ulpdu_len)) % 4


def fpdu_size(ulpdu_len: int, crc_enabled: bool = True) -> int:
    """Total FPDU bytes for a ULPDU of ``ulpdu_len``."""
    return LEN_SIZE + ulpdu_len + pad_for(ulpdu_len) + (CRC_SIZE if crc_enabled else 0)


def build_fpdu(ulpdu: bytes, crc_enabled: bool = True) -> bytes:
    if len(ulpdu) > MAX_ULPDU:
        raise FramingError(f"ULPDU of {len(ulpdu)} bytes exceeds MPA maximum {MAX_ULPDU}")
    body = _LEN.pack(len(ulpdu)) + ulpdu + b"\x00" * pad_for(len(ulpdu))
    return append_crc(body) if crc_enabled else body


def parse_fpdu(buf: bytes, offset: int, crc_enabled: bool = True) -> Optional[Tuple[bytes, int]]:
    """Parse one FPDU from ``buf`` starting at ``offset``.

    Returns ``(ulpdu, bytes_consumed)`` or None if the buffer does not
    yet hold a complete FPDU.  Raises :class:`CrcError` on corruption.
    """
    avail = len(buf) - offset
    if avail < LEN_SIZE:
        return None
    (ulen,) = _LEN.unpack_from(buf, offset)
    total = fpdu_size(ulen, crc_enabled)
    if avail < total:
        return None
    frame = bytes(buf[offset : offset + total])
    if crc_enabled:
        body = frame[:-CRC_SIZE]
        (expect,) = struct.unpack("!I", frame[-CRC_SIZE:])
        actual = crc32(body)
        if actual != expect:
            raise CrcError(
                f"FPDU CRC mismatch at stream offset {offset}: "
                f"computed {actual:#010x}, trailer {expect:#010x}"
            )
    else:
        body = frame
    ulpdu = body[LEN_SIZE : LEN_SIZE + ulen]
    return ulpdu, total
