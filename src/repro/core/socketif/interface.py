"""The iWARP socket interface (§V.A).

Translates BSD-socket data calls onto verbs so unmodified socket
applications run over datagram-iWARP.  Faithful to the paper's design
decisions:

* the shim "does not override the creation of sockets, only the data
  operations related to them": it keeps an fd → QP table and "whether
  the file descriptor has been previously initialized as an iWARP
  socket"; everything else lives in the socket structure;
* datagram sockets map to UD QPs, stream sockets to RC QPs, chosen per
  call by socket type;
* to "effectively support the use of multiple buffers on a single
  socket", remote buffers are advertised **once per peer** and incoming
  data is *copied* into the user-supplied buffer instead of
  re-advertising per call — which is exactly why send/recv and
  Write-Record "are almost identical in terms of performance when using
  our socket interface" (§VI.B.1).  The copy is charged at
  ``shim_copy_per_byte_ns``.

Wire framing the interface adds on untagged traffic: a 1-byte type
(DATA / ADV_REQ / ADV_REP) so the one-time sink advertisement handshake
for Write-Record can share the QP with data traffic.
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ...memory.region import Access
from ...simnet.engine import MS, Future
from ..verbs.cq import CompletionQueue
from ..verbs.device import RnicDevice
from ..verbs.qp import RcQp, UdQp
from ..verbs.wr import RecvWR, SendWR, Sge, WcStatus, WorkCompletion, WrOpcode

Address = Tuple[int, int]

SOCK_DGRAM = "SOCK_DGRAM"
SOCK_STREAM = "SOCK_STREAM"

# Interface-level framing on untagged messages.
_TYPE_DATA = 0
_TYPE_ADV_REQ = 1
_TYPE_ADV_REP = 2
_ADV_REP = struct.Struct("!BIQ")  # type, stag, ring size
_TYPE_HDR = struct.Struct("!B")


class SocketError(Exception):
    """BSD-style failures (bad fd, message too long, not connected...)."""


class _DgramSocket:
    """State behind one datagram fd."""

    def __init__(self, iface: "IwSocketInterface", port: Optional[int]):
        self.iface = iface
        dev = iface.device
        self.cq: CompletionQueue = dev.create_cq()
        self.qp: UdQp = dev.create_ud_qp(iface.pd, self.cq, port=port)
        # Receive pool: pre-posted buffers for send/recv arrivals.
        self.pool_slot = iface.pool_slot_bytes
        self._pool = []
        for _ in range(iface.pool_slots):
            mr = dev.reg_mr(self.pool_slot, Access.local_only(), iface.pd)
            self._pool.append(mr)
            self.qp.post_recv(RecvWR(sges=[Sge(mr)], wr_id=id(mr)))
        self._slot_by_id = {id(mr): mr for mr in self._pool}
        # Write-Record sink rings, one per advertising peer.
        self._rings: Dict[Address, dict] = {}      # peers writing to us
        self._peer_sinks: Dict[Address, dict] = {}  # our view of peers' rings
        self._adv_waiters: Dict[Address, list] = {}
        # Delivered-but-unread datagrams.
        self._rxq: Deque[Tuple[bytes, Address]] = deque()
        self._waiters: Deque[dict] = deque()
        self._drain_arm()

    # -- receive plumbing -------------------------------------------------

    def _drain_arm(self) -> None:
        self.cq.poll_wait(timeout_ns=None).add_callback(self._on_completions)

    def _on_completions(self, wcs) -> None:
        for wc in wcs:
            self._handle_wc(wc)
        if self.qp.state != "ERROR":
            self._drain_arm()

    def _handle_wc(self, wc: WorkCompletion) -> None:
        if wc.opcode is WrOpcode.RDMA_WRITE_RECORD:
            if not wc.ok:
                return
            ring = self._rings.get(wc.src)
            if ring is None:
                return
            data = self._read_ring(ring, wc)
            if data is not None:
                self._deliver(data, wc.src)
            return
        if wc.opcode in (WrOpcode.SEND, WrOpcode.SEND_SE):
            mr = self._slot_by_id.get(wc.wr_id)
            if mr is None:
                return
            if wc.ok and wc.byte_len >= _TYPE_HDR.size:
                kind = mr.view(0, 1)[0]
                body = bytes(mr.view(1, wc.byte_len - 1))
                self._dispatch_untagged(kind, body, wc.src)
            # Repost the slot (partial/errored arrivals are simply recycled:
            # UD loss semantics) — unless the QP flushed it on teardown.
            if wc.status is not WcStatus.FLUSHED:
                self.qp.post_recv(RecvWR(sges=[Sge(mr)], wr_id=id(mr)))

    def _dispatch_untagged(self, kind: int, body: bytes, src: Address) -> None:
        if kind == _TYPE_DATA:
            self._deliver(body, src)
        elif kind == _TYPE_ADV_REQ:
            self._send_advertisement(src)
        elif kind == _TYPE_ADV_REP:
            _, stag, size = _ADV_REP.unpack(bytes([_TYPE_ADV_REP]) + body)
            sink = {"stag": stag, "size": size, "cursor": 0}
            self._peer_sinks[src] = sink
            for fut in self._adv_waiters.pop(src, []):
                fut.set_result(sink)

    def _send_advertisement(self, peer: Address) -> None:
        """Register a dedicated sink ring for ``peer`` and tell it."""
        iface = self.iface
        ring = self._rings.get(peer)
        if ring is None:
            mr = iface.device.reg_mr(
                iface.ring_bytes, Access.remote_write(), iface.pd
            )
            ring = {"mr": mr}
            self._rings[peer] = ring
        rep = _ADV_REP.pack(_TYPE_ADV_REP, ring["mr"].stag, len(ring["mr"]))
        self._post_untagged(rep, peer)

    def _read_ring(self, ring: dict, wc: WorkCompletion) -> Optional[bytes]:
        """Copy one Write-Record message out of the peer's ring.

        The validity map's ranges are ring offsets relative to where the
        peer wrote; for a complete message they are contiguous.  Partial
        messages surface the valid prefix/chunks concatenated — the
        loss-tolerant consumption model of §IV.B.4.
        """
        if wc.validity is None or wc.validity.valid_bytes() == 0:
            return None
        mr = ring["mr"]
        parts = []
        for off, length in wc.validity.ranges():
            parts.append(bytes(mr.view(wc.base_offset + off, length)))
        return b"".join(parts)

    # -- user-facing operations ----------------------------------------------

    def _deliver(self, data: bytes, src: Address) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter["future"].done:
                continue
            if waiter["timer"] is not None:
                waiter["timer"].cancel()
            self.iface._charge_copy(len(data))
            waiter["future"].set_result((data[: waiter["bufsize"]], src))
            return
        self._rxq.append((data, src))

    def recvfrom_future(self, bufsize: int, timeout_ns: Optional[int]) -> Future:
        iface = self.iface
        iface._charge_dispatch()
        fut = iface.sim.future()
        if self._rxq:
            data, src = self._rxq.popleft()
            iface._charge_copy(len(data))
            fut.set_result((data[:bufsize], src))
            return fut
        waiter = {"future": fut, "bufsize": bufsize, "timer": None}
        if timeout_ns is not None:
            waiter["timer"] = iface.sim.schedule(
                timeout_ns, self._expire_waiter, waiter
            )
        self._waiters.append(waiter)
        return fut

    @staticmethod
    def _expire_waiter(waiter: dict) -> None:
        if not waiter["future"].done:
            waiter["future"].set_result(None)

    def sendto(self, data: bytes, addr: Address) -> None:
        iface = self.iface
        iface._charge_dispatch()
        if iface.rdma_mode and len(data) <= iface.ring_bytes:
            sink = self._peer_sinks.get(addr)
            if sink is None:
                self._request_advertisement_then_send(data, addr)
                return
            self._write_record_to(data, addr, sink)
            return
        self._post_untagged(_TYPE_HDR.pack(_TYPE_DATA) + bytes(data), addr)

    def _request_advertisement_then_send(self, data: bytes, addr: Address) -> None:
        fut = self.iface.sim.future()
        self._adv_waiters.setdefault(addr, []).append(fut)
        if len(self._adv_waiters[addr]) == 1:
            self._post_untagged(_TYPE_HDR.pack(_TYPE_ADV_REQ), addr)
        fut.add_callback(lambda sink: self._write_record_to(data, addr, sink))

    def _write_record_to(self, data: bytes, addr: Address, sink: dict) -> None:
        if sink["cursor"] + len(data) > sink["size"]:
            sink["cursor"] = 0  # wrap the ring
        offset = sink["cursor"]
        sink["cursor"] += len(data)
        mr = self.iface.scratch_for(len(data))
        mr.write(0, data)
        self.qp.post_send(
            SendWR(
                opcode=WrOpcode.RDMA_WRITE_RECORD,
                sges=[Sge(mr, 0, len(data))],
                dest=addr,
                remote_stag=sink["stag"],
                remote_offset=offset,
                signaled=False,
            )
        )

    def _post_untagged(self, payload: bytes, addr: Address) -> None:
        if len(payload) > self.pool_slot:
            raise SocketError(
                f"datagram of {len(payload)} bytes exceeds socket buffer "
                f"{self.pool_slot} (EMSGSIZE)"
            )
        mr = self.iface.scratch_for(len(payload))
        mr.write(0, payload)
        self.qp.post_send(
            SendWR(
                opcode=WrOpcode.SEND,
                sges=[Sge(mr, 0, len(payload))],
                dest=addr,
                signaled=False,
            )
        )

    @property
    def address(self) -> Address:
        return self.qp.address

    def close(self) -> None:
        self.qp.close()


class _StreamSocket:
    """State behind one stream fd (RC QP, SDP-like buffered copy)."""

    def __init__(self, iface: "IwSocketInterface"):
        self.CHUNK = iface.pool_slot_bytes
        self.iface = iface
        self.qp: Optional[RcQp] = None
        self.listener = None
        self._rxbuf = bytearray()
        self._waiters: Deque[dict] = deque()
        self._accept_q: Deque["_StreamSocket"] = deque()
        self._accept_waiters: Deque[Future] = deque()

    # -- connection management ---------------------------------------------

    def connect_future(self, addr: Address) -> Future:
        iface = self.iface
        iface._charge_dispatch()
        cq = iface.device.create_cq()
        self.qp = iface.device.rc_connect(addr, iface.pd, cq)
        self._arm_qp()
        return self.qp.ready

    def listen(self, port: int) -> None:
        iface = self.iface
        self.listener = iface.device.rc_listen(
            port, iface.pd, iface.device.create_cq, on_qp=self._on_accepted_qp
        )

    def _on_accepted_qp(self, qp: RcQp) -> None:
        child = _StreamSocket(self.iface)
        child.qp = qp
        child._arm_qp()
        if self._accept_waiters:
            self._accept_waiters.popleft().set_result(child)
        else:
            self._accept_q.append(child)

    def accept_future(self) -> Future:
        fut = self.iface.sim.future()
        if self._accept_q:
            fut.set_result(self._accept_q.popleft())
        else:
            self._accept_waiters.append(fut)
        return fut

    def _arm_qp(self) -> None:
        # Pre-post the buffered-copy receive pool.
        dev = self.iface.device
        self._slots = {}
        for _ in range(self.iface.pool_slots):
            mr = dev.reg_mr(self.CHUNK, Access.local_only(), self.iface.pd)
            self._slots[id(mr)] = mr
            self.qp.post_recv(RecvWR(sges=[Sge(mr)], wr_id=id(mr)))
        self._drain_arm()

    def _drain_arm(self) -> None:
        self.qp.rq_cq.poll_wait(timeout_ns=None).add_callback(self._on_completions)

    def _on_completions(self, wcs) -> None:
        for wc in wcs:
            if wc.opcode in (WrOpcode.SEND, WrOpcode.SEND_SE):
                mr = self._slots.get(wc.wr_id)
                if mr is None:
                    continue
                if wc.ok and wc.byte_len:
                    self._rxbuf += bytes(mr.view(0, wc.byte_len))
                if wc.status is not WcStatus.FLUSHED:
                    self.qp.post_recv(RecvWR(sges=[Sge(mr)], wr_id=id(mr)))
        self._satisfy_waiters()
        if self.qp.state != "ERROR":
            self._drain_arm()

    def _satisfy_waiters(self) -> None:
        while self._waiters and self._rxbuf:
            waiter = self._waiters.popleft()
            if waiter["future"].done:
                continue
            take = min(waiter["bufsize"], len(self._rxbuf))
            data = bytes(self._rxbuf[:take])
            del self._rxbuf[:take]
            self.iface._charge_copy(take)
            waiter["future"].set_result(data)

    # -- data ---------------------------------------------------------------

    def send(self, data: bytes) -> None:
        iface = self.iface
        iface._charge_dispatch()
        if self.qp is None or self.qp.state != "RTS":
            raise SocketError("send on unconnected stream socket")
        view = memoryview(bytes(data))
        for off in range(0, max(len(view), 1), self.CHUNK):
            chunk = bytes(view[off : off + self.CHUNK])
            mr = iface.scratch_for(len(chunk))
            mr.write(0, chunk)
            self.qp.post_send(
                SendWR(
                    opcode=WrOpcode.SEND,
                    sges=[Sge(mr, 0, len(chunk))],
                    signaled=False,
                )
            )

    def recv_future(self, bufsize: int, timeout_ns: Optional[int] = None) -> Future:
        iface = self.iface
        iface._charge_dispatch()
        fut = iface.sim.future()
        if self._rxbuf:
            take = min(bufsize, len(self._rxbuf))
            data = bytes(self._rxbuf[:take])
            del self._rxbuf[:take]
            iface._charge_copy(take)
            fut.set_result(data)
            return fut
        waiter = {"future": fut, "bufsize": bufsize}
        if timeout_ns is not None:
            self.iface.sim.schedule(timeout_ns, _DgramSocket._expire_waiter, waiter)
            waiter["timer"] = None
        self._waiters.append(waiter)
        return fut

    def close(self) -> None:
        if self.qp is not None:
            self.qp.close()
        if self.listener is not None:
            self.listener.close()


class IwSocketInterface:
    """fd table + dispatch: the preloaded library of §V.A."""

    def __init__(
        self,
        device: RnicDevice,
        rdma_mode: bool = True,
        pool_slots: int = 32,
        pool_slot_bytes: int = 64 * 1024,
        ring_bytes: int = 4 * 1024 * 1024,
    ):
        self.device = device
        self.sim = device.sim
        self.pd = device.alloc_pd()
        #: True: datagram sends use RDMA Write-Record; False: UD send/recv.
        self.rdma_mode = rdma_mode
        self.pool_slots = pool_slots
        self.pool_slot_bytes = pool_slot_bytes
        self.ring_bytes = ring_bytes
        self._fds: Dict[int, object] = {}
        self._next_fd = itertools.count(3)
        # Scratch send regions, grown on demand and reused.
        self._scratch: Dict[int, object] = {}

    # -- bookkeeping -------------------------------------------------------

    def scratch_for(self, nbytes: int):
        """A registered staging region of at least ``nbytes`` (reused —
        registration costs are paid once, like the paper's buffer pool)."""
        size = max(4096, 1 << (max(nbytes, 1) - 1).bit_length())
        mr = self._scratch.get(size)
        if mr is None:
            mr = self.device.reg_mr(size, Access.local_only(), self.pd)
            self._scratch[size] = mr
        return mr

    def _charge_dispatch(self) -> None:
        self.device.host.cpu.charge(self.device.host.costs.shim_dispatch_ns)

    def _charge_copy(self, nbytes: int) -> None:
        self.device.host.cpu.charge(
            int(self.device.host.costs.shim_copy_per_byte_ns * nbytes)
        )

    def _sock(self, fd: int):
        try:
            return self._fds[fd]
        except KeyError:
            raise SocketError(f"bad file descriptor {fd}") from None

    def _dgram(self, fd: int) -> _DgramSocket:
        sock = self._sock(fd)
        if not isinstance(sock, _DgramSocket):
            raise SocketError(f"fd {fd} is not a datagram socket")
        return sock

    def _stream(self, fd: int) -> _StreamSocket:
        sock = self._sock(fd)
        if not isinstance(sock, _StreamSocket):
            raise SocketError(f"fd {fd} is not a stream socket")
        return sock

    # -- the socket API ---------------------------------------------------------

    def socket(self, sock_type: str, port: Optional[int] = None) -> int:
        fd = next(self._next_fd)
        if sock_type == SOCK_DGRAM:
            self._fds[fd] = _DgramSocket(self, port)
        elif sock_type == SOCK_STREAM:
            self._fds[fd] = _StreamSocket(self)
        else:
            raise SocketError(f"unsupported socket type {sock_type!r}")
        return fd

    def getsockname(self, fd: int) -> Address:
        sock = self._sock(fd)
        if isinstance(sock, _DgramSocket):
            return sock.address
        raise SocketError("getsockname only implemented for datagram sockets")

    def sendto(self, fd: int, data: bytes, addr: Address) -> int:
        self._dgram(fd).sendto(bytes(data), addr)
        return len(data)

    def recvfrom_future(
        self, fd: int, bufsize: int, timeout_ns: Optional[int] = 5000 * MS
    ) -> Future:
        """Resolves to ``(data, src_addr)`` or None on timeout."""
        return self._dgram(fd).recvfrom_future(bufsize, timeout_ns)

    def connect_future(self, fd: int, addr: Address) -> Future:
        return self._stream(fd).connect_future(addr)

    def listen(self, fd: int, port: int) -> None:
        self._stream(fd).listen(port)

    def accept_future(self, fd: int) -> Future:
        """Resolves to a new connected fd."""
        fut = self.sim.future()

        def wrap(child: _StreamSocket) -> None:
            child_fd = next(self._next_fd)
            self._fds[child_fd] = child
            fut.set_result(child_fd)

        self._stream(fd).accept_future().add_callback(wrap)
        return fut

    def send(self, fd: int, data: bytes) -> int:
        self._stream(fd).send(data)
        return len(data)

    def recv_future(
        self, fd: int, bufsize: int, timeout_ns: Optional[int] = None
    ) -> Future:
        return self._stream(fd).recv_future(bufsize, timeout_ns)

    def close(self, fd: int) -> None:
        sock = self._fds.pop(fd, None)
        if sock is not None:
            sock.close()

    def open_fds(self) -> int:
        return len(self._fds)
