"""Native (kernel) socket API with the same call surface as the shim.

Applications in :mod:`repro.apps` are written against this small
socket-API protocol; handing them an :class:`IwSocketInterface` instead
of a :class:`NativeSocketApi` is the simulation's equivalent of
LD_PRELOADing the paper's interception library.  Running the same
application over both is how the §VI.B.2 shim-overhead measurement
(~2 % over native UDP) is reproduced.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ...simnet.engine import MS, Future
from ...transport.stacks import NetStack

Address = Tuple[int, int]

SOCK_DGRAM = "SOCK_DGRAM"
SOCK_STREAM = "SOCK_STREAM"


class NativeSocketError(Exception):
    pass


class NativeSocketApi:
    """fd-based facade over the host's kernel UDP/TCP stacks."""

    def __init__(self, net: NetStack):
        self.net = net
        self.sim = net.sim
        self._fds: Dict[int, dict] = {}
        self._next_fd = itertools.count(3)

    # -- creation -----------------------------------------------------------

    def socket(self, sock_type: str, port: Optional[int] = None) -> int:
        fd = next(self._next_fd)
        if sock_type == SOCK_DGRAM:
            self._fds[fd] = {"type": sock_type, "udp": self.net.udp.socket(port)}
        elif sock_type == SOCK_STREAM:
            self._fds[fd] = {"type": sock_type, "tcp": None, "listener": None}
        else:
            raise NativeSocketError(f"unsupported socket type {sock_type!r}")
        return fd

    def _entry(self, fd: int) -> dict:
        try:
            return self._fds[fd]
        except KeyError:
            raise NativeSocketError(f"bad file descriptor {fd}") from None

    def getsockname(self, fd: int) -> Address:
        entry = self._entry(fd)
        if entry["type"] != SOCK_DGRAM:
            raise NativeSocketError("getsockname only for datagram sockets here")
        return (self.net.host.host_id, entry["udp"].port)

    # -- datagram ---------------------------------------------------------------

    def sendto(self, fd: int, data: bytes, addr: Address) -> int:
        self._entry(fd)["udp"].sendto(bytes(data), addr)
        return len(data)

    def recvfrom_future(
        self, fd: int, bufsize: int, timeout_ns: Optional[int] = 5000 * MS
    ) -> Future:
        udp = self._entry(fd)["udp"]
        fut = self.sim.future()
        inner = udp.recv_future()

        def done(result) -> None:
            if not fut.done:
                data, src = result
                fut.set_result((data[:bufsize], src))

        inner.add_callback(done)
        if timeout_ns is not None:
            def expire() -> None:
                if not fut.done:
                    fut.set_result(None)
            self.sim.schedule(timeout_ns, expire)
        return fut

    # -- stream ------------------------------------------------------------------

    def connect_future(self, fd: int, addr: Address) -> Future:
        entry = self._entry(fd)
        entry["tcp"] = self.net.tcp.connect(addr)
        return entry["tcp"].established

    def listen(self, fd: int, port: int) -> None:
        self._entry(fd)["listener"] = self.net.tcp.listen(port)

    def accept_future(self, fd: int) -> Future:
        entry = self._entry(fd)
        fut = self.sim.future()

        def wrap(sock) -> None:
            child = next(self._next_fd)
            self._fds[child] = {"type": SOCK_STREAM, "tcp": sock, "listener": None}
            fut.set_result(child)

        entry["listener"].accept_future().add_callback(wrap)
        return fut

    def send(self, fd: int, data: bytes) -> int:
        tcp = self._entry(fd)["tcp"]
        if tcp is None:
            raise NativeSocketError("send on unconnected stream socket")
        tcp.send(bytes(data))
        return len(data)

    def recv_future(
        self, fd: int, bufsize: int, timeout_ns: Optional[int] = None
    ) -> Future:
        tcp = self._entry(fd)["tcp"]
        fut = self.sim.future()
        tcp.recv_future().add_callback(
            lambda data: None if fut.done else fut.set_result(data[:bufsize])
        )
        if timeout_ns is not None:
            def expire() -> None:
                if not fut.done:
                    fut.set_result(None)
            self.sim.schedule(timeout_ns, expire)
        return fut

    def close(self, fd: int) -> None:
        entry = self._fds.pop(fd, None)
        if entry is None:
            return
        if entry["type"] == SOCK_DGRAM:
            entry["udp"].close()
        else:
            if entry["tcp"] is not None:
                entry["tcp"].close()
            if entry["listener"] is not None:
                entry["listener"].close()

    def open_fds(self) -> int:
        return len(self._fds)
