"""LD_PRELOAD emulation: route socket calls to iWARP or the kernel.

The paper's shim "works by dynamically preloading it before running an
application, overriding the operating system networking calls to
sockets, re-directing them to use iWARP sockets instead" (§V.A).  In
the simulation, preloading is modelled by constructing the application
with an :class:`Interceptor`: every call goes to the iWARP interface
when interception is enabled for that socket type, and falls through to
the native kernel API otherwise — the same per-fd routing decision the
real shim makes.
"""

from __future__ import annotations

from typing import Optional

from ...simnet.engine import Future
from .interface import IwSocketInterface, SOCK_DGRAM, SOCK_STREAM
from .native import NativeSocketApi


class Interceptor:
    """Per-socket-type routing between the iWARP shim and native sockets."""

    def __init__(
        self,
        native: NativeSocketApi,
        iwarp: Optional[IwSocketInterface],
        intercept_dgram: bool = True,
        intercept_stream: bool = True,
    ):
        self.native = native
        self.iwarp = iwarp
        self.intercept_dgram = intercept_dgram and iwarp is not None
        self.intercept_stream = intercept_stream and iwarp is not None
        self.sim = native.sim
        self._route = {}  # fd -> backing api

    def _backend_for(self, sock_type: str):
        if sock_type == SOCK_DGRAM and self.intercept_dgram:
            return self.iwarp
        if sock_type == SOCK_STREAM and self.intercept_stream:
            return self.iwarp
        return self.native

    def socket(self, sock_type: str, port: Optional[int] = None) -> int:
        backend = self._backend_for(sock_type)
        fd = backend.socket(sock_type, port)
        # Tag fds so both backends' numbering can coexist.
        tagged = (id(backend), fd)
        self._route[tagged] = backend
        return tagged

    def _split(self, tagged):
        backend_id, fd = tagged
        backend = self._route.get(tagged)
        if backend is None:
            raise KeyError(f"unknown fd {tagged}")
        return backend, fd

    # -- delegation ------------------------------------------------------

    def getsockname(self, tagged):
        backend, fd = self._split(tagged)
        return backend.getsockname(fd)

    def sendto(self, tagged, data, addr):
        backend, fd = self._split(tagged)
        return backend.sendto(fd, data, addr)

    def recvfrom_future(self, tagged, bufsize, timeout_ns=None) -> Future:
        backend, fd = self._split(tagged)
        return backend.recvfrom_future(fd, bufsize, timeout_ns)

    def connect_future(self, tagged, addr) -> Future:
        backend, fd = self._split(tagged)
        return backend.connect_future(fd, addr)

    def listen(self, tagged, port) -> None:
        backend, fd = self._split(tagged)
        backend.listen(fd, port)

    def accept_future(self, tagged) -> Future:
        backend, fd = self._split(tagged)
        fut = self.sim.future()

        def wrap(child_fd) -> None:
            child_tagged = (id(backend), child_fd)
            self._route[child_tagged] = backend
            fut.set_result(child_tagged)

        backend.accept_future(fd).add_callback(wrap)
        return fut

    def send(self, tagged, data):
        backend, fd = self._split(tagged)
        return backend.send(fd, data)

    def recv_future(self, tagged, bufsize, timeout_ns=None) -> Future:
        backend, fd = self._split(tagged)
        return backend.recv_future(fd, bufsize, timeout_ns)

    def close(self, tagged) -> None:
        backend, fd = self._split(tagged)
        self._route.pop(tagged, None)
        backend.close(fd)
