"""The iWARP socket interface (shim), native sockets, and preloading."""

from .interface import IwSocketInterface, SOCK_DGRAM, SOCK_STREAM, SocketError
from .native import NativeSocketApi, NativeSocketError
from .preload import Interceptor

__all__ = [
    "Interceptor", "IwSocketInterface", "NativeSocketApi",
    "NativeSocketError", "SOCK_DGRAM", "SOCK_STREAM", "SocketError",
]
