"""DDP message segmentation and untagged reassembly.

Transmit side: one RDMAP message becomes a train of DDP segments no
larger than the path's maximum (MULPDU on RC; the UDP datagram ceiling
on UD — §IV.B.4's "it is preferable to package each message ... as a
complete unit that spans only one datagram", with stack-level
segmentation above 64 KB).

Receive side: :class:`UntaggedReassembly` tracks one in-flight untagged
message — which posted receive it matched, which byte ranges landed —
and says when it is deliverable.  RC uses it trivially (segments arrive
in order); UD uses its full generality (any order, any subset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...memory.sge import scatter
from ...memory.validity import ValidityMap


@dataclass
class SegmentSpec:
    """Extent of one DDP segment within its message."""

    offset: int
    length: int
    last: bool


def plan_segments(total: int, max_payload: int) -> List[SegmentSpec]:
    """Split a ``total``-byte message into segment extents.

    A zero-byte message still produces one (empty, last) segment — DDP
    must deliver zero-length sends.
    """
    if max_payload <= 0:
        raise ValueError(f"max segment payload must be positive, got {max_payload}")
    if total < 0:
        raise ValueError(f"negative message size: {total}")
    if total == 0:
        return [SegmentSpec(0, 0, True)]
    out: List[SegmentSpec] = []
    offset = 0
    while offset < total:
        length = min(max_payload, total - offset)
        offset += length
        out.append(SegmentSpec(offset - length, length, offset == total))
    return out


class ReassemblyError(Exception):
    """Incoming segment is inconsistent with the message being rebuilt."""


class UntaggedReassembly:
    """One untagged message being scattered into a posted receive.

    ``wr`` is any object with ``sges`` and ``capacity`` (a verbs RecvWR
    in practice; typed loosely to keep DDP below the verbs layer).
    """

    def __init__(self, wr, total: int):
        if total > wr.capacity:
            raise ReassemblyError(
                f"message of {total} bytes exceeds posted receive capacity "
                f"{wr.capacity} (DDP buffer-too-small)"
            )
        self.wr = wr
        self.total = total
        self.validity = ValidityMap(total)
        self.saw_last = False

    def place(self, mo: int, payload: bytes, last: bool) -> None:
        """Scatter one segment's payload at message offset ``mo``."""
        if mo + len(payload) > self.total:
            raise ReassemblyError(
                f"segment [{mo}, {mo + len(payload)}) overruns message of {self.total}"
            )
        if payload:
            scatter(self.wr.sges, mo, payload)
            self.validity.add(mo, len(payload))
        if last:
            self.saw_last = True

    @property
    def complete(self) -> bool:
        return self.saw_last and self.validity.complete
