"""DDP/RDMAP wire headers.

Byte-exact encodings (struct-packed) of the DDP segment headers from
RFC 5041/5040, plus the datagram extension header the paper's design
needs (§IV.B): because UD segments can arrive in any order or not at
all, each one carries its message id and total message length so the
receiver can track reassembly and validity without connection state.

Layout of every DDP segment::

    +--------+--------+----------------------+-------------------+---------+
    | flags  | opcode | tagged OR untagged   | UD extension      | payload |
    | 1 B    | 1 B    | 12 B / 12 B          | 24 B (UD only)    |         |
    +--------+--------+----------------------+-------------------+---------+

    tagged:   stag (4 B) + tagged offset TO (8 B)
    untagged: queue number QN (4 B) + MSN (4 B) + message offset MO (4 B)
    UD ext:   msg_id (8 B) + msg_total (8 B) + msg_offset (8 B)

The TAGGED and LAST flags mirror the DDP specification; CRC32 protecting
the whole segment is carried by MPA on RC and appended here on UD (the
paper requires CRC32 always for datagram-iWARP, §IV.B item 6).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

# Flag bits (first control byte).
FLAG_TAGGED = 0x80
FLAG_LAST = 0x40
#: Set when the UD extension header (msg_id + msg_total) follows — always
#: on datagram QPs, and on Write-Record over reliable transports too
#: (the operation "is also valid for a reliable transport", §IV.B.3).
FLAG_UDEXT = 0x20

# RDMAP opcodes (second control byte).  0-6 follow RFC 5040; WRITE_RECORD
# is the paper's extension.
OP_WRITE = 0x0
OP_READ_REQUEST = 0x1
OP_READ_RESPONSE = 0x2
OP_SEND = 0x3
OP_SEND_SE = 0x4
OP_TERMINATE = 0x6
OP_WRITE_RECORD = 0x8

OPCODE_NAMES = {
    OP_WRITE: "WRITE",
    OP_READ_REQUEST: "READ_REQUEST",
    OP_READ_RESPONSE: "READ_RESPONSE",
    OP_SEND: "SEND",
    OP_SEND_SE: "SEND_SE",
    OP_TERMINATE: "TERMINATE",
    OP_WRITE_RECORD: "WRITE_RECORD",
}

_CTRL = struct.Struct("!BB")
_TAGGED = struct.Struct("!IQ")
_UNTAGGED = struct.Struct("!III")
_UDEXT = struct.Struct("!QQQ")

CTRL_SIZE = _CTRL.size            # 2
TAGGED_SIZE = _TAGGED.size        # 12
UNTAGGED_SIZE = _UNTAGGED.size    # 12
UDEXT_SIZE = _UDEXT.size          # 24

#: Untagged queue numbers (RFC 5040 §5): 0 = send, 1 = RDMA read request,
#: 2 = terminate.
QN_SEND = 0
QN_READ_REQUEST = 1
QN_TERMINATE = 2

#: RDMA read request payload: sink stag, sink TO, read length,
#: source stag, source TO.
_READ_REQ = struct.Struct("!IQIIQ")
READ_REQ_SIZE = _READ_REQ.size


class HeaderError(Exception):
    """Malformed or truncated DDP segment."""


@dataclass
class DdpSegment:
    """One parsed (or to-be-encoded) DDP segment."""

    opcode: int
    last: bool
    payload: bytes
    # Tagged fields.
    tagged: bool = False
    stag: int = 0
    to: int = 0
    # Untagged fields.
    qn: int = 0
    msn: int = 0
    mo: int = 0
    # UD extension (present on datagram QPs).  ``msg_offset`` is the
    # segment's byte offset within its message: tagged UD segments need
    # it so the target can recover the message's base TO for validity
    # bookkeeping regardless of arrival order.
    msg_id: Optional[int] = None
    msg_total: Optional[int] = None
    msg_offset: int = 0

    @property
    def header_size(self) -> int:
        size = CTRL_SIZE + (TAGGED_SIZE if self.tagged else UNTAGGED_SIZE)
        if self.msg_id is not None:
            size += UDEXT_SIZE
        return size

    @property
    def wire_size(self) -> int:
        return self.header_size + len(self.payload)

    def encode(self) -> bytes:
        flags = (FLAG_TAGGED if self.tagged else 0) | (FLAG_LAST if self.last else 0)
        if self.msg_id is not None:
            flags |= FLAG_UDEXT
        parts = [_CTRL.pack(flags, self.opcode)]
        if self.tagged:
            parts.append(_TAGGED.pack(self.stag, self.to))
        else:
            parts.append(_UNTAGGED.pack(self.qn, self.msn, self.mo))
        if self.msg_id is not None:
            if self.msg_total is None:
                raise HeaderError("UD extension requires msg_total")
            parts.append(_UDEXT.pack(self.msg_id, self.msg_total, self.msg_offset))
        parts.append(self.payload)
        return b"".join(parts)


def decode_segment(data: bytes, ud: Optional[bool] = None) -> DdpSegment:
    """Parse a DDP segment.

    The UD extension's presence is carried in the flags byte; the
    optional ``ud`` argument cross-checks it (a UD channel receiving a
    segment without the extension is malformed, and vice versa for
    non-Write-Record RC traffic).
    """
    if len(data) < CTRL_SIZE:
        raise HeaderError(f"segment of {len(data)} bytes has no control header")
    flags, opcode = _CTRL.unpack_from(data)
    tagged = bool(flags & FLAG_TAGGED)
    last = bool(flags & FLAG_LAST)
    has_udext = bool(flags & FLAG_UDEXT)
    if ud is True and not has_udext:
        raise HeaderError("datagram segment missing UD extension header")
    off = CTRL_SIZE
    seg = DdpSegment(opcode=opcode, last=last, payload=b"", tagged=tagged)
    if tagged:
        if len(data) < off + TAGGED_SIZE:
            raise HeaderError("truncated tagged header")
        seg.stag, seg.to = _TAGGED.unpack_from(data, off)
        off += TAGGED_SIZE
    else:
        if len(data) < off + UNTAGGED_SIZE:
            raise HeaderError("truncated untagged header")
        seg.qn, seg.msn, seg.mo = _UNTAGGED.unpack_from(data, off)
        off += UNTAGGED_SIZE
    if has_udext:
        if len(data) < off + UDEXT_SIZE:
            raise HeaderError("truncated UD extension header")
        seg.msg_id, seg.msg_total, seg.msg_offset = _UDEXT.unpack_from(data, off)
        off += UDEXT_SIZE
    seg.payload = data[off:]
    return seg


def encode_read_request(
    sink_stag: int, sink_to: int, length: int, src_stag: int, src_to: int
) -> bytes:
    return _READ_REQ.pack(sink_stag, sink_to, length, src_stag, src_to)


def decode_read_request(payload: bytes) -> Tuple[int, int, int, int, int]:
    if len(payload) < READ_REQ_SIZE:
        raise HeaderError("truncated RDMA read request")
    return _READ_REQ.unpack_from(payload)
