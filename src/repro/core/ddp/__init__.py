"""DDP layer: tagged/untagged headers, segmentation, reassembly."""

from .headers import (
    CTRL_SIZE, DdpSegment, FLAG_LAST, FLAG_TAGGED, FLAG_UDEXT, HeaderError,
    OP_READ_REQUEST, OP_READ_RESPONSE, OP_SEND, OP_SEND_SE, OP_TERMINATE,
    OP_WRITE, OP_WRITE_RECORD, OPCODE_NAMES, QN_READ_REQUEST, QN_SEND,
    QN_TERMINATE, TAGGED_SIZE, UDEXT_SIZE, UNTAGGED_SIZE,
    decode_read_request, decode_segment, encode_read_request,
)
from .segmentation import ReassemblyError, SegmentSpec, UntaggedReassembly, plan_segments

__all__ = [
    "CTRL_SIZE", "DdpSegment", "FLAG_LAST", "FLAG_TAGGED", "FLAG_UDEXT",
    "HeaderError", "OPCODE_NAMES", "OP_READ_REQUEST", "OP_READ_RESPONSE",
    "OP_SEND", "OP_SEND_SE", "OP_TERMINATE", "OP_WRITE", "OP_WRITE_RECORD",
    "QN_READ_REQUEST", "QN_SEND", "QN_TERMINATE", "ReassemblyError",
    "SegmentSpec", "TAGGED_SIZE", "UDEXT_SIZE", "UNTAGGED_SIZE",
    "UntaggedReassembly", "decode_read_request", "decode_segment",
    "encode_read_request", "plan_segments",
]
