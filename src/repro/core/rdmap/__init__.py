"""RDMAP layer: operation semantics, including RDMA Write-Record."""

from .engine import RdmapError, RdmapRx, RdmapTx, UD_REASSEMBLY_TIMEOUT_NS

__all__ = ["RdmapError", "RdmapRx", "RdmapTx", "UD_REASSEMBLY_TIMEOUT_NS"]
