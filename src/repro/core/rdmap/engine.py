"""RDMAP transmit and receive engines.

One pair of engines per queue pair, parameterized only by the channel
underneath (MPA/TCP for RC, UDP or reliable-UDP for UD).  Everything the
paper specifies about operation semantics lives here:

* **Send/Recv** (untagged): RC matches receives in MSN order and treats
  an unmatched arrival as a fatal stream error; UD matches "incoming
  packets at the DDP layer with the appropriate receive WR" in arrival
  order, reassembles multi-segment messages in any order, reports the
  source address in the completion, and times out partial messages
  instead of erroring the QP (§IV.B items 2–4, §IV.B.1).

* **RDMA Write** (tagged): direct placement through the STag registry.
  On RC, target-side visibility needs a follow-up send (Fig. 3 top).

* **RDMA Write-Record** (tagged + UD extension): places each arriving
  segment immediately, records (offset, length) chunks in a validity
  map, and on arrival of the LAST segment raises a completion carrying
  the map — no posted receive, no source-side second message (Fig. 3
  bottom).  Loss of the LAST segment means no completion: the paper's
  stated failure mode, surfaced to applications by CQ poll timeout and
  reaped here by a state timer.

* **RDMA Read**: RC per the standard (untagged request queue 1, tagged
  response); the UD variant the paper lists as future work is
  implemented as an extension — responses carry the UD header and the
  requester completes with a validity map like Write-Record.

* **Terminate**: RC tears the stream down; on UD, errors are "simply
  reported, but the QP is not forced into the error state" (§IV.B
  item 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...memory.region import Access, MemoryAccessError
from ...memory.validity import ValidityMap
from ...obs import wr_span
from ...simnet.engine import MS
from ..ddp.headers import DdpSegment, HeaderError, OP_READ_REQUEST, OP_READ_RESPONSE, OP_SEND, OP_SEND_SE, OP_TERMINATE, OP_WRITE, OP_WRITE_RECORD, QN_READ_REQUEST, QN_SEND, QN_TERMINATE, decode_read_request, encode_read_request
from ..ddp.segmentation import ReassemblyError, UntaggedReassembly, plan_segments
from ..verbs.wr import Address, SendWR, WcStatus, WorkCompletion, WrOpcode, gather

#: How long UD reassembly / write-record state lives without completing
#: before it is reaped (the application-visible effect is a missing or
#: PARTIAL_MESSAGE completion — the paper's poll-timeout contract).
UD_REASSEMBLY_TIMEOUT_NS = 200 * MS

_OPCODE_FOR_WR = {
    WrOpcode.SEND: OP_SEND,
    WrOpcode.SEND_SE: OP_SEND_SE,
    WrOpcode.RDMA_WRITE: OP_WRITE,
    WrOpcode.RDMA_WRITE_RECORD: OP_WRITE_RECORD,
}


class RdmapError(Exception):
    """Protocol violations detected by the engines."""


@dataclass
class _WriteRecordState:
    """Target-side log for one in-flight Write-Record message."""

    stag: int
    base_to: int
    total: int
    validity: ValidityMap
    timer: object = None


@dataclass
class _PendingRead:
    """Requester-side state for one outstanding RDMA Read."""

    wr: SendWR
    sink_stag: int
    length: int
    validity: ValidityMap
    timer: object = None


class RdmapTx:
    """Send-side: turns work requests into DDP segment trains."""

    def __init__(self, qp):
        self.qp = qp
        self._send_msn = itertools.count(1)
        self._read_msn = itertools.count(1)
        self._msg_id = itertools.count(1)

    # -- public ----------------------------------------------------------

    def post(self, wr: SendWR) -> None:
        host = self.qp.host
        # Gather (snapshot) the payload at post time: ownership of the
        # SGE buffers transfers to the stack when the WR is posted, so a
        # caller reusing its buffer immediately afterwards must not
        # corrupt the in-flight message.
        payload = None if wr.opcode is WrOpcode.RDMA_READ else gather(wr.sges)
        host.cpu.submit(host.costs.verbs_post_ns, self._start, wr, payload)

    # -- internals ----------------------------------------------------------

    def _start(self, wr: SendWR, payload: Optional[bytes]) -> None:
        if wr.opcode is WrOpcode.RDMA_READ:
            self._start_read(wr)
            return
        opcode = _OPCODE_FOR_WR[wr.opcode]
        tagged = wr.opcode in (WrOpcode.RDMA_WRITE, WrOpcode.RDMA_WRITE_RECORD)
        needs_udext = self.qp.is_datagram or wr.opcode is WrOpcode.RDMA_WRITE_RECORD
        msg_id = next(self._msg_id) if needs_udext else None
        msn = 0 if tagged else next(self._send_msn)
        specs = plan_segments(len(payload), self.qp.max_seg_payload)
        obs = self.qp.obs
        if obs.enabled:
            labels = self.qp._obs_labels()
            obs.counter("rdmap.tx.messages", **labels).inc()
            obs.counter("rdmap.tx.segments", **labels).inc(len(specs))
            if wr.opcode is WrOpcode.RDMA_WRITE_RECORD:
                obs.counter("rdmap.write_record.messages", **labels).inc()
                obs.counter("rdmap.write_record.segments", **labels).inc(len(specs))
            elif not tagged:
                obs.counter("rdmap.untagged.messages", **labels).inc()
                obs.counter("rdmap.untagged.segments", **labels).inc(len(specs))
        wr_span(
            self.qp.host, "segment", qp=self.qp.qp_num, wr_id=wr.wr_id,
            msg_id=msg_id, nsegs=len(specs),
        )
        view = memoryview(payload)
        for spec in specs:
            seg = DdpSegment(
                opcode=opcode,
                last=spec.last,
                payload=bytes(view[spec.offset : spec.offset + spec.length]),
                tagged=tagged,
            )
            if tagged:
                seg.stag = wr.remote_stag
                seg.to = wr.remote_offset + spec.offset
            else:
                seg.qn = QN_SEND
                seg.msn = msn
                seg.mo = spec.offset
            if msg_id is not None:
                seg.msg_id = msg_id
                seg.msg_total = len(payload)
                seg.msg_offset = spec.offset
            self.qp.channel_send(
                seg, wr.dest, first=spec.offset == 0, msg_len=len(payload)
            )
        # The source "completes the operation at the moment that the last
        # bit of the message is passed to the transport layer" (§IV.B.3):
        # the segment emissions above are queued on this host CPU, so the
        # default hook lands a completion right after the LLP handoff.
        # Reliable-datagram QPs override the hook to defer the completion
        # until the RD layer acknowledges (or fails) every segment.
        self.qp.sent_to_llp(wr, len(payload), msg_id, len(specs))

    def _start_read(self, wr: SendWR) -> None:
        if len(wr.sges) != 1:
            self._fail_send(wr, WcStatus.LOCAL_LENGTH_ERROR)
            return
        sink = wr.sges[0]
        if not (sink.mr.access & Access.LOCAL_WRITE):
            self._fail_send(wr, WcStatus.LOCAL_PROTECTION_ERROR)
            return
        msg_id = next(self._msg_id) if self.qp.is_datagram else None
        pending = _PendingRead(
            wr=wr,
            sink_stag=sink.mr.stag,
            length=sink.length,
            validity=ValidityMap(sink.length),
        )
        self.qp.rx.track_read(pending, msg_id)
        payload = encode_read_request(
            sink.mr.stag, sink.offset, sink.length, wr.remote_stag, wr.remote_offset
        )
        seg = DdpSegment(
            opcode=OP_READ_REQUEST,
            last=True,
            payload=payload,
            tagged=False,
            qn=QN_READ_REQUEST,
            msn=next(self._read_msn),
            mo=0,
        )
        if self.qp.is_datagram:
            seg.msg_id = msg_id
            seg.msg_total = len(payload)
        self.qp.channel_send(seg, wr.dest, first=True, msg_len=len(payload))

    def _fail_send(self, wr: SendWR, status: WcStatus) -> None:
        self.qp.sq_cq.push(
            WorkCompletion(wr_id=wr.wr_id, opcode=wr.opcode, status=status)
        )

    def send_terminate(self, reason: str, dest: Optional[Address] = None) -> None:
        seg = DdpSegment(
            opcode=OP_TERMINATE,
            last=True,
            payload=reason.encode()[:200],
            tagged=False,
            qn=QN_TERMINATE,
            msn=0,
            mo=0,
        )
        if self.qp.is_datagram:
            seg.msg_id = next(self._msg_id)
            seg.msg_total = len(seg.payload)
        self.qp.channel_send(seg, dest, first=True, msg_len=len(seg.payload))


class RdmapRx:
    """Receive-side: dispatches parsed DDP segments."""

    def __init__(self, qp):
        self.qp = qp
        # RC: strict MSN ordering, one untagged message open at a time.
        self._rc_expected_msn = 1
        self._rc_current: Optional[UntaggedReassembly] = None
        # UD: unordered reassembly keyed by (source, message id).
        self._ud_untagged: Dict[Tuple[Address, int], UntaggedReassembly] = {}
        self._ud_timers: Dict[Tuple[Address, int], object] = {}
        # Write-Record logs keyed by (source, message id); RC uses a
        # None source key.
        self._write_records: Dict[Tuple[Optional[Address], int], _WriteRecordState] = {}
        # Outstanding RDMA Reads: FIFO on RC, by msg_id on UD.
        self._reads_fifo: List[_PendingRead] = []
        self._reads_by_id: Dict[int, _PendingRead] = {}
        # Statistics the tests and benchmarks read.
        self.drops_no_recv_posted = 0
        self.drops_malformed = 0
        self.remote_access_errors = 0
        self.reaped_partial = 0
        self.duplicate_segments = 0

    # ------------------------------------------------------------------
    # Entry point (CPU costs already charged by the channel glue)
    # ------------------------------------------------------------------

    def on_segment(self, seg: DdpSegment, src: Optional[Address]) -> None:
        wr_span(
            self.qp.host, "delivery", qp=self.qp.qp_num,
            msg_id=seg.msg_id, opcode=seg.opcode, last=seg.last,
        )
        try:
            self._dispatch(seg, src)
        except (HeaderError, ReassemblyError):
            self.drops_malformed += 1
            if not self.qp.is_datagram:
                self.qp.terminate("malformed segment")
        except MemoryAccessError as exc:
            self.remote_access_errors += 1
            if not self.qp.is_datagram:
                self.qp.terminate(f"remote access error: {exc}")
            # On UD the error is reported and the QP stays usable
            # (§IV.B item 2).

    def _dispatch(self, seg: DdpSegment, src: Optional[Address]) -> None:
        if seg.tagged:
            if seg.opcode == OP_WRITE:
                self._on_write(seg)
            elif seg.opcode == OP_WRITE_RECORD:
                self._on_write_record(seg, src)
            elif seg.opcode == OP_READ_RESPONSE:
                self._on_read_response(seg, src)
            else:
                raise HeaderError(f"tagged segment with opcode {seg.opcode}")
            return
        if seg.qn == QN_SEND and seg.opcode in (OP_SEND, OP_SEND_SE):
            self._on_send(seg, src)
        elif seg.qn == QN_READ_REQUEST and seg.opcode == OP_READ_REQUEST:
            self._on_read_request(seg, src)
        elif seg.qn == QN_TERMINATE and seg.opcode == OP_TERMINATE:
            self._on_terminate(seg)
        else:
            raise HeaderError(f"untagged segment qn={seg.qn} opcode={seg.opcode}")

    # ------------------------------------------------------------------
    # Tagged model
    # ------------------------------------------------------------------

    def _place_tagged(self, seg: DdpSegment) -> None:
        mr = self.qp.device.registry.resolve(
            seg.stag, seg.to, len(seg.payload), Access.REMOTE_WRITE,
            pd_handle=self.qp.pd,
        )
        if seg.payload:
            mr.write(seg.to, seg.payload, remote=True)

    def _on_write(self, seg: DdpSegment) -> None:
        """Plain RDMA Write: silent placement, no target completion."""
        self._place_tagged(seg)

    def _on_write_record(self, seg: DdpSegment, src: Optional[Address]) -> None:
        if seg.msg_id is None or seg.msg_total is None:
            raise HeaderError("Write-Record segment lacks the UD extension")
        self._place_tagged(seg)
        key = (src, seg.msg_id)
        state = self._write_records.get(key)
        if state is None:
            # Any segment fixes the message's base TO: the UD extension
            # carries the segment's message offset, and TO = base + offset.
            base_to = seg.to - seg.msg_offset
            state = _WriteRecordState(
                stag=seg.stag,
                base_to=base_to,
                total=seg.msg_total,
                validity=ValidityMap(seg.msg_total),
            )
            self._write_records[key] = state
            state.timer = self.qp.sim.schedule(
                UD_REASSEMBLY_TIMEOUT_NS, self._reap_write_record, key
            )
        offset = seg.to - state.base_to
        if state.validity.covered(offset, len(seg.payload)) and seg.payload:
            self.duplicate_segments += 1
        state.validity.add(offset, len(seg.payload))
        obs = self.qp.obs
        if obs.enabled:
            labels = self.qp._obs_labels()
            obs.counter("rdmap.write_record.placements", **labels).inc()
            obs.counter(
                "rdmap.write_record.placed_bytes", **labels
            ).inc(len(seg.payload))
        if seg.last:
            # "The final packet must arrive for the partial message to be
            # placed into memory and those parts that are valid are
            # declared as such" (§VI.A.2): declaration happens now,
            # complete or not.
            self._finish_write_record(key, state)

    def _finish_write_record(self, key, state: _WriteRecordState) -> None:
        if state.timer is not None:
            state.timer.cancel()
        self._write_records.pop(key, None)
        obs = self.qp.obs
        if obs.enabled:
            obs.counter(
                "rdmap.write_record.completions", **self.qp._obs_labels()
            ).inc()
        src = key[0]
        self.qp.push_rq_completion(
            WorkCompletion(
                wr_id=0,
                opcode=WrOpcode.RDMA_WRITE_RECORD,
                status=WcStatus.SUCCESS,
                byte_len=state.validity.valid_bytes(),
                src=src,
                validity=state.validity,
                msg_id=key[1],
                base_offset=state.base_to,
            )
        )

    def _reap_write_record(self, key) -> None:
        """LAST segment never arrived: whole message is lost to the
        application (no completion is ever raised)."""
        state = self._write_records.pop(key, None)
        if state is not None:
            self.reaped_partial += 1

    # ------------------------------------------------------------------
    # Untagged model: send/recv
    # ------------------------------------------------------------------

    def _on_send(self, seg: DdpSegment, src: Optional[Address]) -> None:
        if self.qp.is_datagram:
            self._on_send_ud(seg, src)
        else:
            self._on_send_rc(seg, src)

    def _on_send_rc(self, seg: DdpSegment, src: Optional[Address]) -> None:
        if seg.msn != self._rc_expected_msn:
            raise HeaderError(
                f"MSN {seg.msn} out of order (expected {self._rc_expected_msn})"
            )
        if self._rc_current is None:
            wr = self.qp.pop_recv()
            if wr is None:
                # RC semantics: untagged arrival with no posted receive is
                # a fatal stream error (the relaxation is UD-only).
                self.qp.terminate("no receive posted")
                return
            # Message length is only certain at LAST on RC (no UD header);
            # reassemble against the posted capacity.
            total = seg.msg_total if seg.msg_total is not None else wr.capacity
            self._rc_current = UntaggedReassembly(wr, min(total, wr.capacity))
        state = self._rc_current
        if seg.mo + len(seg.payload) > state.wr.capacity:
            self.qp.terminate("send overruns posted receive")
            return
        state.place(seg.mo, seg.payload, seg.last)
        if seg.last:
            self._rc_expected_msn += 1
            self._rc_current = None
            self.qp.push_rq_completion(
                WorkCompletion(
                    wr_id=state.wr.wr_id,
                    opcode=WrOpcode.SEND,
                    status=WcStatus.SUCCESS,
                    byte_len=seg.mo + len(seg.payload),
                    src=src,
                    solicited=seg.opcode == OP_SEND_SE,
                )
            )

    def _on_send_ud(self, seg: DdpSegment, src: Optional[Address]) -> None:
        if seg.msg_id is None or seg.msg_total is None:
            raise HeaderError("UD send segment lacks the UD extension")
        key = (src, seg.msg_id)
        state = self._ud_untagged.get(key)
        if state is None:
            wr = self.qp.pop_recv()
            if wr is None:
                # UD semantics: nothing to match — the datagram is dropped
                # and reported, the QP survives.
                self.drops_no_recv_posted += 1
                return
            if seg.msg_total > wr.capacity:
                self.qp.push_rq_completion(
                    WorkCompletion(
                        wr_id=wr.wr_id,
                        opcode=WrOpcode.SEND,
                        status=WcStatus.LOCAL_LENGTH_ERROR,
                        byte_len=seg.msg_total,
                        src=src,
                        msg_id=seg.msg_id,
                    )
                )
                return
            state = UntaggedReassembly(wr, seg.msg_total)
            self._ud_untagged[key] = state
            self._ud_timers[key] = self.qp.sim.schedule(
                UD_REASSEMBLY_TIMEOUT_NS, self._reap_untagged, key
            )
        if state.validity.covered(seg.mo, len(seg.payload)) and seg.payload:
            self.duplicate_segments += 1
        state.place(seg.mo, seg.payload, seg.last)
        if state.complete:
            self._finish_untagged(key, state, src, seg.opcode == OP_SEND_SE)

    def _finish_untagged(
        self, key, state: UntaggedReassembly, src: Optional[Address], solicited: bool
    ) -> None:
        timer = self._ud_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        self._ud_untagged.pop(key, None)
        # Multi-segment UD messages pay the stack-level recombination cost
        # (§IV.B.1); single-segment ones do not.
        if state.total > self.qp.max_seg_payload:
            self.qp.host.cpu.charge(
                int(self.qp.host.costs.reassembly_per_byte_ns * state.total)
            )
        self.qp.push_rq_completion(
            WorkCompletion(
                wr_id=state.wr.wr_id,
                opcode=WrOpcode.SEND,
                status=WcStatus.SUCCESS,
                byte_len=state.total,
                src=src,
                msg_id=key[1],
                solicited=solicited,
            )
        )

    def _reap_untagged(self, key) -> None:
        """UD reassembly never completed (loss): the consumed receive WR
        completes in error so the application can repost it."""
        state = self._ud_untagged.pop(key, None)
        self._ud_timers.pop(key, None)
        if state is None:
            return
        self.reaped_partial += 1
        self.qp.push_rq_completion(
            WorkCompletion(
                wr_id=state.wr.wr_id,
                opcode=WrOpcode.SEND,
                status=WcStatus.PARTIAL_MESSAGE,
                byte_len=state.validity.valid_bytes(),
                src=key[0],
                validity=state.validity,
                msg_id=key[1],
            )
        )

    # ------------------------------------------------------------------
    # RDMA Read
    # ------------------------------------------------------------------

    def track_read(self, pending: _PendingRead, msg_id: Optional[int]) -> None:
        if msg_id is None:
            self._reads_fifo.append(pending)
        else:
            self._reads_by_id[msg_id] = pending
            pending.timer = self.qp.sim.schedule(
                UD_REASSEMBLY_TIMEOUT_NS, self._reap_read, msg_id
            )

    def _on_read_request(self, seg: DdpSegment, src: Optional[Address]) -> None:
        sink_stag, sink_to, length, src_stag, src_to = decode_read_request(seg.payload)
        mr = self.qp.device.registry.resolve(
            src_stag, src_to, length, Access.REMOTE_READ, pd_handle=self.qp.pd
        )
        data = bytes(mr.read(src_to, length, remote=True))
        msg_id = seg.msg_id  # echo the requester's id on UD
        specs = plan_segments(len(data), self.qp.max_seg_payload)
        for spec in specs:
            resp = DdpSegment(
                opcode=OP_READ_RESPONSE,
                last=spec.last,
                payload=data[spec.offset : spec.offset + spec.length],
                tagged=True,
                stag=sink_stag,
                to=sink_to + spec.offset,
            )
            if msg_id is not None:
                resp.msg_id = msg_id
                resp.msg_total = len(data)
                resp.msg_offset = spec.offset
            self.qp.channel_send(
                resp, src, first=spec.offset == 0, msg_len=len(data)
            )

    def _on_read_response(self, seg: DdpSegment, src: Optional[Address]) -> None:
        # The response targets the *sink* buffer the requester advertised;
        # placement needs only local write rights there.
        mr = self.qp.device.registry.resolve(
            seg.stag, seg.to, len(seg.payload), Access.LOCAL_WRITE,
            pd_handle=self.qp.pd,
        )
        if seg.payload:
            mr.write(seg.to, seg.payload)
        if seg.msg_id is not None:
            pending = self._reads_by_id.get(seg.msg_id)
            if pending is None:
                self.duplicate_segments += 1
                return
            base = pending.wr.sges[0].offset
            pending.validity.add(seg.to - base, len(seg.payload))
            if seg.last:
                self._finish_read_ud(seg.msg_id, pending, src)
        else:
            if not self._reads_fifo:
                raise HeaderError("read response with no outstanding read")
            pending = self._reads_fifo[0]
            base = pending.wr.sges[0].offset
            pending.validity.add(seg.to - base, len(seg.payload))
            if seg.last:
                self._reads_fifo.pop(0)
                self.qp.sq_cq.push(
                    WorkCompletion(
                        wr_id=pending.wr.wr_id,
                        opcode=WrOpcode.RDMA_READ,
                        status=WcStatus.SUCCESS,
                        byte_len=pending.validity.valid_bytes(),
                    )
                )

    def _finish_read_ud(self, msg_id: int, pending: _PendingRead, src) -> None:
        if pending.timer is not None:
            pending.timer.cancel()
        self._reads_by_id.pop(msg_id, None)
        status = (
            WcStatus.SUCCESS if pending.validity.complete else WcStatus.PARTIAL_MESSAGE
        )
        self.qp.sq_cq.push(
            WorkCompletion(
                wr_id=pending.wr.wr_id,
                opcode=WrOpcode.RDMA_READ,
                status=status,
                byte_len=pending.validity.valid_bytes(),
                src=src,
                validity=pending.validity,
                msg_id=msg_id,
            )
        )

    def _reap_read(self, msg_id: int) -> None:
        pending = self._reads_by_id.pop(msg_id, None)
        if pending is None:
            return
        self.reaped_partial += 1
        self.qp.sq_cq.push(
            WorkCompletion(
                wr_id=pending.wr.wr_id,
                opcode=WrOpcode.RDMA_READ,
                status=WcStatus.PARTIAL_MESSAGE,
                byte_len=pending.validity.valid_bytes(),
                validity=pending.validity,
                msg_id=msg_id,
            )
        )

    # ------------------------------------------------------------------
    # Terminate
    # ------------------------------------------------------------------

    def _on_terminate(self, seg: DdpSegment) -> None:
        reason = seg.payload.decode(errors="replace")
        self.qp.on_remote_terminate(reason)
