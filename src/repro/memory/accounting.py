"""Memory-footprint accounting for the scalability study (Fig. 11).

The paper measures "the sum of the SIPp application memory usage and the
allocated slab buffer space used to create the required sockets"
(§VI.B.2) for a server handling N concurrent calls, one UDP port per
client, and reports:

* 24.1 % whole-application memory improvement for UD at 10 000 calls;
* 28.1 % predicted from socket sizes alone;
* the ~4 % difference attributed to extra application bookkeeping UD
  needs (tracking call state to know when to close ports).

This module reproduces that arithmetic from per-object footprints.  The
constants are CALIBRATED to Linux-2.6.31-era slab sizes plus the iWARP
context sizes of the software stack; the two headline percentages above
pin them down (see the field comments).  The same constants also feed
the live accounting hooks used by :mod:`repro.apps.sip`, so measured
curves and closed-form predictions come from one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class FootprintModel:
    """Per-object memory footprints in bytes."""

    #: Kernel slab for one TCP socket (struct tcp_sock + hash bucket,
    #: rounded to the 2 KB slab — Linux 2.6.31 era).
    tcp_socket_bytes: int = 2048
    #: Kernel slab for one UDP socket.  CALIBRATED together with the QP
    #: contexts so the socket-only prediction lands at the paper's 28.1 %.
    udp_socket_bytes: int = 1280
    #: iWARP RC QP context: QP state plus per-connection MPA/DDP stream
    #: state (marker position, FPDU reassembly, untagged MSN tracking).
    rc_qp_bytes: int = 1856
    #: iWARP UD QP context: no connection/stream state, just queues and
    #: per-QP bookkeeping ("it does not have to keep information
    #: regarding connections", §IV.A).
    ud_qp_bytes: int = 1536
    #: Application state per concurrent call (both modes).
    app_call_bytes: int = 352
    #: Extra per-call bookkeeping the *application* needs in UD mode to
    #: know when a UDP port's call has ended (§VI.B.2's explanation of
    #: the 4 % gap between predicted and measured).
    ud_app_bookkeeping_bytes: int = 64
    #: Mode-independent resident application base (binary, scenario,
    #: buffers) — what keeps small client counts from showing the full
    #: asymptotic improvement, giving Fig. 11 its rising shape.
    app_base_bytes: int = 1 * 1024 * 1024

    # -- per-client totals ------------------------------------------------

    def rc_per_client(self) -> int:
        return self.tcp_socket_bytes + self.rc_qp_bytes + self.app_call_bytes

    def ud_per_client(self) -> int:
        return (
            self.udp_socket_bytes
            + self.ud_qp_bytes
            + self.app_call_bytes
            + self.ud_app_bookkeeping_bytes
        )

    # -- whole-server totals ------------------------------------------------

    def rc_total(self, clients: int) -> int:
        self._check(clients)
        return self.app_base_bytes + clients * self.rc_per_client()

    def ud_total(self, clients: int) -> int:
        self._check(clients)
        return self.app_base_bytes + clients * self.ud_per_client()

    @staticmethod
    def _check(clients: int) -> None:
        if clients < 0:
            raise ValueError(f"negative client count: {clients}")

    # -- the paper's two headline numbers ------------------------------------

    def improvement_percent(self, clients: int) -> float:
        """Whole-application memory improvement of UD over RC (Fig. 11)."""
        rc = self.rc_total(clients)
        if rc == 0:
            return 0.0
        return 100.0 * (rc - self.ud_total(clients)) / rc

    def socket_only_improvement_percent(self) -> float:
        """The 'theoretical calculation based solely on the iWARP socket
        size' (§VI.B.2) — per-socket+QP footprints, no application."""
        rc = self.tcp_socket_bytes + self.rc_qp_bytes
        ud = self.udp_socket_bytes + self.ud_qp_bytes
        return 100.0 * (rc - ud) / rc

    def sweep(self, client_counts: List[int]) -> Dict[int, float]:
        return {n: self.improvement_percent(n) for n in client_counts}


class MemoryMeter:
    """Live accounting used by the SIP server: objects are charged as
    they are created and credited back as they are destroyed, so tests
    can assert the measured total equals the closed-form prediction."""

    def __init__(self, model: FootprintModel):
        self.model = model
        self.bytes_now = model.app_base_bytes
        self.high_water = self.bytes_now
        self._counts: Dict[str, int] = {}

    _SIZES = {
        "tcp_socket": "tcp_socket_bytes",
        "udp_socket": "udp_socket_bytes",
        "rc_qp": "rc_qp_bytes",
        "ud_qp": "ud_qp_bytes",
        "app_call": "app_call_bytes",
        "ud_bookkeeping": "ud_app_bookkeeping_bytes",
    }

    def _size(self, kind: str) -> int:
        try:
            return getattr(self.model, self._SIZES[kind])
        except KeyError:
            raise ValueError(f"unknown accounted object kind {kind!r}") from None

    def alloc(self, kind: str, count: int = 1) -> None:
        self.bytes_now += self._size(kind) * count
        self._counts[kind] = self._counts.get(kind, 0) + count
        self.high_water = max(self.high_water, self.bytes_now)

    def free(self, kind: str, count: int = 1) -> None:
        have = self._counts.get(kind, 0)
        if count > have:
            raise ValueError(f"freeing {count} {kind!r} but only {have} allocated")
        self.bytes_now -= self._size(kind) * count
        self._counts[kind] = have - count

    def count(self, kind: str) -> int:
        return self._counts.get(kind, 0)
