"""Scatter/gather elements over registered memory.

Lives in the memory package (below both DDP and verbs) so the DDP
reassembly machinery and the verbs work-request types can share it
without an import cycle.  The verbs layer re-exports these names as part
of its public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .region import MemoryRegion


@dataclass
class Sge:
    """One scatter/gather element over a registered region."""

    mr: MemoryRegion
    offset: int = 0
    length: int = -1

    def __post_init__(self) -> None:
        if self.length < 0:
            self.length = len(self.mr) - self.offset
        if self.offset < 0 or self.offset + self.length > len(self.mr):
            raise ValueError(
                f"SGE [{self.offset}, {self.offset + self.length}) outside "
                f"region of {len(self.mr)} bytes"
            )


def sge_total(sges: List[Sge]) -> int:
    return sum(s.length for s in sges)


def gather(sges: List[Sge]) -> bytes:
    """Materialize a send payload from local registered memory (the
    I/O-vector gather the software stack performs, §V of the paper)."""
    if len(sges) == 1:
        return bytes(sges[0].mr.read(sges[0].offset, sges[0].length))
    return b"".join(bytes(s.mr.read(s.offset, s.length)) for s in sges)


def scatter(sges: List[Sge], offset: int, data: bytes) -> None:
    """Place ``data`` at message offset ``offset`` across the SGE list."""
    remaining = memoryview(data)
    cursor = 0
    for sge in sges:
        if not len(remaining):
            return
        sge_end = cursor + sge.length
        if offset < sge_end:
            local = max(0, offset - cursor)
            take = min(sge.length - local, len(remaining))
            sge.mr.write(sge.offset + local, remaining[:take])
            remaining = remaining[take:]
            offset += take
        cursor = sge_end
    if len(remaining):
        raise ValueError("scatter overruns the SGE list")
