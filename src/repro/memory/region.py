"""Registered memory regions and access rights.

iWARP's tagged model places data directly into application memory that
was previously *registered* (pinned and given a steering tag).  The
placement rules — "the requesting machine enforces the requirement that
the requested memory location must be registered with the device as a
valid memory region" (§II) — are security-critical, so this module
implements them for real: every remote access is checked against the
region's bounds and rights before a byte moves.

Regions are backed by ``bytearray`` and accessed through ``memoryview``
slices, keeping the zero-copy *semantics* of the hardware design: data
written by the stack is immediately visible to the application holding
the buffer, with no intermediate application-level copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntFlag
from typing import Union


class Access(IntFlag):
    """Memory-region access rights (verbs-style)."""

    LOCAL_READ = 0x1
    LOCAL_WRITE = 0x2
    REMOTE_READ = 0x4
    REMOTE_WRITE = 0x8

    @classmethod
    def local_only(cls) -> "Access":
        return cls.LOCAL_READ | cls.LOCAL_WRITE

    @classmethod
    def remote_write(cls) -> "Access":
        return cls.local_only() | cls.REMOTE_WRITE

    @classmethod
    def remote_read(cls) -> "Access":
        return cls.local_only() | cls.REMOTE_READ

    @classmethod
    def full(cls) -> "Access":
        return cls.local_only() | cls.REMOTE_READ | cls.REMOTE_WRITE


class MemoryAccessError(Exception):
    """Out-of-bounds or rights-violating access to a registered region.

    Maps to the DDP/RDMAP protection errors that would tear down an RC
    stream (or complete a WR in error for datagrams)."""


@dataclass(frozen=True)
class RegionKey:
    """The (stag, offset, length) triple a remote peer advertises."""

    stag: int
    offset: int
    length: int


class MemoryRegion:
    """A registered buffer with a steering tag.

    ``offset`` in all methods is the *tagged offset* (TO): a byte offset
    from the start of the region, which is how DDP addresses tagged
    buffers.
    """

    PAGE = 4096

    def __init__(self, stag: int, buffer: bytearray, access: Access, pd_handle: int):
        if not isinstance(buffer, bytearray):
            raise TypeError("regions must be backed by a bytearray")
        self.stag = stag
        self.buffer = buffer
        self.access = access
        self.pd_handle = pd_handle
        self.invalidated = False
        self._watches: list = []

    def __len__(self) -> int:
        return len(self.buffer)

    @property
    def pages(self) -> int:
        """Pinned pages this registration holds (for memory accounting)."""
        return -(-len(self.buffer) // self.PAGE)

    # -- checked access ----------------------------------------------------

    def _check(self, offset: int, length: int, needed: Access) -> None:
        if self.invalidated:
            raise MemoryAccessError(f"stag {self.stag:#x} has been invalidated")
        if not (self.access & needed):
            raise MemoryAccessError(
                f"stag {self.stag:#x} lacks {needed.name} (has {self.access!r})"
            )
        if offset < 0 or length < 0 or offset + length > len(self.buffer):
            raise MemoryAccessError(
                f"access [{offset}, {offset + length}) outside region of "
                f"{len(self.buffer)} bytes (stag {self.stag:#x})"
            )

    def write(self, offset: int, data: Union[bytes, memoryview], remote: bool = False) -> None:
        needed = Access.REMOTE_WRITE if remote else Access.LOCAL_WRITE
        self._check(offset, len(data), needed)
        self.buffer[offset : offset + len(data)] = data
        if self._watches:
            end = offset + len(data)
            for w_off, w_end, fn in list(self._watches):
                if offset < w_end and end > w_off:
                    fn(offset, len(data))

    def add_write_watch(self, offset: int, length: int, fn) -> tuple:
        """Invoke ``fn(write_offset, write_len)`` after any write touching
        ``[offset, offset+length)`` — how an application polls a flag byte
        for RDMA Write completion ("a flagged bit in memory that is polled
        upon", §IV.B.3).  Returns a handle for :meth:`remove_write_watch`."""
        handle = (offset, offset + length, fn)
        self._watches.append(handle)
        return handle

    def remove_write_watch(self, handle: tuple) -> None:
        if handle in self._watches:
            self._watches.remove(handle)

    def read(self, offset: int, length: int, remote: bool = False) -> memoryview:
        needed = Access.REMOTE_READ if remote else Access.LOCAL_READ
        self._check(offset, length, needed)
        return memoryview(self.buffer)[offset : offset + length]

    def view(self, offset: int = 0, length: int = -1) -> memoryview:
        """Unchecked local view (the owning application's own pointer)."""
        if length < 0:
            length = len(self.buffer) - offset
        return memoryview(self.buffer)[offset : offset + length]

    def key(self, offset: int = 0, length: int = -1) -> RegionKey:
        """Advertisable (stag, offset, length) for this region."""
        if length < 0:
            length = len(self.buffer) - offset
        if offset < 0 or offset + length > len(self.buffer):
            raise MemoryAccessError("advertised window outside region")
        return RegionKey(self.stag, offset, length)

    def invalidate(self) -> None:
        """Revoke the steering tag (deregistration)."""
        self.invalidated = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MR stag={self.stag:#x} len={len(self.buffer)} {self.access!r}>"
