"""Steering-tag registry: the device's table of registered memory.

One registry per RNIC device.  STags are allocated with a generation
counter folded in, so a stale tag from a deregistered buffer can never
alias a new registration — the failure mode the iWARP spec's
invalidation rules exist to prevent.
"""

from __future__ import annotations

import itertools
from typing import Dict, Union

from .region import Access, MemoryAccessError, MemoryRegion


class StagRegistry:
    """Allocate, resolve and invalidate steering tags."""

    def __init__(self) -> None:
        self._regions: Dict[int, MemoryRegion] = {}
        self._next = itertools.count(0x1000)
        self.registrations = 0
        self.deregistrations = 0

    def register(
        self,
        buffer: Union[bytearray, int],
        access: Access = Access.local_only(),
        pd_handle: int = 0,
    ) -> MemoryRegion:
        """Register a buffer (or allocate+register ``int`` bytes)."""
        if isinstance(buffer, int):
            if buffer < 0:
                raise ValueError(f"negative region size: {buffer}")
            buffer = bytearray(buffer)
        stag = next(self._next)
        mr = MemoryRegion(stag, buffer, access, pd_handle)
        self._regions[stag] = mr
        self.registrations += 1
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        if self._regions.pop(mr.stag, None) is None:
            raise MemoryAccessError(f"stag {mr.stag:#x} is not registered")
        mr.invalidate()
        self.deregistrations += 1

    def resolve(
        self,
        stag: int,
        offset: int,
        length: int,
        needed: Access,
        pd_handle: int = None,
    ) -> MemoryRegion:
        """Validate a tagged access and return the region.

        Raises :class:`MemoryAccessError` for unknown stags, protection-
        domain mismatches, rights violations, or out-of-bounds extents —
        the checks DDP performs before placing tagged data (§II).
        """
        mr = self._regions.get(stag)
        if mr is None:
            raise MemoryAccessError(f"unknown stag {stag:#x}")
        if pd_handle is not None and mr.pd_handle != pd_handle:
            raise MemoryAccessError(
                f"stag {stag:#x} belongs to PD {mr.pd_handle}, not {pd_handle}"
            )
        mr._check(offset, length, needed)
        return mr

    def __len__(self) -> int:
        return len(self._regions)

    def pinned_bytes(self) -> int:
        """Total bytes currently pinned (for memory accounting)."""
        return sum(len(mr) for mr in self._regions.values())
