"""Validity maps for RDMA Write-Record.

The defining data structure of the paper's contribution: the target
"must log at the target side what data has been written to memory and is
valid" (§IV.B.3), either as individual completion entries per chunk or
as an aggregated *validity map*.  Applications read the map to learn
which byte ranges of a partially-delivered message are safe to consume
(streaming decoders skip the gaps).

Implemented as a sorted list of merged, non-overlapping ``[start, end)``
intervals with O(n) insertion (n = fragments of one message, always
small) and O(log n) membership via bisection.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Tuple


class ValidityMap:
    """Set of valid byte intervals within a message of ``total`` bytes."""

    def __init__(self, total: int):
        if total < 0:
            raise ValueError(f"negative message size: {total}")
        self.total = total
        self._starts: List[int] = []
        self._ends: List[int] = []

    # -- mutation ------------------------------------------------------------

    def add(self, offset: int, length: int) -> None:
        """Record bytes [offset, offset+length) as valid (idempotent)."""
        if length <= 0:
            return
        if offset < 0 or offset + length > self.total:
            raise ValueError(
                f"chunk [{offset}, {offset + length}) outside message of {self.total}"
            )
        start, end = offset, offset + length
        # Find all intervals overlapping or adjacent to [start, end).
        i = bisect_right(self._starts, start)
        lo = i
        if lo > 0 and self._ends[lo - 1] >= start:
            lo -= 1
        hi = lo
        while hi < len(self._starts) and self._starts[hi] <= end:
            hi += 1
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    # -- queries ---------------------------------------------------------------

    def covered(self, offset: int, length: int) -> bool:
        """True iff every byte of [offset, offset+length) is valid."""
        if length <= 0:
            return True
        i = bisect_right(self._starts, offset) - 1
        if i < 0:
            return False
        return self._ends[i] >= offset + length

    @property
    def complete(self) -> bool:
        """The whole message arrived."""
        return self.valid_bytes() == self.total

    def valid_bytes(self) -> int:
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def ranges(self) -> List[Tuple[int, int]]:
        """Valid intervals as (offset, length) pairs, ascending."""
        return [(s, e - s) for s, e in zip(self._starts, self._ends)]

    def gaps(self) -> List[Tuple[int, int]]:
        """Missing intervals as (offset, length) pairs, ascending."""
        out: List[Tuple[int, int]] = []
        cursor = 0
        for s, e in zip(self._starts, self._ends):
            if s > cursor:
                out.append((cursor, s - cursor))
            cursor = e
        if cursor < self.total:
            out.append((cursor, self.total - cursor))
        return out

    def fraction_valid(self) -> float:
        return 1.0 if self.total == 0 else self.valid_bytes() / self.total

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.ranges())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValidityMap):
            return NotImplemented
        return (
            self.total == other.total
            and self._starts == other._starts
            and self._ends == other._ends
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ValidityMap {self.valid_bytes()}/{self.total} in {len(self._starts)} ranges>"
