"""Registered memory, steering tags, validity maps, footprint accounting."""

from .accounting import FootprintModel, MemoryMeter
from .region import Access, MemoryAccessError, MemoryRegion, RegionKey
from .registry import StagRegistry
from .sge import Sge, gather, scatter, sge_total
from .validity import ValidityMap

__all__ = [
    "Access", "FootprintModel", "MemoryAccessError", "MemoryMeter",
    "MemoryRegion", "RegionKey", "Sge", "StagRegistry", "ValidityMap",
    "gather", "scatter", "sge_total",
]
