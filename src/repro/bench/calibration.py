"""Calibration check: paper anchors vs this build's measurements.

Runs the small set of microbenchmark points the paper quotes exact
numbers for and renders a paper-vs-measured table.  This is the tool to
re-run after touching :class:`repro.models.costs.CostModel`: if the
deltas drift, the calibration lost its anchors.

Usage::

    python -m repro.bench.calibration          # full check (~1 min)
    python -m repro.bench.calibration --quick  # latency anchors only
"""

from __future__ import annotations

import sys
from typing import Dict

from .harness import VerbsEndpointPair
from .report import ComparisonReport

#: The paper's quoted anchors (§VI.A text + figure readings).
PAPER_ANCHORS = {
    "ud_sendrecv_64B_latency_us": 27.5,          # "27-28 us" under 128 B
    "rc_sendrecv_64B_latency_us": 33.0,          # "around 33 us"
    "udsr_latency_improvement_2K_pct": 18.1,
    "udwr_latency_improvement_2K_pct": 24.4,
    "wrr_vs_rcw_bw_ratio_512K": 3.56,            # "+256 %"
    "udsr_vs_rcsr_bw_ratio_256K": 1.334,         # "+33.4 %"
    "wrr_vs_rcw_bw_ratio_1K": 2.888,             # "+188.8 %"
    "udsr_vs_rcsr_bw_ratio_1K": 2.93,            # "+193 %"
    "peak_bandwidth_mbs": 245.0,                 # figure ceiling ~235-250
}


def measure_latency_anchors(iters: int = 20) -> Dict[str, float]:
    out = {}
    lat = {}
    for mode in ("ud_sendrecv", "ud_write_record", "rc_sendrecv", "rc_rdma_write"):
        lat[mode] = {
            64: VerbsEndpointPair.build(mode).pingpong_latency_us(64, iters=iters),
            2048: VerbsEndpointPair.build(mode).pingpong_latency_us(2048, iters=iters),
        }
    out["ud_sendrecv_64B_latency_us"] = lat["ud_sendrecv"][64]
    out["rc_sendrecv_64B_latency_us"] = lat["rc_sendrecv"][64]
    out["udsr_latency_improvement_2K_pct"] = 100 * (
        1 - lat["ud_sendrecv"][2048] / lat["rc_sendrecv"][2048]
    )
    out["udwr_latency_improvement_2K_pct"] = 100 * (
        1 - lat["ud_write_record"][2048] / lat["rc_rdma_write"][2048]
    )
    return out


def measure_bandwidth_anchors() -> Dict[str, float]:
    bw = {}
    for mode in ("ud_sendrecv", "ud_write_record", "rc_sendrecv", "rc_rdma_write"):
        bw[mode] = {}
        for size in (1024, 262144, 524288):
            pair = VerbsEndpointPair.build(mode)
            bw[mode][size] = pair.bandwidth_mbs(
                size, messages=max(30, min(600, (3 << 20) // size))
            )["mbs"]
    return {
        "wrr_vs_rcw_bw_ratio_512K": bw["ud_write_record"][524288] / bw["rc_rdma_write"][524288],
        "udsr_vs_rcsr_bw_ratio_256K": bw["ud_sendrecv"][262144] / bw["rc_sendrecv"][262144],
        "wrr_vs_rcw_bw_ratio_1K": bw["ud_write_record"][1024] / bw["rc_rdma_write"][1024],
        "udsr_vs_rcsr_bw_ratio_1K": bw["ud_sendrecv"][1024] / bw["rc_sendrecv"][1024],
        "peak_bandwidth_mbs": bw["ud_write_record"][524288],
    }


def run_calibration_check(quick: bool = False) -> ComparisonReport:
    report = ComparisonReport("Calibration: paper anchors vs measured")
    measured = measure_latency_anchors()
    if not quick:
        measured.update(measure_bandwidth_anchors())
    for key, paper in PAPER_ANCHORS.items():
        if key in measured:
            unit = ("us" if key.endswith("_us")
                    else "%" if key.endswith("_pct")
                    else "MB/s" if key.endswith("_mbs") else "x")
            report.add(key, paper, measured[key], unit)
    return report


def main(argv=None) -> int:
    quick = "--quick" in (argv or sys.argv[1:])
    report = run_calibration_check(quick=quick)
    print(report.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
