"""Benchmark harnesses reproducing the paper's evaluation."""

from .harness import (
    MODES, POLL_TIMEOUT_NS, BenchError, VerbsEndpointPair, bandwidth_sweep,
    latency_sweep,
)
from .report import ComparisonReport, format_table, load_json, print_table, save_json

__all__ = [
    "BenchError", "ComparisonReport", "MODES", "POLL_TIMEOUT_NS",
    "VerbsEndpointPair", "bandwidth_sweep", "format_table", "latency_sweep",
    "load_json", "print_table", "save_json",
]
