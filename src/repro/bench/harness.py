"""Verbs-level microbenchmark harness.

Builds the paper's two-node testbed and runs the four §VI.A modes —
UD send/recv, UD RDMA Write-Record, RC send/recv, RC RDMA Write — as
ping-pong latency and unidirectional bandwidth measurements, with
optional ``tc``-style loss injection for the Figs. 7–8 sweeps.

Semantics notes (matching the paper's Fig. 3):

* RC RDMA Write needs a follow-up zero-byte send so the target learns
  the data is valid; the benchmark issues it per message and the target
  waits on it — that *is* the RC Write data path the paper measures.
* UD Write-Record targets poll their completion queue (with timeout)
  for the arrival record; no notification message exists.
* Send completions occur at LLP handoff, so the *sender* paces itself
  by CPU cost; bandwidth runs keep a fixed window of posted sends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.verbs import (
    CompletionQueue, RecvWR, RnicDevice, SendWR, Sge, WcStatus, WorkCompletion,
    WrOpcode,
)
from ..memory.region import Access
from ..models.costs import CostModel
from ..models.platform import Platform
from ..obs import Registry
from ..simnet.engine import MS, SEC, Simulator
from ..simnet.loss import BernoulliLoss, LossModel
from ..simnet.topology import Testbed, build_testbed
from ..simnet.trace import Tracer
from ..transport.stacks import install_stacks

MODES = ("ud_sendrecv", "ud_write_record", "rc_sendrecv", "rc_rdma_write",
         "rd_sendrecv", "rd_write_record", "rcsctp_sendrecv")

#: CQ poll timeout used by all datagram receivers (the paper's "defined
#: timeout period", §IV.B.1).
POLL_TIMEOUT_NS = 300 * MS


class BenchError(RuntimeError):
    pass


@dataclass
class VerbsEndpointPair:
    """Two hosts, devices and QPs configured for one benchmark mode."""

    mode: str
    testbed: Testbed
    devices: List[RnicDevice]
    qps: list
    cqs: List[CompletionQueue]
    sinks: list = field(default_factory=list)    # remote-writable MRs (tagged modes)
    send_mrs: list = field(default_factory=list)
    recv_mrs: list = field(default_factory=list)

    MAX_MSG = 1 << 20  # 1 MB, the largest size in Figs. 5-8

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        mode: str,
        platform: Optional[Platform] = None,
        costs: Optional[CostModel] = None,
        loss: Optional[LossModel] = None,
        loss_on_host: int = 0,
        markers: bool = True,
        rd_opts: Optional[dict] = None,
        metrics: Optional[bool] = None,
    ) -> "VerbsEndpointPair":
        if mode not in MODES:
            raise BenchError(f"unknown mode {mode!r} (want one of {MODES})")
        tb = build_testbed(2, platform=platform, costs=costs, metrics=metrics)
        if loss is not None:
            tb.set_egress_loss(loss_on_host, loss)
        nets = install_stacks(tb)
        devices = [RnicDevice(n) for n in nets]
        pds = [d.alloc_pd() for d in devices]
        cqs = [d.create_cq(depth=1 << 16) for d in devices]
        pair = cls(mode=mode, testbed=tb, devices=devices, qps=[None, None], cqs=cqs)

        if mode.startswith(("ud", "rd")):
            reliable = mode.startswith("rd")
            pair.qps = [
                devices[i].create_ud_qp(
                    pds[i], cqs[i], port=9000 + i, reliable=reliable,
                    rd_opts=rd_opts if reliable else None,
                )
                for i in (0, 1)
            ]
        else:
            transport = "sctp" if mode.startswith("rcsctp") else "tcp"
            listener = devices[1].rc_listen(4791, pds[1], lambda: cqs[1],
                                            markers=markers, transport=transport)
            qp0 = devices[0].rc_connect((1, 4791), pds[0], cqs[0],
                                        markers=markers, transport=transport)
            accepted = listener.accept_future()
            tb.sim.run_until(qp0.ready, limit=2 * SEC)
            tb.sim.run_until(accepted, limit=2 * SEC)
            if qp0.ready.value is None:
                raise BenchError("RC connection failed")
            pair.qps = [qp0, accepted.value]

        # Message buffers and, for tagged modes, remote-writable sinks.
        for i in (0, 1):
            pair.send_mrs.append(
                devices[i].reg_mr(bytearray(cls.MAX_MSG), Access.local_only(), pds[i])
            )
            pair.recv_mrs.append(
                devices[i].reg_mr(cls.MAX_MSG, Access.local_only(), pds[i])
            )
            pair.sinks.append(
                devices[i].reg_mr(cls.MAX_MSG, Access.remote_write(), pds[i])
            )
        # Fill send payloads deterministically.  The byte pattern
        # (j*31 + i) mod 256 has period 256 in j, so one period tiled to
        # MAX_MSG is bit-identical to evaluating it per byte — and about
        # 4000x cheaper, which matters because every benchmark point
        # builds a fresh pair.
        for i in (0, 1):
            period = bytes((j * 31 + i) & 0xFF for j in range(256))
            pair.send_mrs[i].view()[:] = period * (cls.MAX_MSG // 256)
        return pair

    @property
    def sim(self) -> Simulator:
        return self.testbed.sim

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------

    @property
    def registry(self) -> Registry:
        """The testbed's metrics registry (see :mod:`repro.obs`)."""
        return self.testbed.registry

    def metrics_snapshot(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Flat ``{series-key: value}`` snapshot of every registered
        metric — what the figure benchmarks attach to their saved rows.
        Empty when the pair was built without ``metrics=True``."""
        return self.registry.snapshot(prefix)

    def repair_stats(self, host: int = 0) -> Dict[str, int]:
        """Datagram-LLP repair counters for ``host``, read off the
        metrics registry (``transport.rudp.*`` samples) instead of
        poking RUDP endpoint internals.  Keys match the legacy
        ``RudpEndpoint.stats()`` names (``retransmissions``,
        ``fast_retransmits``, ``backoff_events``, ...).  Requires
        ``build(..., metrics=True)``."""
        if not self.registry.enabled:
            raise BenchError("repair_stats requires build(..., metrics=True)")
        prefix = "transport.rudp."
        hostname = self.testbed.hosts[host].name
        out: Dict[str, int] = {}
        for s in self.registry.collect():
            if not s.name.startswith(prefix):
                continue
            labels = dict(s.labels)
            if labels.get("host") != hostname:
                continue
            key = s.name[len(prefix):]
            if "cause" in labels:
                key = f"{key}.{labels['cause']}"
            out[key] = out.get(key, 0) + int(s.value)
        return out

    def enable_spans(self) -> List[Tracer]:
        """Attach a WR-lifecycle span tracer to each host and return
        them (index = host index)."""
        tracers = []
        for h in self.testbed.hosts:
            if h.wr_tracer is None:
                h.wr_tracer = Tracer(self.sim)
            tracers.append(h.wr_tracer)
        return tracers

    def dest(self, i: int) -> Optional[Tuple[int, int]]:
        """Per-WR destination for datagram modes (None on RC)."""
        return self.qps[i].address if self.qps[i].is_datagram else None

    @property
    def tagged(self) -> bool:
        return self.mode.endswith(("write_record", "rdma_write"))

    # ------------------------------------------------------------------
    # One-sided / two-sided message helpers (process style)
    # ------------------------------------------------------------------

    def _post_message(self, src: int, size: int, signaled: bool = False) -> None:
        """Post one message of ``size`` bytes from host ``src``."""
        dst = 1 - src
        qp = self.qps[src]
        if self.mode.endswith("sendrecv"):
            qp.post_send(SendWR(
                opcode=WrOpcode.SEND,
                sges=[Sge(self.send_mrs[src], 0, size)],
                dest=self.dest(dst),
                signaled=signaled,
            ))
        elif self.mode.endswith("write_record"):
            qp.post_send(SendWR(
                opcode=WrOpcode.RDMA_WRITE_RECORD,
                sges=[Sge(self.send_mrs[src], 0, size)],
                dest=self.dest(dst),
                remote_stag=self.sinks[dst].stag,
                remote_offset=0,
                signaled=signaled,
            ))
        else:
            # rc_rdma_write: target-side visibility comes from polling the
            # flag byte at the end of the written extent — the
            # "lower-overhead method" of §IV.B.3 — so no second message.
            qp.post_send(SendWR(
                opcode=WrOpcode.RDMA_WRITE,
                sges=[Sge(self.send_mrs[src], 0, size)],
                remote_stag=self.sinks[dst].stag,
                remote_offset=0,
                signaled=signaled,
            ))

    def _arrival_future(self, host: int, size: int):
        """Future resolving when the next message lands at ``host``.

        send/recv + Write-Record: a data completion from the CQ.
        RC RDMA Write: the memory flag watch (plus a poll charge).
        """
        sim = self.sim
        if self.mode == "rc_rdma_write":
            fut = sim.future()
            sink = self.sinks[host]
            handle = {}

            def fire(_off, _len):
                sink.remove_write_watch(handle["h"])
                self.devices[host].host.cpu.charge(
                    self.devices[host].host.costs.poll_ns
                )
                if not fut.done:
                    fut.set_result(True)

            handle["h"] = sink.add_write_watch(max(size - 1, 0), 1, fire)
            return fut
        # CQ-based modes: wrap poll_wait, filtering to data completions.
        fut = sim.future()

        def poll() -> None:
            def on_wcs(wcs):
                if not wcs:
                    if not fut.done:
                        fut.set_result(False)  # timeout
                    return
                if self._is_data_completion(wcs[0]) and wcs[0].ok:
                    if not fut.done:
                        fut.set_result(True)
                else:
                    poll()

            self.cqs[host].poll_wait(timeout_ns=POLL_TIMEOUT_NS).add_callback(on_wcs)

        poll()
        return fut

    def _prepost_recvs(self, host: int, count: int, size: int) -> None:
        """Post receives: full buffers for send/recv; empty ones for the
        RC Write notify sends.  Write-Record needs none at all — that is
        the point of the operation."""
        for _ in range(count):
            self._post_one_recv(host, size)

    def _post_one_recv(self, host: int, size: int) -> None:
        if self.mode.endswith("sendrecv"):
            self.qps[host].post_recv(
                RecvWR(sges=[Sge(self.recv_mrs[host], 0, max(size, 1))])
            )
        elif self.mode == "rc_rdma_write":
            self.qps[host].post_recv(RecvWR(sges=[]))

    def _is_data_completion(self, wc: WorkCompletion) -> bool:
        if self.mode.endswith("write_record"):
            return wc.opcode is WrOpcode.RDMA_WRITE_RECORD
        return wc.opcode is WrOpcode.SEND

    # ------------------------------------------------------------------
    # Ping-pong latency (Fig. 5)
    # ------------------------------------------------------------------

    def pingpong_latency_us(self, size: int, iters: int = 60, warmup: int = 12) -> float:
        """One-way latency in microseconds (half the averaged RTT)."""
        if size > self.MAX_MSG:
            raise BenchError(f"message size {size} exceeds harness maximum")
        result = {}

        def echo_side():  # host 1: bounce every arrival back
            self._prepost_recvs(1, iters + warmup + 8, size)
            for _ in range(iters + warmup):
                arrived = yield self._arrival_future(1, size)
                if not arrived:
                    return
                self._post_message(1, size)

        def ping_side():
            self._prepost_recvs(0, iters + warmup + 8, size)
            samples = []
            for i in range(iters + warmup):
                t0 = self.sim.now
                fut = self._arrival_future(0, size)
                self._post_message(0, size)
                arrived = yield fut
                if not arrived:
                    raise BenchError("ping-pong timed out (lossless run)")
                if i >= warmup:
                    samples.append(self.sim.now - t0)
            result["latency_us"] = (sum(samples) / len(samples)) / 2 / 1000.0

        self.sim.process(echo_side())
        done = self.sim.process(ping_side()).finished
        self.sim.run_until(done, limit=600 * SEC)
        return result["latency_us"]

    # ------------------------------------------------------------------
    # Unidirectional bandwidth (Figs. 6-8)
    # ------------------------------------------------------------------

    def bandwidth_mbs(
        self,
        size: int,
        messages: int = 0,
        window: int = 64,
        count_partial_bytes: bool = True,
    ) -> Dict[str, float]:
        """Stream ``messages`` of ``size`` bytes from host 0 to host 1.

        Returns goodput in MB/s plus delivery statistics.  Under loss,
        send/recv counts only complete messages while Write-Record also
        banks partially-delivered bytes (``count_partial_bytes``) — the
        §VI.A.2 partial-placement payoff.
        """
        if messages <= 0:
            # Aim for ~8 MB transferred, at least 40 and at most 2000 msgs.
            messages = max(40, min(2000, (8 << 20) // max(size, 1)))
        stats = {"received_msgs": 0, "received_bytes": 0, "partial_msgs": 0,
                 "t_first": None, "t_last": None}
        sender_done = {"flag": False}

        def count(nbytes: int, partial: bool) -> None:
            now = self.sim.now
            if partial:
                stats["partial_msgs"] += 1
            else:
                stats["received_msgs"] += 1
            if nbytes:
                stats["received_bytes"] += nbytes
                if stats["t_first"] is None:
                    stats["t_first"] = now
                stats["t_last"] = now

        def sender():
            # LLP-handoff completions of signaled sends pace the window.
            outstanding = {"n": 0}
            sent = 0
            while sent < messages:
                if outstanding["n"] >= window:
                    wcs = yield self.cqs[0].poll_wait(timeout_ns=POLL_TIMEOUT_NS)
                    outstanding["n"] -= len(wcs)
                    continue
                self._post_message(0, size, signaled=True)
                outstanding["n"] += 1
                sent += 1
                yield 0  # let the event loop breathe between posts
            sender_done["flag"] = True

        def cq_receiver():
            # Real verbs bandwidth benchmarks prepost the whole run.
            self._prepost_recvs(1, messages + window, size)
            empty_polls = 0
            while True:
                wcs = yield self.cqs[1].poll_wait(timeout_ns=POLL_TIMEOUT_NS)
                if not wcs:
                    # A reliable LLP may be mid-RTO-backoff: allow a
                    # generous quiet period before calling the run over.
                    empty_polls += 1
                    if sender_done["flag"] and empty_polls >= 15:
                        return
                    continue
                empty_polls = 0
                wc = wcs[0]
                if wc.ok and self._is_data_completion(wc):
                    nbytes = size if not wc.validity else wc.validity.valid_bytes()
                    count(nbytes, partial=False)
                elif wc.status is WcStatus.PARTIAL_MESSAGE and count_partial_bytes \
                        and self.mode.endswith("write_record"):
                    count(wc.byte_len, partial=True)
                if stats["received_msgs"] + stats["partial_msgs"] >= messages:
                    return

        def flag_receiver():
            # RC RDMA Write: each placement rewrites the sink; the flag
            # byte at the end of the extent marks message completion.
            done_fut = self.sim.future()
            sink = self.sinks[1]

            def fire(_off, _len):
                self.devices[1].host.cpu.charge(self.devices[1].host.costs.poll_ns)
                count(size, partial=False)
                if stats["received_msgs"] >= messages and not done_fut.done:
                    done_fut.set_result(True)

            handle = sink.add_write_watch(max(size - 1, 0), 1, fire)
            yield done_fut
            sink.remove_write_watch(handle)

        self.sim.process(sender())
        receiver = flag_receiver if self.mode == "rc_rdma_write" else cq_receiver
        rx_done = self.sim.process(receiver()).finished
        self.sim.run_until(rx_done, limit=3000 * SEC)

        if stats["t_first"] is None or stats["t_last"] == stats["t_first"]:
            return {"mbs": 0.0, **{k: v for k, v in stats.items() if not k.startswith("t_")}}
        elapsed_s = (stats["t_last"] - stats["t_first"]) / 1e9
        first_msg_bytes = min(stats["received_bytes"], size)
        mbs = (stats["received_bytes"] - first_msg_bytes) / elapsed_s / 1e6
        return {
            "mbs": mbs,
            "received_msgs": stats["received_msgs"],
            "received_bytes": stats["received_bytes"],
            "partial_msgs": stats["partial_msgs"],
            "sent_msgs": messages,
        }


# ----------------------------------------------------------------------
# Sweep drivers used by the figure benchmarks
# ----------------------------------------------------------------------

def latency_sweep(
    mode: str,
    sizes: List[int],
    iters: int = 60,
    costs: Optional[CostModel] = None,
) -> Dict[int, float]:
    """Fresh testbed per point (no cross-size warm state)."""
    out: Dict[int, float] = {}
    for size in sizes:
        pair = VerbsEndpointPair.build(mode, costs=costs)
        out[size] = pair.pingpong_latency_us(size, iters=iters)
    return out


def bandwidth_sweep(
    mode: str,
    sizes: List[int],
    loss_rate: float = 0.0,
    seed: int = 7,
    costs: Optional[CostModel] = None,
    window: int = 64,
) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for size in sizes:
        loss = BernoulliLoss(loss_rate, seed=seed) if loss_rate > 0 else None
        pair = VerbsEndpointPair.build(mode, loss=loss, costs=costs)
        out[size] = pair.bandwidth_mbs(size, window=window)["mbs"]
    return out
