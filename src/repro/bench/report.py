"""Result formatting and persistence for benchmark runs.

Small, dependency-free helpers shared by the ``benchmarks/`` suite and
the calibration tool: aligned text tables for terminal output and JSON
persistence for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence


def format_table(header: Sequence[Any], rows: Iterable[Sequence[Any]]) -> str:
    """Right-aligned text table."""
    rows = [list(map(str, row)) for row in rows]
    header = list(map(str, header))
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)


def print_table(title: str, header: Sequence[Any], rows: Iterable[Sequence[Any]]) -> None:
    print(f"\n=== {title} ===")
    print(format_table(header, rows))


def save_json(path: Path, data: Any) -> Path:
    """Write ``data`` as pretty JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, default=str)
    return path


def load_json(path: Path) -> Any:
    with open(path) as fh:
        return json.load(fh)


def attach_metrics(row: Dict[str, Any], snapshot: Dict[str, Any],
                   prefix: Optional[str] = None) -> Dict[str, Any]:
    """Attach a :meth:`repro.obs.Registry.snapshot` to a saved result
    row under the ``"metrics"`` key (optionally filtered to series keys
    starting with ``prefix``).  Returns the row for chaining; a no-op
    when the snapshot is empty (metrics disabled)."""
    if prefix is not None:
        snapshot = {k: v for k, v in snapshot.items() if k.startswith(prefix)}
    if snapshot:
        row["metrics"] = snapshot
    return row


def percent_delta(measured: float, reference: float) -> float:
    """Signed percent difference of measured vs reference."""
    if reference == 0:
        return float("inf") if measured else 0.0
    return 100.0 * (measured - reference) / reference


class ComparisonReport:
    """Collects (metric, paper value, measured value) triples and renders
    the paper-vs-measured table EXPERIMENTS.md is built from."""

    def __init__(self, title: str):
        self.title = title
        self.rows: List[Dict[str, Any]] = []

    def add(self, metric: str, paper: Optional[float], measured: float,
            unit: str = "") -> None:
        self.rows.append({
            "metric": metric,
            "paper": paper,
            "measured": round(measured, 3),
            "unit": unit,
            "delta_percent": (
                round(percent_delta(measured, paper), 1)
                if paper not in (None, 0) else None
            ),
        })

    def render(self) -> str:
        header = ["metric", "paper", "measured", "unit", "delta %"]
        rows = [
            [r["metric"],
             "-" if r["paper"] is None else r["paper"],
             r["measured"], r["unit"],
             "-" if r["delta_percent"] is None else r["delta_percent"]]
            for r in self.rows
        ]
        return f"=== {self.title} ===\n" + format_table(header, rows)

    def as_dict(self) -> Dict[str, Any]:
        return {"title": self.title, "rows": self.rows}
