"""Wall-clock performance gate for the simulator's hot paths.

The figure benchmarks answer "does the model reproduce the paper?";
this module answers "is the software fast enough to keep doing so?".
It times two canonical scenarios — the fig06 bandwidth mix and the
fig07 loss mix — and reports **events per second of wall time** and
**simulated bytes per second of wall time**, the two rates every
hot-path optimization (timer pooling, zero-copy segmentation, batched
ACKs, NIC batch dequeue) is supposed to move.

Two kinds of regression are distinguished:

* **Simulation drift** — the deterministic counters (events processed,
  simulated bytes, delivered messages, final simulated time) differ
  from the committed baseline.  These are machine-independent; any
  drift means behaviour changed and the gate fails hard, regardless of
  timing.
* **Throughput regression** — events/sec fell more than ``threshold``
  below the committed baseline.  Timing is machine- and load-dependent,
  so this check uses a tolerance (15 % locally, looser in CI) and can
  be re-baselined deliberately with ``--rebaseline``.

CLI::

    PYTHONPATH=src python -m repro.bench.perfgate            # gate
    PYTHONPATH=src python -m repro.bench.perfgate --rebaseline
    PYTHONPATH=src python -m repro.bench.perfgate --threshold 0.25

The gate writes ``BENCH_hotpath.json`` at the repo root: the committed
baseline rows (``before``), the rows just measured (``after``), and the
per-scenario speedup — the file the benchmark trajectory tracks.

Methodology notes: each scenario is run ``best_of`` times and the
fastest wall time wins (OS noise only ever slows a run down).  Wall
time includes testbed construction — per-point setup is part of what
every figure sweep pays, so it is part of what the gate protects.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..simnet.loss import BernoulliLoss
from .harness import VerbsEndpointPair

#: Committed baseline (see --rebaseline).  Lives under benchmarks/ so
#: re-baselining shows up in review next to the benchmark code.
BASELINE_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "baselines" / "hotpath_baseline.json"

#: Default BENCH output at the repo root.
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_hotpath.json"

#: Default allowed fractional drop in events/sec before the gate fails.
DEFAULT_THRESHOLD = 0.15

#: Counters that must be bit-identical run to run and machine to machine.
DETERMINISTIC_FIELDS = ("events", "sim_bytes", "msgs", "sim_ns")


def _leg(
    mode: str,
    size: int,
    messages: int,
    window: int = 64,
    loss_rate: float = 0.0,
    seed: int = 11,
    rd_opts: Optional[dict] = None,
) -> Dict[str, int]:
    """Run one harness leg; returns its deterministic counters."""
    loss = BernoulliLoss(loss_rate, seed=seed) if loss_rate else None
    pair = VerbsEndpointPair.build(mode, loss=loss, rd_opts=rd_opts)
    out = pair.bandwidth_mbs(size, messages=messages, window=window)
    return {
        "events": pair.sim.events_processed,
        "sim_bytes": int(out["received_bytes"]),
        "msgs": int(out["received_msgs"] + out["partial_msgs"]),
        "sim_ns": pair.sim.now,
    }


def _fig06_bandwidth() -> List[Dict[str, int]]:
    """Lossless bandwidth mix: UD send/recv, UD Write-Record and RC
    send/recv at the sizes where fig06's curves separate."""
    return [
        _leg("ud_sendrecv", 65536, 60),
        _leg("ud_write_record", 262144, 24),
        _leg("rc_sendrecv", 65536, 40),
    ]


def _fig07_loss() -> List[Dict[str, int]]:
    """Loss mix: UD under 1 % frame loss (fragmentation amplification)
    plus RD send/recv under 5 % loss exercising the full repair path —
    adaptive RTO, fast retransmit, SACK."""
    return [
        _leg("ud_sendrecv", 65536, 60, loss_rate=0.01),
        _leg("rd_sendrecv", 16384, 120, window=16, loss_rate=0.05,
             rd_opts={"rto_ns": 5_000_000}),
    ]


SCENARIOS: Dict[str, Callable[[], List[Dict[str, int]]]] = {
    "fig06_bandwidth": _fig06_bandwidth,
    "fig07_loss": _fig07_loss,
}


class PerfGateError(RuntimeError):
    """Raised when a scenario is internally inconsistent (nondeterminism)."""


def measure_scenario(name: str, best_of: int = 3) -> Dict[str, Any]:
    """Run one scenario ``best_of`` times; keep the fastest wall time.

    The deterministic counters must agree across repetitions — if they
    do not, the simulation itself is nondeterministic and no timing
    number means anything, so :class:`PerfGateError` is raised.
    """
    if best_of < 1:
        raise ValueError(f"best_of must be >= 1, got {best_of}")
    fn = SCENARIOS[name]
    best: Optional[Dict[str, Any]] = None
    for _ in range(best_of):
        t0 = time.perf_counter()
        legs = fn()
        wall_s = time.perf_counter() - t0
        row: Dict[str, Any] = {
            "scenario": name,
            "events": sum(leg["events"] for leg in legs),
            "sim_bytes": sum(leg["sim_bytes"] for leg in legs),
            "msgs": sum(leg["msgs"] for leg in legs),
            "sim_ns": sum(leg["sim_ns"] for leg in legs),
            "wall_s": wall_s,
        }
        if best is not None:
            drift = [
                f for f in DETERMINISTIC_FIELDS if best[f] != row[f]
            ]
            if drift:
                raise PerfGateError(
                    f"{name}: nondeterministic fields across repetitions: {drift}"
                )
            if row["wall_s"] < best["wall_s"]:
                best = row
        else:
            best = row
    assert best is not None
    best["events_per_sec"] = round(best["events"] / best["wall_s"], 1)
    best["sim_bytes_per_sec"] = round(best["sim_bytes"] / best["wall_s"], 1)
    best["wall_s"] = round(best["wall_s"], 4)
    return best


def run_all(best_of: int = 3) -> Dict[str, Dict[str, Any]]:
    return {name: measure_scenario(name, best_of) for name in SCENARIOS}


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------

def load_baseline(path: Path = BASELINE_PATH) -> Optional[Dict[str, Any]]:
    if not path.exists():
        return None
    with open(path) as fh:
        return json.load(fh)


def check_against_baseline(
    current: Dict[str, Dict[str, Any]],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Return a list of human-readable failures (empty == gate passes)."""
    failures: List[str] = []
    rows = baseline.get("scenarios", {})
    for name, cur in current.items():
        base = rows.get(name)
        if base is None:
            failures.append(f"{name}: no baseline row (re-baseline to add it)")
            continue
        for field in DETERMINISTIC_FIELDS:
            if field in base and base[field] != cur[field]:
                failures.append(
                    f"{name}: deterministic counter {field!r} drifted "
                    f"(baseline {base[field]}, current {cur[field]}) — "
                    "simulation behaviour changed"
                )
        floor = base["events_per_sec"] * (1.0 - threshold)
        if cur["events_per_sec"] < floor:
            failures.append(
                f"{name}: {cur['events_per_sec']:.0f} events/s is below "
                f"{floor:.0f} (baseline {base['events_per_sec']:.0f} "
                f"- {threshold:.0%} tolerance)"
            )
    return failures


def write_baseline(
    current: Dict[str, Dict[str, Any]], path: Path = BASELINE_PATH
) -> None:
    """Commit ``current`` as the gate reference.  The ``seed`` block —
    the pre-optimization snapshot BENCH reports speedup against — is
    preserved across re-baselines."""
    path.parent.mkdir(parents=True, exist_ok=True)
    doc: Dict[str, Any] = {"bench": "hotpath", "scenarios": current}
    old = load_baseline(path)
    if old and "seed" in old:
        doc["seed"] = old["seed"]
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_bench(
    current: Dict[str, Dict[str, Any]],
    baseline: Optional[Dict[str, Any]],
    path: Path = BENCH_PATH,
) -> Dict[str, Any]:
    """Write the repo-root BENCH row: the pre-optimization ``seed``
    rows (before), the rows just measured (after), and the
    per-scenario events/sec speedup."""
    baseline = baseline or {}
    # "Before" is the seed snapshot when present; a freshly created
    # baseline with no history falls back to the gate reference.
    before = baseline.get("seed") or baseline.get("scenarios", {})
    speedup = {
        name: round(cur["events_per_sec"] / before[name]["events_per_sec"], 3)
        for name, cur in current.items()
        if name in before and before[name].get("events_per_sec")
    }
    doc = {
        "bench": "hotpath",
        "unit": "events_per_sec",
        "before": before,
        "after": current,
        "speedup": speedup,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.perfgate",
        description="Hot-path performance gate (events/sec, sim-bytes/sec).",
    )
    parser.add_argument("--best-of", type=int, default=3,
                        help="repetitions per scenario; fastest wins (default 3)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional events/sec drop (default 0.15)")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="baseline JSON to gate against")
    parser.add_argument("--output", type=Path, default=BENCH_PATH,
                        help="BENCH JSON to write (default repo-root BENCH_hotpath.json)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="write the measured rows as the new baseline and exit")
    args = parser.parse_args(argv)

    try:
        current = run_all(best_of=args.best_of)
    except PerfGateError as exc:
        print(f"perfgate: FATAL: {exc}", file=sys.stderr)
        return 2

    for name, row in current.items():
        print(
            f"{name}: {row['events_per_sec']:>10.0f} events/s  "
            f"{row['sim_bytes_per_sec'] / 1e6:>7.2f} sim-MB/s  "
            f"({row['events']} events in {row['wall_s']:.3f}s wall)"
        )

    if args.rebaseline:
        write_baseline(current, args.baseline)
        print(f"perfgate: baseline written to {args.baseline}")
        write_bench(current, load_baseline(args.baseline), args.output)
        return 0

    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(
            f"perfgate: no baseline at {args.baseline}; run with "
            "--rebaseline to create one", file=sys.stderr,
        )
        return 2

    doc = write_bench(current, baseline, args.output)
    for name, ratio in sorted(doc["speedup"].items()):
        print(f"{name}: {ratio:.2f}x vs baseline")

    failures = check_against_baseline(current, baseline, args.threshold)
    for failure in failures:
        print(f"perfgate: REGRESSION: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"perfgate: OK (threshold {args.threshold:.0%}), wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
