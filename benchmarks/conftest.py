"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark module regenerates one figure of the paper's evaluation:
it runs the simulated experiment once (simulations are deterministic, so
``benchmark.pedantic`` with a single round), prints the series the
figure plots next to the paper's anchor values, and writes the raw data
to ``results/<figure>.json`` for EXPERIMENTS.md.
"""

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_results(name: str, data) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)


def print_table(title: str, header, rows) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


def run_once(benchmark, fn):
    """Run a deterministic simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def figure_io():
    return save_results, print_table
