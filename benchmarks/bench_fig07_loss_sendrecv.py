"""Figure 7: UD send/recv bandwidth under packet loss.

Paper shape: whole-message delivery makes multi-packet messages collapse
under loss — 0.1 % already hurts at 1 MB, 5 % zeroes everything above
~64 KB; small (single-fragment) messages barely notice.
"""

from conftest import print_table, run_once, save_results

from repro.bench.harness import VerbsEndpointPair
from repro.bench.report import attach_metrics
from repro.simnet.loss import BernoulliLoss

SIZES = (1024, 16384, 65536, 262144, 1048576)
RATES = (0.001, 0.005, 0.01, 0.05)


def _sweep(mode):
    data = {}
    for size in SIZES:
        data[size] = {}
        for rate in RATES:
            pair = VerbsEndpointPair.build(mode, loss=BernoulliLoss(rate, seed=11))
            out = pair.bandwidth_mbs(size, messages=max(30, min(400, (4 << 20) // size)))
            data[size][rate] = round(out["mbs"], 1)
    return data


def test_fig07_ud_sendrecv_under_loss(benchmark):
    data = run_once(benchmark, lambda: _sweep("ud_sendrecv"))
    rows = [[f"{s}B"] + [data[s][r] for r in RATES] for s in SIZES]
    print_table(
        "Fig. 7 UD send/recv bandwidth under loss (MB/s)",
        ["size"] + [f"{r:.1%}" for r in RATES],
        rows,
    )
    save_results("fig07_loss_sendrecv", {str(k): v for k, v in data.items()})

    # Small messages are nearly loss-insensitive.
    assert data[1024][0.05] > 0.8 * data[1024][0.001]
    # Large messages collapse: 1 MB at 0.5 % already devastated.
    assert data[1048576][0.005] < 0.3 * data[1048576][0.001] + 10
    # 5 % loss zeroes everything at/above 256 KB.
    assert data[262144][0.05] < 5
    assert data[1048576][0.05] < 5
    # Monotone in loss rate for multi-packet sizes.
    for size in (65536, 262144, 1048576):
        series = [data[size][r] for r in RATES]
        assert all(a >= b - 5 for a, b in zip(series, series[1:]))


def test_fig07_rd_reliability_adaptive_vs_fixed(benchmark):
    """RD mode at the paper's worst loss point (5 %): the adaptive-RTO /
    fast-retransmit LLP against the legacy fixed 5 ms RTO, with the
    retransmission counters that explain the gap."""

    def run():
        out = {}
        for name, rd_opts in (
            ("adaptive", None),
            ("fixed_5ms", {"adaptive": False, "rto_ns": 5_000_000}),
        ):
            pair = VerbsEndpointPair.build(
                "rd_sendrecv",
                loss=BernoulliLoss(0.05, seed=11),
                rd_opts=rd_opts,
                metrics=True,
            )
            bw = pair.bandwidth_mbs(16384, messages=120, window=16)
            out[name] = {
                "mbs": round(bw["mbs"], 1),
                "received_msgs": bw["received_msgs"],
                **pair.repair_stats(),
            }
            attach_metrics(out[name], pair.metrics_snapshot())
        return out

    out = run_once(benchmark, run)
    rows = [
        [name,
         d["mbs"], d["retransmissions"], d["fast_retransmits"],
         d["timeouts"], d["backoff_events"]]
        for name, d in out.items()
    ]
    print_table(
        "Fig. 7 RD send/recv @ 5% loss: adaptive vs fixed RTO",
        ["llp", "MB/s", "rtx", "fast_rtx", "timeouts", "backoffs"],
        rows,
    )
    save_results("fig07_rd_reliability", out)

    # Both LLPs deliver everything; the adaptive one is measurably faster.
    assert out["adaptive"]["received_msgs"] == 120
    assert out["fixed_5ms"]["received_msgs"] == 120
    assert out["adaptive"]["mbs"] > out["fixed_5ms"]["mbs"]
    # The mechanism: losses repaired by fast retransmit (RTT-scale)
    # instead of waiting out fixed 5 ms timeouts.
    assert out["adaptive"]["fast_retransmits"] >= 1
    assert out["fixed_5ms"]["fast_retransmits"] == 0
