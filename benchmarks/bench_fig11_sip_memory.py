"""Figure 11: SIP server memory-usage improvement, UD vs RC.

Paper anchors: improvement grows with concurrent calls, reaching 24.1 %
at 10 000; socket-size-only theory predicts 28.1 %, the ~4 % gap being
UD's extra application bookkeeping.

100 and 1000 calls are measured live (full simulated call ramp against
the real server, with the memory meter counting actual object
lifetimes); live measurement provably equals the closed-form model (see
tests/apps/test_sip.py), so the 10 000-call point uses the closed form
to keep the benchmark fast.
"""

from conftest import print_table, run_once, save_results

from repro.apps.sip.workload import measure_memory
from repro.memory.accounting import FootprintModel

LIVE_POINTS = (100, 1000)
MODEL_POINTS = (100, 1000, 10_000)


def test_fig11_sip_memory(benchmark):
    model = FootprintModel()

    def run():
        data = {"live": {}, "model": {}}
        for n in LIVE_POINTS:
            rc = measure_memory("rc", n)
            ud = measure_memory("ud", n)
            data["live"][n] = round(
                100 * (rc["high_water_bytes"] - ud["high_water_bytes"])
                / rc["high_water_bytes"], 2,
            )
        for n in MODEL_POINTS:
            data["model"][n] = round(model.improvement_percent(n), 2)
        data["socket_only_percent"] = round(
            model.socket_only_improvement_percent(), 2
        )
        return data

    data = run_once(benchmark, run)
    rows = [
        [n, data["live"].get(n, "-"), data["model"][n]]
        for n in MODEL_POINTS
    ]
    print_table(
        "Fig. 11 UD memory improvement (%)",
        ["concurrent calls", "measured", "model"],
        rows,
    )
    print(f"socket-only theoretical: {data['socket_only_percent']}% "
          f"(paper: 28.1%); at 10000: {data['model'][10_000]}% (paper: 24.1%)")
    save_results("fig11_sip_memory", data)

    # Live == model at the measured points.
    for n in LIVE_POINTS:
        assert abs(data["live"][n] - data["model"][n]) < 0.2
    # Rising curve, paper-zone endpoints.
    assert data["model"][100] < data["model"][1000] < data["model"][10_000]
    assert 22.0 < data["model"][10_000] < 26.0
    assert 26.0 < data["socket_only_percent"] < 30.0
