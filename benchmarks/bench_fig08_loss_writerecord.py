"""Figure 8: UD RDMA Write-Record bandwidth under packet loss.

Paper shape: partial placement keeps bandwidth high for messages larger
than the 64 KB UDP ceiling (each ~64 KB segment lands independently);
messages at or below one datagram remain all-or-nothing; very high loss
(~5 %) still breaks large messages because the *final* segment must
arrive for the validity declaration.
"""

from conftest import print_table, run_once, save_results

from repro.bench.harness import VerbsEndpointPair
from repro.bench.report import attach_metrics
from repro.simnet.loss import BernoulliLoss

SIZES = (1024, 16384, 49152, 65536, 262144, 1048576)
RATES = (0.001, 0.005, 0.01, 0.05)


def _sweep():
    data = {}
    for size in SIZES:
        data[size] = {}
        for rate in RATES:
            pair = VerbsEndpointPair.build(
                "ud_write_record", loss=BernoulliLoss(rate, seed=11)
            )
            out = pair.bandwidth_mbs(size, messages=max(30, min(400, (4 << 20) // size)))
            data[size][rate] = round(out["mbs"], 1)
    return data


def test_fig08_write_record_under_loss(benchmark):
    data = run_once(benchmark, _sweep)
    rows = [[f"{s}B"] + [data[s][r] for r in RATES] for s in SIZES]
    print_table(
        "Fig. 8 UD RDMA Write-Record bandwidth under loss (MB/s)",
        ["size"] + [f"{r:.1%}" for r in RATES],
        rows,
    )
    save_results("fig08_loss_writerecord", {str(k): v for k, v in data.items()})

    # The Fig. 8 signature: above 64 KB, partial placement holds the
    # curve up where send/recv would collapse (compare bench_fig07).
    assert data[262144][0.01] > 150
    assert data[1048576][0.01] > 150
    # The sub-64KB cliff: a ~48 KB message is one datagram, all-or-
    # nothing, so 5 % loss is catastrophic relative to the paper's
    # "drop at 64 KB" discussion.
    assert data[49152][0.05] < data[262144][0.01]
    # Loss of the final segment still kills large messages at 5 %.
    assert data[1048576][0.05] < 0.25 * data[1048576][0.001]


def test_fig08_vs_fig07_contrast(benchmark):
    """The paper's partial-delivery payoff in one number."""

    def run():
        out = {}
        for mode in ("ud_sendrecv", "ud_write_record"):
            pair = VerbsEndpointPair.build(mode, loss=BernoulliLoss(0.01, seed=11))
            out[mode] = pair.bandwidth_mbs(1 << 20, messages=30)["mbs"]
        return out

    out = run_once(benchmark, run)
    print(f"\n1 MB @ 1% loss: send/recv {out['ud_sendrecv']:.1f} MB/s, "
          f"Write-Record {out['ud_write_record']:.1f} MB/s")
    save_results("fig08_contrast", out)
    assert out["ud_write_record"] > 10 * max(out["ud_sendrecv"], 1)


def test_fig08_rd_write_record_reliability_stats(benchmark):
    """Reliable Write-Record under loss: full delivery (no partial
    messages survive to the application) plus the LLP repair counters
    behind it, recorded per loss rate."""

    def run():
        out = {}
        for rate in (0.01, 0.05):
            pair = VerbsEndpointPair.build(
                "rd_write_record", loss=BernoulliLoss(rate, seed=11),
                metrics=True,
            )
            bw = pair.bandwidth_mbs(262144, messages=30, window=8)
            out[f"{rate:.0%}"] = {
                "mbs": round(bw["mbs"], 1),
                "received_msgs": bw["received_msgs"],
                "partial_msgs": bw["partial_msgs"],
                **pair.repair_stats(),
            }
            attach_metrics(out[f"{rate:.0%}"], pair.metrics_snapshot())
        return out

    out = run_once(benchmark, run)
    rows = [
        [rate, d["mbs"], d["received_msgs"], d["partial_msgs"],
         d["retransmissions"], d["fast_retransmits"], d["backoff_events"]]
        for rate, d in out.items()
    ]
    print_table(
        "Fig. 8 RD Write-Record under loss (256 KB messages)",
        ["loss", "MB/s", "complete", "partial", "rtx", "fast_rtx", "backoffs"],
        rows,
    )
    save_results("fig08_rd_writerecord_reliability", out)

    for d in out.values():
        assert d["received_msgs"] == 30  # reliability: every message whole
        assert d["partial_msgs"] == 0
        assert d["retransmissions"] >= 1  # loss really was repaired
