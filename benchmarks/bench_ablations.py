"""Design-choice ablations called out in DESIGN.md.

* **MPA markers**: the §IV.A claim that marker insertion is a
  significant RC overhead — run RC send/recv with markers negotiated off.
* **CRC placement**: §V recommends disabling the UDP checksum because
  DDP always CRCs; quantify the double-checksum penalty.
* **Segmentation policy**: §IV.B.4's trade-off — large (64 KB) UD
  segments for clean LANs vs MTU-sized independent datagrams under loss.
* **Transport spectrum**: UD vs RD (reliable datagram) vs RC for the
  same workload — the paper's "supplemented by a reliability mechanism"
  story.
"""

from conftest import print_table, run_once, save_results

from repro.bench.harness import VerbsEndpointPair
from repro.models.costs import default_cost_model
from repro.simnet.loss import BernoulliLoss


def test_ablation_mpa_markers(benchmark):
    """Markers on (standard) vs off: per-byte framing cost difference."""

    def run():
        out = {}
        for markers in (True, False):
            pair = VerbsEndpointPair.build("rc_sendrecv", markers=markers)
            out["markers_on" if markers else "markers_off"] = round(
                pair.bandwidth_mbs(262144, messages=30)["mbs"], 1
            )
        return out

    data = run_once(benchmark, run)
    gain = 100 * (data["markers_off"] / data["markers_on"] - 1)
    data["markerless_gain_percent"] = round(gain, 1)
    print_table("MPA marker ablation (RC send/recv, 256 KB)",
                ["config", "MB/s"],
                [["markers on", data["markers_on"]],
                 ["markers off", data["markers_off"]]])
    print(f"markerless gain: {gain:.1f}%")
    save_results("ablation_mpa", data)
    assert data["markers_off"] > data["markers_on"]


def test_ablation_crc_placement(benchmark):
    """DDP CRC with UDP checksum disabled (recommended) vs both enabled."""

    def run():
        out = {}
        # Recommended configuration: UDP checksum off (the default model).
        pair = VerbsEndpointPair.build("ud_write_record")
        out["udp_checksum_off"] = round(
            pair.bandwidth_mbs(262144, messages=30)["mbs"], 1
        )
        # Redundant double-checksumming: charge the UDP sum too.
        costs = default_cost_model().with_overrides(udp_checksum_per_byte_ns=0.8)
        pair = VerbsEndpointPair.build("ud_write_record", costs=costs)
        pair.devices[0].net.udp.checksum_enabled = True
        pair.devices[1].net.udp.checksum_enabled = True
        out["udp_checksum_on"] = round(
            pair.bandwidth_mbs(262144, messages=30)["mbs"], 1
        )
        return out

    data = run_once(benchmark, run)
    penalty = 100 * (1 - data["udp_checksum_on"] / data["udp_checksum_off"])
    data["double_checksum_penalty_percent"] = round(penalty, 1)
    print_table("CRC placement ablation (UD Write-Record, 256 KB)",
                ["config", "MB/s"],
                [["UDP checksum off (recommended)", data["udp_checksum_off"]],
                 ["UDP checksum on (redundant)", data["udp_checksum_on"]]])
    print(f"double-checksum penalty: {penalty:.1f}%")
    save_results("ablation_crc", data)
    assert data["udp_checksum_off"] > data["udp_checksum_on"]


def test_ablation_segment_size_under_loss(benchmark):
    """§IV.B.4: 64 KB segments win on clean networks; MTU-sized
    independent datagrams are safer under loss."""

    def run():
        out = {}
        for label, seg, rate in (
            ("64K_clean", None, 0.0),
            ("mtu_clean", 1408, 0.0),
            ("64K_lossy", None, 0.01),
            ("mtu_lossy", 1408, 0.01),
        ):
            loss = BernoulliLoss(rate, seed=13) if rate else None
            pair = VerbsEndpointPair.build("ud_write_record", loss=loss)
            if seg is not None:
                for qp in pair.qps:
                    qp._max_seg = seg
            out[label] = round(pair.bandwidth_mbs(262144, messages=30)["mbs"], 1)
        return out

    data = run_once(benchmark, run)
    print_table("Segmentation-policy ablation (UD WR-R, 256 KB)",
                ["config", "MB/s"],
                [[k, v] for k, v in data.items()])
    save_results("ablation_mtu", data)
    # Clean network: big segments win (fewer per-segment costs).
    assert data["64K_clean"] > data["mtu_clean"]
    # Under loss, MTU-sized segments lose far less per drop; the gap
    # narrows dramatically (or inverts).
    clean_gap = data["64K_clean"] / data["mtu_clean"]
    lossy_gap = data["64K_lossy"] / max(data["mtu_lossy"], 0.1)
    assert lossy_gap < clean_gap


def test_ablation_transport_spectrum(benchmark):
    """UD vs RD vs RC for 64 KB messages, clean and lossy."""

    def run():
        out = {}
        for mode in ("ud_sendrecv", "rd_sendrecv", "rc_sendrecv"):
            pair = VerbsEndpointPair.build(mode)
            out[f"{mode}_clean"] = round(
                pair.bandwidth_mbs(65536, messages=40, window=16)["mbs"], 1
            )
            pair = VerbsEndpointPair.build(mode, loss=BernoulliLoss(0.01, seed=5))
            res = pair.bandwidth_mbs(65536, messages=40, window=16)
            out[f"{mode}_lossy"] = round(res["mbs"], 1)
            out[f"{mode}_lossy_delivered"] = res["received_msgs"]
        return out

    data = run_once(benchmark, run)
    print_table("Transport spectrum (64 KB messages)",
                ["metric", "value"], [[k, v] for k, v in data.items()])
    save_results("ablation_transports", data)
    # Clean: UD fastest.
    assert data["ud_sendrecv_clean"] > data["rd_sendrecv_clean"]
    assert data["ud_sendrecv_clean"] > data["rc_sendrecv_clean"]
    # Lossy: the reliable transports deliver everything; raw UD does not.
    assert data["rd_sendrecv_lossy_delivered"] == 40
    assert data["rc_sendrecv_lossy_delivered"] == 40
    assert data["ud_sendrecv_lossy_delivered"] < 40


def test_ablation_llp_tcp_vs_sctp(benchmark):
    """The standard's two LLPs head-to-head: RC over TCP+MPA vs RC over
    SCTP (message boundaries, no MPA) vs the paper's UD path — §IV.A's
    transport discussion quantified."""

    def run():
        out = {}
        for mode in ("rc_sendrecv", "rcsctp_sendrecv", "ud_sendrecv"):
            lat = VerbsEndpointPair.build(mode).pingpong_latency_us(64, iters=10)
            bw = VerbsEndpointPair.build(mode).bandwidth_mbs(
                262144, messages=24
            )["mbs"]
            out[mode] = {"latency_64B_us": round(lat, 1),
                         "bandwidth_256K_mbs": round(bw, 1)}
        return out

    data = run_once(benchmark, run)
    print_table(
        "LLP ablation: TCP+MPA vs SCTP vs UDP",
        ["mode", "64B latency (us)", "256K bandwidth (MB/s)"],
        [[m, v["latency_64B_us"], v["bandwidth_256K_mbs"]]
         for m, v in data.items()],
    )
    save_results("ablation_llp", data)
    # SCTP beats TCP on bandwidth (no MPA, no stream adaptation) but
    # both connected transports trail the datagram path.
    assert data["rcsctp_sendrecv"]["bandwidth_256K_mbs"] > \
        data["rc_sendrecv"]["bandwidth_256K_mbs"]
    assert data["ud_sendrecv"]["bandwidth_256K_mbs"] > \
        data["rcsctp_sendrecv"]["bandwidth_256K_mbs"]
    assert data["ud_sendrecv"]["latency_64B_us"] < \
        data["rcsctp_sendrecv"]["latency_64B_us"]
