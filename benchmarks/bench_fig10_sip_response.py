"""Figure 10: SIP request/response time under light load.

Paper anchors: UD ~0.35 ms, RC ~0.62 ms — a 43.1 % improvement
"attributed to the TCP overhead incurred" (per-call connection
establishment plus the heavier per-message path).
"""

from conftest import print_table, run_once, save_results

from repro.apps.sip.workload import measure_response_time


def test_fig10_sip_response_time(benchmark):
    def run():
        ud = measure_response_time("ud", calls=15)
        rc = measure_response_time("rc", calls=15)
        return {
            "ud_ms": round(ud["mean_ms"], 3),
            "rc_ms": round(rc["mean_ms"], 3),
        }

    data = run_once(benchmark, run)
    improvement = 100 * (1 - data["ud_ms"] / data["rc_ms"])
    data["improvement_percent"] = round(improvement, 1)
    print_table(
        "Fig. 10 SIP response time",
        ["transport", "mean (ms)"],
        [["UD", data["ud_ms"]], ["RC", data["rc_ms"]]],
    )
    print(f"UD improvement: {improvement:.1f}% (paper: 43.1%; 0.35 vs 0.62 ms)")
    save_results("fig10_sip_response", data)

    assert 0.25 < data["ud_ms"] < 0.50      # paper ~0.35 ms
    assert 0.45 < data["rc_ms"] < 0.80      # paper ~0.62 ms
    assert 30 < improvement < 55            # paper 43.1 %
