"""§VI.B.2 (text result): socket-shim overhead over native UDP.

The paper measures "the most network intensive task available during
video streaming, the pre-buffering required before beginning playback"
with a live (bitrate-paced) stream and finds "a very minimal approximate
2 % increase" for the shim + software iWARP over the native UDP stack.
"""

from conftest import print_table, run_once, save_results

from repro.apps.streaming import MediaSource, StreamingClient, StreamingServer
from repro.core.socketif import IwSocketInterface, NativeSocketApi
from repro.core.verbs import RnicDevice
from repro.simnet.engine import SEC
from repro.simnet.topology import build_testbed
from repro.transport.stacks import install_stacks


def _paced_session(native: bool) -> float:
    tb = build_testbed()
    nets = install_stacks(tb)
    if native:
        api_s, api_c = NativeSocketApi(nets[0]), NativeSocketApi(nets[1])
    else:
        devs = [RnicDevice(n) for n in nets]
        api_s = IwSocketInterface(devs[0], pool_slots=64, pool_slot_bytes=4096)
        api_c = IwSocketInterface(devs[1], pool_slots=64, pool_slot_bytes=65536)
    media = MediaSource(bitrate_bps=16e6, duration_s=30)
    server = StreamingServer(api_s, tb.hosts[0], 5004, media, "udp", paced=True)
    server.start()
    client = StreamingClient(api_c, tb.hosts[1], (0, 5004), media, "udp",
                             prebuffer_bytes=1 << 20)
    proc = client.run()
    tb.sim.run_until(proc.finished, limit=600 * SEC)
    assert not client.failed
    return client.buffering_time_ms


def test_shim_overhead_over_native_udp(benchmark):
    def run():
        native = _paced_session(native=True)
        shim = _paced_session(native=False)
        return {
            "native_ms": round(native, 2),
            "shim_ms": round(shim, 2),
            "overhead_percent": round(100 * (shim / native - 1), 2),
        }

    data = run_once(benchmark, run)
    print_table(
        "Shim overhead, bitrate-paced prebuffering",
        ["stack", "time (ms)"],
        [["native UDP", data["native_ms"]], ["iWARP shim", data["shim_ms"]]],
    )
    print(f"overhead: {data['overhead_percent']}% (paper: ~2%)")
    save_results("shim_overhead", data)
    assert -1.0 < data["overhead_percent"] < 8.0
