"""Hot-path wall-clock performance benchmark (the perf-gate's scenarios).

Unlike the figure benchmarks, which validate *what* the simulation
computes, this one tracks *how fast* it computes it: events/sec and
simulated-bytes/sec for the fig06 bandwidth mix and the fig07 loss mix.
It refreshes the repo-root ``BENCH_hotpath.json`` (before = the seed
snapshot committed in the baseline, after = this run) and re-checks the
determinism contract: the deterministic counters of every scenario must
match the committed baseline exactly — wall time may wobble with the
machine, the simulation may not.
"""

from conftest import print_table, save_results

from repro.bench.perfgate import (
    DETERMINISTIC_FIELDS, load_baseline, run_all, write_bench,
)


def test_perf_hotpath(benchmark):
    rows = benchmark.pedantic(
        lambda: run_all(best_of=1), rounds=1, iterations=1, warmup_rounds=1,
    )
    baseline = load_baseline()
    doc = write_bench(rows, baseline)

    table = [
        [
            name,
            f"{row['events_per_sec']:.0f}",
            f"{row['sim_bytes_per_sec'] / 1e6:.2f}",
            f"{doc['speedup'].get(name, float('nan')):.2f}x",
        ]
        for name, row in sorted(rows.items())
    ]
    print_table(
        "Hot-path performance (BENCH_hotpath.json)",
        ["scenario", "events/s", "sim-MB/s", "vs seed"],
        table,
    )
    save_results("perf_hotpath", doc)

    # The simulation must be bit-compatible with the committed baseline:
    # optimizations are only admissible when the event stream's
    # observable counters do not move.
    assert baseline is not None, "no committed baseline (run perfgate --rebaseline)"
    for name, row in rows.items():
        base = baseline["scenarios"][name]
        for field in DETERMINISTIC_FIELDS:
            assert row[field] == base[field], (
                f"{name}.{field}: {row[field]} != baseline {base[field]}"
            )

    # The headline claim the BENCH trajectory records: the hot-path work
    # bought >= 1.3x on the bandwidth scenario over the seed tree.
    assert doc["speedup"]["fig06_bandwidth"] >= 1.3
    assert doc["speedup"]["fig07_loss"] >= 1.3
