"""Figure 5: verbs ping-pong latency (small / medium / large panels).

Paper anchors: UD send/recv and UD Write-Record ~27-28 us below 128 B,
RC ~33 us; UD ~18-24 % better up to 2 KB; RC send/recv slightly best in
the 16-64 KB band; UD wins again at >= 128 KB.
"""

from conftest import print_table, run_once, save_results

from repro.bench.harness import VerbsEndpointPair

MODES = ("ud_sendrecv", "ud_write_record", "rc_sendrecv", "rc_rdma_write")
SMALL = (1, 16, 64, 256, 1024)
MEDIUM = (2048, 8192, 16384, 32768, 65536)
LARGE = (131072, 262144, 524288, 1048576)


def _sweep(sizes, iters):
    data = {}
    for mode in MODES:
        data[mode] = {}
        for size in sizes:
            pair = VerbsEndpointPair.build(mode)
            data[mode][size] = round(
                pair.pingpong_latency_us(size, iters=iters, warmup=3), 2
            )
    return data


def _report(panel, data, sizes):
    rows = [
        [f"{s}B"] + [data[m][s] for m in MODES]
        for s in sizes
    ]
    print_table(
        f"Fig. 5 ({panel}) one-way latency (us)",
        ["size"] + list(MODES),
        rows,
    )


def test_fig05_small_panel(benchmark):
    data = run_once(benchmark, lambda: _sweep(SMALL, iters=20))
    _report("small", data, SMALL)
    save_results("fig05_small", data)
    # Paper-shape assertions.
    assert 22 < data["ud_sendrecv"][64] < 32          # ~27-28 us
    assert 28 < data["rc_sendrecv"][64] < 40          # ~33 us
    for s in SMALL:
        assert data["ud_sendrecv"][s] < data["rc_sendrecv"][s]
        assert data["ud_write_record"][s] < data["rc_rdma_write"][s]


def test_fig05_medium_panel(benchmark):
    data = run_once(benchmark, lambda: _sweep(MEDIUM, iters=10))
    _report("medium", data, MEDIUM)
    save_results("fig05_medium", data)
    # The crossover band: RC send/recv best at 16-64 KB.
    for s in (16384, 32768, 65536):
        assert data["rc_sendrecv"][s] < data["ud_sendrecv"][s]
    # UD still ahead at 2 KB.
    assert data["ud_sendrecv"][2048] < data["rc_sendrecv"][2048]


def test_fig05_large_panel(benchmark):
    data = run_once(benchmark, lambda: _sweep(LARGE, iters=5))
    _report("large", data, LARGE)
    save_results("fig05_large", data)
    # UD (both ops) beats RC for every large size.
    for s in LARGE:
        assert data["ud_sendrecv"][s] < data["rc_sendrecv"][s]
        assert data["ud_write_record"][s] < data["rc_rdma_write"][s]
    # Write-Record is the best UD op at large sizes.
    assert data["ud_write_record"][1048576] <= data["ud_sendrecv"][1048576]
