"""Figure 6: unidirectional verbs bandwidth.

Paper anchors: UD Write-Record +188.8 % over RC RDMA Write at 1 KB and
+256 % at 512 KB; UD send/recv up to +193 % over RC send/recv (small
messages) and +33.4 % at 256 KB; software-stack peak ~235-250 MB/s.
"""

from conftest import print_table, run_once, save_results

from repro.bench.harness import VerbsEndpointPair

MODES = ("ud_sendrecv", "ud_write_record", "rc_sendrecv", "rc_rdma_write")
SIZES = (1024, 4096, 16384, 65536, 262144, 524288, 1048576)


def _messages_for(size: int) -> int:
    return max(30, min(1000, (4 << 20) // size))


def _sweep():
    data = {}
    for mode in MODES:
        data[mode] = {}
        for size in SIZES:
            pair = VerbsEndpointPair.build(mode)
            out = pair.bandwidth_mbs(size, messages=_messages_for(size))
            data[mode][size] = round(out["mbs"], 1)
    return data


def test_fig06_unidirectional_bandwidth(benchmark):
    data = run_once(benchmark, _sweep)
    rows = [[f"{s}B"] + [data[m][s] for m in MODES] for s in SIZES]
    print_table("Fig. 6 unidirectional bandwidth (MB/s)", ["size"] + list(MODES), rows)

    ratios = {
        "wrr_vs_rcw_512K": round(data["ud_write_record"][524288]
                                 / data["rc_rdma_write"][524288], 2),
        "wrr_vs_rcw_1K": round(data["ud_write_record"][1024]
                               / data["rc_rdma_write"][1024], 2),
        "udsr_vs_rcsr_256K": round(data["ud_sendrecv"][262144]
                                   / data["rc_sendrecv"][262144], 2),
        "udsr_vs_rcsr_1K": round(data["ud_sendrecv"][1024]
                                 / data["rc_sendrecv"][1024], 2),
    }
    print("ratios:", ratios,
          "(paper: 512K WRR/RCW 3.56; 1K WRR/RCW 2.89; 256K s/r 1.33; 1K s/r 2.93)")
    save_results("fig06_bandwidth", {"series": data, "ratios": ratios})

    # Shape assertions (who wins, roughly by how much).
    assert ratios["wrr_vs_rcw_512K"] > 2.5          # paper 3.56
    assert ratios["udsr_vs_rcsr_256K"] > 1.05       # paper 1.33
    assert ratios["wrr_vs_rcw_1K"] > 1.3            # paper 2.89
    assert 200 < data["ud_write_record"][1048576] < 300   # CPU-bound peak
    for s in SIZES:
        assert data["ud_write_record"][s] >= 0.9 * data["ud_sendrecv"][s]
        assert data["rc_rdma_write"][s] < data["rc_sendrecv"][s]
