"""Figure 9: VLC streaming initial buffering time, UD vs RC/HTTP.

Paper anchors: UD (send/recv and Write-Record effectively identical
through the socket shim) reduces initial buffering time by 74.1 % versus
HTTP-over-RC; the gap is "due only partially to the datagram-iWARP to
RC-iWARP difference" (HTTP adds its own overhead).
"""

from conftest import print_table, run_once, save_results

from repro.apps.streaming import MediaSource, StreamingClient, StreamingServer
from repro.core.socketif import IwSocketInterface
from repro.core.verbs import RnicDevice
from repro.simnet.engine import SEC
from repro.simnet.topology import build_testbed
from repro.transport.stacks import install_stacks

PREBUFFER = 2 << 20  # 2 MB prebuffer, an 8 Mb/s stream


def _session(mode: str, rdma_mode: bool) -> float:
    tb = build_testbed()
    nets = install_stacks(tb)
    devs = [RnicDevice(n) for n in nets]
    api_s = IwSocketInterface(devs[0], rdma_mode=rdma_mode,
                              pool_slots=64, pool_slot_bytes=4096)
    api_c = IwSocketInterface(devs[1], rdma_mode=rdma_mode,
                              pool_slots=64, pool_slot_bytes=65536)
    media = MediaSource(bitrate_bps=8e6, duration_s=60)
    server = StreamingServer(api_s, tb.hosts[0], 5004, media, mode)
    server.start()
    client = StreamingClient(api_c, tb.hosts[1], (0, 5004), media, mode,
                             prebuffer_bytes=PREBUFFER)
    proc = client.run()
    tb.sim.run_until(proc.finished, limit=600 * SEC)
    assert not client.failed
    return client.buffering_time_ms


def test_fig09_vlc_buffering(benchmark):
    def run():
        return {
            "ud_sendrecv_ms": round(_session("udp", rdma_mode=False), 1),
            "ud_write_record_ms": round(_session("udp", rdma_mode=True), 1),
            "rc_http_ms": round(_session("http", rdma_mode=True), 1),
        }

    data = run_once(benchmark, run)
    ud_best = min(data["ud_sendrecv_ms"], data["ud_write_record_ms"])
    improvement = 100 * (1 - ud_best / data["rc_http_ms"])
    data["improvement_percent"] = round(improvement, 1)
    print_table(
        "Fig. 9 VLC initial buffering time",
        ["transport", "buffering (ms)"],
        [
            ["UD send/recv", data["ud_sendrecv_ms"]],
            ["UD Write-Record", data["ud_write_record_ms"]],
            ["RC (HTTP)", data["rc_http_ms"]],
        ],
    )
    print(f"UD improvement: {improvement:.1f}% (paper: 74.1%)")
    save_results("fig09_vlc", data)

    # Shape: UD is far ahead; the two UD modes are near-identical
    # through the shim (§VI.B.1).
    assert improvement > 50
    ratio = data["ud_sendrecv_ms"] / data["ud_write_record_ms"]
    assert 0.8 < ratio < 1.25
