"""Cross-layer product machine: QP x MPA x TCP on the RC path.

The single-machine checks prove each table is internally sound; the
bugs that matter in deployment live *between* the layers — a QP that
reaches RTS before MPA negotiation completed, an MPA stream that fails
without the QP ever seeing an error.  This module builds the explicit
product of the three RC-path machines under a small event alphabet
(handshake, negotiation, loss/dup/reorder, close/reset) and checks
declared cross-layer invariants over every reachable composite state,
reporting minimal counterexample event traces.

Atomicity mirrors the code: where the stack performs coupled updates in
one synchronous call chain (``MpaConnection._fail`` -> ``on_error`` ->
``QueuePair._enter_error``), the product rule moves both components in
one step.

Rule codes:

* **IC201** — a product rule applies a component move the component's
  own pair table forbids (the spec model and the per-layer tables
  disagree).
* **IC202** — an ``always`` invariant violated in a reachable state.
* **IC203** — a ``leads-to`` invariant violated: a reachable state
  matches ``when`` but no state matching ``require`` is reachable from
  it.
* **IC204** — a reachable composite state with no path to a terminal
  composite state (cross-layer live-lock).
* **IC205** — a product rule that never fires (over-guarded: the model
  carries dead specification).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from iwarpcheck.model import Finding, Machine, TraceStep

RULES: Dict[str, str] = {
    "IC201": "product rule applies a component move its pair table forbids",
    "IC202": "'always' cross-layer invariant violated in a reachable state",
    "IC203": "'leads-to' cross-layer invariant violated (no path to the required states)",
    "IC204": "reachable composite state with no path to a terminal composite state",
    "IC205": "product rule never fires from any reachable state",
}

State = Tuple[str, ...]


@dataclass(frozen=True)
class ProductRule:
    """One event of the product alphabet.

    ``guard`` maps component name -> source states the rule fires from
    (a missing component means "any state"); ``update`` maps component
    name -> target state (missing components keep their state; a target
    equal to the current state is a legal no-op, mirroring
    ``_set_state``)."""

    event: str
    guard: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    update: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ProductInvariant:
    """A declared cross-layer property.

    ``kind`` is ``"always"`` (every reachable state matching ``when``
    must match ``require``) or ``"leads-to"`` (every reachable state
    matching ``when`` must be able to reach a state matching
    ``require``).  Both maps are component name -> allowed states; a
    missing component matches anything."""

    name: str
    kind: str  # "always" | "leads-to"
    when: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    require: Mapping[str, FrozenSet[str]] = field(default_factory=dict)


@dataclass(frozen=True)
class ProductMachine:
    name: str
    components: Tuple[str, ...]
    machines: Mapping[str, Machine]
    initial: Mapping[str, str]
    rules: Tuple[ProductRule, ...]
    invariants: Tuple[ProductInvariant, ...]
    #: Terminal predicate: component -> allowed states (missing = any).
    terminal: Mapping[str, FrozenSet[str]] = field(default_factory=dict)

    def initial_state(self) -> State:
        return tuple(self.initial[c] for c in self.components)

    def render(self, state: State) -> str:
        return "/".join(state)

    def matches(self, state: State, predicate: Mapping[str, FrozenSet[str]]) -> bool:
        for comp, allowed in predicate.items():
            if state[self.components.index(comp)] not in allowed:
                return False
        return True


@dataclass
class Exploration:
    """Reachable fragment of a product machine."""

    states: Dict[State, List[TraceStep]]  # state -> minimal event trace
    successors: Dict[State, List[Tuple[str, State]]]
    fired: FrozenSet[str]  # rules that fired at least once
    conformance: List[Finding]  # IC201 findings met during exploration


def _apply_rule(
    pm: ProductMachine, rule: ProductRule, state: State
) -> Tuple[Optional[State], Optional[str]]:
    """(successor, None) for a legal firing, (None, reason) for a
    component move the per-layer table forbids, (None, None) if the
    guard blocks the rule here."""
    for comp, allowed in rule.guard.items():
        if state[pm.components.index(comp)] not in allowed:
            return None, None
    nxt = list(state)
    for comp, target in rule.update.items():
        idx = pm.components.index(comp)
        current = nxt[idx]
        if target == current:
            continue
        machine = pm.machines[comp]
        if target not in machine.table.get(current, frozenset()):
            return None, (
                f"rule {rule.event!r} moves {comp} {current} -> {target}, "
                f"which {machine.name}'s pair table forbids"
            )
        nxt[idx] = target
    return tuple(nxt), None


def explore(pm: ProductMachine, max_states: int = 100_000) -> Exploration:
    initial = pm.initial_state()
    states: Dict[State, List[TraceStep]] = {initial: []}
    successors: Dict[State, List[Tuple[str, State]]] = {}
    fired = set()
    conformance: List[Finding] = []
    reported = set()  # (rule event, component) pairs already flagged
    queue = deque([initial])
    while queue:
        state = queue.popleft()
        succ: List[Tuple[str, State]] = []
        for rule in pm.rules:
            nxt, illegal = _apply_rule(pm, rule, state)
            if illegal is not None:
                fired.add(rule.event)
                key = (rule.event, illegal)
                if key not in reported:
                    reported.add(key)
                    conformance.append(
                        Finding(
                            pm.name,
                            "IC201",
                            illegal,
                            trace=tuple(states[state])
                            + ((pm.render(state), rule.event, "<illegal>"),),
                        )
                    )
                continue
            if nxt is None:
                continue
            fired.add(rule.event)
            succ.append((rule.event, nxt))
            if nxt not in states:
                if len(states) >= max_states:
                    raise RuntimeError(
                        f"product machine {pm.name} exceeded {max_states} states"
                    )
                states[nxt] = states[state] + [
                    (pm.render(state), rule.event, pm.render(nxt))
                ]
                queue.append(nxt)
        successors[state] = succ
    return Exploration(
        states=states,
        successors=successors,
        fired=frozenset(fired),
        conformance=conformance,
    )


def _can_reach(
    pm: ProductMachine,
    exploration: Exploration,
    start: State,
    predicate: Mapping[str, FrozenSet[str]],
) -> bool:
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        if pm.matches(state, predicate):
            return True
        for _event, nxt in exploration.successors.get(state, []):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return False


def check_product(pm: ProductMachine, max_states: int = 100_000) -> List[Finding]:
    """Run every IC2xx rule over the product machine."""
    exploration = explore(pm, max_states=max_states)
    findings: List[Finding] = list(exploration.conformance)

    for invariant in pm.invariants:
        for state in exploration.states:
            if not pm.matches(state, invariant.when):
                continue
            if invariant.kind == "always":
                if not pm.matches(state, invariant.require):
                    findings.append(
                        Finding(
                            pm.name,
                            "IC202",
                            f"invariant {invariant.name!r} violated in state "
                            f"{pm.render(state)}",
                            trace=tuple(exploration.states[state]),
                        )
                    )
                    break  # one minimal counterexample per invariant
            elif invariant.kind == "leads-to":
                if not _can_reach(pm, exploration, state, invariant.require):
                    findings.append(
                        Finding(
                            pm.name,
                            "IC203",
                            f"invariant {invariant.name!r} violated: from "
                            f"{pm.render(state)} no required state is reachable",
                            trace=tuple(exploration.states[state]),
                        )
                    )
                    break
            else:
                raise ValueError(
                    f"unknown invariant kind {invariant.kind!r} "
                    f"({invariant.name})"
                )

    if pm.terminal:
        for state in exploration.states:
            if not _can_reach(pm, exploration, state, pm.terminal):
                findings.append(
                    Finding(
                        pm.name,
                        "IC204",
                        f"composite state {pm.render(state)} cannot reach any "
                        f"terminal composite state",
                        trace=tuple(exploration.states[state]),
                    )
                )
                break

    for rule in pm.rules:
        if rule.event not in exploration.fired:
            findings.append(
                Finding(
                    pm.name,
                    "IC205",
                    f"product rule {rule.event!r} never fires from any "
                    f"reachable state",
                )
            )

    return findings


# ---------------------------------------------------------------------------
# The RC-path product model
# ---------------------------------------------------------------------------

_ANY_OPEN_TCP = frozenset(
    {
        "SYN_SENT",
        "SYN_RCVD",
        "ESTABLISHED",
        "FIN_WAIT_1",
        "FIN_WAIT_2",
        "CLOSE_WAIT",
        "LAST_ACK",
        "CLOSING",
        "TIME_WAIT",
    }
)


def rc_product(machines: Mapping[str, Machine]) -> ProductMachine:
    """QP x MPA x TCP for one RC endpoint (``RcQp`` over
    ``MpaConnection`` over ``TcpConnection``).

    ``machines`` maps machine name ("QP", "MPA", "TCP") to its Machine;
    pass :func:`iwarpcheck.model.machines_by_name` output.  The event
    alphabet covers connection setup, MPA negotiation, the loss /
    duplication / reordering faults the datagram paper's network model
    injects (explicitly state-invisible: retransmission absorbs them),
    both close directions, and RST teardown.
    """
    rules = (
        # -- TCP handshake -------------------------------------------------
        ProductRule(
            "tcp_active_open",
            guard={
                "tcp": frozenset({"CLOSED"}),
                "qp": frozenset({"RESET"}),
                "mpa": frozenset({"NEGOTIATING"}),
            },
            update={"tcp": "SYN_SENT"},
        ),
        ProductRule(
            "tcp_passive_syn",
            guard={
                "tcp": frozenset({"CLOSED"}),
                "qp": frozenset({"RESET"}),
                "mpa": frozenset({"NEGOTIATING"}),
            },
            update={"tcp": "SYN_RCVD"},
        ),
        ProductRule(
            "tcp_syn_ack",
            guard={"tcp": frozenset({"SYN_SENT"})},
            update={"tcp": "ESTABLISHED"},
        ),
        ProductRule(
            "tcp_handshake_ack",
            guard={"tcp": frozenset({"SYN_RCVD"})},
            update={"tcp": "ESTABLISHED"},
        ),
        # -- the fault alphabet: state-invisible by design -----------------
        # A lost, duplicated, or reordered segment triggers
        # retransmission / dup-ACK machinery but never moves the
        # connection FSM; declaring the self-loops here makes that an
        # explicit, checked property of the model rather than an
        # accident.
        ProductRule(
            "segment_loss",
            guard={"tcp": frozenset({"SYN_SENT", "SYN_RCVD", "ESTABLISHED"})},
        ),
        ProductRule("segment_dup", guard={"tcp": frozenset({"ESTABLISHED"})}),
        ProductRule("segment_reorder", guard={"tcp": frozenset({"ESTABLISHED"})}),
        ProductRule(
            "handshake_timeout",
            guard={"tcp": frozenset({"SYN_SENT", "SYN_RCVD"})},
            update={"tcp": "CLOSED", "mpa": "FAILED", "qp": "ERROR"},
        ),
        # -- MPA negotiation (atomic with the QP callback) -----------------
        ProductRule(
            "mpa_neg_complete",
            guard={
                "tcp": frozenset({"ESTABLISHED"}),
                "mpa": frozenset({"NEGOTIATING"}),
                "qp": frozenset({"RESET"}),
            },
            update={"mpa": "OPERATIONAL", "qp": "RTS"},
        ),
        ProductRule(
            "mpa_neg_reject",
            guard={
                "tcp": frozenset({"ESTABLISHED"}),
                "mpa": frozenset({"NEGOTIATING"}),
            },
            update={"mpa": "FAILED", "qp": "ERROR"},
        ),
        # -- operational-stream faults -------------------------------------
        ProductRule(
            "crc_mismatch",
            guard={
                "mpa": frozenset({"OPERATIONAL"}),
                "qp": frozenset({"RTS", "SQD", "ERROR"}),
            },
            update={"mpa": "FAILED", "qp": "ERROR"},
        ),
        ProductRule(
            "remote_terminate",
            guard={
                "mpa": frozenset({"OPERATIONAL"}),
                "qp": frozenset({"RTS", "SQD"}),
            },
            update={"qp": "ERROR"},
        ),
        # -- verbs-driven send-queue drain ---------------------------------
        ProductRule(
            "sq_drain",
            guard={"qp": frozenset({"RTS"}), "mpa": frozenset({"OPERATIONAL"})},
            update={"qp": "SQD"},
        ),
        ProductRule(
            "sq_resume",
            guard={"qp": frozenset({"SQD"}), "mpa": frozenset({"OPERATIONAL"})},
            update={"qp": "RTS"},
        ),
        # -- close / teardown ----------------------------------------------
        ProductRule(
            "app_close_established",
            guard={"tcp": frozenset({"ESTABLISHED"})},
            update={"qp": "ERROR", "tcp": "FIN_WAIT_1"},
        ),
        ProductRule(
            "app_close_close_wait",
            guard={"tcp": frozenset({"CLOSE_WAIT"})},
            update={"qp": "ERROR", "tcp": "LAST_ACK"},
        ),
        ProductRule(
            "peer_fin",
            guard={"tcp": frozenset({"ESTABLISHED"})},
            update={"tcp": "CLOSE_WAIT"},
        ),
        ProductRule(
            "peer_fin_fin_wait_1",
            guard={"tcp": frozenset({"FIN_WAIT_1"})},
            update={"tcp": "CLOSING"},
        ),
        ProductRule(
            "peer_fin_fin_wait_2",
            guard={"tcp": frozenset({"FIN_WAIT_2"})},
            update={"tcp": "TIME_WAIT"},
        ),
        ProductRule(
            "peer_fin_acked",
            guard={"tcp": frozenset({"FIN_WAIT_1"})},
            update={"tcp": "TIME_WAIT"},
        ),
        ProductRule(
            "fin_acked_fin_wait_1",
            guard={"tcp": frozenset({"FIN_WAIT_1"})},
            update={"tcp": "FIN_WAIT_2"},
        ),
        ProductRule(
            "fin_acked_closing",
            guard={"tcp": frozenset({"CLOSING"})},
            update={"tcp": "TIME_WAIT"},
        ),
        ProductRule(
            "fin_acked_last_ack",
            guard={"tcp": frozenset({"LAST_ACK"})},
            update={"tcp": "CLOSED"},
        ),
        ProductRule(
            "msl_timeout",
            guard={"tcp": frozenset({"TIME_WAIT"})},
            update={"tcp": "CLOSED"},
        ),
        ProductRule(
            "tcp_reset",
            guard={"tcp": _ANY_OPEN_TCP},
            update={"tcp": "CLOSED", "mpa": "FAILED", "qp": "ERROR"},
        ),
    )
    invariants = (
        # An RC QP only reaches (or stays in) the send-capable states
        # while the MPA stream is fully operational.
        ProductInvariant(
            "rts-implies-mpa-operational",
            kind="always",
            when={"qp": frozenset({"RTS", "SQD"})},
            require={"mpa": frozenset({"OPERATIONAL"})},
        ),
        # ... and while the TCP connection can still carry its FPDUs.
        ProductInvariant(
            "rts-implies-tcp-alive",
            kind="always",
            when={"qp": frozenset({"RTS", "SQD"})},
            require={"tcp": frozenset({"ESTABLISHED", "CLOSE_WAIT"})},
        ),
        # A failed MPA stream must surface as a QP error — §IV.B item 2:
        # an RC stream error terminates the connection and flushes the QP.
        ProductInvariant(
            "mpa-failed-leads-to-qp-error",
            kind="leads-to",
            when={"mpa": frozenset({"FAILED"})},
            require={"qp": frozenset({"ERROR"})},
        ),
    )
    return ProductMachine(
        name="RC-PRODUCT",
        components=("qp", "mpa", "tcp"),
        machines={
            "qp": machines["QP"],
            "mpa": machines["MPA"],
            "tcp": machines["TCP"],
        },
        initial={"qp": "RESET", "mpa": "NEGOTIATING", "tcp": "CLOSED"},
        rules=rules,
        invariants=invariants,
        terminal={"qp": frozenset({"ERROR"}), "tcp": frozenset({"CLOSED"})},
    )
