"""Machine and Finding types, plus loaders for the stack's four FSMs.

A :class:`Machine` is the checker's view of one protocol state machine:
the ``(from, to)`` pair table that ``_set_state`` enforces at runtime,
the event-labelled table ``(state, event) -> state`` that gives every
arc a protocol meaning, an initial state, and the set of terminal
(quiescent) states every run must be able to reach.

:func:`load_machines` imports the live ``repro`` modules and reads the
tables they declare — the checker verifies what the stack actually
ships, not a copy.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Tuple

#: One step of a counterexample trace: (from_state, event, to_state).
#: Product traces use a composite state rendering on either side.
TraceStep = Tuple[str, str, str]


@dataclass(frozen=True)
class Finding:
    """One model-checker result, optionally with a counterexample trace
    (the minimal event sequence from the initial state that exhibits
    the problem)."""

    machine: str
    rule: str
    message: str
    trace: Tuple[TraceStep, ...] = ()

    def render(self) -> str:
        lines = [f"{self.machine}: {self.rule} {self.message}"]
        if self.trace:
            lines.append("    counterexample trace:")
            for src, event, dst in self.trace:
                lines.append(f"      {src} --{event}--> {dst}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine,
            "rule": self.rule,
            "message": self.message,
            "trace": [
                {"from": src, "event": event, "to": dst}
                for src, event, dst in self.trace
            ],
        }


@dataclass(frozen=True)
class Machine:
    """One explicit-state machine under check."""

    name: str
    initial: str
    terminals: FrozenSet[str]
    #: Pair view enforced by ``_set_state``: state -> allowed next states.
    table: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    #: Event-labelled view: (state, event) -> next state.
    events: Mapping[Tuple[str, str], str] = field(default_factory=dict)

    @property
    def states(self) -> FrozenSet[str]:
        """Every state the pair table declares (sources and targets)."""
        everything = set(self.table) | {self.initial}
        for targets in self.table.values():
            everything |= targets
        return frozenset(everything)

    def declared_pairs(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(
            (src, dst) for src, targets in self.table.items() for dst in targets
        )

    def event_pairs(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset((src, dst) for (src, _event), dst in self.events.items())


#: (machine name, owning module, table-name prefix, initial, terminals).
#: The machine name is the exact string the module's ``_set_state``
#: passes to ``repro.core.fsm.transition`` — the runtime coverage
#: records key on it.
MACHINE_SPECS: Sequence[Tuple[str, str, str, str, FrozenSet[str]]] = (
    ("QP", "repro.core.verbs.qp", "QP", "RESET", frozenset({"ERROR"})),
    (
        "TCP",
        "repro.transport.tcp.connection",
        "TCP",
        "CLOSED",
        frozenset({"CLOSED"}),
    ),
    (
        "MPA",
        "repro.core.mpa.connection",
        "MPA",
        "NEGOTIATING",
        frozenset({"FAILED"}),
    ),
    ("SCTP", "repro.transport.sctp", "SCTP", "CLOSED", frozenset({"CLOSED"})),
)

MACHINE_NAMES: Tuple[str, ...] = tuple(spec[0] for spec in MACHINE_SPECS)


def load_machines() -> List[Machine]:
    """Import the four FSM modules and build their Machine views.

    Requires ``src/`` on ``sys.path`` (the repo-root ``iwarpcheck.py``
    shim arranges this; under pytest, ``PYTHONPATH=src`` does).
    """
    machines: List[Machine] = []
    for name, module_name, prefix, initial, terminals in MACHINE_SPECS:
        module = importlib.import_module(module_name)
        table = getattr(module, f"{prefix}_TRANSITIONS")
        events = getattr(module, f"{prefix}_EVENT_TRANSITIONS")
        machines.append(
            Machine(
                name=name,
                initial=initial,
                terminals=terminals,
                table=table,
                events=events,
            )
        )
    return machines


def machines_by_name() -> Dict[str, Machine]:
    return {machine.name: machine for machine in load_machines()}
