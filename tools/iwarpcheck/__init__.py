"""iwarpcheck — explicit-state model checking for the protocol FSMs.

Where ``iwarplint`` checks the *source* against the declared transition
tables, iwarpcheck checks the *tables themselves* and the runtime
behaviour of the stack:

* :mod:`iwarpcheck.model` loads the four event-labelled machines (QP,
  TCP, MPA, SCTP) straight from the ``repro`` modules that declare
  them.
* :mod:`iwarpcheck.explore` exhaustively explores each machine:
  unreachable states, states with no path to a terminal, dead declared
  transitions, drift between the event-labelled table and the
  ``(from, to)`` pair table that ``_set_state`` enforces.
* :mod:`iwarpcheck.product` builds the cross-layer RC product machine
  (QP x MPA x TCP) under a loss/dup/reorder/close event alphabet and
  checks the declared cross-layer invariants, reporting minimal
  counterexample event traces.
* :mod:`iwarpcheck.sanitizer` is the runtime transition-coverage
  sanitizer: an observer on ``repro.core.fsm`` records every transition
  the test suite takes, and the coverage gate fails on any runtime
  transition absent from the declared tables or any declared transition
  no test exercises (unless waived in the manifest).

Run ``python -m iwarpcheck`` from the repo root (``iwarpcheck.py`` is
the path shim), or ``make verify-fsm`` for the full model-check +
coverage pipeline.
"""

from iwarpcheck.explore import check_machine, event_paths_covering_all_edges
from iwarpcheck.model import Finding, Machine, load_machines
from iwarpcheck.product import ProductMachine, check_product, rc_product
from iwarpcheck.sanitizer import TransitionRecorder, coverage_findings

__all__ = [
    "Finding",
    "Machine",
    "ProductMachine",
    "TransitionRecorder",
    "check_machine",
    "check_product",
    "coverage_findings",
    "event_paths_covering_all_edges",
    "load_machines",
    "rc_product",
]
