"""Runtime transition-coverage sanitizer.

The model checker proves the declared tables sound; this module closes
the loop against the *running* stack.  A :class:`TransitionRecorder`
registers as an observer on ``repro.core.fsm`` — the single choke point
every ``_set_state`` funnels through — and counts each ``(machine,
from, to)`` the test suite actually takes.  The coverage gate then
compares the recording against the declared pair tables:

* **IC301** — the suite took a transition no table declares.  This
  cannot happen through ``_set_state`` (it would have raised), so it
  flags recordings from a stale or divergent build.
* **IC302** — a declared transition no test exercised and no waiver
  covers.  Untested transitions are where table rot hides; either
  exercise them or waive them with a reason.
* **IC303** — a waiver that references an unknown machine or a pair the
  tables don't declare (the waiver itself has rotted).
* **IC304** — a stale waiver: the pair is waived but the suite covers
  it; the waiver should be deleted.

Waiver manifest format (``tools/iwarpcheck/waivers.txt``), one waiver
per line, ``#`` comments and blank lines ignored::

    MACHINE FROM -> TO: reason the transition cannot be exercised
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from iwarpcheck.model import Finding, Machine

RULES: Dict[str, str] = {
    "IC301": "runtime transition not declared by any table",
    "IC302": "declared transition not exercised and not waived",
    "IC303": "waiver references an unknown machine or undeclared transition",
    "IC304": "stale waiver: the waived transition is covered",
}

RECORDS_VERSION = 1

#: ``MACHINE FROM -> TO: reason``
_WAIVER_RE = re.compile(
    r"^(?P<machine>\S+)\s+(?P<src>\S+)\s*->\s*(?P<dst>\S+)\s*:\s*(?P<reason>.+\S)\s*$"
)


@dataclass(frozen=True)
class Waiver:
    machine: str
    src: str
    dst: str
    reason: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.machine, self.src, self.dst)


class WaiverError(ValueError):
    """A malformed waiver manifest — a configuration error (exit 2)."""


def parse_waivers(text: str, source: str = "<waivers>") -> List[Waiver]:
    waivers: List[Waiver] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _WAIVER_RE.match(line)
        if match is None:
            raise WaiverError(
                f"{source}:{lineno}: malformed waiver {line!r} "
                f"(expected 'MACHINE FROM -> TO: reason')"
            )
        waivers.append(
            Waiver(
                machine=match.group("machine"),
                src=match.group("src"),
                dst=match.group("dst"),
                reason=match.group("reason"),
            )
        )
    return waivers


def load_waivers(path: str) -> List[Waiver]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_waivers(handle.read(), source=path)


@dataclass
class TransitionRecorder:
    """Counts every transition the shared ``transition()`` helper
    applies while installed.  Install for the duration of a test
    session (``tests/conftest.py`` does, when ``IWARP_FSM_COVERAGE``
    names an output path)."""

    counts: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    def __call__(self, machine: str, src: str, dst: str) -> None:
        key = (machine, src, dst)
        self.counts[key] = self.counts.get(key, 0) + 1

    def install(self) -> None:
        from repro.core.fsm import add_transition_observer

        add_transition_observer(self)

    def uninstall(self) -> None:
        from repro.core.fsm import remove_transition_observer

        remove_transition_observer(self)

    def to_payload(self) -> Dict[str, object]:
        return {
            "version": RECORDS_VERSION,
            "transitions": [
                {"machine": machine, "from": src, "to": dst, "count": count}
                for (machine, src, dst), count in sorted(self.counts.items())
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class RecordsError(ValueError):
    """An unreadable or wrong-shape records file (exit 2)."""


def load_records(path: str) -> Dict[Tuple[str, str, str], int]:
    """Read a recorder payload back into ``(machine, from, to) -> count``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise RecordsError(f"cannot read records file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != RECORDS_VERSION:
        raise RecordsError(
            f"records file {path} is not a version-{RECORDS_VERSION} "
            f"iwarpcheck recording"
        )
    counts: Dict[Tuple[str, str, str], int] = {}
    for entry in payload.get("transitions", []):
        try:
            key = (entry["machine"], entry["from"], entry["to"])
            counts[key] = counts.get(key, 0) + int(entry["count"])
        except (TypeError, KeyError) as exc:
            raise RecordsError(
                f"records file {path} has a malformed transition entry: "
                f"{entry!r}"
            ) from exc
    return counts


def coverage_findings(
    records: Mapping[Tuple[str, str, str], int],
    machines: Sequence[Machine],
    waivers: Iterable[Waiver] = (),
) -> List[Finding]:
    """Run the IC3xx coverage rules over one recording."""
    findings: List[Finding] = []
    by_name = {machine.name: machine for machine in machines}

    declared: Dict[str, frozenset] = {
        name: machine.declared_pairs() for name, machine in by_name.items()
    }
    covered = {
        (machine, src, dst)
        for (machine, src, dst), count in records.items()
        if count > 0
    }
    waived: Dict[Tuple[str, str, str], Waiver] = {}

    for waiver in waivers:
        if (
            waiver.machine not in by_name
            or (waiver.src, waiver.dst) not in declared[waiver.machine]
        ):
            findings.append(
                Finding(
                    waiver.machine,
                    "IC303",
                    f"waiver {waiver.machine} {waiver.src} -> {waiver.dst} "
                    f"references an unknown machine or undeclared transition",
                )
            )
            continue
        waived[waiver.key] = waiver
        if waiver.key in covered:
            findings.append(
                Finding(
                    waiver.machine,
                    "IC304",
                    f"stale waiver: {waiver.src} -> {waiver.dst} is covered "
                    f"by the suite ({waiver.reason!r}); delete the waiver",
                )
            )

    for machine, src, dst in sorted(covered):
        if machine not in by_name or (src, dst) not in declared[machine]:
            findings.append(
                Finding(
                    machine,
                    "IC301",
                    f"runtime transition {src} -> {dst} is not declared by "
                    f"any table (stale recording or divergent build?)",
                )
            )

    for name in sorted(by_name):
        for src, dst in sorted(declared[name]):
            key = (name, src, dst)
            if key not in covered and key not in waived:
                findings.append(
                    Finding(
                        name,
                        "IC302",
                        f"declared transition {src} -> {dst} was never "
                        f"exercised by the suite and is not waived",
                    )
                )

    return findings


def coverage_summary(
    records: Mapping[Tuple[str, str, str], int],
    machines: Sequence[Machine],
    waivers: Iterable[Waiver] = (),
) -> Dict[str, Dict[str, int]]:
    """Per-machine declared/covered/waived counts for reports."""
    waived_keys = {waiver.key for waiver in waivers}
    summary: Dict[str, Dict[str, int]] = {}
    for machine in machines:
        pairs = machine.declared_pairs()
        covered = sum(
            1
            for src, dst in pairs
            if records.get((machine.name, src, dst), 0) > 0
        )
        waived = sum(
            1
            for src, dst in pairs
            if (machine.name, src, dst) in waived_keys
            and records.get((machine.name, src, dst), 0) == 0
        )
        summary[machine.name] = {
            "declared": len(pairs),
            "covered": covered,
            "waived": waived,
        }
    return summary
