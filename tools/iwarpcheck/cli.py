"""Command-line entry point: ``python -m iwarpcheck [check|coverage]``.

Exit codes match iwarplint's contract: 0 clean, 1 findings, 2
configuration or usage errors (unknown machine, unreadable records
file, malformed waiver manifest).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from iwarpcheck.explore import check_machine
from iwarpcheck.model import MACHINE_NAMES, Finding, load_machines
from iwarpcheck.product import check_product, rc_product
from iwarpcheck.sanitizer import (
    RecordsError,
    WaiverError,
    coverage_findings,
    coverage_summary,
    load_records,
    load_waivers,
)

DEFAULT_WAIVERS = Path(__file__).resolve().parent / "waivers.txt"

PRODUCT_COMPONENTS = ("QP", "MPA", "TCP")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="iwarpcheck",
        description="Explicit-state model checking for the datagram-iWARP FSMs.",
    )
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser(
        "check",
        help="model-check the four machines and the RC product machine",
    )
    check.add_argument(
        "--machine",
        action="append",
        metavar="NAME",
        help=f"restrict to one machine (repeatable; one of {', '.join(MACHINE_NAMES)})",
    )

    coverage = sub.add_parser(
        "coverage",
        help="gate a runtime transition recording against the declared tables",
    )
    coverage.add_argument("records", help="recording written by the test-suite sanitizer")
    coverage.add_argument(
        "--waivers",
        default=str(DEFAULT_WAIVERS),
        metavar="FILE",
        help="waiver manifest (default: tools/iwarpcheck/waivers.txt)",
    )

    for sub_parser in (check, coverage):
        sub_parser.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="report format on stdout (default: text)",
        )
        sub_parser.add_argument(
            "--output",
            metavar="FILE",
            help="also write the JSON report to FILE",
        )
    return parser


def _report(
    mode: str,
    findings: List[Finding],
    args: argparse.Namespace,
    extra: Optional[Dict[str, object]] = None,
) -> int:
    payload: Dict[str, object] = {
        "tool": "iwarpcheck",
        "mode": mode,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if extra:
        payload.update(extra)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        print(f"iwarpcheck: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"iwarpcheck: {mode} clean", file=sys.stderr)
    return 0


def _run_check(args: argparse.Namespace) -> int:
    machines = load_machines()
    selected = list(MACHINE_NAMES)
    if args.machine:
        selected = []
        for name in args.machine:
            if name not in MACHINE_NAMES:
                print(
                    f"iwarpcheck: unknown machine {name!r} "
                    f"(expected one of {', '.join(MACHINE_NAMES)})",
                    file=sys.stderr,
                )
                return 2
            selected.append(name)

    by_name = {machine.name: machine for machine in machines}
    findings: List[Finding] = []
    checked: List[str] = []
    for name in selected:
        findings.extend(check_machine(by_name[name]))
        checked.append(name)
    if all(component in selected for component in PRODUCT_COMPONENTS):
        findings.extend(check_product(rc_product(by_name)))
        checked.append("RC-PRODUCT")
    return _report("check", findings, args, extra={"machines": checked})


def _run_coverage(args: argparse.Namespace) -> int:
    machines = load_machines()
    try:
        records = load_records(args.records)
        waivers = load_waivers(args.waivers)
    except (RecordsError, WaiverError, OSError) as exc:
        print(f"iwarpcheck: {exc}", file=sys.stderr)
        return 2
    findings = coverage_findings(records, machines, waivers)
    summary = coverage_summary(records, machines, waivers)
    for name, stats in sorted(summary.items()):
        print(
            f"iwarpcheck: {name}: {stats['covered']}/{stats['declared']} "
            f"transitions covered, {stats['waived']} waived",
            file=sys.stderr,
        )
    return _report("coverage", findings, args, extra={"summary": summary})


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or (
        argv[0] not in ("check", "coverage") and argv[0] not in ("-h", "--help")
    ):
        argv.insert(0, "check")
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "coverage":
        return _run_coverage(args)
    return _run_check(args)


if __name__ == "__main__":
    sys.exit(main())
