"""Single-machine exploration: reachability, liveness, table conformance.

Rule codes (the IC2xx product rules live in :mod:`iwarpcheck.product`,
the IC3xx coverage rules in :mod:`iwarpcheck.sanitizer`):

* **IC101** — the event table references a state the pair table does
  not declare.
* **IC102** — an event transition's ``(from, to)`` pair is not
  permitted by the pair table (including self-loops: the pair tables
  declare none, and a same-state event would be invisible to the
  runtime sanitizer).
* **IC103** — a dead declared transition: a pair the table permits but
  no event produces.  Dead pairs are unfalsifiable by any run and rot
  silently; either label the event that takes them or remove them.
* **IC104** — a declared state unreachable from the initial state via
  events.
* **IC105** — a reachable state with no event path to any terminal
  state (a live-lock: the machine can get somewhere it can never wind
  down from).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from iwarpcheck.model import Finding, Machine, TraceStep

RULES: Dict[str, str] = {
    "IC101": "event table references an undeclared state",
    "IC102": "event transition not permitted by the declared pair table",
    "IC103": "dead declared transition: no event produces it",
    "IC104": "declared state unreachable from the initial state",
    "IC105": "reachable state with no path to a terminal state",
}


def reachable_paths(machine: Machine) -> Dict[str, List[TraceStep]]:
    """BFS over the event table: state -> minimal event trace from the
    initial state (the initial state maps to the empty trace)."""
    paths: Dict[str, List[TraceStep]] = {machine.initial: []}
    queue = deque([machine.initial])
    while queue:
        state = queue.popleft()
        for (src, event), dst in machine.events.items():
            if src != state or dst in paths:
                continue
            paths[dst] = paths[state] + [(src, event, dst)]
            queue.append(dst)
    return paths


def _terminal_reachable(machine: Machine, start: str) -> bool:
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        if state in machine.terminals:
            return True
        for (src, _event), dst in machine.events.items():
            if src == state and dst not in seen:
                seen.add(dst)
                queue.append(dst)
    return False


def check_machine(machine: Machine) -> List[Finding]:
    """Run every IC1xx rule over one machine."""
    findings: List[Finding] = []
    states = machine.states
    paths = reachable_paths(machine)

    for (src, event), dst in machine.events.items():
        for state in (src, dst):
            if state not in states:
                findings.append(
                    Finding(
                        machine.name,
                        "IC101",
                        f"event ({src!r}, {event!r}) -> {dst!r} references "
                        f"undeclared state {state!r}",
                    )
                )
        if src in states and dst in states and dst not in machine.table.get(src, frozenset()):
            findings.append(
                Finding(
                    machine.name,
                    "IC102",
                    f"event {event!r} takes {src} -> {dst}, which the pair "
                    f"table does not permit",
                    trace=tuple(paths.get(src, [])) + ((src, event, dst),),
                )
            )

    event_pairs = machine.event_pairs()
    for src, dst in sorted(machine.declared_pairs()):
        if (src, dst) not in event_pairs:
            findings.append(
                Finding(
                    machine.name,
                    "IC103",
                    f"declared transition {src} -> {dst} has no event label; "
                    f"no run can ever take it",
                    trace=tuple(paths.get(src, [])),
                )
            )

    for state in sorted(states):
        if state not in paths:
            findings.append(
                Finding(
                    machine.name,
                    "IC104",
                    f"state {state} is unreachable from {machine.initial} "
                    f"via the event table",
                )
            )

    for state in sorted(paths):
        if not _terminal_reachable(machine, state):
            findings.append(
                Finding(
                    machine.name,
                    "IC105",
                    f"state {state} has no path to a terminal state "
                    f"({', '.join(sorted(machine.terminals))})",
                    trace=tuple(paths[state]),
                )
            )

    return findings


def event_paths_covering_all_edges(machine: Machine) -> List[List[TraceStep]]:
    """One event path per declared event arc, each starting at the
    initial state and ending with that arc.

    The FSM conformance tests replay these paths through the live
    ``_set_state`` helpers: together they exercise every declared
    ``(from, to)`` pair (the IC102/IC103 checks guarantee the event
    arcs project exactly onto the pair table), which is what drives the
    runtime coverage sanitizer to 100% without waivers.
    """
    paths = reachable_paths(machine)
    covering: List[List[TraceStep]] = []
    for (src, event), dst in machine.events.items():
        prefix = paths.get(src)
        if prefix is None:
            continue  # unreachable source: IC104 already reports it
        covering.append(prefix + [(src, event, dst)])
    return covering
