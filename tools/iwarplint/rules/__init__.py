"""Rule families.  Each module exposes ``RULES`` (code -> description)
and ``check(module) -> Iterable[Violation]``.  Adding a family is: write
the module, append it to ``FAMILIES``."""

from iwarplint.rules import determinism, fsm, layering, metrics, wire

FAMILIES = (layering, fsm, wire, determinism, metrics)

__all__ = ["FAMILIES", "layering", "fsm", "wire", "determinism", "metrics"]
