"""IW5xx — metric naming: registry factory calls vs the naming scheme.

Every string-literal metric name passed to a registry instrument
factory (``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``)
must follow the ``layer.component.name`` scheme mirrored from
``repro.obs.metrics``: at least three lowercase dot-separated segments,
first segment a known layer.  The runtime raises ``RegistryError`` for
the same violations, but only on code paths a test happens to execute
with metrics enabled; IW501 catches the literal at lint time.

Non-literal names (computed prefixes in pull collectors) are left to
the runtime check — collectors run on every ``collect()``, so those
names cannot stay unvalidated for long.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from iwarplint import invariants as inv
from iwarplint.driver import SourceModule, Violation

RULES = {
    "IW501": "metric name violates the layer.component.name scheme",
}

_NAME_RE = re.compile(inv.METRIC_NAME_PATTERN)

#: Only repro code (and fixtures shaped like it) is in scope; the tools
#: themselves and loose scripts are not.
_WATCHED_PREFIX = "repro"


def _watched(name: Optional[str]) -> bool:
    return name is not None and (
        name == _WATCHED_PREFIX or name.startswith(_WATCHED_PREFIX + ".")
    )


def _bad_name(name: str) -> Optional[str]:
    """Reason ``name`` violates the scheme, or None if it conforms."""
    if not _NAME_RE.match(name):
        return (
            f"metric name '{name}' does not match layer.component.name "
            f"(pattern {inv.METRIC_NAME_PATTERN})"
        )
    layer = name.split(".", 1)[0]
    if layer not in inv.METRIC_LAYERS:
        return (
            f"metric name '{name}' starts with unknown layer '{layer}' "
            f"(known: {', '.join(sorted(inv.METRIC_LAYERS))})"
        )
    return None


def check(module: SourceModule) -> Iterator[Violation]:
    if not _watched(module.name):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in inv.METRIC_FACTORIES):
            continue
        if not node.args:
            continue
        name_node = node.args[0]
        if not (isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)):
            continue  # computed names are validated at runtime
        reason = _bad_name(name_node.value)
        if reason is not None:
            yield module.violation("IW501", node, reason)
