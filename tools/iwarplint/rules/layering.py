"""IW1xx — layering: enforce the paper's stack order on imports.

Allowed without sanction: importing within your own layer, importing the
layer directly beneath you, and importing the support libraries
(``memory``, ``models``).  Everything else — upward imports, skips over
intermediate layers (except the declared datagram MPA-bypass edges), and
support libraries reaching into the stack — is flagged.

Imports inside an ``if TYPE_CHECKING:`` block are exempt: they exist
only for annotations and never execute, so they create no runtime
dependency between layers.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from iwarplint import invariants as inv
from iwarplint.driver import SourceModule, Violation

RULES = {
    "IW101": "upward or support-layer import violating the stack order",
    "IW102": "layer-skipping import without a sanctioned allowlist edge",
    "IW103": "sanctioned edge used for a module outside its allowlist",
}


def _resolve_base(module: SourceModule, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted package an ``ImportFrom`` pulls names out of."""
    if node.level == 0:
        return node.module
    if module.name is None:
        return None  # relative import outside a package: unresolvable
    parts = module.name.split(".")
    if module.path.name != "__init__.py":
        parts = parts[:-1]  # the containing package
    parts = parts[: len(parts) - (node.level - 1)]
    if not parts:
        return None
    base = ".".join(parts)
    return f"{base}.{node.module}" if node.module else base


def _within(target: str, prefixes: Iterable[str]) -> bool:
    return any(target == p or target.startswith(p + ".") for p in prefixes)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _type_only_imports(tree: ast.AST) -> set:
    """ids of import statements guarded by ``if TYPE_CHECKING:``."""
    guarded: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for inner in node.body:
                for sub in ast.walk(inner):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        guarded.add(id(sub))
    return guarded


def check(module: SourceModule) -> Iterator[Violation]:
    src_layer = inv.layer_of(module.name) if module.name else None
    if src_layer is None:
        return
    src_support = src_layer in inv.SUPPORT_LAYERS
    type_only = _type_only_imports(module.tree)

    for node in ast.walk(module.tree):
        if id(node) in type_only:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                verdict = _classify(module, node, src_layer, src_support, alias.name)
                if verdict is not None:
                    yield verdict
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_base(module, node)
            if not base:
                continue
            base_layered = inv.layer_of(base) is not None
            base_clean = _classify(module, node, src_layer, src_support, base) is None
            for alias in node.names:
                # ``from pkg import x`` binds either a symbol or the
                # submodule pkg.x; judge the most specific name, but let
                # a fully-sanctioned base carry its symbols with it.
                verdict = _classify(module, node, src_layer, src_support, f"{base}.{alias.name}")
                if verdict is None or (base_layered and base_clean):
                    continue
                yield verdict


def _classify(
    module: SourceModule,
    node: ast.stmt,
    src_layer: str,
    src_support: bool,
    target: str,
) -> Optional[Violation]:
    """None when importing ``target`` is permitted, else the violation."""
    if not (target == "repro" or target.startswith("repro.")):
        return None  # stdlib / third-party: out of scope
    tgt_layer = inv.layer_of(target)
    if tgt_layer is None:
        return None  # repro root or unlayered helper
    if src_support:
        if tgt_layer in inv.SUPPORT_LAYERS:
            return None
        return module.violation(
            "IW101",
            node,
            f"support layer '{src_layer}' must not depend on stack layer "
            f"'{tgt_layer}' (import of {target})",
        )
    if tgt_layer in inv.SUPPORT_LAYERS or tgt_layer == src_layer:
        return None

    src_rank = inv.LAYER_RANK[src_layer]
    tgt_rank = inv.LAYER_RANK[tgt_layer]
    if (src_layer, tgt_layer) in inv.SANCTIONED_EDGES:
        allowed = inv.SANCTIONED_EDGES[(src_layer, tgt_layer)]
        if allowed is None or _within(target, allowed):
            return None
        return module.violation(
            "IW103",
            node,
            f"'{src_layer}' may reach '{tgt_layer}' only via "
            f"{', '.join(sorted(allowed))}; import of {target} is outside the allowlist",
        )
    if tgt_rank < src_rank:
        return module.violation(
            "IW101",
            node,
            f"upward import: '{src_layer}' (rank {src_rank}) must not import "
            f"'{tgt_layer}' (rank {tgt_rank}) — {target}",
        )
    if tgt_rank > src_rank + 1:
        return module.violation(
            "IW102",
            node,
            f"layer skip: '{src_layer}' -> '{tgt_layer}' jumps over "
            f"{tgt_rank - src_rank - 1} layer(s) with no sanctioned edge — {target}",
        )
    return None
