"""IW4xx — determinism: keep simulated runs seed-reproducible.

Inside the simulation-critical packages (``simnet``, ``transport``,
``core``) this rule forbids:

* **IW401** — wall-clock/entropy reads: ``time.time()``, ``monotonic``,
  ``perf_counter``, ``datetime.now()``, ``os.urandom``, ``uuid.uuid4``…
  Simulated time comes from ``Simulator.now`` only.
* **IW402** — unseeded randomness: any module-level ``random.*`` call
  (hidden global state shared across the process) and ``random.Random()``
  with no seed.  The sanctioned pattern is an explicitly seeded
  ``random.Random(seed)`` instance.
* **IW403** — iteration over a ``set``/``frozenset`` (for-loops and
  comprehensions): set iteration order depends on insertion history and
  hash salting of prior runs' object graph, so it can silently reorder
  retransmissions or completions.  Wrap in ``sorted(...)`` (or use an
  order-insensitive reduction like ``len``/``min``/``sum``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from iwarplint import invariants as inv
from iwarplint.driver import SourceModule, Violation

RULES = {
    "IW401": "wall-clock or entropy read inside the simulated stack",
    "IW402": "unseeded randomness (module-level random.* or random.Random())",
    "IW403": "iteration over a set (order depends on hashing); use sorted(...)",
}


def _in_scope(name: Optional[str]) -> bool:
    return name is not None and any(
        name == p or name.startswith(p + ".") for p in inv.DETERMINISM_SCOPES
    )


def check(module: SourceModule) -> Iterator[Violation]:
    if not _in_scope(module.name):
        return
    yield from _check_entropy(module)
    yield from _check_set_iteration(module)


# -- IW401 / IW402 ------------------------------------------------------------


def _dotted_tail(node: ast.expr) -> Tuple[str, ...]:
    """Trailing dotted parts of an attribute chain (up to 3 deep)."""
    parts = []
    cur = node
    while isinstance(cur, ast.Attribute) and len(parts) < 3:
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    return tuple(reversed(parts))


def _check_entropy(module: SourceModule) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                for alias in node.names:
                    if alias.name != inv.SEEDED_RNG_CLASS:
                        yield module.violation(
                            "IW402",
                            node,
                            f"from random import {alias.name}: module-level random "
                            "state is unseeded; construct random.Random(seed) instead",
                        )
            elif node.module in inv.ENTROPY_MODULES:
                yield module.violation(
                    "IW401",
                    node,
                    f"import from '{node.module}' pulls process entropy into the "
                    "simulated stack",
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        tail = _dotted_tail(node.func)
        if len(tail) < 2:
            continue
        mod_part, fn = tail[-2], tail[-1]
        if (mod_part, fn) in inv.WALL_CLOCK_CALLS:
            yield module.violation(
                "IW401",
                node,
                f"{mod_part}.{fn}() reads wall-clock/entropy; simulated time "
                "comes from Simulator.now",
            )
        elif mod_part in inv.ENTROPY_MODULES:
            yield module.violation(
                "IW401", node, f"{mod_part}.{fn}() draws process entropy"
            )
        elif tail[0] == "random" and len(tail) == 2:
            if fn == inv.SEEDED_RNG_CLASS:
                if not node.args and not node.keywords:
                    yield module.violation(
                        "IW402",
                        node,
                        "random.Random() with no seed; pass an explicit seed so "
                        "runs replay",
                    )
            else:
                yield module.violation(
                    "IW402",
                    node,
                    f"random.{fn}() uses the unseeded module-level RNG; use an "
                    "explicitly seeded random.Random(seed) instance",
                )


# -- IW403 --------------------------------------------------------------------


class _SetTracker(ast.NodeVisitor):
    """Collects names/attributes that are statically set-typed."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()  # local/global variable names
        self.set_attrs: Set[str] = set()  # "self.<attr>" spellings

    def _record(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.set_names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.set_attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.set_names, self.set_attrs):
            for target in node.targets:
                self._record(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _is_set_annotation(node.annotation) or (
            node.value is not None
            and _is_set_expr(node.value, self.set_names, self.set_attrs)
        ):
            self._record(node.target)
        self.generic_visit(node)

    def _record_params(self, args: ast.arguments) -> None:
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                self.set_names.add(arg.arg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._record_params(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._record_params(node.args)
        self.generic_visit(node)


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    else:
        try:
            text = ast.unparse(node)
        except Exception:
            return False
    head = text.split("[", 1)[0].split(".")[-1].strip()
    return head in {"set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet"}


def _is_set_expr(node: ast.expr, set_names: Set[str], set_attrs: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr in set_attrs
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names, set_attrs) or _is_set_expr(
            node.right, set_names, set_attrs
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # s.union(t), s.copy(), s.difference(t), ...
        if node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
            "copy",
        }:
            return _is_set_expr(node.func.value, set_names, set_attrs)
    return False


def _check_set_iteration(module: SourceModule) -> Iterator[Violation]:
    tracker = _SetTracker()
    tracker.visit(module.tree)

    # ``any(p(x) for x in some_set)`` and the other order-insensitive
    # reductions cannot observe iteration order; exempt a generator
    # expression that is the sole argument of such a call.
    reduced: Set[int] = set()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in inv.ORDER_INSENSITIVE_WRAPPERS
            and len(node.args) == 1
            and isinstance(node.args[0], ast.GeneratorExp)
        ):
            reduced.add(id(node.args[0]))

    def iter_is_set(node: ast.expr) -> bool:
        # ``for x in sorted(s)`` and friends are fine; the wrapper names
        # in ORDER_INSENSITIVE_WRAPPERS normalise or reduce the order.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in inv.ORDER_INSENSITIVE_WRAPPERS
        ):
            return False
        return _is_set_expr(node, tracker.set_names, tracker.set_attrs)

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and iter_is_set(node.iter):
            yield module.violation(
                "IW403",
                node.iter,
                "for-loop iterates a set; order depends on hashing — "
                "iterate sorted(...) instead",
            )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # (set comprehensions are excluded: their result is itself
            # unordered, so the source order cannot leak out)
            if isinstance(node, ast.GeneratorExp) and id(node) in reduced:
                continue
            for comp in node.generators:
                if iter_is_set(comp.iter):
                    yield module.violation(
                        "IW403",
                        comp.iter,
                        "comprehension iterates a set; order depends on hashing — "
                        "iterate sorted(...) instead",
                    )
