"""IW2xx — FSM conformance for QP and connection state machines.

For each :class:`~iwarplint.invariants.FsmSpec` this rule checks, inside
the module that owns the FSM:

* **IW201** — a direct write to ``self.<attr>`` outside the validated
  ``_set_state`` helper (the only permitted direct write is assigning an
  initial state inside ``__init__``).
* **IW202** — a ``self._set_state(X)`` call whose statically-inferable
  source states (from enclosing ``self.state == S`` / ``in (..)`` guards,
  including early-``raise``/``return`` negations) include a state from
  which the declared table forbids reaching ``X``.
* **IW203** — a state write or transition using a name that is not one
  of the machine's declared states.
* **IW204** — the module-level transition table (``QP_TRANSITIONS`` etc.)
  has drifted from the table declared in ``iwarplint.invariants``.

Unguarded helper calls (source set = "could be anything") are left to
the runtime validation inside ``_set_state`` itself: flagging them
statically would punish helpers whose callers hold the guard.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from iwarplint import invariants as inv
from iwarplint.driver import SourceModule, Violation
from iwarplint.invariants import FsmSpec

RULES = {
    "IW201": "direct state write bypassing the validated _set_state helper",
    "IW202": "guarded transition not permitted by the declared table",
    "IW203": "state write/transition uses an undeclared state name",
    "IW204": "module transition table drifted from iwarplint.invariants",
}

# ``None`` means "could be any state" (no usable guard information).
Facts = Optional[FrozenSet[str]]


def check(module: SourceModule) -> Iterator[Violation]:
    for spec in inv.FSM_SPECS:
        if module.name != spec.module:
            continue
        consts = _state_constants(module.tree, spec)
        yield from _check_table_drift(module, spec, consts)
        for func, in_helper in _functions(module.tree, spec):
            walker = _FsmWalker(module, spec, consts, func.name, in_helper)
            walker.walk_block(func.body, None)
            yield from walker.findings


def _state_constants(tree: ast.Module, spec: FsmSpec) -> Dict[str, str]:
    """Module-level ``NAME = "STRING"`` bindings for declared states."""
    consts: Dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            consts[node.targets[0].id] = node.value.value
    return consts


def _functions(tree: ast.Module, spec: FsmSpec) -> Iterator[Tuple[ast.FunctionDef, bool]]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.name == spec.helper


def _check_table_drift(
    module: SourceModule, spec: FsmSpec, consts: Dict[str, str]
) -> Iterator[Violation]:
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not (isinstance(target, ast.Name) and target.id == spec.table_name):
                continue
            declared = _eval_table(value, consts)
            if declared is None:
                yield module.violation(
                    "IW204",
                    node,
                    f"{spec.table_name} is not a literal dict of state sets; "
                    "iwarplint cannot verify it against the declared invariants",
                )
                return
            expected = {src: frozenset(dsts) for src, dsts in spec.table.items()}
            if declared != expected:
                diffs = []
                for state in sorted(set(declared) | set(expected)):
                    have = declared.get(state)
                    want = expected.get(state)
                    if have != want:
                        diffs.append(
                            f"{state}: module={sorted(have) if have is not None else None} "
                            f"invariants={sorted(want) if want is not None else None}"
                        )
                yield module.violation(
                    "IW204",
                    node,
                    f"{spec.table_name} drifted from iwarplint.invariants "
                    f"({'; '.join(diffs)})",
                )
            return


def _eval_table(
    value: Optional[ast.expr], consts: Dict[str, str]
) -> Optional[Dict[str, FrozenSet[str]]]:
    if not isinstance(value, ast.Dict):
        return None
    table: Dict[str, FrozenSet[str]] = {}
    for key_node, val_node in zip(value.keys, value.values):
        key = _state_of(key_node, consts)
        vals = _state_set_of(val_node, consts)
        if key is None or vals is None:
            return None
        table[key] = frozenset(vals)
    return table


def _state_of(node: Optional[ast.expr], consts: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name) and node.id in consts:
        return consts[node.id]
    return None


def _state_set_of(node: ast.expr, consts: Dict[str, str]) -> Optional[Set[str]]:
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elems = node.elts
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
        and not node.keywords
    ):
        if not node.args:
            return set()
        return _state_set_of(node.args[0], consts)
    else:
        return None
    out: Set[str] = set()
    for elem in elems:
        state = _state_of(elem, consts)
        if state is None:
            return None
        out.add(state)
    return out


class _FsmWalker:
    """Statement walker tracking what ``self.state`` can be at each point."""

    def __init__(
        self,
        module: SourceModule,
        spec: FsmSpec,
        consts: Dict[str, str],
        func_name: str,
        in_helper: bool,
    ) -> None:
        self.module = module
        self.spec = spec
        self.consts = consts
        self.func_name = func_name
        self.in_helper = in_helper
        self.findings: List[Violation] = []

    # -- facts algebra ---------------------------------------------------

    def _all_states(self) -> FrozenSet[str]:
        return self.spec.states

    def _intersect(self, a: Facts, b: Facts) -> Facts:
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    # -- guard parsing ---------------------------------------------------

    def _is_state_attr(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == self.spec.attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _guard_facts(self, test: ast.expr) -> Tuple[Facts, Facts]:
        """(facts when test is true, facts when test is false)."""
        if isinstance(test, ast.BoolOp):
            branches = [self._guard_facts(v) for v in test.values]
            if isinstance(test.op, ast.And):
                true_facts: Facts = None
                for pos, _neg in branches:
                    true_facts = self._intersect(true_facts, pos)
                return true_facts, None
            # Or: true branch is the union of positives (if all known);
            # false branch intersects the negatives.
            positives = [pos for pos, _ in branches]
            false_facts: Facts = None
            for _pos, neg in branches:
                false_facts = self._intersect(false_facts, neg)
            if any(p is None for p in positives):
                return None, false_facts
            union: Set[str] = set()
            for p in positives:
                union |= p  # type: ignore[arg-type]
            return frozenset(union), false_facts
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            pos, neg = self._guard_facts(test.operand)
            return neg, pos
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None, None
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if not self._is_state_attr(left):
            return None, None
        if isinstance(op, (ast.Eq, ast.NotEq)):
            state = _state_of(right, self.consts)
            if state is None:
                return None, None
            eq = frozenset({state})
            ne = self._all_states() - eq
            return (eq, ne) if isinstance(op, ast.Eq) else (ne, eq)
        if isinstance(op, (ast.In, ast.NotIn)):
            states = _state_set_of(right, self.consts)
            if states is None:
                return None, None
            inside = frozenset(states)
            outside = self._all_states() - inside
            return (inside, outside) if isinstance(op, ast.In) else (outside, inside)
        return None, None

    # -- statement walking -----------------------------------------------

    @staticmethod
    def _terminates(stmts: List[ast.stmt]) -> bool:
        if not stmts:
            return False
        last = stmts[-1]
        return isinstance(last, (ast.Raise, ast.Return, ast.Continue, ast.Break))

    def walk_block(self, stmts: List[ast.stmt], facts: Facts) -> Facts:
        for stmt in stmts:
            facts = self._walk_stmt(stmt, facts)
        return facts

    def _walk_stmt(self, stmt: ast.stmt, facts: Facts) -> Facts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return facts  # nested defs are visited via _functions()
        if isinstance(stmt, ast.If):
            true_facts, false_facts = self._guard_facts(stmt.test)
            self.walk_block(stmt.body, self._intersect(facts, true_facts))
            self.walk_block(stmt.orelse, self._intersect(facts, false_facts))
            if self._terminates(stmt.body) and not stmt.orelse:
                # ``if state != X: raise`` — afterwards state must be X.
                return self._intersect(facts, false_facts)
            return None  # merged paths: give up rather than guess
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # Later iterations may see states mutated inside the loop;
            # analyse the body with no assumptions.
            self.walk_block(stmt.body, None)
            self.walk_block(stmt.orelse, None)
            return None
        if isinstance(stmt, ast.Try):
            self.walk_block(stmt.body, facts)
            for handler in stmt.handlers:
                self.walk_block(handler.body, None)
            self.walk_block(stmt.orelse, None)
            self.walk_block(stmt.finalbody, None)
            return None
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.walk_block(stmt.body, facts)
        return self._walk_simple(stmt, facts)

    def _walk_simple(self, stmt: ast.stmt, facts: Facts) -> Facts:
        new_facts = facts
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                result = self._check_direct_write(node, facts)
                if result is not None:
                    new_facts = result
            elif isinstance(node, ast.Call):
                result = self._check_helper_call(node, facts)
                if result is not None:
                    new_facts = result
        return new_facts

    def _check_direct_write(self, node: ast.stmt, facts: Facts) -> Facts:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:  # AugAssign
            targets = [node.target]  # type: ignore[attr-defined]
            value = None
        if not any(self._is_state_attr(t) for t in targets):
            return None
        state = _state_of(value, self.consts) if value is not None else None
        if self.in_helper:
            return frozenset({state}) if state is not None else None
        if self.func_name == "__init__" and state is not None and state in self.spec.initial:
            return frozenset({state})
        self.findings.append(
            self.module.violation(
                "IW201",
                node,
                f"direct write to self.{self.spec.attr} in {self.func_name}(); "
                f"route transitions through {self.spec.helper}()",
            )
        )
        if state is not None and state not in self.spec.states:
            self.findings.append(
                self.module.violation(
                    "IW203",
                    node,
                    f"'{state}' is not a declared state of {self.spec.module}",
                )
            )
        return frozenset({state}) if state is not None else None

    def _check_helper_call(self, node: ast.Call, facts: Facts) -> Facts:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == self.spec.helper
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return None
        if not node.args:
            return None
        target = _state_of(node.args[0], self.consts)
        if target is None:
            return None  # dynamic argument: validated at runtime
        if target not in self.spec.states:
            self.findings.append(
                self.module.violation(
                    "IW203",
                    node,
                    f"'{target}' is not a declared state of {self.spec.module}",
                )
            )
            return None
        if facts is not None:
            bad = sorted(
                s
                for s in facts
                if s != target
                and target not in self.spec.any_targets
                and target not in self.spec.table.get(s, frozenset())
            )
            if bad:
                self.findings.append(
                    self.module.violation(
                        "IW202",
                        node,
                        f"transition {'/'.join(bad)} -> {target} is not permitted "
                        f"by {self.spec.table_name}",
                    )
                )
        return frozenset({target})
