"""IW3xx — wire-format: struct format strings vs the header manifest.

Every ``struct.Struct(...)`` / ``struct.pack/unpack/...`` format literal
appearing in a watched protocol module must be declared in
``invariants.WIRE_FORMATS`` with the byte length the header requires
(RFC 5040/5041/5044 and the paper's UD extensions), and
``struct.calcsize`` of the literal must equal that declared length.
Compiled ``Struct`` objects are checked at their construction site, so
later ``self._hdr.pack(...)`` calls need no re-checking.
"""

from __future__ import annotations

import ast
import struct
from typing import Iterator, Optional

from iwarplint import invariants as inv
from iwarplint.driver import SourceModule, Violation

RULES = {
    "IW301": "struct format not declared in the wire-format manifest",
    "IW302": "struct format size disagrees with the declared header length",
    "IW303": "non-literal struct format in a protocol module (unverifiable)",
}

_STRUCT_FUNCS = {
    "Struct",
    "pack",
    "unpack",
    "pack_into",
    "unpack_from",
    "calcsize",
    "iter_unpack",
}


def _watched(name: Optional[str]) -> bool:
    return name is not None and any(
        name == p or name.startswith(p + ".") for p in inv.WIRE_WATCHED_PREFIXES
    )


def check(module: SourceModule) -> Iterator[Violation]:
    if not _watched(module.name):
        return
    assert module.name is not None
    declared = inv.WIRE_FORMATS.get(module.name, {})

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _STRUCT_FUNCS
            and isinstance(func.value, ast.Name)
            and func.value.id == "struct"
        ):
            continue
        if not node.args:
            continue
        fmt_node = node.args[0]
        if not (isinstance(fmt_node, ast.Constant) and isinstance(fmt_node.value, str)):
            yield module.violation(
                "IW303",
                node,
                f"struct.{func.attr} format is not a string literal; "
                "wire formats in protocol modules must be statically checkable",
            )
            continue
        fmt = fmt_node.value
        if fmt not in declared:
            yield module.violation(
                "IW301",
                node,
                f"format '{fmt}' is not declared for {module.name} in "
                "iwarplint.invariants.WIRE_FORMATS",
            )
            continue
        try:
            actual = struct.calcsize(fmt)
        except struct.error as exc:
            yield module.violation("IW302", node, f"format '{fmt}' is invalid: {exc}")
            continue
        expected = declared[fmt]
        if actual != expected:
            yield module.violation(
                "IW302",
                node,
                f"format '{fmt}' packs {actual} bytes but the manifest declares "
                f"{expected} for {module.name}",
            )
