"""Rule driver: file discovery, module naming, pragmas, rule dispatch."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set


@dataclass(frozen=True, order=True)
class Violation:
    """One finding.  Ordering groups output by file, then line."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class SourceModule:
    """A parsed source file plus the metadata rules need."""

    path: Path
    name: Optional[str]  # dotted module name, if the file sits in a package
    tree: ast.Module
    lines: Sequence[str]
    _line_disables: Dict[int, Optional[FrozenSet[str]]] = field(default_factory=dict)
    _file_disables: Optional[FrozenSet[str]] = None  # None=nothing, empty=all

    @classmethod
    def load(cls, path: Path) -> "SourceModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        mod = cls(path=path, name=module_name_for(path), tree=tree, lines=source.splitlines())
        mod._scan_pragmas()
        return mod

    def _scan_pragmas(self) -> None:
        for idx, text in enumerate(self.lines, start=1):
            marker = "# iwarplint:"
            pos = text.find(marker)
            if pos < 0:
                continue
            directive = text[pos + len(marker) :].strip()
            if directive.startswith("disable-file"):
                rules = _parse_rule_list(directive[len("disable-file") :])
                if idx <= 10:
                    self._file_disables = rules
            elif directive.startswith("disable"):
                self._line_disables[idx] = _parse_rule_list(directive[len("disable") :])

    def suppressed(self, line: int, rule: str) -> bool:
        if self._file_disables is not None and (
            not self._file_disables or rule in self._file_disables
        ):
            return True
        rules = self._line_disables.get(line, None)
        if rules is None:
            return False
        return not rules or rule in rules

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def _parse_rule_list(text: str) -> FrozenSet[str]:
    """Parse ``=IW101,IW202`` into rule codes; empty set means "all"."""
    text = text.strip()
    if not text.startswith("="):
        return frozenset()
    return frozenset(code.strip() for code in text[1:].split(",") if code.strip())


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name, walking up while ``__init__.py`` exists."""
    path = path.resolve()
    if path.name == "__init__.py":
        parts: List[str] = []
        pkg_dir = path.parent
    elif path.suffix == ".py":
        parts = [path.stem]
        pkg_dir = path.parent
    else:
        return None
    while (pkg_dir / "__init__.py").exists():
        parts.insert(0, pkg_dir.name)
        pkg_dir = pkg_dir.parent
    return ".".join(parts) if parts else None


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            if "__pycache__" in resolved.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..") for part in resolved.parts[1:]):
                continue
            seen.add(resolved)
            yield path


def all_rules() -> Dict[str, str]:
    """Rule code -> one-line description, across every rule family."""
    from iwarplint.rules import FAMILIES

    table: Dict[str, str] = {"IW001": "file does not parse (syntax error)"}
    for family in FAMILIES:
        table.update(family.RULES)
    return table


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths``; return sorted violations.

    ``select`` optionally restricts output to the given rule codes (or
    code prefixes, e.g. ``IW2`` for the whole FSM family).
    """
    from iwarplint.rules import FAMILIES

    selected = tuple(select) if select else None

    def wanted(rule: str) -> bool:
        if selected is None:
            return True
        return any(rule == code or rule.startswith(code) for code in selected)

    findings: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            module = SourceModule.load(path)
        except SyntaxError as exc:
            if wanted("IW001"):
                findings.append(
                    Violation(
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule="IW001",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
            continue
        for family in FAMILIES:
            for violation in family.check(module):
                if not wanted(violation.rule):
                    continue
                if module.suppressed(violation.line, violation.rule):
                    continue
                findings.append(violation)
    return sorted(findings)
