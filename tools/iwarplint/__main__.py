"""``python -m iwarplint`` (with ``tools/`` on ``sys.path``)."""

import sys

from iwarplint.cli import main

sys.exit(main())
