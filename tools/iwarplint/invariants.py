"""Declarative invariants checked by iwarplint.

This module is pure data: the layer order and import allowlist, the
QP/connection state-transition tables, the wire-format manifest, and the
determinism ban lists.  The rule implementations in
:mod:`iwarplint.rules` interpret it; changing an invariant is a one-line
edit here (plus, for FSM tables, the mirrored table in the stack module
it describes — drift between the two is itself a violation, IW204).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

# ---------------------------------------------------------------------------
# Layering (IW1xx)
# ---------------------------------------------------------------------------
#
# Stack order from the paper (Fig. 1 / section IV): applications and the
# socket interface sit on verbs, verbs on RDMAP, RDMAP on DDP, DDP on MPA
# (stream mode only), MPA on the transport, transports on the simulated
# network.  ``memory`` and ``models`` are support libraries usable from
# any layer.  Lower rank = higher in the stack.

LAYER_RANK: Dict[str, int] = {
    "apps": 0,
    "bench": 0,
    "socketif": 1,
    "verbs": 2,
    "rdmap": 3,
    "ddp": 4,
    "mpa": 5,
    "transport": 6,
    "simnet": 7,
}

SUPPORT_LAYERS: FrozenSet[str] = frozenset({"memory", "models", "obs"})

# Longest-prefix match from dotted module name to layer.
LAYER_OF_PREFIX: Sequence[Tuple[str, str]] = (
    ("repro.apps", "apps"),
    ("repro.bench", "bench"),
    ("repro.core.socketif", "socketif"),
    ("repro.core.verbs", "verbs"),
    ("repro.core.rdmap", "rdmap"),
    ("repro.core.ddp", "ddp"),
    ("repro.core.mpa", "mpa"),
    ("repro.transport", "transport"),
    ("repro.simnet", "simnet"),
    ("repro.memory", "memory"),
    ("repro.models", "models"),
    ("repro.obs", "obs"),
)

# Sanctioned non-adjacent edges: (source layer, target layer) -> allowed
# target-module prefixes, or None for "any module in that layer".
# Anything not adjacent-downward, same-layer, support-target, or listed
# here is a violation.
SANCTIONED_EDGES: Dict[Tuple[str, str], Optional[FrozenSet[str]]] = {
    # Harness/demo layers drive the whole stack directly.
    ("apps", "verbs"): None,
    ("apps", "transport"): frozenset({"repro.transport.stacks"}),
    ("apps", "simnet"): None,
    ("bench", "verbs"): None,
    ("bench", "transport"): frozenset({"repro.transport.stacks"}),
    ("bench", "simnet"): None,
    # The socket interface builds on verbs but also needs the assembled
    # NetStack facade and the event loop.
    ("socketif", "transport"): frozenset({"repro.transport.stacks"}),
    ("socketif", "simnet"): frozenset({"repro.simnet.engine"}),
    # Datagram iWARP (paper section IV.B): UD QPs frame DDP segments
    # straight onto UDP/RUDP, bypassing MPA.  This is THE sanctioned
    # layer skip the paper is about; verbs also owns connection setup,
    # so it touches MPA and DDP directly.
    ("verbs", "ddp"): None,
    ("verbs", "mpa"): None,
    ("verbs", "transport"): None,
    ("verbs", "simnet"): frozenset({"repro.simnet.engine"}),
    # Protocol engines may use the event-loop primitives, nothing else
    # from simnet (hosts/NICs/topology belong to the harness).
    ("rdmap", "simnet"): frozenset({"repro.simnet.engine"}),
    ("mpa", "simnet"): frozenset({"repro.simnet.engine"}),
    # RDMAP completes verbs-level work requests; it may import the WR/WC
    # vocabulary (plain dataclasses), never QP/CQ machinery.
    ("rdmap", "verbs"): frozenset({"repro.core.verbs.wr"}),
}


def layer_of(module: str) -> Optional[str]:
    """Layer for a dotted module name, or None if unlayered."""
    best: Optional[str] = None
    best_len = -1
    for prefix, layer in LAYER_OF_PREFIX:
        if (module == prefix or module.startswith(prefix + ".")) and len(prefix) > best_len:
            best, best_len = layer, len(prefix)
    return best


# ---------------------------------------------------------------------------
# FSM conformance (IW2xx)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FsmSpec:
    """One guarded state machine: where it lives and what it permits."""

    module: str  # dotted module owning the FSM
    attr: str  # instance attribute holding the state ("state")
    helper: str  # the validated setter every write must go through
    table_name: str  # module-level transition-table constant (IW204)
    initial: FrozenSet[str]  # states assignable directly in __init__
    any_targets: FrozenSet[str]  # states reachable from anywhere (error/teardown)
    table: Mapping[str, FrozenSet[str]] = field(default_factory=dict)

    @property
    def states(self) -> FrozenSet[str]:
        everything = set(self.table) | self.any_targets | self.initial
        for targets in self.table.values():
            everything |= targets
        return frozenset(everything)


def _t(table: Mapping[str, Sequence[str]]) -> Dict[str, FrozenSet[str]]:
    return {src: frozenset(dsts) for src, dsts in table.items()}


# Verbs QP states (modify_qp semantics; the paper keeps standard verbs
# so datagram QPs honour the same ladder, section IV.B item 1).
QP_TABLE = _t(
    {
        "RESET": ("INIT", "RTS", "ERROR"),
        "INIT": ("RTR", "RESET", "ERROR"),
        "RTR": ("RTS", "RESET", "ERROR"),
        "RTS": ("SQD", "RESET", "ERROR"),
        "SQD": ("RTS", "RESET", "ERROR"),
        "ERROR": ("RESET",),
    }
)

# TCP connection FSM (RFC 793 subset implemented by transport.tcp).
TCP_TABLE = _t(
    {
        "CLOSED": ("SYN_SENT", "SYN_RCVD"),
        "SYN_SENT": ("ESTABLISHED", "CLOSED"),
        "SYN_RCVD": ("ESTABLISHED", "FIN_WAIT_1", "CLOSED"),
        "ESTABLISHED": ("FIN_WAIT_1", "CLOSE_WAIT", "CLOSED"),
        "FIN_WAIT_1": ("FIN_WAIT_2", "CLOSING", "TIME_WAIT", "CLOSED"),
        "FIN_WAIT_2": ("TIME_WAIT", "CLOSED"),
        "CLOSE_WAIT": ("LAST_ACK", "CLOSED"),
        "LAST_ACK": ("CLOSED",),
        "CLOSING": ("TIME_WAIT", "CLOSED"),
        "TIME_WAIT": ("CLOSED",),
    }
)

# MPA connection lifecycle (RFC 5044 startup then full operation).
MPA_TABLE = _t(
    {
        "NEGOTIATING": ("OPERATIONAL", "FAILED"),
        "OPERATIONAL": ("FAILED",),
        "FAILED": (),
    }
)

# SCTP association lifecycle (RFC 4960 four-way handshake subset; a
# passive endpoint goes CLOSED -> ESTABLISHED on a valid COOKIE ECHO).
SCTP_TABLE = _t(
    {
        "CLOSED": ("COOKIE_WAIT", "ESTABLISHED"),
        "COOKIE_WAIT": ("COOKIE_ECHOED", "ESTABLISHED", "CLOSED"),
        "COOKIE_ECHOED": ("ESTABLISHED", "CLOSED"),
        "ESTABLISHED": ("SHUTDOWN_SENT", "CLOSED"),
        "SHUTDOWN_SENT": ("CLOSED",),
    }
)

FSM_SPECS: Sequence[FsmSpec] = (
    FsmSpec(
        module="repro.core.verbs.qp",
        attr="state",
        helper="_set_state",
        table_name="QP_TRANSITIONS",
        initial=frozenset({"RESET"}),
        any_targets=frozenset({"ERROR"}),
        table=QP_TABLE,
    ),
    FsmSpec(
        module="repro.transport.tcp.connection",
        attr="state",
        helper="_set_state",
        table_name="TCP_TRANSITIONS",
        initial=frozenset({"CLOSED"}),
        any_targets=frozenset({"CLOSED"}),
        table=TCP_TABLE,
    ),
    FsmSpec(
        module="repro.core.mpa.connection",
        attr="state",
        helper="_set_state",
        table_name="MPA_TRANSITIONS",
        initial=frozenset({"NEGOTIATING"}),
        any_targets=frozenset({"FAILED"}),
        table=MPA_TABLE,
    ),
    FsmSpec(
        module="repro.transport.sctp",
        attr="state",
        helper="_set_state",
        table_name="SCTP_TRANSITIONS",
        initial=frozenset({"CLOSED"}),
        any_targets=frozenset({"CLOSED"}),
        table=SCTP_TABLE,
    ),
)


# ---------------------------------------------------------------------------
# Wire format (IW3xx)
# ---------------------------------------------------------------------------
#
# Every struct format string appearing in a watched module must be listed
# here with the byte length the header requires (RFC 5040/5041/5044 plus
# the paper's UD extensions).  ``struct.calcsize`` of the format must
# equal the declared size, or the manifest has drifted from the code.

WIRE_WATCHED_PREFIXES: Sequence[str] = ("repro.core", "repro.transport")

WIRE_FORMATS: Dict[str, Dict[str, int]] = {
    "repro.core.ddp.headers": {
        "!BB": 2,  # DDP control: flags/opcode (RFC 5041 hdr head)
        "!IQ": 12,  # tagged: STag + TO
        "!III": 12,  # untagged: QN, MSN, MO
        "!QQQ": 24,  # UD extension: msg id, length, offset (paper IV.B)
        "!IQIIQ": 28,  # RDMA Read Request supplement
    },
    "repro.core.mpa.crc": {
        "!I": 4,  # CRC32c trailer (RFC 5044)
    },
    "repro.core.mpa.fpdu": {
        "!H": 2,  # MPA ULPDU length prefix
        "!I": 4,  # CRC trailer re-read at the receiver
    },
    "repro.core.mpa.connection": {
        "!HBB4x": 8,  # private negotiation frame: magic, type, flags, pad
    },
    "repro.core.mpa.markers": {
        "!HH": 4,  # marker: reserved + FPDU back-pointer
    },
    "repro.core.socketif.interface": {
        "!BIQ": 13,  # ring advertisement reply: type, STag, ring size
        "!B": 1,  # message-type discriminator
    },
    "repro.transport.rudp": {
        "!BQ": 9,  # RUDP header: kind + 64-bit sequence number
        "!Q": 8,  # ACK echo: seq whose arrival triggered the ACK
        "!QQ": 16,  # SACK range: inclusive [start, end]
        "!BQQ": 17,  # SACK-less ACK fast path: header + echo in one pack
    },
}


# ---------------------------------------------------------------------------
# Determinism (IW4xx)
# ---------------------------------------------------------------------------

DETERMINISM_SCOPES: Sequence[str] = (
    "repro.simnet", "repro.transport", "repro.core", "repro.obs",
)

# Wall-clock and environment entropy: (module, function) pairs.
WALL_CLOCK_CALLS: FrozenSet[Tuple[str, str]] = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "urandom"),
        ("os", "getrandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
    }
)

# Modules whose every attribute use is entropy (no seeded mode exists).
ENTROPY_MODULES: FrozenSet[str] = frozenset({"secrets"})

# The one sanctioned randomness pattern: an explicitly seeded
# random.Random(seed) instance.  Everything else on the module-level
# random API shares hidden global state and is banned.
SEEDED_RNG_CLASS = "Random"

# Builtins through which iterating a set is order-insensitive.
ORDER_INSENSITIVE_WRAPPERS: FrozenSet[str] = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)


# ---------------------------------------------------------------------------
# Metric naming (IW5xx)
# ---------------------------------------------------------------------------
#
# Mirrors repro.obs.metrics: every metric name handed to a registry
# instrument factory must follow ``layer.component.name`` — at least
# three lowercase dot-separated segments, first segment a known layer.
# The runtime raises RegistryError on violations; IW501 catches the
# literal statically, before any test has to execute the call site.

METRIC_NAME_PATTERN = r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$"

METRIC_LAYERS: FrozenSet[str] = frozenset(
    {
        "apps", "bench", "socketif", "verbs", "rdmap", "ddp", "mpa",
        "transport", "simnet", "memory", "models", "obs",
    }
)

#: Registry factory method names whose first positional argument is a
#: metric name.
METRIC_FACTORIES: FrozenSet[str] = frozenset({"counter", "gauge", "histogram"})
