"""iwarplint — protocol-invariant static analysis for the datagram-iWARP repo.

A small AST-based checker with a pluggable rule driver.  It enforces the
invariants that ordinary linters cannot see but that the reproduction of
"RDMA Capable iWARP over Datagrams" (IPDPS 2011) depends on:

* **Layering** (IW1xx) — the iWARP stack order from the paper
  (apps/socketif -> verbs -> rdmap -> ddp -> mpa -> transport -> simnet)
  with a declarative allowlist for the sanctioned datagram MPA-bypass.
* **FSM conformance** (IW2xx) — every write to a QP/connection ``state``
  attribute goes through a validated ``_set_state`` helper, and every
  statically-inferable transition is legal per the declared tables.
* **Wire format** (IW3xx) — every ``struct`` format string in the
  protocol modules matches the declared header manifest byte-for-byte.
* **Determinism** (IW4xx) — no wall-clock reads, unseeded randomness, or
  set-ordering-dependent iteration inside the simulated stack, so that
  seeded runs (including PR 1's chaos tests) stay replayable.

Usage::

    python -m iwarplint src/            # from the repo root (via shim)
    PYTHONPATH=tools python -m iwarplint src/

Suppressions: append ``# iwarplint: disable=IW101`` to a line, or place
``# iwarplint: disable-file=IW101`` in the first ten lines of a file.
"""

from iwarplint.driver import Violation, lint_paths  # noqa: F401

__version__ = "0.1.0"
__all__ = ["Violation", "lint_paths", "__version__"]
