"""Command-line entry point: ``python -m iwarplint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 configuration or usage
errors (missing path, unknown ``--select`` code).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from iwarplint.driver import all_rules, lint_paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="iwarplint",
        description="Protocol-invariant static analysis for the datagram-iWARP stack.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes or prefixes to report (e.g. IW2,IW403)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule code and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, description in sorted(all_rules().items()):
            print(f"{code}  {description}")
        return 0

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        known = all_rules()
        unknown = [
            code
            for code in select
            if not any(rule.startswith(code) for rule in known)
        ]
        if unknown:
            print(
                f"iwarplint: unknown rule code(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"iwarplint: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    findings = lint_paths(paths, select=select)
    files = len({v.path for v in findings})
    if args.format == "json":
        payload = {
            "tool": "iwarplint",
            "count": len(findings),
            "files": files,
            "violations": [
                {
                    "path": str(v.path),
                    "line": v.line,
                    "col": v.col,
                    "rule": v.rule,
                    "message": v.message,
                }
                for v in findings
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for violation in findings:
            print(violation.render())
    if findings:
        print(f"iwarplint: {len(findings)} violation(s) in {files} file(s)", file=sys.stderr)
        return 1
    print("iwarplint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
