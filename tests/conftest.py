"""Shared fixtures: testbeds, stacks, devices, verbs endpoints.

When ``IWARP_FSM_COVERAGE`` names an output path, the whole session
runs under the iwarpcheck transition-coverage sanitizer: an observer on
``repro.core.fsm`` records every state transition the suite takes, and
the recording is written at session end for ``python -m iwarpcheck
coverage`` to gate (``make verify-fsm`` drives the pipeline).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.core.verbs import RnicDevice
from repro.models.costs import zero_cost_model
from repro.simnet.topology import build_testbed
from repro.transport.stacks import install_stacks

_COVERAGE_PATH = os.environ.get("IWARP_FSM_COVERAGE")
_RECORDER = None

#: When set (with IWARP_OBS=1), every registry the session creates is
#: tracked and their merged samples are written here at session end —
#: the CI metrics-snapshot artifact (``python -m repro.obs summarize``).
_OBS_DUMP = os.environ.get("IWARP_OBS_DUMP")


def pytest_configure(config):
    global _RECORDER
    if not _COVERAGE_PATH:
        return
    tools_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "tools")
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    from iwarpcheck.sanitizer import TransitionRecorder

    _RECORDER = TransitionRecorder()
    _RECORDER.install()


def pytest_sessionfinish(session, exitstatus):
    if _OBS_DUMP:
        from repro.obs import dump_tracked

        dump_tracked(_OBS_DUMP)
    if _RECORDER is None:
        return
    _RECORDER.uninstall()
    _RECORDER.write(_COVERAGE_PATH)


@pytest.fixture
def testbed():
    """Two hosts through a switch, paper cost model."""
    return build_testbed(2)


@pytest.fixture
def zero_testbed():
    """Two hosts with all CPU costs zeroed (pure protocol tests)."""
    return build_testbed(2, costs=zero_cost_model())


@pytest.fixture
def stacks(testbed):
    return install_stacks(testbed)


@pytest.fixture
def zero_stacks(zero_testbed):
    return install_stacks(zero_testbed)


@pytest.fixture
def devices(testbed, stacks):
    return [RnicDevice(n) for n in stacks]


@pytest.fixture
def zero_devices(zero_testbed, zero_stacks):
    return [RnicDevice(n) for n in zero_stacks]


def run(sim, fut, limit=300_000_000_000):
    """Run the simulation until ``fut`` resolves (5-minute sim cap)."""
    return sim.run_until(fut, limit=limit)


@pytest.fixture
def runner():
    return run
