"""Shared fixtures: testbeds, stacks, devices, verbs endpoints."""

from __future__ import annotations

import pytest

from repro.core.verbs import RnicDevice
from repro.models.costs import zero_cost_model
from repro.simnet.topology import build_testbed
from repro.transport.stacks import install_stacks


@pytest.fixture
def testbed():
    """Two hosts through a switch, paper cost model."""
    return build_testbed(2)


@pytest.fixture
def zero_testbed():
    """Two hosts with all CPU costs zeroed (pure protocol tests)."""
    return build_testbed(2, costs=zero_cost_model())


@pytest.fixture
def stacks(testbed):
    return install_stacks(testbed)


@pytest.fixture
def zero_stacks(zero_testbed):
    return install_stacks(zero_testbed)


@pytest.fixture
def devices(testbed, stacks):
    return [RnicDevice(n) for n in stacks]


@pytest.fixture
def zero_devices(zero_testbed, zero_stacks):
    return [RnicDevice(n) for n in zero_stacks]


def run(sim, fut, limit=300_000_000_000):
    """Run the simulation until ``fut`` resolves (5-minute sim cap)."""
    return sim.run_until(fut, limit=limit)


@pytest.fixture
def runner():
    return run
