"""Chaos harness: RD-path guarantees under randomized composed faults.

Each run composes loss x reorder x duplication x link flap (all seeded,
bit-for-bit reproducible) at the NIC egress and asserts the properties
the RD mode exists to provide: exactly-once in-order delivery, bounded
completion latency, correct Write-Record validity maps, and FLUSH_ERR
surfacing (never silent loss) when a peer is genuinely gone.
"""

import pytest

from repro.bench.harness import VerbsEndpointPair
from repro.core.verbs import QpError, RTS, WcStatus, WrOpcode
from repro.models.costs import zero_cost_model
from repro.obs import spans
from repro.simnet.engine import MS, SEC, US
from repro.simnet.faults import seeded_chaos
from repro.simnet.loss import BernoulliLoss
from repro.simnet.topology import build_testbed
from repro.simnet.trace import Tracer
from repro.transport.ip import IpStack
from repro.transport.rudp import RudpSocket
from repro.transport.udp import UdpStack


def _host_series(registry, name, host):
    """Sum a counter's samples across ports for one host label."""
    return sum(
        s.value for s in registry.collect()
        if s.name == name and dict(s.labels).get("host") == host
    )


def _rudp(testbed, host_index, port=6000, **kwargs):
    host = testbed.hosts[host_index]
    udp = UdpStack(host, IpStack(host))
    return RudpSocket(udp.socket(port), **kwargs)


# ---------------------------------------------------------------------------
# Transport level: the RD lower layer under full chaos
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_rudp_exactly_once_in_order_under_chaos(seed):
    # Metrics on: the "faults actually bit" asserts below read the
    # repair counters off the registry instead of poking the endpoints.
    tb = build_testbed(2, costs=zero_cost_model(), metrics=True)
    tb.hosts[0].wr_tracer = Tracer(tb.sim)
    a = _rudp(tb, 0, rto_ns=1 * MS)
    b = _rudp(tb, 1)
    # Data path: <=5% loss x reorder x duplication x one 5 ms link flap.
    tb.set_egress_faults(0, seeded_chaos(
        seed,
        loss=BernoulliLoss(0.05, seed=seed),
        reorder_prob=0.10,
        reorder_hold_ns=300 * US,
        dup_prob=0.05,
        flap_windows=[(10 * MS, 15 * MS)],
    ))
    # ACK path takes independent loss too.
    tb.set_egress_loss(1, BernoulliLoss(0.03, seed=seed + 100))

    msgs = [f"chaos-{seed}-{i}".encode() for i in range(150)]
    got = []
    b.on_message = lambda d, src: got.append((d, tb.sim.now))

    def sender():
        # Pace sends so traffic straddles the flap window.
        for m in msgs:
            a.sendto(m, (1, 6000))
            yield 200 * US

    tb.sim.process(sender())
    tb.sim.run(until=30 * SEC)

    assert [d for d, _ in got] == msgs  # exactly once, in order
    # Bounded completion: recovery after the flap is RTO-driven, so the
    # whole run must finish far inside the backoff cap.
    assert got[-1][1] < 1 * SEC
    # The faults actually bit (otherwise this test proves nothing) —
    # observed through the metrics registry and the WR-span stream, the
    # same surfaces an operator would read.
    reg = tb.registry
    assert _host_series(reg, "transport.rudp.retransmissions", "host0") >= 1
    assert _host_series(reg, "transport.rudp.duplicates_dropped", "host1") >= 1
    rtx_spans = list(spans(tb.hosts[0].wr_tracer, stage="retransmit"))
    assert len(rtx_spans) >= 1
    assert all(r.fields["proto"] == "rudp" for r in rtx_spans)


def test_adaptive_rto_outperforms_fixed_under_loss():
    """The acceptance check: with the same 5% Bernoulli loss and a 5 ms
    initial RTO, the adaptive estimator (fast retransmit + RTO collapse
    to LAN scale) drains the workload at least twice as fast as the old
    fixed-RTO design."""

    def drain_ns(adaptive):
        tb = build_testbed(2, costs=zero_cost_model())
        a = _rudp(tb, 0, rto_ns=5 * MS, adaptive=adaptive)
        b = _rudp(tb, 1)
        tb.set_egress_loss(0, BernoulliLoss(0.05, seed=11))
        done = []
        b.on_message = lambda d, src: done.append(tb.sim.now)
        for i in range(200):
            a.sendto(f"m{i}".encode(), (1, 6000))
        tb.sim.run(until=60 * SEC)
        assert len(done) == 200  # both modes still deliver everything
        return done[-1]

    t_adaptive = drain_ns(adaptive=True)
    t_fixed = drain_ns(adaptive=False)
    assert t_adaptive < t_fixed / 2


# ---------------------------------------------------------------------------
# Verbs level: RD QPs under chaos
# ---------------------------------------------------------------------------


def test_rd_sendrecv_delivers_exactly_once_under_chaos():
    pair = VerbsEndpointPair.build(
        "rd_sendrecv", costs=zero_cost_model(), rd_opts={"rto_ns": 1 * MS},
        metrics=True,
    )
    pair.testbed.set_egress_faults(0, seeded_chaos(
        5,
        loss=BernoulliLoss(0.03, seed=5),
        reorder_prob=0.08,
        reorder_hold_ns=200 * US,
        dup_prob=0.05,
    ))
    out = pair.bandwidth_mbs(16384, messages=40, window=8)
    assert out["received_msgs"] == 40
    assert out["partial_msgs"] == 0
    # Chaos engaged the repair path — read off the registry.
    assert pair.repair_stats()["retransmissions"] >= 1


def test_write_record_validity_maps_stay_correct_under_chaos():
    """Unreliable Write-Record under chaos: whatever arrives, every byte
    range a completion declares valid holds exactly the sender's bytes."""
    pair = VerbsEndpointPair.build("ud_write_record", costs=zero_cost_model())
    pair.testbed.set_egress_faults(0, seeded_chaos(
        9,
        loss=BernoulliLoss(0.08, seed=9),
        reorder_prob=0.10,
        reorder_hold_ns=200 * US,
        dup_prob=0.10,
    ))
    size = 256 * 1024
    sent_payload = bytes(pair.send_mrs[0].view(0, size))
    completions = []

    def receiver():
        empty = 0
        while True:
            wcs = yield pair.cqs[1].poll_wait(timeout_ns=50 * MS)
            if not wcs:
                empty += 1
                if empty >= 4:
                    return
                continue
            empty = 0
            completions.extend(wcs)

    def sender():
        for _ in range(6):
            pair._post_message(0, size)
            yield 2 * MS

    pair.sim.process(sender())
    rx = pair.sim.process(receiver()).finished
    pair.sim.run_until(rx, limit=120 * SEC)

    checked = 0
    for wc in completions:
        if wc.opcode is not WrOpcode.RDMA_WRITE_RECORD or wc.validity is None:
            continue
        for off, length in wc.validity.ranges():
            assert bytes(pair.sinks[1].view(off, length)) == \
                sent_payload[off:off + length]
            checked += 1
    assert checked >= 1  # at least one validated range, or the test is vacuous


def test_peer_failure_flushes_queued_sends_and_reports():
    """Total blackout toward the peer: every posted WR must come back as
    a FLUSH_ERR completion (never silently vanish), the QP must stay
    usable toward other peers (report-don't-kill, SIV.B), and further
    sends to the dead peer must be refused."""
    pair = VerbsEndpointPair.build(
        "rd_sendrecv",
        costs=zero_cost_model(),
        rd_opts={"rto_ns": 500 * US, "max_retries": 3},
    )
    pair.testbed.set_egress_loss(0, BernoulliLoss(1.0, seed=1))  # blackout
    for _ in range(10):
        pair._post_message(0, 8192, signaled=True)

    flushed = []

    def drain():
        empty = 0
        while len(flushed) < 10:
            wcs = yield pair.cqs[0].poll_wait(timeout_ns=50 * MS)
            if not wcs:
                empty += 1
                if empty >= 10:
                    return
                continue
            empty = 0
            flushed.extend(wcs)

    done = pair.sim.process(drain()).finished
    pair.sim.run_until(done, limit=60 * SEC)

    assert len(flushed) == 10
    assert all(wc.status is WcStatus.FLUSHED for wc in flushed)
    qp = pair.qps[0]
    assert qp.rd_flushed_wrs == 10
    assert qp.failed_peers == {pair.qps[1].address}
    assert qp.state == RTS  # datagram QPs report errors, they don't die
    assert qp.terminate_reason  # ...but the error is visible
    with pytest.raises(QpError):
        pair._post_message(0, 8192)
