"""TCP tests: handshake, transfer, ordering, retransmission, teardown."""

import pytest

from repro.simnet.engine import MS, SEC
from repro.simnet.loss import BernoulliLoss, ExplicitLoss
from repro.transport.stacks import install_stacks
from repro.transport.tcp.connection import (
    CLOSE_WAIT, CLOSED, ESTABLISHED, FIN_WAIT_2, TIME_WAIT,
)
from repro.transport.tcp.congestion import RenoCongestion
from repro.transport.tcp.rto import RtoEstimator
from repro.transport.tcp.segment import ACK, FIN, SYN, TcpSegment, flag_names


@pytest.fixture
def tcp_pair(zero_testbed):
    """(testbed, client_stack, server_stack) with zero CPU costs."""
    nets = install_stacks(zero_testbed)
    return zero_testbed, nets[0], nets[1]


def _connect(tb, cstack, sstack, port=80):
    listener = sstack.tcp.listen(port)
    accepted = listener.accept_future()
    cli = cstack.tcp.connect((1, port))
    tb.sim.run_until(cli.established, limit=5 * SEC)
    tb.sim.run_until(accepted, limit=5 * SEC)
    return cli, accepted.value


class TestSegment:
    def test_seq_span_counts_syn_fin(self):
        assert TcpSegment(1, 2, 0, 0, SYN, 0).seq_span == 1
        assert TcpSegment(1, 2, 0, 0, FIN | ACK, 0).seq_span == 1
        assert TcpSegment(1, 2, 0, 0, ACK, 0, b"abc").seq_span == 3
        assert TcpSegment(1, 2, 10, 0, SYN, 0, b"ab").end_seq == 13

    def test_flag_names(self):
        assert flag_names(SYN | ACK) == "SYN|ACK"
        assert flag_names(0) == "-"


class TestRtoEstimator:
    def test_first_sample_initializes(self):
        rto = RtoEstimator(min_rto_ns=1000)
        rto.sample(10_000)
        assert rto.srtt == 10_000
        assert rto.rto_ns >= 1000

    def test_smoothing_converges(self):
        rto = RtoEstimator(min_rto_ns=1)
        for _ in range(100):
            rto.sample(50_000)
        assert abs(rto.srtt - 50_000) < 1
        assert rto.rto_ns >= 50_000

    def test_backoff_doubles_and_caps(self):
        rto = RtoEstimator(min_rto_ns=1_000_000, max_rto_ns=10_000_000)
        rto.sample(1_000_000)
        base = rto.rto_ns
        rto.on_timeout()
        assert rto.rto_ns == min(base * 2, 10_000_000)
        for _ in range(20):
            rto.on_timeout()
        assert rto.rto_ns == 10_000_000

    def test_new_sample_resets_backoff(self):
        rto = RtoEstimator(min_rto_ns=1_000_000)
        rto.sample(1_000_000)
        rto.on_timeout()
        rto.sample(1_000_000)
        assert rto.rto_ns < 4_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            RtoEstimator(min_rto_ns=0)
        rto = RtoEstimator()
        with pytest.raises(ValueError):
            rto.sample(-1)


class TestReno:
    def test_initial_window(self):
        cong = RenoCongestion(1460)
        assert cong.cwnd == 14_600

    def test_slow_start_growth(self):
        cong = RenoCongestion(1000)
        start = cong.cwnd
        cong.on_ack(1000, snd_una=1000)
        assert cong.cwnd == start + 1000

    def test_congestion_avoidance_after_ssthresh(self):
        cong = RenoCongestion(1000)
        cong.ssthresh = cong.cwnd  # leave slow start
        before = cong.cwnd
        cong.on_ack(1000, snd_una=1000)
        assert before < cong.cwnd <= before + 1000
        assert cong.cwnd - before == max(1, 1000 * 1000 // before)

    def test_fast_retransmit_halves_window(self):
        cong = RenoCongestion(1000)
        cong.cwnd = 64_000
        assert cong.on_dup_acks(flight_size=64_000, snd_nxt=100_000)
        assert cong.ssthresh == 32_000
        assert cong.cwnd == 32_000 + 3_000
        assert cong.in_recovery
        # second event while recovering is ignored
        assert not cong.on_dup_acks(flight_size=64_000, snd_nxt=100_000)

    def test_recovery_exit_deflates(self):
        cong = RenoCongestion(1000)
        cong.cwnd = 64_000
        cong.on_dup_acks(flight_size=64_000, snd_nxt=100_000)
        cong.on_ack(64_000, snd_una=100_001)
        assert not cong.in_recovery
        assert cong.cwnd == cong.ssthresh

    def test_timeout_collapses_to_one_mss(self):
        cong = RenoCongestion(1000)
        cong.cwnd = 64_000
        cong.on_timeout(flight_size=64_000)
        assert cong.cwnd == 1000
        assert cong.ssthresh == 32_000

    def test_send_allowance(self):
        cong = RenoCongestion(1000)
        cong.cwnd = 10_000
        assert cong.send_allowance(flight_size=4_000, peer_window=50_000) == 6_000
        assert cong.send_allowance(flight_size=4_000, peer_window=5_000) == 1_000
        assert cong.send_allowance(flight_size=20_000, peer_window=50_000) == 0


class TestHandshake:
    def test_three_way_handshake(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        assert cli.conn.state == ESTABLISHED
        assert srv.conn.state == ESTABLISHED

    def test_connect_to_closed_port_stays_unconnected(self, tcp_pair):
        tb, c, s = tcp_pair
        cli = c.tcp.connect((1, 9999))
        tb.sim.run(until=10 * SEC)
        assert not cli.connected

    def test_duplicate_listen_rejected(self, tcp_pair):
        _, c, s = tcp_pair
        s.tcp.listen(80)
        with pytest.raises(Exception):
            s.tcp.listen(80)

    def test_syn_retransmission_on_loss(self, tcp_pair):
        tb, c, s = tcp_pair
        tb.set_egress_loss(0, ExplicitLoss([1]))  # drop the first SYN
        s.tcp.listen(80)
        cli = c.tcp.connect((1, 80))
        tb.sim.run_until(cli.established, limit=10 * SEC)
        assert cli.connected
        assert cli.conn.retransmissions >= 1

    def test_connection_count_tracked(self, tcp_pair):
        tb, c, s = tcp_pair
        _connect(tb, c, s)
        assert c.tcp.open_connections() == 1
        assert s.tcp.open_connections() == 1


class TestTransfer:
    def test_stream_bytes_arrive_in_order(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got = []
        srv.on_data = got.append
        cli.send(b"hello ")
        cli.send(b"world")
        tb.sim.run(until=tb.sim.now + 100 * MS)
        assert b"".join(got) == b"hello world"

    def test_large_transfer_integrity(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        payload = bytes(range(256)) * 2048  # 512 KB
        got = []
        srv.on_data = got.append
        cli.send(payload)
        tb.sim.run(until=tb.sim.now + 2 * SEC)
        assert b"".join(got) == payload

    def test_bidirectional_transfer(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got_s, got_c = [], []
        srv.on_data = got_s.append
        cli.on_data = got_c.append
        cli.send(b"ping" * 1000)
        srv.send(b"pong" * 1000)
        tb.sim.run(until=tb.sim.now + 1 * SEC)
        assert b"".join(got_s) == b"ping" * 1000
        assert b"".join(got_c) == b"pong" * 1000

    def test_transfer_survives_random_loss(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        tb.set_egress_loss(0, BernoulliLoss(0.02, seed=9))
        payload = bytes((i * 7) & 0xFF for i in range(200_000))
        got = []
        srv.on_data = got.append
        cli.send(payload)
        tb.sim.run(until=tb.sim.now + 60 * SEC)
        assert b"".join(got) == payload
        assert cli.conn.retransmissions > 0

    def test_fast_retransmit_triggers_on_single_drop(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        # Drop one mid-stream data segment (after handshake frames).
        tb.set_egress_loss(0, ExplicitLoss([5]))
        got = []
        srv.on_data = got.append
        payload = b"z" * 100_000
        cli.send(payload)
        tb.sim.run(until=tb.sim.now + 30 * SEC)
        assert b"".join(got) == payload
        assert cli.conn.cong.fast_retransmits >= 1

    def test_rto_recovery_when_tail_lost(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got = []
        srv.on_data = got.append
        # Small message, its single segment dropped: only RTO can recover.
        tb.set_egress_loss(0, ExplicitLoss([1]))
        cli.send(b"only")
        tb.sim.run(until=tb.sim.now + 30 * SEC)
        assert b"".join(got) == b"only"
        assert cli.conn.cong.timeouts >= 1

    def test_recv_future_stream_interface(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        results = []

        def reader():
            data = yield srv.recv_future()
            results.append(data)

        tb.sim.process(reader())
        cli.send(b"stream-data")
        tb.sim.run(until=tb.sim.now + 100 * MS)
        assert results and results[0].startswith(b"stream")

    def test_send_on_unconnected_raises(self, tcp_pair):
        tb, c, s = tcp_pair
        cli = c.tcp.connect((1, 9998))
        # The syscall is queued; sending data before ESTABLISHED is queued
        # too but the connection never opens, so nothing is delivered and
        # the state machine must not crash.
        cli.send(b"early")
        tb.sim.run(until=5 * SEC)
        assert not cli.connected

    def test_sequence_tracking_across_many_sends(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        chunks = [bytes([i]) * (i + 1) for i in range(50)]
        got = []
        srv.on_data = got.append
        for chunk in chunks:
            cli.send(chunk)
        tb.sim.run(until=tb.sim.now + 2 * SEC)
        assert b"".join(got) == b"".join(chunks)


class TestTeardown:
    def test_orderly_close(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        srv.on_data = lambda d: None
        cli.send(b"bye")
        cli.close()
        tb.sim.run(until=tb.sim.now + 1 * SEC)
        assert cli.conn.state in (FIN_WAIT_2, TIME_WAIT, CLOSED)
        assert srv.conn.state == CLOSE_WAIT
        srv.close()
        tb.sim.run(until=tb.sim.now + 5 * SEC)
        assert cli.conn.state == CLOSED
        assert srv.conn.state == CLOSED

    def test_close_flushes_pending_data_first(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got = []
        srv.on_data = got.append
        payload = b"d" * 50_000
        cli.send(payload)
        cli.close()
        tb.sim.run(until=tb.sim.now + 5 * SEC)
        assert b"".join(got) == payload

    def test_abort_sends_rst(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        cli.abort()
        tb.sim.run(until=tb.sim.now + 1 * SEC)
        assert cli.conn.state == CLOSED
        assert srv.conn.state == CLOSED

    def test_send_after_close_rejected(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        cli.conn.close()
        with pytest.raises(Exception):
            cli.conn.send(b"late")
