"""UDP socket/stack tests."""

import pytest

from repro.simnet.engine import MS
from repro.transport.ip import IpStack
from repro.transport.udp import AddressInUseError, MessageTooLongError, UDP_MAX_PAYLOAD, UdpError, UdpStack


@pytest.fixture
def udp_pair(zero_testbed):
    stacks = []
    for h in zero_testbed.hosts:
        ip = IpStack(h)
        stacks.append(UdpStack(h, ip))
    return zero_testbed, stacks


class TestSockets:
    def test_basic_delivery_with_source_address(self, udp_pair):
        tb, (a, b) = udp_pair
        rx = b.socket(4000)
        got = []
        rx.on_datagram = lambda d, src: got.append((d, src))
        tx = a.socket(5555)
        tx.sendto(b"hello", (1, 4000))
        tb.sim.run()
        assert got == [(b"hello", (0, 5555))]

    def test_ephemeral_ports_unique(self, udp_pair):
        _, (a, _) = udp_pair
        s1, s2 = a.socket(), a.socket()
        assert s1.port != s2.port

    def test_port_collision_rejected(self, udp_pair):
        _, (a, _) = udp_pair
        a.socket(1234)
        with pytest.raises(AddressInUseError):
            a.socket(1234)

    def test_port_reusable_after_close(self, udp_pair):
        _, (a, _) = udp_pair
        s = a.socket(1234)
        s.close()
        a.socket(1234)  # no error

    def test_oversized_datagram_rejected(self, udp_pair):
        _, (a, _) = udp_pair
        s = a.socket()
        with pytest.raises(MessageTooLongError):
            s.sendto(b"x" * (UDP_MAX_PAYLOAD + 1), (1, 1))

    def test_max_size_datagram_delivered(self, udp_pair):
        tb, (a, b) = udp_pair
        rx = b.socket(9)
        got = []
        rx.on_datagram = lambda d, s: got.append(len(d))
        a.socket().sendto(b"y" * UDP_MAX_PAYLOAD, (1, 9))
        tb.sim.run()
        assert got == [UDP_MAX_PAYLOAD]

    def test_send_on_closed_socket_rejected(self, udp_pair):
        _, (a, _) = udp_pair
        s = a.socket()
        s.close()
        with pytest.raises(UdpError):
            s.sendto(b"x", (1, 1))

    def test_no_listener_counted(self, udp_pair):
        tb, (a, b) = udp_pair
        a.socket().sendto(b"x", (1, 7777))
        tb.sim.run()
        assert b.rx_no_socket == 1

    def test_queue_and_poll(self, udp_pair):
        tb, (a, b) = udp_pair
        rx = b.socket(4000)
        a.socket().sendto(b"one", (1, 4000))
        a.socket().sendto(b"two", (1, 4000))
        tb.sim.run()
        assert rx.poll()[0] == b"one"
        assert rx.poll()[0] == b"two"
        assert rx.poll() is None

    def test_recv_future_immediate_and_deferred(self, udp_pair):
        tb, (a, b) = udp_pair
        rx = b.socket(4000)
        results = []

        def proc():
            data, src = yield rx.recv_future()
            results.append(data)
            data, src = yield rx.recv_future()
            results.append(data)

        tb.sim.process(proc())
        a.socket().sendto(b"first", (1, 4000))
        tb.sim.schedule(2 * MS, lambda: a.socket().sendto(b"second", (1, 4000)))
        tb.sim.run()
        assert results == [b"first", b"second"]

    def test_rcvbuf_overflow_drops(self, udp_pair):
        tb, (a, b) = udp_pair
        rx = b.socket(4000)
        rx.rcvbuf_bytes = 1000
        tx = a.socket()
        for _ in range(5):
            tx.sendto(b"z" * 400, (1, 4000))
        tb.sim.run()
        assert rx.drops_rcvbuf == 3
        assert rx.rx_datagrams == 5  # all arrived, two buffered

    def test_uncharged_send_path(self, udp_pair):
        tb, (a, b) = udp_pair
        rx = b.socket(4000)
        got = []
        rx.on_datagram = lambda d, s: got.append(d)
        tx = a.socket()
        tx.sendto_uncharged(b"fast", (1, 4000))
        tb.sim.run()
        assert got == [b"fast"]
        assert tx.tx_datagrams == 1


class TestCosts:
    def test_send_charges_sender_cpu(self, testbed):
        ip = IpStack(testbed.hosts[0])
        udp = UdpStack(testbed.hosts[0], ip)
        IpStack(testbed.hosts[1])  # receiver IP so frames don't error
        s = udp.socket()
        before = testbed.hosts[0].cpu.busy_ns
        s.sendto(b"x" * 1000, (1, 5))
        testbed.sim.run()
        charged = testbed.hosts[0].cpu.busy_ns - before
        costs = testbed.costs
        expected = (
            costs.syscall_ns + costs.copy_ns(1000) + costs.udp_tx_fixed_ns
            + costs.ip_tx_per_frag_ns
        )
        assert charged == expected

    def test_receive_charges_receiver_cpu(self, testbed):
        ip0 = IpStack(testbed.hosts[0])
        udp0 = UdpStack(testbed.hosts[0], ip0)
        ip1 = IpStack(testbed.hosts[1])
        udp1 = UdpStack(testbed.hosts[1], ip1)
        udp1.socket(9)
        udp0.socket().sendto(b"x" * 1000, (1, 9))
        testbed.sim.run()
        costs = testbed.costs
        expected = (
            costs.udp_rx_fixed_ns + costs.copy_ns(1000)
            + costs.ip_rx_per_frag_ns + costs.interrupt_ns
        )
        assert testbed.hosts[1].cpu.busy_ns == expected
