"""Reliable-UDP (RD lower layer) tests."""

import pytest

from repro.simnet.engine import MS, SEC
from repro.simnet.loss import BernoulliLoss, ExplicitLoss
from repro.transport.ip import IpStack
from repro.transport.rudp import RUDP_MAX_PAYLOAD, RudpError, RudpSocket
from repro.transport.udp import UdpStack


@pytest.fixture
def rudp_pair(zero_testbed):
    socks = []
    for h in zero_testbed.hosts:
        ip = IpStack(h)
        udp = UdpStack(h, ip)
        socks.append(RudpSocket(udp.socket(6000), rto_ns=2 * MS))
    return zero_testbed, socks[0], socks[1]


def test_basic_delivery_preserves_boundaries(rudp_pair):
    tb, a, b = rudp_pair
    got = []
    b.on_message = lambda d, src: got.append(d)
    a.sendto(b"first", (1, 6000))
    a.sendto(b"second", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [b"first", b"second"]


def test_lost_message_retransmitted(rudp_pair):
    tb, a, b = rudp_pair
    tb.set_egress_loss(0, ExplicitLoss([1]))
    got = []
    b.on_message = lambda d, src: got.append(d)
    a.sendto(b"precious", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [b"precious"]
    assert a.retransmissions >= 1


def test_in_order_delivery_under_loss(rudp_pair):
    tb, a, b = rudp_pair
    tb.set_egress_loss(0, BernoulliLoss(0.15, seed=4))
    got = []
    b.on_message = lambda d, src: got.append(d)
    msgs = [f"msg-{i}".encode() for i in range(200)]
    for m in msgs:
        a.sendto(m, (1, 6000))
    tb.sim.run(until=60 * SEC)
    assert got == msgs  # exactly once, in order


def test_duplicate_suppression(rudp_pair):
    tb, a, b = rudp_pair
    # Drop the first ACK so the sender retransmits a delivered message.
    tb.set_egress_loss(1, ExplicitLoss([1]))
    got = []
    b.on_message = lambda d, src: got.append(d)
    a.sendto(b"once", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [b"once"]
    assert b.duplicates_dropped >= 1


def test_window_limits_inflight(rudp_pair):
    tb, a, b = rudp_pair
    a.window_msgs = 4
    got = []
    b.on_message = lambda d, src: got.append(d)
    for i in range(20):
        a.sendto(bytes([i]), (1, 6000))
    assert a.unacked_messages((1, 6000)) <= 4
    tb.sim.run(until=5 * SEC)
    assert len(got) == 20


def test_oversized_message_rejected(rudp_pair):
    _, a, _ = rudp_pair
    with pytest.raises(RudpError):
        a.sendto(b"x" * (RUDP_MAX_PAYLOAD + 1), (1, 6000))


def test_peer_failure_reported_after_retries(zero_testbed):
    # Only host 0 has a stack; the peer simply doesn't exist.
    ip = IpStack(zero_testbed.hosts[0])
    udp = UdpStack(zero_testbed.hosts[0], ip)
    sock = RudpSocket(udp.socket(), rto_ns=1 * MS, max_retries=3)
    failures = []
    sock.on_peer_failed = failures.append
    sock.sendto(b"void", (1, 7000))
    zero_testbed.sim.run(until=1 * SEC)
    assert failures == [(1, 7000)]


def test_recv_future_interface(rudp_pair):
    tb, a, b = rudp_pair
    results = []

    def proc():
        data, src = yield b.recv_future()
        results.append((data, src))

    tb.sim.process(proc())
    a.sendto(b"hello", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert results == [(b"hello", (0, 6000))]


def test_per_peer_sequence_spaces(zero_testbed):
    ips = [IpStack(h) for h in zero_testbed.hosts]
    udps = [UdpStack(h, ip) for h, ip in zip(zero_testbed.hosts, ips)]
    # host1 runs one server socket; host0 runs two client sockets.
    server = RudpSocket(udps[1].socket(6000))
    c1 = RudpSocket(udps[0].socket(7001))
    c2 = RudpSocket(udps[0].socket(7002))
    got = []
    server.on_message = lambda d, src: got.append((d, src[1]))
    c1.sendto(b"a", (1, 6000))
    c2.sendto(b"b", (1, 6000))
    c1.sendto(b"c", (1, 6000))
    zero_testbed.sim.run(until=1 * SEC)
    assert sorted(got) == [(b"a", 7001), (b"b", 7002), (b"c", 7001)]


def test_window_validation():
    with pytest.raises(RudpError):
        RudpSocket.__new__(RudpSocket).__init__(None, window_msgs=0)


# ---------------------------------------------------------------------------
# Close semantics
# ---------------------------------------------------------------------------


def _host_socket(zero_testbed, index, port=None, **kwargs):
    ip = IpStack(zero_testbed.hosts[index])
    udp = UdpStack(zero_testbed.hosts[index], ip)
    return RudpSocket(udp.socket(port), **kwargs)


def test_close_detaches_and_fails_everything(rudp_pair):
    tb, a, b = rudp_pair
    fut = b.recv_future()
    results = []
    a.sendto(b"doomed", (1, 6000), on_result=results.append)
    a.close()
    b.close()
    assert a.udp.on_datagram is None and b.udp.on_datagram is None
    assert results == [False]
    assert a.messages_failed == 1
    assert fut.done and fut.value is None
    late = b.recv_future()
    assert late.done and late.value is None  # closed socket resolves at once
    with pytest.raises(RudpError):
        a.sendto(b"x", (1, 6000))
    tb.sim.run(until=1 * SEC)  # no stray timers fire afterwards


def test_close_is_idempotent(rudp_pair):
    _, a, _ = rudp_pair
    a.sendto(b"m", (1, 6000))
    a.close()
    a.close()  # second close is a no-op, not an error


def test_close_fails_queued_messages_too(rudp_pair):
    _, a, _ = rudp_pair
    a.window_msgs = 1
    results = []
    a.sendto(b"inflight", (1, 6000), on_result=lambda ok: results.append(("i", ok)))
    a.sendto(b"queued", (1, 6000), on_result=lambda ok: results.append(("q", ok)))
    a.close()
    assert results == [("i", False), ("q", False)]
    assert a.messages_failed == 2


# ---------------------------------------------------------------------------
# Delivery callbacks
# ---------------------------------------------------------------------------


def test_on_result_reports_acked_delivery(rudp_pair):
    tb, a, b = rudp_pair
    results = []
    b.on_message = lambda d, src: None
    a.sendto(b"ok", (1, 6000), on_result=results.append)
    assert results == []  # not before the ACK comes back
    tb.sim.run(until=1 * SEC)
    assert results == [True]


# ---------------------------------------------------------------------------
# Adaptive RTO / fast retransmit / SACK
# ---------------------------------------------------------------------------


def test_adaptive_rto_converges_below_initial(rudp_pair):
    tb, a, b = rudp_pair
    addr = (1, 6000)
    b.on_message = lambda d, src: None
    for i in range(20):
        a.sendto(f"m{i}".encode(), addr)
    tb.sim.run(until=1 * SEC)
    assert a.rto_samples >= 20
    # A clean LAN has microsecond RTTs; the estimator must have pulled
    # the RTO well below the 2 ms it was seeded with (down to the floor).
    assert a.min_rto_ns <= a.current_rto_ns(addr) < 2 * MS
    stats = a.peer_stats(addr)
    assert stats.srtt_ns > 0 and stats.rto_ns == a.current_rto_ns(addr)


def test_fast_retransmit_beats_timeout(zero_testbed):
    tb = zero_testbed
    # A huge, non-adaptive-floor RTO isolates fast retransmit: if the
    # drop were repaired by timeout the test's time bound would trip.
    a = _host_socket(tb, 0, 6000, rto_ns=50 * MS, min_rto_ns=50 * MS)
    b = _host_socket(tb, 1, 6000)
    tb.set_egress_loss(0, ExplicitLoss([2]))  # lose the second message
    got = []
    b.on_message = lambda d, src: got.append(d)
    msgs = [f"m{i}".encode() for i in range(10)]
    for m in msgs:
        a.sendto(m, (1, 6000))
    tb.sim.run(until=40 * MS)  # before the first 50 ms timeout could fire
    assert got == msgs
    assert a.fast_retransmits == 1
    assert a.timeouts == 0
    # SACK kept the repair surgical: one loss, one retransmission.
    assert a.retransmissions == 1
    assert a.sack_blocks_received >= 1


def test_fixed_mode_recovers_by_timeout_only(zero_testbed):
    tb = zero_testbed
    a = _host_socket(tb, 0, 6000, rto_ns=2 * MS, adaptive=False)
    b = _host_socket(tb, 1, 6000)
    tb.set_egress_loss(0, ExplicitLoss([1]))
    got = []
    b.on_message = lambda d, src: got.append(d)
    msgs = [f"m{i}".encode() for i in range(5)]
    for m in msgs:
        a.sendto(m, (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == msgs
    assert a.fast_retransmits == 0  # no fast path in the legacy mode
    assert a.timeouts >= 1
    assert a.current_rto_ns((1, 6000)) == 2 * MS  # never adapts


def _ack_packet(ack_seq, echo=0):
    """A wire-format RUDP ACK as the receiver would emit it."""
    import struct

    from repro.transport.rudp import KIND_ACK

    return struct.pack("!BQ", KIND_ACK, ack_seq) + struct.pack("!Q", echo)


def test_stale_reordered_acks_do_not_trigger_fast_retransmit(zero_testbed):
    # Regression: dup-ACK counting must only count re-assertions of the
    # *current* cumulative point (RFC 5681).  A stale ACK reordered from
    # before the window advanced says nothing about the current hole;
    # counting it used to fire a spurious fast retransmit after a single
    # genuine duplicate.
    tb = zero_testbed
    addr = (1, 7000)
    a = _host_socket(tb, 0, 6000, rto_ns=500 * MS, min_rto_ns=500 * MS)
    for i in range(5):
        a.sendto(f"m{i}".encode(), addr)  # seqs 1..5 in flight
    # Cumulative ACK 4: seqs 1-3 delivered, hole at 4 (5 arrived beyond it).
    a._on_datagram(_ack_packet(4), addr)
    assert a.unacked_messages(addr) == 2
    # Two stale ACKs from before the window advanced arrive late ...
    a._on_datagram(_ack_packet(2), addr)
    a._on_datagram(_ack_packet(3), addr)
    # ... then ONE genuine duplicate of the current cumulative point.
    a._on_datagram(_ack_packet(4), addr)
    assert a.fast_retransmits == 0  # one real dup is not evidence of loss
    assert a.retransmissions == 0
    # Three genuine duplicates ARE evidence of loss: the fast path still fires.
    a._on_datagram(_ack_packet(4), addr)
    a._on_datagram(_ack_packet(4), addr)
    assert a.fast_retransmits == 1
    assert a.retransmissions == 1


def test_backoff_spaces_retries_to_dead_peer(zero_testbed):
    # Only host 0 has a stack; the peer simply doesn't exist.
    sock = _host_socket(zero_testbed, 0, rto_ns=1 * MS, max_retries=5)
    results = []
    failed_at = []
    sock.on_peer_failed = lambda addr: failed_at.append(zero_testbed.sim.now)
    sock.sendto(b"void", (1, 7000), on_result=results.append)
    zero_testbed.sim.run(until=10 * SEC)
    assert results == [False]
    assert sock.peer_failures == 1 and sock.messages_failed == 1
    assert sock.timeouts == 5 and sock.backoff_events == 5
    # Exponential backoff: the retry train must stretch far beyond the
    # 6 ms that six fixed 1 ms timeouts would have taken.
    assert failed_at and failed_at[0] > 6 * MS


# ----------------------------------------------------------------------
# sendto aliasing (zero-copy audit)
# ----------------------------------------------------------------------

def test_sendto_snapshots_mutable_buffers(zero_testbed):
    """A caller reusing its bytearray after sendto must not corrupt the
    retransmission store: the socket snapshots mutable buffers at the
    API boundary, so the retransmitted copy equals the original bytes."""
    tb = zero_testbed
    a = _host_socket(tb, 0, 6000, rto_ns=2 * MS)
    b = _host_socket(tb, 1, 6000, rto_ns=2 * MS)
    tb.set_egress_loss(0, ExplicitLoss([1]))  # force a retransmission
    got = []
    b.on_message = lambda d, src: got.append(d)
    buf = bytearray(b"precious payload")
    a.sendto(buf, (1, 6000))
    buf[:] = b"scribbled-over!!"  # caller reuses its buffer immediately
    tb.sim.run(until=1 * SEC)
    assert a.retransmissions >= 1
    assert got == [b"precious payload"]


def test_sendto_accepts_memoryview(zero_testbed):
    tb = zero_testbed
    a = _host_socket(tb, 0, 6000)
    b = _host_socket(tb, 1, 6000)
    got = []
    b.on_message = lambda d, src: got.append(d)
    backing = bytearray(b"xxwindowed viewyy")
    a.sendto(memoryview(backing)[2:-2], (1, 6000))
    backing[:] = bytearray(len(backing))
    tb.sim.run(until=1 * SEC)
    assert got == [b"windowed view"]


# ----------------------------------------------------------------------
# Batched (delayed) acknowledgements
# ----------------------------------------------------------------------

def _batched_pair(zero_testbed, **kwargs):
    a = _host_socket(zero_testbed, 0, 6000, rto_ns=2 * MS)
    b = _host_socket(zero_testbed, 1, 6000, rto_ns=2 * MS, **kwargs)
    return a, b


def test_ack_batching_reduces_ack_traffic(zero_testbed):
    tb = zero_testbed
    a, b = _batched_pair(tb, ack_every=4)
    got = []
    b.on_message = lambda d, src: got.append(d)
    for i in range(8):
        a.sendto(bytes([i]), (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert len(got) == 8
    # Eight in-order arrivals, one ACK per four: the legacy mode's
    # eight ACKs collapse to two (no anomaly, no timer flush needed).
    assert b.acks_sent == 2
    assert a.retransmissions == 0


def test_ack_delay_timer_flushes_residue(zero_testbed):
    """Fewer arrivals than ack_every: the pending-ACK timer must flush
    before the sender's RTO, and its echo (seq 0) takes no RTT sample."""
    tb = zero_testbed
    a, b = _batched_pair(tb, ack_every=8)
    got = []
    b.on_message = lambda d, src: got.append(d)
    a.sendto(b"lonely", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [b"lonely"]
    assert b.acks_sent == 1
    assert a.retransmissions == 0  # timer beat the sender's RTO
    assert a.unacked_messages((1, 6000)) == 0
    assert a.rto_samples == 0  # echo 0 must not contaminate SRTT


def test_anomaly_flushes_ack_immediately(zero_testbed):
    """A gap must bypass batching: the out-of-order arrival ACKs at
    once (carrying SACK), so fast retransmit keeps its timing."""
    tb = zero_testbed
    a, b = _batched_pair(tb, ack_every=64)
    tb.set_egress_loss(0, ExplicitLoss([1]))
    got = []
    b.on_message = lambda d, src: got.append(d)
    for i in range(6):
        a.sendto(f"m{i}".encode(), (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [f"m{i}".encode() for i in range(6)]
    # Every arrival past the gap was an anomaly -> immediate ACKs, not
    # one ACK per 64.
    assert b.acks_sent >= 5
    assert a.retransmissions >= 1


def test_batched_acks_in_order_under_loss(zero_testbed):
    """End-to-end: batching changes ACK timing, never delivery."""
    tb = zero_testbed
    a, b = _batched_pair(tb, ack_every=4)
    tb.set_egress_loss(0, BernoulliLoss(0.15, seed=9))
    got = []
    b.on_message = lambda d, src: got.append(d)
    msgs = [f"msg-{i}".encode() for i in range(200)]
    for m in msgs:
        a.sendto(m, (1, 6000))
    tb.sim.run(until=60 * SEC)
    assert got == msgs  # exactly once, in order
    assert b.acks_sent < len(msgs) + b.duplicates_dropped + a.retransmissions


def test_fixed_rto_baseline_ignores_ack_every(zero_testbed):
    """adaptive=False is the paper's original design; it predates
    delayed ACKs and must keep acking every arrival."""
    sock = _host_socket(zero_testbed, 0, 6000, adaptive=False, ack_every=16)
    assert sock.ack_every == 1


def test_ack_batching_parameters_validated(zero_testbed):
    with pytest.raises(RudpError):
        _host_socket(zero_testbed, 0, 6000, ack_every=0)
    with pytest.raises(RudpError):
        _host_socket(zero_testbed, 1, 6000, ack_delay_ns=0)
