"""Reliable-UDP (RD lower layer) tests."""

import pytest

from repro.simnet.engine import MS, SEC
from repro.simnet.loss import BernoulliLoss, ExplicitLoss
from repro.transport.ip import IpStack
from repro.transport.rudp import RUDP_MAX_PAYLOAD, RudpError, RudpSocket
from repro.transport.udp import UdpStack


@pytest.fixture
def rudp_pair(zero_testbed):
    socks = []
    for h in zero_testbed.hosts:
        ip = IpStack(h)
        udp = UdpStack(h, ip)
        socks.append(RudpSocket(udp.socket(6000), rto_ns=2 * MS))
    return zero_testbed, socks[0], socks[1]


def test_basic_delivery_preserves_boundaries(rudp_pair):
    tb, a, b = rudp_pair
    got = []
    b.on_message = lambda d, src: got.append(d)
    a.sendto(b"first", (1, 6000))
    a.sendto(b"second", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [b"first", b"second"]


def test_lost_message_retransmitted(rudp_pair):
    tb, a, b = rudp_pair
    tb.set_egress_loss(0, ExplicitLoss([1]))
    got = []
    b.on_message = lambda d, src: got.append(d)
    a.sendto(b"precious", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [b"precious"]
    assert a.retransmissions >= 1


def test_in_order_delivery_under_loss(rudp_pair):
    tb, a, b = rudp_pair
    tb.set_egress_loss(0, BernoulliLoss(0.15, seed=4))
    got = []
    b.on_message = lambda d, src: got.append(d)
    msgs = [f"msg-{i}".encode() for i in range(200)]
    for m in msgs:
        a.sendto(m, (1, 6000))
    tb.sim.run(until=60 * SEC)
    assert got == msgs  # exactly once, in order


def test_duplicate_suppression(rudp_pair):
    tb, a, b = rudp_pair
    # Drop the first ACK so the sender retransmits a delivered message.
    tb.set_egress_loss(1, ExplicitLoss([1]))
    got = []
    b.on_message = lambda d, src: got.append(d)
    a.sendto(b"once", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert got == [b"once"]
    assert b.duplicates_dropped >= 1


def test_window_limits_inflight(rudp_pair):
    tb, a, b = rudp_pair
    a.window_msgs = 4
    got = []
    b.on_message = lambda d, src: got.append(d)
    for i in range(20):
        a.sendto(bytes([i]), (1, 6000))
    assert a.unacked_messages((1, 6000)) <= 4
    tb.sim.run(until=5 * SEC)
    assert len(got) == 20


def test_oversized_message_rejected(rudp_pair):
    _, a, _ = rudp_pair
    with pytest.raises(RudpError):
        a.sendto(b"x" * (RUDP_MAX_PAYLOAD + 1), (1, 6000))


def test_peer_failure_reported_after_retries(zero_testbed):
    # Only host 0 has a stack; the peer simply doesn't exist.
    ip = IpStack(zero_testbed.hosts[0])
    udp = UdpStack(zero_testbed.hosts[0], ip)
    sock = RudpSocket(udp.socket(), rto_ns=1 * MS, max_retries=3)
    failures = []
    sock.on_peer_failed = failures.append
    sock.sendto(b"void", (1, 7000))
    zero_testbed.sim.run(until=1 * SEC)
    assert failures == [(1, 7000)]


def test_recv_future_interface(rudp_pair):
    tb, a, b = rudp_pair
    results = []

    def proc():
        data, src = yield b.recv_future()
        results.append((data, src))

    tb.sim.process(proc())
    a.sendto(b"hello", (1, 6000))
    tb.sim.run(until=1 * SEC)
    assert results == [(b"hello", (0, 6000))]


def test_per_peer_sequence_spaces(zero_testbed):
    ips = [IpStack(h) for h in zero_testbed.hosts]
    udps = [UdpStack(h, ip) for h, ip in zip(zero_testbed.hosts, ips)]
    # host1 runs one server socket; host0 runs two client sockets.
    server = RudpSocket(udps[1].socket(6000))
    c1 = RudpSocket(udps[0].socket(7001))
    c2 = RudpSocket(udps[0].socket(7002))
    got = []
    server.on_message = lambda d, src: got.append((d, src[1]))
    c1.sendto(b"a", (1, 6000))
    c2.sendto(b"b", (1, 6000))
    c1.sendto(b"c", (1, 6000))
    zero_testbed.sim.run(until=1 * SEC)
    assert sorted(got) == [(b"a", 7001), (b"b", 7002), (b"c", 7001)]


def test_window_validation():
    with pytest.raises(RudpError):
        RudpSocket.__new__(RudpSocket).__init__(None, window_msgs=0)
