"""SCTP-lite association tests."""

import pytest

from repro.simnet.engine import SEC
from repro.simnet.loss import BernoulliLoss, ExplicitLoss
from repro.transport.ip import IpStack
from repro.transport.sctp import ESTABLISHED, CLOSED, SctpError, SctpStack


@pytest.fixture
def sctp_pair(zero_testbed):
    stacks = []
    for h in zero_testbed.hosts:
        ip = IpStack(h)
        stacks.append(SctpStack(h, ip))
    return zero_testbed, stacks[0], stacks[1]


def _associate(tb, a, b, port=3000):
    listener = b.listen(port)
    accepted = listener.accept_future()
    cli = a.connect((1, port))
    tb.sim.run_until(cli.established, limit=10 * SEC)
    tb.sim.run_until(accepted, limit=10 * SEC)
    return cli, accepted.value


class TestAssociation:
    def test_four_way_handshake(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, srv = _associate(tb, a, b)
        assert cli.state == ESTABLISHED
        assert srv.state == ESTABLISHED

    def test_cookie_validation_blocks_forgery(self, sctp_pair):
        _, a, b = sctp_pair
        assert not b.validate_cookie((0, 99), 0xBAD)
        cookie = b.issue_cookie((0, 42))
        assert b.validate_cookie((0, 42), cookie)
        assert not b.validate_cookie((0, 43), cookie)

    def test_init_retransmitted_under_loss(self, sctp_pair):
        tb, a, b = sctp_pair
        tb.set_egress_loss(0, ExplicitLoss([1]))  # drop the INIT
        b.listen(3000)
        cli = a.connect((1, 3000))
        tb.sim.run_until(cli.established, limit=30 * SEC)
        assert cli.state == ESTABLISHED
        assert cli.retransmissions >= 1

    def test_duplicate_listen_rejected(self, sctp_pair):
        _, _, b = sctp_pair
        b.listen(3000)
        with pytest.raises(SctpError):
            b.listen(3000)

    def test_shutdown(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, srv = _associate(tb, a, b)
        cli.shutdown()
        tb.sim.run(until=tb.sim.now + 1 * SEC)
        assert cli.state == CLOSED
        assert srv.state == CLOSED

    def test_abort(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, srv = _associate(tb, a, b)
        cli.abort()
        tb.sim.run(until=tb.sim.now + 1 * SEC)
        assert srv.state == CLOSED


class TestDataTransfer:
    def test_message_boundaries_preserved(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, srv = _associate(tb, a, b)
        got = []
        srv.on_message = got.append
        msgs = [bytes([i]) * (i * 37 + 1) for i in range(20)]
        for m in msgs:
            cli.send_message(m)
        tb.sim.run(until=tb.sim.now + 2 * SEC)
        assert got == msgs  # boundaries intact, in order — no MPA needed

    def test_oversized_message_rejected(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, _ = _associate(tb, a, b)
        with pytest.raises(SctpError):
            cli.send_message(b"x" * (cli.max_message + 1))

    def test_reliable_in_order_under_loss(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, srv = _associate(tb, a, b)
        tb.set_egress_loss(0, BernoulliLoss(0.05, seed=12))
        got = []
        srv.on_message = got.append
        msgs = [f"m{i}".encode() for i in range(300)]
        for m in msgs:
            cli.send_message(m)
        tb.sim.run(until=tb.sim.now + 120 * SEC)
        assert got == msgs
        assert cli.retransmissions > 0

    def test_fast_retransmit_on_gap_reports(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, srv = _associate(tb, a, b)
        got = []
        srv.on_message = got.append
        tb.set_egress_loss(0, ExplicitLoss([2]))  # drop one mid-run DATA
        for i in range(30):
            cli.send_message(bytes([i]))
        tb.sim.run(until=tb.sim.now + 30 * SEC)
        assert got == [bytes([i]) for i in range(30)]
        assert cli.cong.fast_retransmits + cli.cong.timeouts >= 1

    def test_bidirectional(self, sctp_pair):
        tb, a, b = sctp_pair
        cli, srv = _associate(tb, a, b)
        got_c, got_s = [], []
        cli.on_message = got_c.append
        srv.on_message = got_s.append
        for i in range(10):
            cli.send_message(b"c%d" % i)
            srv.send_message(b"s%d" % i)
        tb.sim.run(until=tb.sim.now + 2 * SEC)
        assert len(got_c) == len(got_s) == 10

    def test_send_before_established_queued(self, sctp_pair):
        tb, a, b = sctp_pair
        listener = b.listen(3000)
        got = []
        listener.on_accept = lambda assoc: setattr(assoc, "on_message", got.append)
        cli = a.connect((1, 3000))
        cli.send_message(b"early")  # queued during handshake
        tb.sim.run(until=tb.sim.now + 2 * SEC)
        assert got == [b"early"]

    def test_association_count(self, sctp_pair):
        tb, a, b = sctp_pair
        _associate(tb, a, b)
        assert a.open_associations() == 1
        assert b.open_associations() == 1
