"""IP fragmentation and reassembly tests."""

import pytest

from repro.simnet.engine import MS
from repro.transport.ip import IP_HEADER, IpStack


class _Obj:
    """Stand-in upper-layer payload."""


def _pair(zero_testbed):
    a = IpStack(zero_testbed.hosts[0])
    b = IpStack(zero_testbed.hosts[1])
    return a, b


class TestFragmentation:
    def test_small_payload_single_packet(self, zero_testbed):
        a, b = _pair(zero_testbed)
        got = []
        b.register("t", lambda p, src, size: got.append((p, src, size)))
        obj = _Obj()
        n = a.send(1, "t", obj, 100)
        zero_testbed.sim.run()
        assert n == 1
        assert got == [(obj, 0, 100)]

    def test_fragment_count_math(self, zero_testbed):
        a, _ = _pair(zero_testbed)
        mtu = a.mtu()
        max_data = (mtu - IP_HEADER) // 8 * 8
        assert a.fragments_needed(100) == 1
        assert a.fragments_needed(mtu - IP_HEADER) == 1
        assert a.fragments_needed(mtu - IP_HEADER + 1) == 2
        assert a.fragments_needed(10 * max_data) == 10

    def test_large_payload_fragmented_and_reassembled(self, zero_testbed):
        a, b = _pair(zero_testbed)
        got = []
        b.register("t", lambda p, src, size: got.append(size))
        n = a.send(1, "t", _Obj(), 9000)
        zero_testbed.sim.run()
        assert n == a.fragments_needed(9000) > 1
        assert got == [9000]

    def test_lost_fragment_drops_whole_datagram(self, zero_testbed):
        from repro.simnet.loss import ExplicitLoss

        a, b = _pair(zero_testbed)
        zero_testbed.set_egress_loss(0, ExplicitLoss([2]))
        got = []
        b.register("t", lambda p, src, size: got.append(size))
        a.send(1, "t", _Obj(), 9000)
        zero_testbed.sim.run(until=500 * MS)
        assert got == []
        assert b.reassembly_timeouts == 1

    def test_interleaved_datagrams_reassemble_independently(self, zero_testbed):
        a, b = _pair(zero_testbed)
        got = []
        b.register("t", lambda p, src, size: got.append(size))
        a.send(1, "t", _Obj(), 5000)
        a.send(1, "t", _Obj(), 7000)
        zero_testbed.sim.run()
        assert sorted(got) == [5000, 7000]

    def test_unknown_upper_protocol_ignored(self, zero_testbed):
        a, b = _pair(zero_testbed)
        a.send(1, "nosuch", _Obj(), 10)
        zero_testbed.sim.run()
        assert b.delivered == 0

    def test_duplicate_registration_rejected(self, zero_testbed):
        a, _ = _pair(zero_testbed)
        a.register("t", lambda *a: None)
        with pytest.raises(ValueError):
            a.register("t", lambda *a: None)

    def test_negative_size_rejected(self, zero_testbed):
        a, _ = _pair(zero_testbed)
        with pytest.raises(ValueError):
            a.send(1, "t", _Obj(), -1)

    def test_pending_reassembly_state_cleaned_on_timeout(self, zero_testbed):
        from repro.simnet.loss import ExplicitLoss

        a, b = _pair(zero_testbed)
        zero_testbed.set_egress_loss(0, ExplicitLoss([1]))
        a.send(1, "t", _Obj(), 9000)
        zero_testbed.sim.run(until=1 * MS)
        assert b.pending_reassemblies() == 1
        zero_testbed.sim.run(until=500 * MS)
        assert b.pending_reassemblies() == 0

    def test_zero_byte_payload(self, zero_testbed):
        a, b = _pair(zero_testbed)
        got = []
        b.register("t", lambda p, src, size: got.append(size))
        a.send(1, "t", _Obj(), 0)
        zero_testbed.sim.run()
        assert got == [0]
