"""Additional TCP scenarios: windows, Nagle, go-back-N, reordering."""

import pytest

from repro.simnet.engine import MS, SEC
from repro.simnet.loss import BernoulliLoss, ExplicitLoss
from repro.transport.stacks import install_stacks
from repro.transport.tcp.connection import CLOSED


@pytest.fixture
def tcp_pair(zero_testbed):
    nets = install_stacks(zero_testbed)
    return zero_testbed, nets[0], nets[1]


def _connect(tb, cstack, sstack, port=80):
    listener = sstack.tcp.listen(port)
    accepted = listener.accept_future()
    cli = cstack.tcp.connect((1, port))
    tb.sim.run_until(cli.established, limit=5 * SEC)
    tb.sim.run_until(accepted, limit=5 * SEC)
    return cli, accepted.value


class TestWindows:
    def test_peer_window_limits_flight(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        srv.conn.rcvbuf_bytes = 8 * 1024  # tiny advertised window
        srv.on_data = lambda d: None
        # Force the sender to learn the small window via an ACK first.
        cli.send(b"x")
        tb.sim.run(until=tb.sim.now + 50 * MS)
        cli.send(b"y" * 200_000)
        tb.sim.run(until=tb.sim.now + 5 * MS)
        # Flight can never exceed the advertised window.
        assert cli.conn.flight_size() <= 8 * 1024 + cli.conn.mss
        tb.sim.run(until=tb.sim.now + 2 * SEC)
        assert srv.conn.bytes_received == 200_001

    def test_cwnd_grows_during_transfer(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        srv.on_data = lambda d: None
        start = cli.conn.cong.cwnd
        cli.send(b"z" * 500_000)
        tb.sim.run(until=tb.sim.now + 5 * SEC)
        assert cli.conn.cong.cwnd > start

    def test_nagle_coalesces_small_writes(self, zero_testbed):
        nets = install_stacks(zero_testbed)
        listener = nets[1].tcp.listen(80)
        got = []
        listener.on_accept = lambda sock: setattr(sock, "on_data", got.append)
        cli = nets[0].tcp.connect((1, 80))
        zero_testbed.sim.run_until(cli.established, limit=5 * SEC)
        cli.conn.nagle = True
        segs_before = cli.conn.segments_sent
        for _ in range(20):
            cli.send(b"t")  # 20 tinygrams
        zero_testbed.sim.run(until=zero_testbed.sim.now + 1 * SEC)
        assert b"".join(got) == b"t" * 20
        # Nagle coalesced: far fewer data segments than writes.
        assert cli.conn.segments_sent - segs_before < 20


class TestRecovery:
    def test_go_back_n_after_timeout_with_burst_loss(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got = []
        srv.on_data = got.append
        # Drop a contiguous run of data segments: fast retransmit cannot
        # fully recover (SACK-less), forcing an RTO + go-back-N rewind.
        tb.set_egress_loss(0, ExplicitLoss(range(4, 14)))
        payload = bytes((i * 3) & 0xFF for i in range(150_000))
        cli.send(payload)
        tb.sim.run(until=tb.sim.now + 30 * SEC)
        assert b"".join(got) == payload
        assert cli.conn.cong.timeouts >= 1

    def test_ack_beyond_snd_nxt_after_rewind_accepted(self, tcp_pair):
        """Regression: cumulative ACKs covering pre-rewind data must not
        be discarded (they exceed snd_nxt but not snd_max)."""
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got = []
        srv.on_data = got.append
        tb.set_egress_loss(0, BernoulliLoss(0.03, seed=17))
        payload = b"Q" * 400_000
        cli.send(payload)
        tb.sim.run(until=tb.sim.now + 60 * SEC)
        assert b"".join(got) == payload
        assert cli.conn.snd_una == cli.conn.snd_max

    def test_bidirectional_loss(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        tb.set_egress_loss(0, BernoulliLoss(0.02, seed=3))
        tb.set_egress_loss(1, BernoulliLoss(0.02, seed=4))
        got_s, got_c = [], []
        srv.on_data = got_s.append
        cli.on_data = got_c.append
        cli.send(b"c" * 80_000)
        srv.send(b"s" * 80_000)
        tb.sim.run(until=tb.sim.now + 60 * SEC)
        assert b"".join(got_s) == b"c" * 80_000
        assert b"".join(got_c) == b"s" * 80_000

    def test_duplicate_data_reacked_not_redelivered(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got = []
        srv.on_data = got.append
        # Drop an ACK so the sender retransmits already-delivered data.
        tb.set_egress_loss(1, ExplicitLoss([2]))
        cli.send(b"once-only")
        tb.sim.run(until=tb.sim.now + 10 * SEC)
        assert b"".join(got) == b"once-only"


class TestStateMachineEdges:
    def test_rst_on_established_connection(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        closed = []
        srv.conn.on_close = lambda: closed.append(True)
        cli.abort()
        tb.sim.run(until=tb.sim.now + 1 * SEC)
        assert srv.conn.state == CLOSED
        assert closed

    def test_simultaneous_close(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        cli.close()
        srv.close()
        tb.sim.run(until=tb.sim.now + 10 * SEC)
        assert cli.conn.state == CLOSED
        assert srv.conn.state == CLOSED

    def test_fin_retransmission(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        tb.set_egress_loss(0, ExplicitLoss([1]))  # drop the FIN
        cli.close()
        tb.sim.run(until=tb.sim.now + 10 * SEC)
        # FIN retransmitted; the peer saw the close.
        assert srv.conn.state in ("CLOSE_WAIT", "CLOSED")

    def test_data_with_fin_loss_still_flushes(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got = []
        srv.on_data = got.append
        tb.set_egress_loss(0, BernoulliLoss(0.05, seed=8))
        cli.send(b"final-words" * 1000)
        cli.close()
        tb.sim.run(until=tb.sim.now + 60 * SEC)
        assert b"".join(got) == b"final-words" * 1000
        assert srv.conn.state in ("CLOSE_WAIT", "CLOSED")

    def test_half_close_peer_can_still_send(self, tcp_pair):
        tb, c, s = tcp_pair
        cli, srv = _connect(tb, c, s)
        got_c = []
        cli.on_data = got_c.append
        srv.on_data = lambda d: None
        cli.close()
        tb.sim.run(until=tb.sim.now + 100 * MS)
        srv.send(b"still-talking")
        tb.sim.run(until=tb.sim.now + 1 * SEC)
        assert b"".join(got_c) == b"still-talking"

    def test_listener_close_stops_accepting(self, tcp_pair):
        tb, c, s = tcp_pair
        listener = s.tcp.listen(81)
        listener.close()
        cli = c.tcp.connect((1, 81))
        tb.sim.run(until=tb.sim.now + 5 * SEC)
        assert not cli.connected
