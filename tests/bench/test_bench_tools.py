"""Tests for the benchmark harness, report helpers, and cost model."""

import json

import pytest

from repro.bench.harness import BenchError, MODES, VerbsEndpointPair
from repro.bench.report import (
    ComparisonReport, format_table, load_json, percent_delta, save_json,
)
from repro.models.costs import CostModel, default_cost_model, zero_cost_model
from repro.models.platform import Platform, paper_defaults


class TestCostModel:
    def test_defaults_positive(self):
        m = default_cost_model()
        for name, value in m.describe().items():
            assert value >= 0, name

    def test_zero_model_all_zero(self):
        z = zero_cost_model()
        assert all(v == 0 for v in z.describe().values())

    def test_crc_helper(self):
        m = CostModel(crc_fixed_ns=100, crc_per_byte_ns=2.0)
        assert m.crc_ns(50) == 200

    def test_copy_helper(self):
        m = CostModel(copy_per_byte_ns=0.5)
        assert m.copy_ns(1000) == 500

    def test_with_overrides_is_a_copy(self):
        m = default_cost_model()
        m2 = m.with_overrides(syscall_ns=1)
        assert m2.syscall_ns == 1
        assert m.syscall_ns != 1

    def test_describe_covers_all_fields(self):
        m = default_cost_model()
        assert set(m.describe()) == set(CostModel.__dataclass_fields__)


class TestPlatform:
    def test_paper_testbed_values(self):
        p = Platform.paper_testbed()
        assert p.link_bandwidth_bps == 10e9
        assert p.mtu == 1500

    def test_wan_variant(self):
        p = Platform.wan_like(delay_us=5000)
        assert p.link_delay_ns == 5_000_000

    def test_paper_defaults_pair(self):
        platform, costs = paper_defaults()
        assert isinstance(platform, Platform)
        assert isinstance(costs, CostModel)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bee"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_save_and_load_json(self, tmp_path):
        path = tmp_path / "nested" / "out.json"
        save_json(path, {"x": [1, 2]})
        assert load_json(path) == {"x": [1, 2]}

    def test_percent_delta(self):
        assert percent_delta(110, 100) == pytest.approx(10.0)
        assert percent_delta(90, 100) == pytest.approx(-10.0)
        assert percent_delta(0, 0) == 0.0

    def test_comparison_report(self):
        rep = ComparisonReport("t")
        rep.add("m1", 10.0, 11.0, "us")
        rep.add("m2", None, 5.0)
        text = rep.render()
        assert "m1" in text and "10.0" in text
        d = rep.as_dict()
        assert d["rows"][0]["delta_percent"] == 10.0
        assert d["rows"][1]["delta_percent"] is None


class TestHarness:
    def test_unknown_mode_rejected(self):
        with pytest.raises(BenchError):
            VerbsEndpointPair.build("carrier_pigeon")

    def test_all_modes_build(self):
        for mode in MODES:
            pair = VerbsEndpointPair.build(mode)
            assert pair.qps[0] is not None and pair.qps[1] is not None

    def test_oversized_message_rejected(self):
        pair = VerbsEndpointPair.build("ud_sendrecv")
        with pytest.raises(BenchError):
            pair.pingpong_latency_us(VerbsEndpointPair.MAX_MSG + 1)

    def test_latency_is_deterministic(self):
        a = VerbsEndpointPair.build("ud_sendrecv").pingpong_latency_us(64, iters=6)
        b = VerbsEndpointPair.build("ud_sendrecv").pingpong_latency_us(64, iters=6)
        assert a == b

    def test_bandwidth_counts_every_message_lossless(self):
        pair = VerbsEndpointPair.build("ud_write_record")
        out = pair.bandwidth_mbs(4096, messages=50)
        assert out["received_msgs"] == 50
        assert out["received_bytes"] == 50 * 4096
        assert out["mbs"] > 0

    def test_rc_write_flag_receiver_counts(self):
        pair = VerbsEndpointPair.build("rc_rdma_write")
        out = pair.bandwidth_mbs(8192, messages=20)
        assert out["received_msgs"] == 20

    def test_zero_cost_model_much_faster(self):
        fast = VerbsEndpointPair.build(
            "ud_sendrecv", costs=zero_cost_model()
        ).pingpong_latency_us(64, iters=6)
        normal = VerbsEndpointPair.build("ud_sendrecv").pingpong_latency_us(64, iters=6)
        assert fast < normal / 5  # only wire time remains


class TestCalibrationAnchors:
    def test_latency_anchors_within_band(self):
        from repro.bench.calibration import PAPER_ANCHORS, measure_latency_anchors

        measured = measure_latency_anchors(iters=10)
        # UD and RC 64 B latency within 20 % of the paper's quotes.
        assert abs(measured["ud_sendrecv_64B_latency_us"]
                   - PAPER_ANCHORS["ud_sendrecv_64B_latency_us"]) < 5.5
        assert abs(measured["rc_sendrecv_64B_latency_us"]
                   - PAPER_ANCHORS["rc_sendrecv_64B_latency_us"]) < 6.6
        # Both improvements positive (UD wins at 2 KB).
        assert measured["udsr_latency_improvement_2K_pct"] > 5
        assert measured["udwr_latency_improvement_2K_pct"] > 5
