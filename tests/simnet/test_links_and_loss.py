"""Tests for frames, links, NIC queues, loss models, switch, topology."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.loss import (
    BernoulliLoss, ExplicitLoss, GilbertElliottLoss, NoLoss, PatternLoss,
)
from repro.simnet.nic import NicPort, cable
from repro.simnet.packet import ETH_MIN_PAYLOAD, ETH_OVERHEAD, Frame, serialization_ns
from repro.simnet.switch import Switch
from repro.simnet.topology import build_testbed
from repro.simnet.trace import Tracer


class _Payload:
    PROTO = "x"


def _frame(src=0, dst=1, size=1000):
    return Frame(src=src, dst=dst, payload=_Payload(), payload_size=size)


class TestFrame:
    def test_wire_size_includes_overhead(self):
        assert _frame(size=1000).wire_size == 1000 + ETH_OVERHEAD

    def test_minimum_frame_padding(self):
        assert _frame(size=1).wire_size == ETH_MIN_PAYLOAD + ETH_OVERHEAD

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            _frame(size=-1)

    def test_serialization_time(self):
        # 1250 bytes at 10 Gb/s = 1 us.
        assert serialization_ns(1250, 10e9) == 1000

    def test_serialization_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            serialization_ns(100, 0)


class TestLink:
    def test_attach_once(self):
        link = Link()
        link.attach("a", "b")
        with pytest.raises(RuntimeError):
            link.attach("a", "b")

    def test_peer_of(self):
        link = Link()
        link.attach("a", "b")
        assert link.peer_of("a") == "b"
        assert link.peer_of("b") == "a"
        with pytest.raises(ValueError):
            link.peer_of("c")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Link(bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(delay_ns=-1)
        with pytest.raises(ValueError):
            Link(mtu=100)


class _Sink:
    def __init__(self):
        self.got = []

    def on_frame(self, frame, port):
        self.got.append(frame)


def _two_ports(sim, bandwidth=10e9, delay=500, queue=1000):
    a_owner, b_owner = _Sink(), _Sink()
    pa = NicPort(sim, a_owner, "a", queue_frames=queue)
    pb = NicPort(sim, b_owner, "b", queue_frames=queue)
    cable(sim, pa, pb, Link(bandwidth_bps=bandwidth, delay_ns=delay))
    return pa, pb, a_owner, b_owner


class TestNic:
    def test_delivery_timing(self):
        sim = Simulator()
        pa, pb, _, sink = _two_ports(sim, bandwidth=10e9, delay=500)
        f = _frame(size=1212)  # 1250 on wire -> 1000 ns serialization
        pa.enqueue(f)
        sim.run()
        assert sink.got == [f]
        assert sim.now == 1000 + 500

    def test_back_to_back_serialization(self):
        sim = Simulator()
        pa, pb, _, sink = _two_ports(sim, bandwidth=10e9, delay=0)
        for _ in range(3):
            pa.enqueue(_frame(size=1212))
        sim.run()
        assert len(sink.got) == 3
        assert sim.now == 3000  # three serializations, no propagation

    def test_queue_overflow_drops(self):
        sim = Simulator()
        pa, pb, _, sink = _two_ports(sim, queue=2)
        for _ in range(5):
            pa.enqueue(_frame())
        sim.run()
        # one in flight immediately + 2 queued = 3 delivered.
        assert len(sink.got) == 3
        assert pa.drops_queue_full == 2

    def test_loss_model_applied_before_wire(self):
        sim = Simulator()
        pa, pb, _, sink = _two_ports(sim)
        pa.set_loss_model(ExplicitLoss([1, 3]))
        for _ in range(4):
            pa.enqueue(_frame())
        sim.run()
        assert len(sink.got) == 2
        assert pa.drops_loss_model == 2
        assert pa.tx_frames == 2  # dropped frames never consumed wire time

    def test_counters(self):
        sim = Simulator()
        pa, pb, _, _ = _two_ports(sim)
        f = _frame(size=2000)
        pa.enqueue(f)
        sim.run()
        assert pa.tx_frames == 1 and pa.tx_bytes == f.wire_size
        assert pb.rx_frames == 1 and pb.rx_bytes == f.wire_size

    def test_uncabled_port_rejects(self):
        sim = Simulator()
        port = NicPort(sim, _Sink(), "lonely")
        with pytest.raises(RuntimeError):
            port.enqueue(_frame())

    def test_tracer_records_tx_rx(self):
        sim = Simulator()
        pa, pb, _, _ = _two_ports(sim)
        tracer = Tracer(sim)
        pa.tracer = tracer
        pb.tracer = tracer
        pa.enqueue(_frame())
        sim.run()
        assert tracer.count("tx") == 1
        assert tracer.count("rx") == 1


class TestLossModels:
    def test_no_loss(self):
        model = NoLoss()
        assert not any(model.should_drop(_frame()) for _ in range(100))

    def test_bernoulli_rate_statistics(self):
        model = BernoulliLoss(0.1, seed=42)
        drops = sum(model.should_drop(_frame()) for _ in range(20_000))
        assert 0.08 < drops / 20_000 < 0.12

    def test_bernoulli_reproducible(self):
        a = BernoulliLoss(0.3, seed=7)
        b = BernoulliLoss(0.3, seed=7)
        pattern_a = [a.should_drop(_frame()) for _ in range(500)]
        pattern_b = [b.should_drop(_frame()) for _ in range(500)]
        assert pattern_a == pattern_b

    def test_bernoulli_reset(self):
        model = BernoulliLoss(0.5, seed=3)
        first = [model.should_drop(_frame()) for _ in range(100)]
        model.reset()
        second = [model.should_drop(_frame()) for _ in range(100)]
        assert first == second
        assert model.seen == 100

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_zero_rate_never_drops(self):
        model = BernoulliLoss(0.0, seed=1)
        assert not any(model.should_drop(_frame()) for _ in range(1000))

    def test_gilbert_elliott_burstiness(self):
        model = GilbertElliottLoss(p_gb=0.01, p_bg=0.3, loss_bad=1.0, seed=5)
        drops = [model.should_drop(_frame()) for _ in range(50_000)]
        rate = sum(drops) / len(drops)
        # Stationary rate ~ p_gb/(p_gb+p_bg) = 0.032
        assert 0.02 < rate < 0.05
        # Bursty: consecutive drops far likelier than independent model.
        pairs = sum(1 for i in range(1, len(drops)) if drops[i] and drops[i - 1])
        assert pairs > sum(drops) * rate * 2

    def test_gilbert_average_loss_rate(self):
        model = GilbertElliottLoss(p_gb=0.01, p_bg=0.99, loss_bad=1.0)
        assert model.average_loss_rate() == pytest.approx(0.01, abs=0.001)

    def test_pattern_loss(self):
        model = PatternLoss(every_nth=3)
        drops = [model.should_drop(_frame()) for _ in range(9)]
        assert drops == [False, False, True] * 3

    def test_explicit_loss(self):
        model = ExplicitLoss([2, 5])
        drops = [model.should_drop(_frame()) for _ in range(6)]
        assert drops == [False, True, False, False, True, False]

    def test_explicit_loss_validates_indices(self):
        with pytest.raises(ValueError):
            ExplicitLoss([0])


class TestSwitchAndTopology:
    def test_switch_forwards_to_correct_port(self):
        tb = build_testbed(3)
        sink = {}

        class H:
            def __init__(self, idx):
                self.idx = idx

            def on_packet(self, payload, frame):
                sink.setdefault(self.idx, []).append(frame)

        for i, h in enumerate(tb.hosts):
            h.register_protocol("x", H(i))
        tb.hosts[0].send_frame(Frame(src=0, dst=2, payload=_Payload(), payload_size=100))
        tb.sim.run()
        assert 2 in sink and 1 not in sink
        assert tb.switch.forwarded == 1

    def test_unroutable_counted(self):
        tb = build_testbed(2)
        tb.hosts[0].send_frame(Frame(src=0, dst=99, payload=_Payload(), payload_size=10))
        tb.sim.run()
        assert tb.switch.unroutable == 1

    def test_direct_cable_topology(self):
        tb = build_testbed(2, use_switch=False)
        got = []

        class H:
            def on_packet(self, payload, frame):
                got.append(frame)

        tb.hosts[1].register_protocol("x", H())
        tb.hosts[0].send_frame(_frame())
        tb.sim.run()
        assert len(got) == 1
        assert tb.switch is None

    def test_direct_cable_needs_two_hosts(self):
        with pytest.raises(ValueError):
            build_testbed(3, use_switch=False)

    def test_minimum_hosts(self):
        with pytest.raises(ValueError):
            build_testbed(1)

    def test_egress_loss_injection_point(self):
        tb = build_testbed(2)
        tb.set_egress_loss(0, ExplicitLoss([1]))
        got = []

        class H:
            def on_packet(self, payload, frame):
                got.append(frame)

        tb.hosts[1].register_protocol("x", H())
        tb.hosts[0].send_frame(_frame())
        tb.hosts[0].send_frame(_frame())
        tb.sim.run()
        assert len(got) == 1

    def test_hosts_share_cost_model(self):
        tb = build_testbed(2)
        assert tb.hosts[0].costs is tb.hosts[1].costs is tb.costs

    def test_broadcast_floods_other_ports(self):
        tb = build_testbed(3)
        got = []

        class H:
            def __init__(self, i):
                self.i = i

            def on_packet(self, payload, frame):
                got.append(self.i)

        for i, h in enumerate(tb.hosts):
            h.register_protocol("x", H(i))
        tb.hosts[0].send_frame(Frame(src=0, dst=-1, payload=_Payload(), payload_size=64))
        tb.sim.run()
        assert sorted(got) == [1, 2]
