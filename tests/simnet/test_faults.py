"""Fault-model tests: composition semantics, loss-model statistics
uniformity, and NIC egress integration."""

import pytest

from repro.simnet.engine import MS, SEC, US
from repro.simnet.faults import (
    DelayJitter, Duplicate, FaultPipeline, LinkFlap, LossFault,
    Reorder, seeded_chaos,
)
from repro.simnet.loss import (
    BernoulliLoss, ExplicitLoss, GilbertElliottLoss, NoLoss, PatternLoss,
)
from repro.simnet.packet import Frame
from repro.transport.ip import IpStack
from repro.transport.udp import UdpStack


class _Payload:
    PROTO = "x"


def _frame(size=1000):
    return Frame(src=0, dst=1, payload=_Payload(), payload_size=size)


# ----------------------------------------------------------------------
# Loss models: the uniform seen/dropped interface
# ----------------------------------------------------------------------

class TestLossModelUniformity:
    MODELS = [
        NoLoss(),
        BernoulliLoss(0.5, seed=1),
        GilbertElliottLoss(0.2, 0.5, seed=1),
        PatternLoss(3),
        ExplicitLoss([2, 4]),
    ]

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_every_model_counts_seen_and_dropped(self, model):
        model.reset()
        for _ in range(50):
            model.should_drop(_frame())
        assert model.seen == 50
        assert 0 <= model.dropped <= 50

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_reset_restores_counters_and_decisions(self, model):
        model.reset()
        first = [model.should_drop(_frame()) for _ in range(40)]
        model.reset()
        assert model.seen == 0 and model.dropped == 0
        second = [model.should_drop(_frame()) for _ in range(40)]
        assert first == second  # seeded: bit-for-bit reproducible

    def test_explicit_loss_seen_counter(self):
        model = ExplicitLoss([1, 3])
        decisions = [model.should_drop(_frame()) for _ in range(4)]
        assert decisions == [True, False, True, False]
        assert model.seen == 4 and model.dropped == 2


class TestGilbertElliott:
    def test_stationary_rate_matches_empirical(self):
        model = GilbertElliottLoss(p_gb=0.05, p_bg=0.4, loss_bad=0.8, seed=3)
        n = 200_000
        for _ in range(n):
            model.should_drop(_frame())
        empirical = model.dropped / model.seen
        expected = model.average_loss_rate()
        assert expected == pytest.approx(0.05 / 0.45 * 0.8)
        assert empirical == pytest.approx(expected, rel=0.05)

    def test_degenerate_chain_reports_current_state(self):
        model = GilbertElliottLoss(p_gb=0.0, p_bg=0.0, loss_bad=0.9)
        assert model.average_loss_rate() == 0.0  # starts (and stays) good
        model.bad = True
        assert model.average_loss_rate() == 0.9


class TestPatternLossOffsets:
    def test_zero_offset_drops_every_nth(self):
        model = PatternLoss(3)
        drops = [i for i in range(1, 13) if model.should_drop(_frame())]
        assert drops == [3, 6, 9, 12]

    def test_offset_shifts_the_pattern(self):
        model = PatternLoss(3, offset=2)
        drops = [i for i in range(1, 13) if model.should_drop(_frame())]
        assert drops == [5, 8, 11]

    def test_offset_protects_the_head(self):
        # every_nth=1 with an offset: everything after the offset drops.
        model = PatternLoss(1, offset=5)
        drops = [i for i in range(1, 9) if model.should_drop(_frame())]
        assert drops == [6, 7, 8]

    def test_offset_larger_than_run_drops_nothing(self):
        model = PatternLoss(2, offset=100)
        assert not any(model.should_drop(_frame()) for _ in range(50))
        assert model.seen == 50 and model.dropped == 0

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            PatternLoss(3, offset=-1)


# ----------------------------------------------------------------------
# Fault models
# ----------------------------------------------------------------------

class TestFaultModels:
    def test_loss_fault_adapts_loss_models(self):
        fault = LossFault(ExplicitLoss([2]))
        f = _frame()
        assert fault.admit(f, 0) == [(0, f)]
        assert fault.admit(f, 0) == []
        assert fault.admit(f, 0) == [(0, f)]
        assert fault.seen == 3 and fault.dropped == 1

    def test_reorder_holds_selected_frames(self):
        fault = Reorder(prob=1.0, hold_ns=300 * US, seed=1)
        f = _frame()
        assert fault.admit(f, 0) == [(300 * US, f)]
        assert fault.reordered == 1
        fault = Reorder(prob=0.0, hold_ns=300 * US)
        assert fault.admit(f, 0) == [(0, f)]

    def test_duplicate_emits_two_copies(self):
        fault = Duplicate(prob=1.0, seed=1)
        f = _frame()
        assert fault.admit(f, 0) == [(0, f), (0, f)]
        assert fault.duplicated == 1

    def test_delay_jitter_bounds(self):
        fault = DelayJitter(jitter_ns=100, spike_ns=10_000, spike_prob=0.5, seed=2)
        delays = [fault.admit(_frame(), 0)[0][0] for _ in range(200)]
        assert all(0 <= d <= 100 + 10_000 for d in delays)
        assert fault.spikes > 0 and max(delays) > 10_000
        assert min(delays) <= 100  # some frames took no spike

    def test_link_flap_windows(self):
        flap = LinkFlap.single(down_ns=10 * MS, duration_ns=5 * MS)
        f = _frame()
        assert flap.admit(f, 9 * MS) == [(0, f)]
        assert flap.admit(f, 12 * MS) == []
        assert flap.admit(f, 15 * MS) == [(0, f)]  # up bound is exclusive
        assert flap.dropped == 1

    def test_link_flap_periodic(self):
        flap = LinkFlap.periodic(
            first_down_ns=1 * MS, duration_ns=1 * MS, period_ns=10 * MS, repeats=3
        )
        assert [flap.is_down(t * MS) for t in (0, 1, 2, 11, 21, 31)] == [
            False, True, False, True, True, False,
        ]

    def test_flap_validation(self):
        with pytest.raises(ValueError):
            LinkFlap([(5, 5)])
        with pytest.raises(ValueError):
            LinkFlap.periodic(0, 1, 0, 1)


class TestFaultPipeline:
    def test_delays_accumulate_across_stages(self):
        pipe = FaultPipeline(
            Reorder(prob=1.0, hold_ns=100, seed=1),
            Reorder(prob=1.0, hold_ns=50, seed=2),
        )
        f = _frame()
        assert pipe.admit(f, 0) == [(150, f)]

    def test_drop_short_circuits(self):
        dup = Duplicate(prob=1.0, seed=1)
        pipe = FaultPipeline(LossFault(ExplicitLoss([1])), dup)
        assert pipe.admit(_frame(), 0) == []
        assert pipe.dropped == 1
        assert dup.seen == 0  # never reached

    def test_duplicate_then_loss_can_halve(self):
        # Both copies offered to the second stage independently.
        pipe = FaultPipeline(Duplicate(prob=1.0, seed=1), LossFault(ExplicitLoss([1])))
        f = _frame()
        assert pipe.admit(f, 0) == [(0, f)]  # one copy dropped, one lives

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            FaultPipeline()

    def test_reset_cascades(self):
        loss = ExplicitLoss([1])
        pipe = FaultPipeline(LossFault(loss))
        pipe.admit(_frame(), 0)
        pipe.reset()
        assert pipe.seen == 0 and loss.seen == 0

    def test_seeded_chaos_builder(self):
        pipe = seeded_chaos(
            seed=7,
            loss=BernoulliLoss(0.05, seed=7),
            reorder_prob=0.1,
            reorder_hold_ns=1000,
            dup_prob=0.1,
            jitter_ns=100,
            flap_windows=[(0, 10)],
        )
        assert len(pipe.stages) == 5
        with pytest.raises(ValueError):
            seeded_chaos(seed=1)


# ----------------------------------------------------------------------
# NIC egress integration
# ----------------------------------------------------------------------

class TestNicIntegration:
    def _udp_pair(self, tb):
        socks = []
        for h in tb.hosts:
            ip = IpStack(h)
            udp = UdpStack(h, ip)
            socks.append(udp.socket(5000))
        return socks

    def test_duplication_delivers_two_copies(self, zero_testbed):
        a, b = self._udp_pair(zero_testbed)
        zero_testbed.set_egress_faults(0, Duplicate(prob=1.0, seed=1))
        got = []
        b.on_datagram = lambda d, src: got.append(d)
        a.sendto(b"twice", (1, 5000))
        zero_testbed.sim.run(until=1 * SEC)
        assert got == [b"twice", b"twice"]
        assert zero_testbed.hosts[0].port.dup_frames == 1

    def test_flap_drops_and_counts(self, zero_testbed):
        a, b = self._udp_pair(zero_testbed)
        zero_testbed.set_egress_faults(0, LinkFlap.single(0, 10 * MS))
        got = []
        b.on_datagram = lambda d, src: got.append(d)
        a.sendto(b"lost", (1, 5000))
        zero_testbed.sim.run(until=1 * SEC)
        assert got == []
        assert zero_testbed.hosts[0].port.drops_fault == 1

    def test_held_frames_arrive_later_and_reorder(self, zero_testbed):
        a, b = self._udp_pair(zero_testbed)
        # Hold exactly the first frame; a later send overtakes it.
        zero_testbed.set_egress_faults(0, Reorder(prob=1.0, hold_ns=1 * MS, seed=1))
        got = []
        b.on_datagram = lambda d, src: got.append((d, zero_testbed.sim.now))
        a.sendto(b"first", (1, 5000))

        def send_second():
            zero_testbed.set_egress_faults(0, None)  # unimpeded
            a.sendto(b"second", (1, 5000))

        zero_testbed.sim.schedule(100 * US, send_second)
        zero_testbed.sim.run(until=1 * SEC)
        assert [d for d, _ in got] == [b"second", b"first"]
        assert got[1][1] >= 1 * MS
        assert zero_testbed.hosts[0].port.held_frames == 1
