"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import MS, SEC, US, Future, Process, SimulationError, Simulator, Timeout


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(30, out.append, "c")
        sim.schedule(10, out.append, "a")
        sim.schedule(20, out.append, "b")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        out = []
        for tag in "abcd":
            sim.schedule(5, out.append, tag)
        sim.run()
        assert out == ["a", "b", "c", "d"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = {}
        sim.schedule(1234, lambda: seen.setdefault("t", sim.now))
        sim.run()
        assert seen["t"] == 1234
        assert sim.now == 1234

    def test_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        seen = {}
        sim.at(500, lambda: seen.setdefault("t", sim.now))
        sim.run()
        assert seen["t"] == 500

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        out = []
        ev = sim.schedule(10, out.append, "x")
        ev.cancel()
        sim.run()
        assert out == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        out = []
        ev = sim.schedule(10, out.append, "x")
        sim.run()
        ev.cancel()  # must not raise
        assert out == ["x"]

    def test_run_until_time_bound(self):
        sim = Simulator()
        out = []
        sim.schedule(10, out.append, "a")
        sim.schedule(100, out.append, "b")
        sim.run(until=50)
        assert out == ["a"]
        assert sim.now == 50

    def test_run_until_advances_clock_to_bound_when_idle(self):
        sim = Simulator()
        sim.run(until=999)
        assert sim.now == 999

    def test_max_events(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.schedule(i + 1, out.append, i)
        sim.run(max_events=2)
        assert out == [0, 1]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        out = []

        def first():
            sim.schedule(5, out.append, "second")

        sim.schedule(1, first)
        sim.run()
        assert out == ["second"]

    def test_pending_counts_live_events(self):
        sim = Simulator()
        e1 = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        e1.cancel()
        assert sim.pending() == 1

    def test_time_unit_constants(self):
        assert US == 1_000 and MS == 1_000_000 and SEC == 1_000_000_000


class TestFutures:
    def test_future_resolves_waiters_via_queue(self):
        sim = Simulator()
        fut = sim.future()
        out = []
        fut.add_callback(out.append)
        fut.set_result(42)
        assert out == []  # not synchronous
        sim.run()
        assert out == [42]

    def test_callback_added_after_resolution_still_fires(self):
        sim = Simulator()
        fut = sim.future()
        fut.set_result("v")
        out = []
        fut.add_callback(out.append)
        sim.run()
        assert out == ["v"]

    def test_double_resolution_rejected(self):
        sim = Simulator()
        fut = sim.future()
        fut.set_result(1)
        with pytest.raises(SimulationError):
            fut.set_result(2)

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        fut = sim.future()
        out = []
        for _ in range(3):
            fut.add_callback(out.append)
        fut.set_result("x")
        sim.run()
        assert out == ["x"] * 3

    def test_run_until_returns_value(self):
        sim = Simulator()
        fut = sim.future()
        sim.schedule(100, fut.set_result, "done")
        assert sim.run_until(fut) == "done"

    def test_run_until_raises_on_drained_queue(self):
        sim = Simulator()
        fut = sim.future()
        with pytest.raises(SimulationError):
            sim.run_until(fut)

    def test_run_until_raises_past_limit(self):
        sim = Simulator()
        fut = sim.future()
        sim.schedule(10_000, fut.set_result, 1)
        with pytest.raises(SimulationError):
            sim.run_until(fut, limit=1_000)


class TestProcesses:
    def test_process_sleeps_with_int_yield(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 100
            trace.append(sim.now)
            yield 50
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0, 100, 150]

    def test_process_waits_on_future(self):
        sim = Simulator()
        fut = sim.future()
        got = []

        def proc():
            value = yield fut
            got.append((sim.now, value))

        sim.process(proc())
        sim.schedule(77, fut.set_result, "ok")
        sim.run()
        assert got == [(77, "ok")]

    def test_process_return_value_exposed(self):
        sim = Simulator()

        def proc():
            yield 1
            return 99

        p = sim.process(proc())
        sim.run()
        assert p.result == 99
        assert p.finished.done and p.finished.value == 99

    def test_process_waits_on_other_process(self):
        sim = Simulator()

        def child():
            yield 100
            return "child-result"

        def parent():
            value = yield sim.process(child())
            return (sim.now, value)

        p = sim.process(parent())
        sim.run()
        assert p.result == (100, "child-result")

    def test_timeout_object_yield(self):
        sim = Simulator()

        def proc():
            yield Timeout(250)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.result == 250

    def test_any_of_resumes_on_first(self):
        sim = Simulator()
        f1, f2 = sim.future(), sim.future()

        def proc():
            index, value = yield sim.any_of([f1, f2])
            return (index, value, sim.now)

        p = sim.process(proc())
        sim.schedule(30, f2.set_result, "second")
        sim.schedule(60, f1.set_result, "first")
        sim.run()
        assert p.result == (1, "second", 30)

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-5)
