"""Unit tests for the serialized CPU resource."""

import pytest

from repro.simnet.cpu import CpuResource
from repro.simnet.engine import Simulator


def test_work_executes_after_cost():
    sim = Simulator()
    cpu = CpuResource(sim)
    done = {}
    cpu.submit(500, lambda: done.setdefault("t", sim.now))
    sim.run()
    assert done["t"] == 500


def test_fifo_serialization():
    sim = Simulator()
    cpu = CpuResource(sim)
    out = []
    cpu.submit(100, lambda: out.append(("a", sim.now)))
    cpu.submit(200, lambda: out.append(("b", sim.now)))
    cpu.submit(50, lambda: out.append(("c", sim.now)))
    sim.run()
    assert out == [("a", 100), ("b", 300), ("c", 350)]


def test_queueing_behind_busy_cpu():
    sim = Simulator()
    cpu = CpuResource(sim)
    out = []
    cpu.submit(1_000, lambda: None)
    # Submitted later in sim time but while CPU is busy.
    sim.schedule(500, lambda: cpu.submit(100, lambda: out.append(sim.now)))
    sim.run()
    assert out == [1_100]


def test_idle_cpu_starts_immediately():
    sim = Simulator()
    cpu = CpuResource(sim)
    out = []
    sim.schedule(5_000, lambda: cpu.submit(10, lambda: out.append(sim.now)))
    sim.run()
    assert out == [5_010]


def test_zero_cost_preserves_order():
    sim = Simulator()
    cpu = CpuResource(sim)
    out = []
    cpu.submit(0, out.append, 1)
    cpu.submit(0, out.append, 2)
    sim.run()
    assert out == [1, 2]


def test_negative_cost_rejected():
    sim = Simulator()
    cpu = CpuResource(sim)
    with pytest.raises(ValueError):
        cpu.submit(-1, lambda: None)


def test_busy_accounting_and_utilization():
    sim = Simulator()
    cpu = CpuResource(sim)
    cpu.submit(300, lambda: None)
    cpu.submit(200, lambda: None)
    sim.run()
    assert cpu.busy_ns == 500
    assert cpu.work_items == 2
    assert cpu.utilization(1_000) == 0.5
    assert cpu.utilization(0) == 0.0
    assert cpu.utilization(100) == 1.0  # capped


def test_charge_delays_later_work():
    sim = Simulator()
    cpu = CpuResource(sim)
    out = []
    cpu.charge(1_000)
    cpu.submit(10, lambda: out.append(sim.now))
    sim.run()
    assert out == [1_010]


def test_free_at_tracks_backlog():
    sim = Simulator()
    cpu = CpuResource(sim)
    assert cpu.free_at == 0
    cpu.submit(400, lambda: None)
    assert cpu.free_at == 400
    sim.run()
    assert cpu.free_at == sim.now
