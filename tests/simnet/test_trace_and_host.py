"""Tracer and host-dispatch tests."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.packet import Frame
from repro.simnet.topology import build_testbed
from repro.simnet.trace import Tracer


class TestTracer:
    def test_record_and_select(self):
        sim = Simulator()
        t = Tracer(sim)
        t.record("tx", port="a", size=10)
        sim.schedule(100, lambda: t.record("rx", port="b", size=10))
        sim.run()
        assert t.count("tx") == 1
        assert t.select("rx")[0].time == 100
        assert t.select(predicate=lambda r: r.fields.get("size") == 10)

    def test_capacity_limit(self):
        sim = Simulator()
        t = Tracer(sim, capacity=2)
        for i in range(5):
            t.record("k", i=i)
        assert len(t.records) == 2
        assert t.dropped_records == 3

    def test_clear(self):
        sim = Simulator()
        t = Tracer(sim)
        t.record("x")
        t.clear()
        assert t.records == [] and t.dropped_records == 0


class _P:
    PROTO = "p"


class TestHost:
    def test_duplicate_protocol_rejected(self):
        sim = Simulator()
        h = Host(sim, 0)
        h.register_protocol("p", object())
        with pytest.raises(ValueError):
            h.register_protocol("p", object())

    def test_protocol_lookup(self):
        sim = Simulator()
        h = Host(sim, 0)
        handler = object()
        h.register_protocol("p", handler)
        assert h.protocol("p") is handler

    def test_frames_for_other_hosts_ignored(self):
        tb = build_testbed(2)
        got = []

        class H:
            def on_packet(self, payload, frame):
                got.append(frame)

        tb.hosts[1].register_protocol("p", H())
        # dst host 1 but delivered to host 1 -> accepted; dst 0 frames
        # reaching host 1 (mis-switched) must be ignored.
        frame = Frame(src=0, dst=0, payload=_P(), payload_size=10)
        tb.hosts[1].on_frame(frame, tb.hosts[1].port)
        assert got == []

    def test_port_property_requires_nic(self):
        sim = Simulator()
        h = Host(sim, 0)
        with pytest.raises(RuntimeError):
            _ = h.port

    def test_unknown_payload_proto_dropped(self):
        tb = build_testbed(2)

        class Q:
            PROTO = "unregistered"

        tb.hosts[0].send_frame(Frame(src=0, dst=1, payload=Q(), payload_size=8))
        tb.sim.run()  # must not raise
