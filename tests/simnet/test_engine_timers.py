"""Timer-pool semantics: lazy cancellation, compaction, shell recycling.

``test_engine.py`` pins the engine's public contract; this module pins
the hot-path machinery added underneath it — tombstoned cancels with a
dead-entry counter, in-place heap compaction once tombstones dominate,
and the free list that recycles ``call_after``/``call_at`` event shells.
All of it must be invisible at the semantic level: these tests would
pass against the naive heap the machinery replaced.
"""

import pytest

from repro.simnet.engine import (
    _COMPACT_MIN_DEAD, _FREE_LIST_MAX, SimulationError, Simulator, US,
)


# ----------------------------------------------------------------------
# Cancellation semantics
# ----------------------------------------------------------------------

def test_cancel_then_fire_skips_callback():
    sim = Simulator()
    fired = []
    ev = sim.schedule(10, fired.append, "a")
    sim.schedule(10, fired.append, "b")
    ev.cancel()
    sim.run()
    assert fired == ["b"]
    assert sim.events_processed == 1


def test_double_cancel_counts_one_tombstone():
    sim = Simulator()
    ev = sim.schedule(10, lambda: None)
    ev.cancel()
    ev.cancel()
    ev.cancel()
    assert sim._dead == 1
    assert sim.pending() == 0
    sim.run()
    assert sim._dead == 0


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    ev = sim.schedule(10, fired.append, 1)
    sim.run()
    assert fired == [1]
    dead_before = sim._dead
    ev.cancel()
    ev.cancel()
    # The event left the heap when it fired; late cancels must not skew
    # the tombstone accounting of a heap the event is no longer in.
    assert sim._dead == dead_before


def test_cancel_inside_own_callback_is_noop():
    sim = Simulator()
    fired = []
    holder = {}

    def cb():
        fired.append(sim.now)
        holder["ev"].cancel()  # self-cancel while running

    holder["ev"] = sim.schedule(5, cb)
    sim.schedule(7, fired.append, 7)
    sim.run()
    assert fired == [5, 7]
    assert sim._dead == 0


def test_cancel_other_event_inside_callback():
    sim = Simulator()
    fired = []
    later = None

    def cb():
        fired.append("first")
        later.cancel()

    sim.schedule(5, cb)
    later = sim.schedule(10, fired.append, "second")
    sim.schedule(15, fired.append, "third")
    sim.run()
    assert fired == ["first", "third"]


def test_cancel_same_timestamp_sibling():
    """Cancelling an event scheduled for the *current* instant, from a
    callback running at that instant, must still suppress it."""
    sim = Simulator()
    fired = []
    victim = None

    def cb():
        fired.append("killer")
        victim.cancel()

    sim.schedule(5, cb)
    victim = sim.schedule(5, fired.append, "victim")
    sim.run()
    assert fired == ["killer"]


# ----------------------------------------------------------------------
# Heap compaction
# ----------------------------------------------------------------------

def test_compaction_triggers_and_preserves_live_events():
    sim = Simulator()
    fired = []
    n = _COMPACT_MIN_DEAD + 50
    doomed = [sim.schedule(1000 + i, fired.append, i) for i in range(n)]
    survivors = [sim.schedule(5000 + i, fired.append, 10_000 + i) for i in range(7)]
    for ev in doomed:
        ev.cancel()
    # Tombstones dominated the heap at some point during the cancel
    # storm, so compaction must have run: the heap can no longer hold
    # every tombstone, and the dead counter was reset along the way.
    assert len(sim._heap) < n + len(survivors)
    assert sim._dead == len(sim._heap) - len(survivors)
    assert sim._dead < n
    assert sim.pending() == len(survivors)
    sim.run()
    assert fired == [10_000 + i for i in range(7)]


def test_compaction_below_threshold_is_deferred():
    sim = Simulator()
    keep = sim.schedule(100, lambda: None)
    doomed = [sim.schedule(10 + i, lambda: None) for i in range(_COMPACT_MIN_DEAD - 1)]
    for ev in doomed:
        ev.cancel()
    # One short of the floor: tombstones stay queued, pending() sees
    # through them.
    assert sim._dead == len(doomed)
    assert len(sim._heap) == len(doomed) + 1
    assert sim.pending() == 1
    keep.cancel()
    # The floor was reached and tombstones dominate -> compacted away.
    assert sim._dead == 0
    assert sim._heap == []


def test_compaction_mid_run_keeps_ordering():
    """Compact while run() is in flight: a callback cancels a pile of
    pending timers (the retransmission-timer re-arm pattern), and every
    surviving event must still fire, in time order."""
    sim = Simulator()
    fired = []
    n = _COMPACT_MIN_DEAD + 10
    doomed = [sim.schedule(100 + i, fired.append, -i) for i in range(n)]

    def mass_cancel():
        fired.append("cancel")
        for ev in doomed:
            ev.cancel()

    sim.schedule(50, mass_cancel)
    for i in range(5):
        sim.schedule(10_000 + i, fired.append, i)
    sim.run()
    assert fired == ["cancel", 0, 1, 2, 3, 4]
    assert sim.now == 10_004
    assert sim._heap == []


def test_compaction_inside_callback_does_not_break_run_loop():
    """run() holds a local alias of the heap list; compaction rewrites
    it in place, so events scheduled *after* an in-callback compaction
    must still be seen by the same run() call."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(100 + i, lambda: None) for i in range(_COMPACT_MIN_DEAD + 5)]

    def cancel_then_schedule():
        for ev in doomed:
            ev.cancel()
        # Compaction ran inside this callback: the heap cannot still
        # hold all the tombstones.
        assert len(sim._heap) < len(doomed)
        sim.schedule(1, fired.append, "late")

    sim.schedule(10, cancel_then_schedule)
    sim.run()
    assert fired == ["late"]
    assert sim.now == 11


# ----------------------------------------------------------------------
# Free-list recycling (call_after / call_at)
# ----------------------------------------------------------------------

def test_call_after_fires_in_seq_order_with_schedule():
    """Handle-less and handle-returning scheduling share one sequence
    counter, so same-timestamp ties keep program order across both."""
    sim = Simulator()
    fired = []
    sim.call_after(10, fired.append, "a")
    sim.schedule(10, fired.append, "b")
    sim.call_at(10, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_free_list_recycles_shells():
    sim = Simulator()
    for i in range(10):
        sim.call_after(i, lambda: None)
    assert len(sim._free) == 0
    sim.run()
    # All ten shells came back to the pool...
    assert len(sim._free) == 10
    before = len(sim._free)
    sim.call_after(1, lambda: None)
    # ...and a new call_after draws from it instead of allocating.
    assert len(sim._free) == before - 1
    sim.run()
    assert len(sim._free) == before


def test_recycled_shell_runs_correct_callback():
    """A shell recycled inside the very callback it fired must carry the
    *new* fn/args, not the old ones (the pre-fire handoff pattern)."""
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        # The shell that fired `first` is already in the free list here;
        # this call_after reuses it.
        sim.call_after(5, fired.append, "second")

    sim.call_after(10, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 15


def test_schedule_handles_are_never_recycled():
    sim = Simulator()
    ev = sim.schedule(10, lambda: None)
    sim.run()
    assert sim._free == []
    assert not ev._recyclable


def test_free_list_is_capped():
    sim = Simulator()
    n = _FREE_LIST_MAX + 100
    for i in range(n):
        sim.call_after(i, lambda: None)
    sim.run()
    assert len(sim._free) == _FREE_LIST_MAX


def test_call_after_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_at(-1, lambda: None)


def test_mass_timer_churn_is_semantically_clean():
    """The retransmission workload in miniature: every 'ACK' cancels and
    re-arms a timer.  Exactly one timer (the last) must fire, no matter
    how many compactions and recycles happened along the way."""
    sim = Simulator()
    fired = []
    state = {"timer": None, "acks": 0}
    total = 3 * _COMPACT_MIN_DEAD

    def timer_fired():
        fired.append(sim.now)

    def on_ack():
        if state["timer"] is not None:
            state["timer"].cancel()
        state["timer"] = sim.schedule(100 * US, timer_fired)
        state["acks"] += 1
        if state["acks"] < total:
            sim.call_after(10, on_ack)

    sim.call_after(0, on_ack)
    sim.run()
    assert len(fired) == 1
    assert fired[0] == (total - 1) * 10 + 100 * US
    assert sim.pending() == 0
    assert sim._dead == 0
