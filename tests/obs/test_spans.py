"""Golden WR-lifecycle span sequences.

Two seeded 10 %-loss scenarios, each asserting the *exact ordered*
span stream on both hosts — post → segmentation → wire → (repair) →
delivery → CQE.  These sequences are the observable contract of the
span layer: if an instrumentation point moves, disappears, or
double-fires, the golden breaks.

Zero-cost models and fixed seeds make both runs fully deterministic;
spans carry no frame ids, so the sequences are stable run to run.
"""

from repro.bench.harness import VerbsEndpointPair
from repro.models.costs import zero_cost_model
from repro.obs import merge_timelines, spans, stage_sequence
from repro.simnet.engine import SEC
from repro.simnet.loss import BernoulliLoss


def test_golden_rc_rdma_write_spans_under_loss():
    """One 8 KB RC RDMA Write through 10 % sender-egress loss: TCP
    carries six MSS segments, repairs the losses with two RTO
    retransmissions, and the target sees six in-order deliveries.  The
    send CQE precedes the wire spans — RC send completions occur at LLP
    handoff (§IV of the paper), not at delivery."""
    pair = VerbsEndpointPair.build(
        "rc_rdma_write", costs=zero_cost_model(),
        loss=BernoulliLoss(0.10, seed=42), metrics=True,
    )
    t0, t1 = pair.enable_spans()
    pair._post_message(0, 8192, signaled=True)
    pair.sim.run(until=1 * SEC)

    assert stage_sequence(t0) == (
        ["post", "segment", "cqe"] + ["wire"] * 6 + ["retransmit"] * 2
    )
    assert stage_sequence(t1) == ["delivery"] * 6

    post = next(iter(spans(t0, stage="post")))
    assert post.fields["op"] == "rdma_write"
    seg = next(iter(spans(t0, stage="segment")))
    assert seg.fields["nsegs"] == 6
    cqe = next(iter(spans(t0, stage="cqe")))
    assert cqe.fields["queue"] == "sq" and cqe.fields["status"] == "success"
    for r in spans(t0, stage="wire"):
        assert r.fields["proto"] == "tcp"
    for r in spans(t0, stage="retransmit"):
        assert r.fields["proto"] == "tcp" and r.fields["cause"] == "rto"

    # Sim-timestamps order the merged two-host timeline: the post is
    # first, and every delivery happens after the first wire.
    merged = merge_timelines(t0, t1)
    assert merged[0].fields["stage"] == "post"
    first_wire = next(r.time for r in merged if r.fields["stage"] == "wire")
    assert all(r.time >= first_wire for r in merged
               if r.fields["stage"] == "delivery")


def test_golden_ud_write_record_spans_under_loss():
    """One 256 KB UD Write-Record through 10 % loss: five ~64 KB
    datagrams leave the wire (the fifth flagged ``last=True`` — it
    carries the validity declaration).  Each datagram spans ~44 IP
    fragments, so at 10 % frame loss most die; with this seed exactly
    the final segment survives.  Partial placement (§IV.B.2) still
    lands it and raises a completion whose validity map holds the one
    range — the span stream shows the whole story."""
    pair = VerbsEndpointPair.build(
        "ud_write_record", costs=zero_cost_model(),
        loss=BernoulliLoss(0.10, seed=11), metrics=True,
    )
    t0, t1 = pair.enable_spans()
    pair._post_message(0, 262144, signaled=True)
    pair.sim.run(until=1 * SEC)

    assert stage_sequence(t0) == ["post", "segment", "cqe"] + ["wire"] * 5
    assert stage_sequence(t1) == ["delivery", "cqe"]

    post = next(iter(spans(t0, stage="post")))
    assert post.fields["op"] == "rdma_write_record"
    seg = next(iter(spans(t0, stage="segment")))
    assert seg.fields["nsegs"] == 5
    wires = list(spans(t0, stage="wire"))
    assert [r.fields["last"] for r in wires] == [False] * 4 + [True]
    assert all(r.fields["proto"] == "udp" for r in wires)
    # No reliability layer under UD: nothing retransmits.
    assert list(spans(t0, stage="retransmit")) == []

    delivery = next(iter(spans(t1, stage="delivery")))
    assert delivery.fields["last"] is True  # the surviving segment
    cqe = next(iter(spans(t1, stage="cqe")))
    assert cqe.fields["queue"] == "rq" and cqe.fields["status"] == "success"
