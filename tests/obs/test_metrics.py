"""Property tests on the histogram instrument (hypothesis).

The histogram is the one non-trivial data structure in ``repro.obs``:
fixed ascending bucket edges with Prometheus ``le`` (inclusive upper
bound) semantics, cumulative export, and edge-exact merging.
"""

import pytest
from hypothesis import given, strategies as st

from repro.obs import DEFAULT_BUCKETS, Histogram, RegistryError

edges_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12,
    unique=True,
).map(lambda xs: tuple(sorted(float(x) for x in xs)))

values_strategy = st.lists(
    st.floats(min_value=-100, max_value=20_000, allow_nan=False,
              allow_infinity=False),
    max_size=80,
)


@given(edges=edges_strategy, values=values_strategy)
def test_bucket_placement_matches_le_semantics(edges, values):
    """Every cumulative bucket count equals the number of observations
    ``<= edge`` — the Prometheus ``le`` contract — and +Inf holds all."""
    h = Histogram(edges)
    for v in values:
        h.observe(v)
    cumulative = h.cumulative()
    assert cumulative[-1] == ("+Inf", len(values))
    for edge, cum in cumulative[:-1]:
        assert cum == sum(1 for v in values if v <= edge)
    assert h.count == len(values)
    assert h.sum == pytest.approx(sum(values))


@given(edges=edges_strategy, a=values_strategy, b=values_strategy)
def test_merge_equals_union_of_observations(edges, a, b):
    """merge(h1, h2) is indistinguishable from observing a + b."""
    h1, h2, href = Histogram(edges), Histogram(edges), Histogram(edges)
    for v in a:
        h1.observe(v)
        href.observe(v)
    for v in b:
        h2.observe(v)
        href.observe(v)
    h1.merge(h2)
    assert h1.counts == href.counts
    assert h1.count == href.count
    assert h1.sum == pytest.approx(href.sum)


@given(edges=edges_strategy)
def test_exact_edge_value_lands_inclusively(edges):
    """An observation exactly on an edge counts toward that bucket
    (``le`` is inclusive), never the next one."""
    for edge in edges:
        h = Histogram(edges)
        h.observe(edge)
        cum = dict((e, c) for e, c in h.cumulative())
        assert cum[edge] == 1


def test_merge_rejects_differing_edges():
    h1 = Histogram((1.0, 2.0))
    h2 = Histogram((1.0, 3.0))
    with pytest.raises(RegistryError):
        h1.merge(h2)


def test_bad_edges_rejected():
    with pytest.raises(RegistryError):
        Histogram(())
    with pytest.raises(RegistryError):
        Histogram((2.0, 1.0))
    with pytest.raises(RegistryError):
        Histogram((1.0, 1.0))


def test_reset_zeroes_but_keeps_shape():
    h = Histogram(DEFAULT_BUCKETS)
    for v in (0, 3, 500):
        h.observe(v)
    h.reset()
    assert h.count == 0 and h.sum == 0
    assert h.counts == [0] * (len(DEFAULT_BUCKETS) + 1)
    assert h.edges == tuple(float(e) for e in DEFAULT_BUCKETS)
