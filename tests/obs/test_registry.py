"""Registry semantics: naming scheme, collisions, reset, disabled mode."""

import pytest

from repro.obs import (
    NULL_INSTRUMENT, Registry, RegistryError, diff, sim_registry,
    validate_name,
)


# ---------------------------------------------------------------------------
# Naming scheme (the runtime side of iwarplint's IW501)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", [
    "verbs.qp.posts",
    "transport.rudp.retransmissions",
    "simnet.port.queue_hwm",
    "obs.registry.self_test",
    "rdmap.write_record.placed_bytes",
])
def test_valid_names_accepted(name):
    assert validate_name(name) == name


@pytest.mark.parametrize("name", [
    "verbs.posts",            # only two segments
    "qp.posts.total",         # unknown layer
    "Verbs.qp.posts",         # uppercase
    "verbs.qp.",              # trailing dot
    "verbs..posts",           # empty segment
    "verbs.qp.posts-total",   # illegal character
])
def test_bad_names_rejected(name):
    with pytest.raises(RegistryError):
        validate_name(name)
    reg = Registry(enabled=True)
    with pytest.raises(RegistryError):
        reg.counter(name)


# ---------------------------------------------------------------------------
# Collisions
# ---------------------------------------------------------------------------


def test_kind_collision_raises():
    reg = Registry(enabled=True)
    reg.counter("verbs.qp.posts")
    with pytest.raises(RegistryError):
        reg.gauge("verbs.qp.posts")


def test_histogram_edge_collision_raises():
    reg = Registry(enabled=True)
    reg.histogram("verbs.cq.poll_batch", buckets=(1, 2, 4))
    with pytest.raises(RegistryError):
        reg.histogram("verbs.cq.poll_batch", buckets=(1, 2, 8))
    # Same edges: same instrument, no error.
    reg.histogram("verbs.cq.poll_batch", buckets=(1, 2, 4))


def test_same_name_different_labels_are_distinct_series():
    reg = Registry(enabled=True)
    reg.counter("verbs.qp.posts", qp="1").inc(3)
    reg.counter("verbs.qp.posts", qp="2").inc(5)
    snap = reg.snapshot()
    assert snap['verbs.qp.posts{qp="1"}'] == 3
    assert snap['verbs.qp.posts{qp="2"}'] == 5


def test_label_order_is_canonical():
    reg = Registry(enabled=True)
    a = reg.counter("verbs.qp.posts", qp="1", host="h0")
    b = reg.counter("verbs.qp.posts", host="h0", qp="1")
    assert a is b


# ---------------------------------------------------------------------------
# Disabled mode (~zero cost)
# ---------------------------------------------------------------------------


def test_disabled_registry_hands_out_null_instruments():
    reg = Registry(enabled=False)
    c = reg.counter("verbs.qp.posts")
    assert c is NULL_INSTRUMENT
    assert reg.gauge("simnet.port.queue_hwm") is NULL_INSTRUMENT
    assert reg.histogram("verbs.cq.poll_batch") is NULL_INSTRUMENT
    c.inc()
    c.inc(10)
    reg.add_collector(lambda: [("simnet.port.tx_frames", {}, "counter", 1)])
    assert reg.collect() == []
    assert reg.snapshot() == {}
    # Disabled registries keep no references into the stack.
    assert reg._collectors == []
    assert reg._instruments == {}


def test_disabled_registry_skips_name_validation_cost_path():
    # Bad names are only caught when enabled — a disabled registry
    # returns the null instrument before touching the name.  (IW501
    # still catches the literal statically.)
    reg = Registry(enabled=False)
    assert reg.counter("not a name") is NULL_INSTRUMENT


# ---------------------------------------------------------------------------
# Reset semantics
# ---------------------------------------------------------------------------


def test_reset_zeroes_values_keeps_registrations():
    reg = Registry(enabled=True)
    reg.counter("verbs.qp.posts").inc(7)
    reg.gauge("simnet.port.queue_hwm").set(9)
    reg.histogram("verbs.cq.poll_batch", buckets=(1, 4)).observe(2)
    reg.reset()
    snap = reg.snapshot()
    assert snap["verbs.qp.posts"] == 0
    assert snap["simnet.port.queue_hwm"] == 0
    assert snap["verbs.cq.poll_batch"]["count"] == 0
    # Registrations survive: the kind map still detects collisions.
    with pytest.raises(RegistryError):
        reg.gauge("verbs.qp.posts")


def test_reset_does_not_touch_collector_backed_values():
    reg = Registry(enabled=True)
    backing = {"n": 5}
    reg.add_collector(
        lambda: [("simnet.port.tx_frames", {}, "counter", backing["n"])]
    )
    reg.reset()
    assert reg.snapshot()["simnet.port.tx_frames"] == 5


# ---------------------------------------------------------------------------
# snapshot / diff
# ---------------------------------------------------------------------------


def test_snapshot_prefix_filter():
    reg = Registry(enabled=True)
    reg.counter("verbs.qp.posts").inc()
    reg.counter("transport.rudp.retransmissions").inc()
    assert list(reg.snapshot("verbs.")) == ["verbs.qp.posts"]


def test_diff_counts_new_keys_from_zero_and_drops_vanished():
    before = {"verbs.qp.posts": 2, "verbs.qp.gone": 9}
    after = {"verbs.qp.posts": 5, "verbs.qp.new": 3}
    d = diff(before, after)
    assert d == {"verbs.qp.posts": 3, "verbs.qp.new": 3}


def test_diff_histograms_bucketwise():
    reg = Registry(enabled=True)
    h = reg.histogram("verbs.cq.poll_batch", buckets=(1, 4))
    h.observe(1)
    before = reg.snapshot()
    h.observe(3)
    h.observe(100)
    d = diff(before, reg.snapshot())
    hd = d["verbs.cq.poll_batch"]
    assert hd["count"] == 2
    assert hd["sum"] == pytest.approx(103)
    assert hd["buckets"] == [[1.0, 0], [4.0, 1], ["+Inf", 2]]


# ---------------------------------------------------------------------------
# Per-simulator attachment
# ---------------------------------------------------------------------------


def test_sim_registry_first_caller_pins_enabled_state():
    class FakeSim:
        obs_registry = None

    sim = FakeSim()
    reg = sim_registry(sim, enable=True)
    assert reg.enabled
    # Later callers share the instance; a conflicting `enable` does not
    # flip an already-created registry.
    assert sim_registry(sim, enable=False) is reg
    assert reg.enabled
