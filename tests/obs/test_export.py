"""Exporter golden tests: the JSON interchange form and the Prometheus
text exposition form of one hand-built registry, byte for byte."""

import json

import pytest

from repro.obs import (
    Registry, dicts_to_samples, merge_samples, samples_to_dicts, to_json,
    to_json_obj, to_prometheus,
)


def _build() -> Registry:
    reg = Registry(enabled=True)
    reg.counter("verbs.qp.posts", qp="1", host="host0").inc(4)
    reg.counter("verbs.qp.posts", qp="2", host="host1").inc(2)
    reg.gauge("simnet.port.queue_hwm", port="host0.p0").set(7)
    h = reg.histogram("verbs.cq.poll_batch", buckets=(1, 2, 4), cq="1")
    for v in (1, 1, 3, 9):
        h.observe(v)
    return reg


GOLDEN_JSON = {
    "metrics": [
        {
            "name": "simnet.port.queue_hwm",
            "labels": {"port": "host0.p0"},
            "kind": "gauge",
            "value": 7,
        },
        {
            "name": "verbs.cq.poll_batch",
            "labels": {"cq": "1"},
            "kind": "histogram",
            "count": 4,
            "sum": 14.0,
            "buckets": [[1.0, 2], [2.0, 2], [4.0, 3], ["+Inf", 4]],
        },
        {
            "name": "verbs.qp.posts",
            "labels": {"host": "host0", "qp": "1"},
            "kind": "counter",
            "value": 4,
        },
        {
            "name": "verbs.qp.posts",
            "labels": {"host": "host1", "qp": "2"},
            "kind": "counter",
            "value": 2,
        },
    ]
}

GOLDEN_PROM = """\
# TYPE simnet_port_queue_hwm gauge
simnet_port_queue_hwm{port="host0.p0"} 7
# TYPE verbs_cq_poll_batch histogram
verbs_cq_poll_batch_bucket{cq="1",le="1"} 2
verbs_cq_poll_batch_bucket{cq="1",le="2"} 2
verbs_cq_poll_batch_bucket{cq="1",le="4"} 3
verbs_cq_poll_batch_bucket{cq="1",le="+Inf"} 4
verbs_cq_poll_batch_sum{cq="1"} 14
verbs_cq_poll_batch_count{cq="1"} 4
# TYPE verbs_qp_posts counter
verbs_qp_posts{host="host0",qp="1"} 4
verbs_qp_posts{host="host1",qp="2"} 2
"""


def test_json_golden():
    assert to_json_obj(_build()) == GOLDEN_JSON
    # The string form parses back to the same object (stable on disk).
    assert json.loads(to_json(_build())) == GOLDEN_JSON


def test_prometheus_golden():
    assert to_prometheus(_build()) == GOLDEN_PROM


def test_json_round_trip():
    samples = _build().collect()
    assert dicts_to_samples(samples_to_dicts(samples)) == samples


def test_merge_samples_sums_counters_maxes_gauges_folds_histograms():
    a, b = _build(), _build()
    b.gauge("simnet.port.queue_hwm", port="host0.p0").set(3)  # lower
    merged = merge_samples([a.collect(), b.collect()])
    by_key = {s.key(): s for s in merged}
    assert by_key['verbs.qp.posts{host="host0",qp="1"}'].value == 8
    assert by_key['simnet.port.queue_hwm{port="host0.p0"}'].value == 7
    hist = by_key['verbs.cq.poll_batch{cq="1"}'].value
    assert hist["count"] == 8
    assert hist["sum"] == pytest.approx(28.0)
    assert hist["buckets"] == [[1.0, 4], [2.0, 4], [4.0, 6], ["+Inf", 8]]


def test_merge_samples_rejects_differing_histogram_buckets():
    a = Registry(enabled=True)
    a.histogram("verbs.cq.poll_batch", buckets=(1, 2)).observe(1)
    b = Registry(enabled=True)
    b.histogram("verbs.cq.poll_batch", buckets=(1, 4)).observe(1)
    with pytest.raises(ValueError):
        merge_samples([a.collect(), b.collect()])


def test_dump_tracked_writes_interchange_format(tmp_path, monkeypatch):
    import repro.obs.metrics as metrics_mod
    from repro.obs import dump_tracked

    monkeypatch.setattr(metrics_mod, "_TRACKED", [_build(), _build()])
    # export.py binds the same list object at import time; patch both.
    import repro.obs.export as export_mod

    monkeypatch.setattr(export_mod, "_TRACKED", metrics_mod._TRACKED)
    out = tmp_path / "snapshot.json"
    n = dump_tracked(str(out))
    data = json.loads(out.read_text())
    assert n == len(data["metrics"]) == 4
    by_name = {
        (row["name"], tuple(sorted(row["labels"].items()))): row
        for row in data["metrics"]
    }
    assert by_name[("verbs.qp.posts", (("host", "host0"), ("qp", "1")))]["value"] == 8
