"""Metrics must be invisible to the simulation.

The core promise of ``repro.obs`` (DESIGN.md §8): instrument creation,
counter increments, and span recording never schedule events, never
branch protocol logic, and never perturb RNG state — so a run with
metrics enabled is *bit-identical* to the same run with metrics
disabled.  This test replays the chaos RUDP scenario both ways and
compares the full wire-level trace.

Frame ids come from a process-global itertools counter and differ
between sequential runs by construction, so the canonical form excludes
them; everything else (event times, frame sizes, ports, drop/dup/tx/rx
kinds, delivery order and times, final clock) must match exactly.
"""

from repro.models.costs import zero_cost_model
from repro.simnet.engine import MS, SEC, US
from repro.simnet.faults import seeded_chaos
from repro.simnet.loss import BernoulliLoss
from repro.simnet.topology import build_testbed
from repro.simnet.trace import Tracer
from repro.transport.ip import IpStack
from repro.transport.rudp import RudpSocket
from repro.transport.udp import UdpStack


def _canon(record):
    """A trace record minus the process-global frame id."""
    frame = record.fields["frame"]
    return (
        record.time, record.kind, record.fields["port"],
        frame.src, frame.dst, frame.payload_size,
    )


def _run_chaos_scenario(metrics: bool):
    tb = build_testbed(2, costs=zero_cost_model(), metrics=metrics)
    if metrics:
        for h in tb.hosts:
            h.wr_tracer = Tracer(tb.sim)
    tracers = []
    for h in tb.hosts:
        t = Tracer(tb.sim)
        h.port.tracer = t
        tracers.append(t)

    socks = []
    for i in (0, 1):
        host = tb.hosts[i]
        udp = UdpStack(host, IpStack(host))
        socks.append(RudpSocket(udp.socket(6000), rto_ns=1 * MS))
    a, b = socks
    tb.set_egress_faults(0, seeded_chaos(
        3,
        loss=BernoulliLoss(0.05, seed=3),
        reorder_prob=0.10,
        reorder_hold_ns=300 * US,
        dup_prob=0.05,
        flap_windows=[(10 * MS, 15 * MS)],
    ))
    tb.set_egress_loss(1, BernoulliLoss(0.03, seed=103))

    got = []
    b.on_message = lambda d, src: got.append((d, tb.sim.now))

    def sender():
        for i in range(100):
            a.sendto(f"det-{i}".encode(), (1, 6000))
            yield 200 * US

    tb.sim.process(sender())
    tb.sim.run(until=5 * SEC)

    wire = [_canon(r) for t in tracers for r in t.records]
    wire.sort()
    return {
        "wire": wire,
        "delivered": got,
        "now": tb.sim.now,
        "registry_samples": len(tb.registry.collect()),
    }


def test_enabled_metrics_do_not_perturb_the_simulation():
    enabled = _run_chaos_scenario(metrics=True)
    disabled = _run_chaos_scenario(metrics=False)

    # The observability actually observed something...
    assert enabled["registry_samples"] > 0
    assert disabled["registry_samples"] == 0
    # ...while the simulation itself is bit-identical.
    assert enabled["now"] == disabled["now"]
    assert enabled["delivered"] == disabled["delivered"]
    assert len(enabled["wire"]) == len(disabled["wire"])
    assert enabled["wire"] == disabled["wire"]
