"""QP lifecycle: the modify_qp ladder, illegal transitions, and the
close-time flush of posted receive WRs (standard verbs semantics — a
destroyed/errored QP completes outstanding WRs with FLUSHED rather than
leaking them)."""

import pytest

from repro.core.verbs import QpError, RecvWR, SendWR, Sge, WrOpcode
from repro.core.verbs.qp import ERROR, INIT, RESET, RTR, RTS, SQD
from repro.core.verbs.wr import WcStatus
from repro.memory.region import Access


@pytest.fixture
def ud(zero_testbed, zero_devices):
    devA, devB = zero_devices
    pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
    cqA, cqB = devA.create_cq(), devB.create_cq()
    qpA = devA.create_ud_qp(pdA, cqA, port=9000)
    qpB = devB.create_ud_qp(pdB, cqB, port=9001)
    return dict(tb=zero_testbed, sim=zero_testbed.sim, devs=(devA, devB),
                pds=(pdA, pdB), cqs=(cqA, cqB), qps=(qpA, qpB))


class TestClose:
    def test_close_flushes_posted_receives(self, ud):
        qp = ud["qps"][0]
        dev, pd = ud["devs"][0], ud["pds"][0]
        wr_ids = []
        for _ in range(3):
            mr = dev.reg_mr(64, Access.local_only(), pd)
            wr = RecvWR(sges=[Sge(mr)])
            wr_ids.append(wr.wr_id)
            qp.post_recv(wr)
        qp.close()
        assert qp.state == ERROR
        assert not qp.rq  # nothing left dangling on the queue
        wcs = ud["cqs"][0].poll(max_entries=8)  # flushed synchronously
        assert [wc.wr_id for wc in wcs] == wr_ids
        assert all(wc.status is WcStatus.FLUSHED and not wc.ok for wc in wcs)

    def test_close_is_idempotent(self, ud):
        qp = ud["qps"][0]
        qp.close()
        qp.close()  # second close is a no-op, not an illegal transition
        assert qp.state == ERROR

    def test_clean_close_reports_no_terminate_reason(self, ud):
        qp = ud["qps"][0]
        qp.close()
        assert qp.terminate_reason is None

    def test_posting_after_close_rejected(self, ud):
        qp = ud["qps"][0]
        dev, pd = ud["devs"][0], ud["pds"][0]
        qp.close()
        mr = dev.reg_mr(64, Access.local_only(), pd)
        with pytest.raises(QpError):
            qp.post_recv(RecvWR(sges=[Sge(mr)]))
        with pytest.raises(QpError):
            qp.post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(mr)],
                                dest=ud["qps"][1].address))


class TestModifyQpLadder:
    def test_sqd_drains_and_resumes_send_queue(self, ud):
        qp = ud["qps"][0]
        src = ud["devs"][0].reg_mr(bytearray(4), Access.local_only(), ud["pds"][0])
        qp.modify_qp(SQD)
        with pytest.raises(QpError):
            qp.post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)],
                                dest=ud["qps"][1].address))
        qp.modify_qp(RTS)  # resume
        qp.post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)],
                            dest=ud["qps"][1].address, signaled=False))

    def test_recycle_through_reset_walks_the_full_ladder(self, ud):
        qp = ud["qps"][0]
        qp.modify_qp(ERROR)
        qp.terminate_reason = "unit-test"
        qp.modify_qp(RESET)
        assert qp.terminate_reason is None  # RESET wipes the error record
        for state in (INIT, RTR, RTS):
            qp.modify_qp(state)
        assert qp.state == RTS

    def test_illegal_transitions_raise(self, ud):
        qp = ud["qps"][0]
        for bad in (INIT, RTR):  # cannot walk the ladder backwards from RTS
            with pytest.raises(QpError):
                qp.modify_qp(bad)
        assert qp.state == RTS  # failed modify leaves the state untouched
        qp.modify_qp(ERROR)
        with pytest.raises(QpError):
            qp.modify_qp(RTS)  # ERROR only recycles through RESET
