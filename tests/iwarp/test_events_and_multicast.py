"""Tests for CQ event notification (solicited events) and UD multicast."""

import pytest

from repro.core.verbs import CompletionQueue, QpError, RecvWR, RnicDevice, SendWR, Sge, WcStatus, WorkCompletion, WrOpcode, multicast_address
from repro.memory.region import Access
from repro.models.costs import zero_cost_model
from repro.simnet.engine import MS, SEC, Simulator
from repro.simnet.topology import build_testbed
from repro.transport.stacks import install_stacks

RUN_LIMIT = 600 * SEC


def _wc(solicited=False):
    return WorkCompletion(
        wr_id=1, opcode=WrOpcode.SEND, status=WcStatus.SUCCESS,
        solicited=solicited,
    )


class TestCqEvents:
    def _cq(self):
        sim = Simulator()
        return sim, CompletionQueue(sim, host=None)

    def test_disarmed_cq_raises_no_events(self):
        sim, cq = self._cq()
        events = []
        cq.on_event = events.append
        cq.push(_wc())
        sim.run()
        assert events == []

    def test_armed_cq_raises_one_event_then_disarms(self):
        sim, cq = self._cq()
        events = []
        cq.on_event = events.append
        cq.req_notify()
        cq.push(_wc())
        cq.push(_wc())
        sim.run()
        assert len(events) == 1
        assert cq.events_raised == 1

    def test_solicited_only_arming_skips_unsolicited(self):
        sim, cq = self._cq()
        events = []
        cq.on_event = events.append
        cq.req_notify(solicited_only=True)
        cq.push(_wc(solicited=False))
        sim.run()
        assert events == []
        cq.push(_wc(solicited=True))
        sim.run()
        assert len(events) == 1

    def test_rearm_after_event(self):
        sim, cq = self._cq()
        events = []
        cq.on_event = lambda c: (events.append(1), c.req_notify())
        cq.req_notify()
        cq.push(_wc())
        sim.run()
        cq.push(_wc())
        sim.run()
        assert len(events) == 2

    def test_event_delivered_via_queue_not_inline(self):
        sim, cq = self._cq()
        order = []
        cq.on_event = lambda c: order.append("event")
        cq.req_notify()
        cq.push(_wc())
        order.append("after-push")
        sim.run()
        assert order == ["after-push", "event"]


class TestSendSolicitedEvent:
    def test_send_se_marks_completion_and_raises_event(self):
        """The §IV.B.3 contrast: send-with-SE is two-sided (needs a posted
        receive) and raises a target event; Write-Record needs neither."""
        tb = build_testbed(costs=zero_cost_model())
        nets = install_stacks(tb)
        devs = [RnicDevice(n) for n in nets]
        pds = [d.alloc_pd() for d in devs]
        cqB = devs[1].create_cq()
        qpA = devs[0].create_ud_qp(pds[0], devs[0].create_cq(), port=9000)
        qpB = devs[1].create_ud_qp(pds[1], cqB, port=9001)
        events = []
        cqB.on_event = lambda cq: events.append(tb.sim.now)
        cqB.req_notify(solicited_only=True)
        dst = devs[1].reg_mr(64, Access.local_only(), pds[1])
        qpB.post_recv(RecvWR(sges=[Sge(dst)]))
        src = devs[0].reg_mr(bytearray(b"wake up"), Access.local_only(), pds[0])
        qpA.post_send(SendWR(
            opcode=WrOpcode.SEND_SE, sges=[Sge(src)], dest=qpB.address,
        ))
        tb.sim.run(until=100 * MS)
        assert len(events) == 1
        wcs = cqB.poll()
        assert wcs and wcs[0].solicited


class TestMulticast:
    def _world(self, n=4):
        tb = build_testbed(n, costs=zero_cost_model())
        nets = install_stacks(tb)
        devs = [RnicDevice(x) for x in nets]
        return tb, devs

    def test_multicast_reaches_all_group_members(self):
        tb, devs = self._world(4)
        group = 6000
        receivers = []
        for i in (1, 2, 3):
            pd = devs[i].alloc_pd()
            cq = devs[i].create_cq()
            qp = devs[i].create_ud_qp(pd, cq, port=group)
            dst = devs[i].reg_mr(256, Access.local_only(), pd)
            qp.post_recv(RecvWR(sges=[Sge(dst)]))
            receivers.append((cq, dst))
        pd0 = devs[0].alloc_pd()
        sender = devs[0].create_ud_qp(pd0, devs[0].create_cq())
        src = devs[0].reg_mr(bytearray(b"to-the-group"), Access.local_only(), pd0)
        sender.post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)],
            dest=multicast_address(group), signaled=False,
        ))
        tb.sim.run(until=100 * MS)
        for cq, dst in receivers:
            wcs = cq.poll()
            assert wcs and wcs[0].ok
            assert bytes(dst.view(0, 12)) == b"to-the-group"
            # Source address is the real sender, not the group.
            assert wcs[0].src[0] == 0

    def test_non_members_do_not_receive(self):
        tb, devs = self._world(3)
        group = 6000
        # Host 1 joins; host 2 binds a different port.
        pd1, pd2 = devs[1].alloc_pd(), devs[2].alloc_pd()
        cq1, cq2 = devs[1].create_cq(), devs[2].create_cq()
        qp1 = devs[1].create_ud_qp(pd1, cq1, port=group)
        qp2 = devs[2].create_ud_qp(pd2, cq2, port=6001)
        for dev, pd, qp in ((devs[1], pd1, qp1), (devs[2], pd2, qp2)):
            dst = dev.reg_mr(64, Access.local_only(), pd)
            qp.post_recv(RecvWR(sges=[Sge(dst)]))
        pd0 = devs[0].alloc_pd()
        sender = devs[0].create_ud_qp(pd0, devs[0].create_cq())
        src = devs[0].reg_mr(bytearray(b"x"), Access.local_only(), pd0)
        sender.post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)],
            dest=multicast_address(group), signaled=False,
        ))
        tb.sim.run(until=100 * MS)
        assert cq1.poll()
        assert not cq2.poll()

    def test_sender_does_not_hear_itself(self):
        tb, devs = self._world(2)
        group = 6000
        pd0 = devs[0].alloc_pd()
        cq0 = devs[0].create_cq()
        qp0 = devs[0].create_ud_qp(pd0, cq0, port=group)
        dst = devs[0].reg_mr(64, Access.local_only(), pd0)
        qp0.post_recv(RecvWR(sges=[Sge(dst)]))
        src = devs[0].reg_mr(bytearray(b"echo?"), Access.local_only(), pd0)
        qp0.post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)],
            dest=multicast_address(group), signaled=False,
        ))
        tb.sim.run(until=100 * MS)
        assert not cq0.poll()  # the switch does not loop frames back

    def test_multicast_rejected_on_reliable_qp(self):
        tb, devs = self._world(2)
        pd = devs[0].alloc_pd()
        qp = devs[0].create_ud_qp(pd, devs[0].create_cq(), reliable=True)
        src = devs[0].reg_mr(bytearray(b"x"), Access.local_only(), pd)
        qp.post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)],
            dest=multicast_address(6000), signaled=False,
        ))
        # The rejection surfaces when the segment reaches the channel.
        with pytest.raises(QpError):
            tb.sim.run(until=100 * MS)

    def test_multicast_fanout_bandwidth(self):
        """Media-fanout sanity: one sender, three group members, every
        member sees every packet."""
        tb, devs = self._world(4)
        group = 5004
        cqs = []
        for i in (1, 2, 3):
            pd = devs[i].alloc_pd()
            cq = devs[i].create_cq()
            qp = devs[i].create_ud_qp(pd, cq, port=group)
            dst = devs[i].reg_mr(2048, Access.local_only(), pd)
            for _ in range(50):
                qp.post_recv(RecvWR(sges=[Sge(dst)]))
            cqs.append(cq)
        pd0 = devs[0].alloc_pd()
        sender = devs[0].create_ud_qp(pd0, devs[0].create_cq())
        src = devs[0].reg_mr(bytearray(1316), Access.local_only(), pd0)
        for _ in range(40):
            sender.post_send(SendWR(
                opcode=WrOpcode.SEND, sges=[Sge(src)],
                dest=multicast_address(group), signaled=False,
            ))
        tb.sim.run(until=500 * MS)
        for cq in cqs:
            assert cq.completions_total == 40
