"""Completion queue and device/verbs-object tests."""

import pytest

from repro.core.verbs.cq import CompletionQueue, CqError
from repro.core.verbs.device import DeviceError, RnicDevice
from repro.core.verbs.wr import WcStatus, WorkCompletion, WrOpcode
from repro.memory.region import Access
from repro.simnet.engine import MS, Simulator


def _wc(i=0):
    return WorkCompletion(wr_id=i, opcode=WrOpcode.SEND, status=WcStatus.SUCCESS)


class TestCompletionQueue:
    def _cq(self, depth=16):
        sim = Simulator()
        return sim, CompletionQueue(sim, host=None, depth=depth)

    def test_fifo_poll(self):
        sim, cq = self._cq()
        cq.push(_wc(1))
        cq.push(_wc(2))
        assert [w.wr_id for w in cq.poll(10)] == [1, 2]
        assert cq.poll() == []

    def test_poll_respects_max_entries(self):
        sim, cq = self._cq()
        for i in range(5):
            cq.push(_wc(i))
        assert len(cq.poll(2)) == 2
        assert len(cq) == 3

    def test_poll_wait_resolves_on_push(self):
        sim, cq = self._cq()
        fut = cq.poll_wait(timeout_ns=100 * MS)
        sim.schedule(5 * MS, cq.push, _wc(9))
        sim.run()
        assert fut.value[0].wr_id == 9

    def test_poll_wait_timeout_returns_empty(self):
        """The §IV.B.1 loss-detection contract."""
        sim, cq = self._cq()
        fut = cq.poll_wait(timeout_ns=10 * MS)
        sim.run()
        assert fut.done and fut.value == []
        assert sim.now == 10 * MS

    def test_poll_wait_immediate_when_queued(self):
        sim, cq = self._cq()
        cq.push(_wc(3))
        fut = cq.poll_wait(timeout_ns=10 * MS)
        assert fut.done and fut.value[0].wr_id == 3

    def test_waiters_fifo(self):
        sim, cq = self._cq()
        f1 = cq.poll_wait(timeout_ns=None)
        f2 = cq.poll_wait(timeout_ns=None)
        cq.push(_wc(1))
        cq.push(_wc(2))
        sim.run()
        assert f1.value[0].wr_id == 1
        assert f2.value[0].wr_id == 2

    def test_overflow_drops_and_counts(self):
        sim, cq = self._cq(depth=2)
        for i in range(4):
            cq.push(_wc(i))
        assert len(cq) == 2
        assert cq.overflows == 2

    def test_depth_validation(self):
        sim = Simulator()
        with pytest.raises(CqError):
            CompletionQueue(sim, host=None, depth=0)

    def test_completions_total(self):
        sim, cq = self._cq()
        for i in range(3):
            cq.push(_wc(i))
        assert cq.completions_total == 3


class TestDevice:
    def test_pd_allocation_distinct(self, zero_devices):
        dev = zero_devices[0]
        assert dev.alloc_pd() != dev.alloc_pd()

    def test_reg_mr_charges_cpu(self, devices):
        dev = devices[0]
        before = dev.host.cpu.busy_ns
        dev.reg_mr(65536, Access.local_only(), 1)
        costs = dev.host.costs
        expected = costs.reg_mr_fixed_ns + costs.reg_mr_per_page_ns * 16
        assert dev.host.cpu.busy_ns - before == expected

    def test_dereg_mr(self, zero_devices):
        dev = zero_devices[0]
        mr = dev.reg_mr(64)
        dev.dereg_mr(mr)
        assert mr.invalidated

    def test_mulpdu_validation(self, zero_stacks):
        with pytest.raises(DeviceError):
            RnicDevice(zero_stacks[0], rc_mulpdu=64)

    def test_ud_qp_ready_immediately_no_wire_traffic(self, zero_devices, zero_testbed):
        """§IV.B item 6: no operating-condition exchange at QP creation."""
        dev = zero_devices[0]
        qp = dev.create_ud_qp(dev.alloc_pd(), dev.create_cq())
        assert qp.ready.done and qp.state == "RTS"
        zero_testbed.sim.run()
        assert zero_testbed.hosts[0].port.tx_frames == 0

    def test_ud_qp_port_assignment(self, zero_devices):
        dev = zero_devices[0]
        qp = dev.create_ud_qp(dev.alloc_pd(), dev.create_cq(), port=7777)
        assert qp.address == (0, 7777)
