"""Verbs edge cases: SGE lists, PD isolation, shared CQs, QP misuse,
deregistration races, zero-byte operations."""

import pytest

from repro.core.verbs import QpError, RecvWR, SendWR, Sge, WrOpcode
from repro.memory.region import Access
from repro.memory.sge import gather, scatter, sge_total
from repro.memory.registry import StagRegistry
from repro.simnet.engine import MS, SEC

RUN_LIMIT = 600 * SEC


@pytest.fixture
def ud(zero_testbed, zero_devices):
    devA, devB = zero_devices
    pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
    cqA, cqB = devA.create_cq(), devB.create_cq()
    qpA = devA.create_ud_qp(pdA, cqA, port=9000)
    qpB = devB.create_ud_qp(pdB, cqB, port=9001)
    return dict(tb=zero_testbed, sim=zero_testbed.sim, devs=(devA, devB),
                pds=(pdA, pdB), cqs=(cqA, cqB), qps=(qpA, qpB))


def _poll(env, side, timeout=5000 * MS):
    fut = env["cqs"][side].poll_wait(timeout_ns=timeout)
    env["sim"].run_until(fut, limit=RUN_LIMIT)
    return fut.value


class TestSgeMechanics:
    def test_sge_defaults_to_whole_region(self):
        reg = StagRegistry()
        mr = reg.register(100)
        sge = Sge(mr)
        assert sge.offset == 0 and sge.length == 100

    def test_sge_bounds_validated(self):
        reg = StagRegistry()
        mr = reg.register(10)
        with pytest.raises(ValueError):
            Sge(mr, 5, 10)

    def test_gather_multiple_sges(self):
        reg = StagRegistry()
        m1 = reg.register(bytearray(b"abc"))
        m2 = reg.register(bytearray(b"defgh"))
        assert gather([Sge(m1), Sge(m2, 1, 3)]) == b"abcefg"

    def test_scatter_offset_spanning_sges(self):
        reg = StagRegistry()
        m1 = reg.register(4)
        m2 = reg.register(4)
        scatter([Sge(m1), Sge(m2)], 2, b"XXXX")
        assert bytes(m1.view()) == b"\x00\x00XX"
        assert bytes(m2.view()) == b"XX\x00\x00"

    def test_scatter_overrun_rejected(self):
        reg = StagRegistry()
        m1 = reg.register(4)
        with pytest.raises(ValueError):
            scatter([Sge(m1)], 2, b"toolong")

    def test_sge_total(self):
        reg = StagRegistry()
        m = reg.register(100)
        assert sge_total([Sge(m, 0, 30), Sge(m, 50, 20)]) == 50

    def test_multi_sge_send_gathers(self, ud):
        devA, devB = ud["devs"]
        m1 = devA.reg_mr(bytearray(b"first-"), Access.local_only(), ud["pds"][0])
        m2 = devA.reg_mr(bytearray(b"second"), Access.local_only(), ud["pds"][0])
        dst = devB.reg_mr(64, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(m1), Sge(m2)],
            dest=ud["qps"][1].address,
        ))
        wcs = _poll(ud, 1)
        assert wcs[0].byte_len == 12
        assert bytes(dst.view(0, 12)) == b"first-second"

    def test_multi_sge_recv_scatters(self, ud):
        devA, devB = ud["devs"]
        src = devA.reg_mr(bytearray(b"0123456789"), Access.local_only(), ud["pds"][0])
        d1 = devB.reg_mr(4, Access.local_only(), ud["pds"][1])
        d2 = devB.reg_mr(6, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(d1), Sge(d2)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        _poll(ud, 1)
        assert bytes(d1.view()) == b"0123"
        assert bytes(d2.view()) == b"456789"


class TestProtectionDomains:
    def test_write_record_rejected_across_pds(self, ud):
        """A stag registered under one PD must not be usable through a QP
        in a different PD."""
        devA, devB = ud["devs"]
        other_pd = devB.alloc_pd()
        sink = devB.reg_mr(64, Access.remote_write(), other_pd)  # wrong PD
        src = devA.reg_mr(bytearray(8), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        ud["sim"].run(until=50 * MS)
        assert ud["qps"][1].rx.remote_access_errors == 1
        assert bytes(sink.view(0, 8)) == b"\x00" * 8

    def test_deregistered_stag_rejected(self, ud):
        devA, devB = ud["devs"]
        sink = devB.reg_mr(64, Access.remote_write(), ud["pds"][1])
        devB.dereg_mr(sink)
        src = devA.reg_mr(bytearray(8), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        ud["sim"].run(until=50 * MS)
        assert ud["qps"][1].rx.remote_access_errors == 1


class TestQpMisuse:
    def test_send_sge_needs_local_read(self, ud):
        devA = ud["devs"][0]
        wo = devA.registry.register(bytearray(8), Access.LOCAL_WRITE, ud["pds"][0])
        with pytest.raises(QpError):
            ud["qps"][0].post_send(SendWR(
                opcode=WrOpcode.SEND, sges=[Sge(wo)], dest=ud["qps"][1].address,
            ))

    def test_recv_sge_needs_local_write(self, ud):
        devB = ud["devs"][1]
        ro = devB.registry.register(bytearray(8), Access.LOCAL_READ, ud["pds"][1])
        with pytest.raises(QpError):
            ud["qps"][1].post_recv(RecvWR(sges=[Sge(ro)]))

    def test_closed_ud_qp_rejects_posts(self, ud):
        qp = ud["qps"][0]
        qp.close()
        src = ud["devs"][0].reg_mr(bytearray(4), Access.local_only(), ud["pds"][0])
        with pytest.raises(QpError):
            qp.post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)],
                                dest=ud["qps"][1].address))

    def test_zero_byte_send(self, ud):
        devB = ud["devs"][1]
        dst = devB.reg_mr(16, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[], dest=ud["qps"][1].address,
        ))
        wcs = _poll(ud, 1)
        assert wcs[0].ok and wcs[0].byte_len == 0

    def test_zero_byte_recv_matches_zero_byte_send(self, ud):
        ud["qps"][1].post_recv(RecvWR(sges=[]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[], dest=ud["qps"][1].address,
        ))
        wcs = _poll(ud, 1)
        assert wcs[0].ok


class TestSharedCqs:
    def test_two_qps_one_cq(self, zero_testbed, zero_devices):
        devA, devB = zero_devices
        pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
        shared_cq = devB.create_cq()
        qp1 = devB.create_ud_qp(pdB, shared_cq, port=7001)
        qp2 = devB.create_ud_qp(pdB, shared_cq, port=7002)
        dst = devB.reg_mr(64, Access.local_only(), pdB)
        qp1.post_recv(RecvWR(sges=[Sge(dst)]))
        qp2.post_recv(RecvWR(sges=[Sge(dst)]))
        sender = devA.create_ud_qp(pdA, devA.create_cq())
        src = devA.reg_mr(bytearray(b"x"), Access.local_only(), pdA)
        for port in (7001, 7002):
            sender.post_send(SendWR(
                opcode=WrOpcode.SEND, sges=[Sge(src)], dest=(1, port),
                signaled=False,
            ))
        zero_testbed.sim.run(until=100 * MS)
        assert shared_cq.completions_total == 2


class TestWorkRequestDefaults:
    def test_wr_ids_unique(self):
        a = SendWR(opcode=WrOpcode.SEND)
        b = SendWR(opcode=WrOpcode.SEND)
        assert a.wr_id != b.wr_id

    def test_send_wr_length(self):
        reg = StagRegistry()
        mr = reg.register(100)
        wr = SendWR(opcode=WrOpcode.SEND, sges=[Sge(mr, 0, 40), Sge(mr, 50, 10)])
        assert wr.length == 50

    def test_recv_wr_capacity(self):
        reg = StagRegistry()
        mr = reg.register(64)
        assert RecvWR(sges=[Sge(mr)]).capacity == 64
        assert RecvWR(sges=[]).capacity == 0
