"""Connected (RC) verbs tests: the traditional iWARP baseline."""

import pytest

from repro.core.verbs import (
    QpError, RecvWR, SendWR, Sge, WcStatus, WrOpcode,
)
from repro.memory.region import Access
from repro.simnet.engine import MS, SEC

RUN_LIMIT = 600 * SEC


@pytest.fixture
def rc(zero_testbed, zero_devices):
    """An established RC pair (host0 active, host1 passive)."""
    devA, devB = zero_devices
    pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
    cqA, cqB = devA.create_cq(), devB.create_cq()
    listener = devB.rc_listen(4791, pdB, lambda: cqB)
    qpA = devA.rc_connect((1, 4791), pdA, cqA)
    accepted = listener.accept_future()
    zero_testbed.sim.run_until(qpA.ready, limit=RUN_LIMIT)
    zero_testbed.sim.run_until(accepted, limit=RUN_LIMIT)
    return {
        "tb": zero_testbed, "sim": zero_testbed.sim,
        "devs": (devA, devB), "pds": (pdA, pdB),
        "cqs": (cqA, cqB), "qps": (qpA, accepted.value),
    }


def _poll(env, side, timeout=5000 * MS):
    fut = env["cqs"][side].poll_wait(timeout_ns=timeout)
    env["sim"].run_until(fut, limit=RUN_LIMIT)
    return fut.value


class TestConnection:
    def test_establishment(self, rc):
        assert rc["qps"][0].state == "RTS"
        assert rc["qps"][1].state == "RTS"

    def test_connect_to_missing_listener_never_ready(self, zero_testbed, zero_devices):
        devA, _ = zero_devices
        pd = devA.alloc_pd()
        qp = devA.rc_connect((1, 9999), pd, devA.create_cq())
        zero_testbed.sim.run(until=5 * SEC)
        assert not qp.ready.done or qp.ready.value is None

    def test_multiple_connections_same_listener(self, zero_testbed, zero_devices):
        devA, devB = zero_devices
        pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
        devB.rc_listen(4791, pdB, devB.create_cq)
        qps = [devA.rc_connect((1, 4791), pdA, devA.create_cq()) for _ in range(3)]
        for qp in qps:
            zero_testbed.sim.run_until(qp.ready, limit=RUN_LIMIT)
            assert qp.state == "RTS"


class TestSendRecv:
    def test_in_order_delivery(self, rc):
        devA, devB = rc["devs"]
        dst = devB.reg_mr(1024, Access.local_only(), rc["pds"][1])
        for _ in range(3):
            rc["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        for i in range(3):
            src = devA.reg_mr(
                bytearray(f"msg-{i}".encode()), Access.local_only(), rc["pds"][0]
            )
            rc["qps"][0].post_send(SendWR(
                opcode=WrOpcode.SEND, sges=[Sge(src)], signaled=False,
            ))
        lens = []
        for i in range(3):
            wcs = _poll(rc, 1)
            assert wcs[0].ok
            lens.append(wcs[0].byte_len)
            # The last-arrived message overwrote dst each time (single
            # buffer reused): in-order semantics give deterministic final
            # content.
        assert bytes(dst.view(0, 5)) == b"msg-2"

    def test_multi_segment_send(self, rc):
        devA, devB = rc["devs"]
        size = 50_000  # > MULPDU: many DDP segments over MPA
        payload = bytes((i * 11) & 0xFF for i in range(size))
        src = devA.reg_mr(bytearray(payload), Access.local_only(), rc["pds"][0])
        dst = devB.reg_mr(size, Access.local_only(), rc["pds"][1])
        rc["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        rc["qps"][0].post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)]))
        wcs = _poll(rc, 1)
        assert wcs[0].ok and wcs[0].byte_len == size
        assert bytes(dst.view(0, size)) == payload

    def test_no_posted_receive_is_fatal_on_rc(self, rc):
        """The §IV.B item 2 relaxation is UD-only: on RC an unmatched
        untagged arrival errors the stream."""
        devA, _ = rc["devs"]
        src = devA.reg_mr(bytearray(b"x"), Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], signaled=False,
        ))
        rc["sim"].run(until=rc["sim"].now + 200 * MS)
        assert rc["qps"][1].state == "ERROR"
        # The terminate propagates back and errors the initiator too.
        assert rc["qps"][0].state == "ERROR"

    def test_post_on_errored_qp_rejected(self, rc):
        devA, _ = rc["devs"]
        rc["qps"][0]._enter_error("test")
        src = devA.reg_mr(bytearray(b"x"), Access.local_only(), rc["pds"][0])
        with pytest.raises(QpError):
            rc["qps"][0].post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)]))

    def test_flush_on_error_completes_recvs(self, rc):
        devB = rc["devs"][1]
        dst = devB.reg_mr(64, Access.local_only(), rc["pds"][1])
        rc["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        rc["qps"][1]._enter_error("test")
        wcs = rc["cqs"][1].poll()
        assert wcs and wcs[0].status is WcStatus.FLUSHED

    def test_dest_address_rejected_on_rc(self, rc):
        devA, _ = rc["devs"]
        src = devA.reg_mr(bytearray(b"x"), Access.local_only(), rc["pds"][0])
        with pytest.raises(QpError):
            rc["qps"][0].post_send(SendWR(
                opcode=WrOpcode.SEND, sges=[Sge(src)], dest=(1, 1),
            ))


class TestRdmaWrite:
    def test_silent_placement(self, rc):
        devA, devB = rc["devs"]
        sink = devB.reg_mr(4096, Access.remote_write(), rc["pds"][1])
        payload = b"one-sided" * 100
        src = devA.reg_mr(bytearray(payload), Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE, sges=[Sge(src)],
            remote_stag=sink.stag, remote_offset=128, signaled=False,
        ))
        rc["sim"].run(until=rc["sim"].now + 100 * MS)
        assert bytes(sink.view(128, len(payload))) == payload
        # Truly silent: no completion at the target.
        assert rc["cqs"][1].poll() == []

    def test_write_then_notify_send(self, rc):
        """Fig. 3 top: RC Write visibility via a follow-up send."""
        devA, devB = rc["devs"]
        sink = devB.reg_mr(1024, Access.remote_write(), rc["pds"][1])
        src = devA.reg_mr(bytearray(b"VALID"), Access.local_only(), rc["pds"][0])
        rc["qps"][1].post_recv(RecvWR(sges=[]))
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE, sges=[Sge(src)],
            remote_stag=sink.stag, remote_offset=0, signaled=False,
        ))
        rc["qps"][0].post_send(SendWR(opcode=WrOpcode.SEND, sges=[], signaled=False))
        wcs = _poll(rc, 1)
        assert wcs[0].ok
        # In-order RC guarantees the write landed before the send.
        assert bytes(sink.view(0, 5)) == b"VALID"

    def test_write_protection_error_terminates(self, rc):
        devA, devB = rc["devs"]
        sink = devB.reg_mr(64, Access.local_only(), rc["pds"][1])
        src = devA.reg_mr(bytearray(b"x"), Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE, sges=[Sge(src)],
            remote_stag=sink.stag, remote_offset=0, signaled=False,
        ))
        rc["sim"].run(until=rc["sim"].now + 200 * MS)
        assert rc["qps"][1].state == "ERROR"
        assert rc["qps"][1].rx.remote_access_errors == 1

    def test_memory_flag_watch_detects_completion(self, rc):
        """The §IV.B.3 'flagged bit in memory that is polled upon'."""
        devA, devB = rc["devs"]
        sink = devB.reg_mr(1000, Access.remote_write(), rc["pds"][1])
        fired = []
        sink.add_write_watch(999, 1, lambda off, ln: fired.append(rc["sim"].now))
        src = devA.reg_mr(bytearray(1000), Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE, sges=[Sge(src)],
            remote_stag=sink.stag, remote_offset=0, signaled=False,
        ))
        rc["sim"].run(until=rc["sim"].now + 100 * MS)
        assert len(fired) == 1


class TestRdmaRead:
    def test_basic_read(self, rc):
        devA, devB = rc["devs"]
        data = b"read-me" * 64
        region = devB.reg_mr(bytearray(data), Access.remote_read(), rc["pds"][1])
        sink = devA.reg_mr(len(data), Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            remote_stag=region.stag, remote_offset=0,
        ))
        wcs = _poll(rc, 0)
        assert wcs[0].ok and wcs[0].opcode is WrOpcode.RDMA_READ
        assert bytes(sink.view()) == data

    def test_read_at_offset(self, rc):
        devA, devB = rc["devs"]
        region = devB.reg_mr(bytearray(b"0123456789"), Access.remote_read(), rc["pds"][1])
        sink = devA.reg_mr(4, Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            remote_stag=region.stag, remote_offset=3,
        ))
        wcs = _poll(rc, 0)
        assert wcs[0].ok and bytes(sink.view()) == b"3456"

    def test_large_read_multi_segment(self, rc):
        devA, devB = rc["devs"]
        size = 40_000
        data = bytes((7 * i) & 0xFF for i in range(size))
        region = devB.reg_mr(bytearray(data), Access.remote_read(), rc["pds"][1])
        sink = devA.reg_mr(size, Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            remote_stag=region.stag, remote_offset=0,
        ))
        wcs = _poll(rc, 0)
        assert wcs[0].ok and bytes(sink.view()) == data

    def test_read_without_remote_read_right_terminates(self, rc):
        devA, devB = rc["devs"]
        region = devB.reg_mr(64, Access.local_only(), rc["pds"][1])
        sink = devA.reg_mr(64, Access.local_only(), rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            remote_stag=region.stag, remote_offset=0,
        ))
        rc["sim"].run(until=rc["sim"].now + 200 * MS)
        assert rc["qps"][1].state == "ERROR"

    def test_read_sink_needs_local_write(self, rc):
        devA, devB = rc["devs"]
        region = devB.reg_mr(64, Access.remote_read(), rc["pds"][1])
        # A read-only sink is rejected locally before any wire traffic.
        ro = devA.registry.register(bytearray(64), Access.LOCAL_READ, rc["pds"][0])
        rc["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(ro)],
            remote_stag=region.stag, remote_offset=0,
        ))
        wcs = _poll(rc, 0)
        assert wcs[0].status is WcStatus.LOCAL_PROTECTION_ERROR
