"""End-to-end CRC protection: corrupted datagrams are detected and
dropped by the DDP-layer CRC32, never placed into memory."""

import pytest

from repro.core.verbs import RecvWR, RnicDevice, SendWR, Sge, WrOpcode
from repro.memory.region import Access
from repro.models.costs import zero_cost_model
from repro.simnet.engine import MS
from repro.simnet.loss import BitErrorModel
from repro.simnet.topology import build_testbed
from repro.transport.stacks import install_stacks


@pytest.fixture
def corrupt_world():
    tb = build_testbed(costs=zero_cost_model())
    nets = install_stacks(tb)
    devs = [RnicDevice(n) for n in nets]
    model = BitErrorModel(1.0, seed=4)  # corrupt every datagram
    nets[1].udp.corruption = model
    return tb, devs, model


def test_biterror_model_statistics():
    model = BitErrorModel(0.25, seed=9)
    changed = 0
    for _ in range(4000):
        data = b"\x00" * 64
        if model.apply(data) != data:
            changed += 1
    assert 0.2 < changed / 4000 < 0.3
    assert model.corrupted == changed
    model.reset()
    assert model.corrupted == 0


def test_biterror_never_mutates_original():
    model = BitErrorModel(1.0, seed=1)
    original = b"immutable-data"
    out = model.apply(original)
    assert original == b"immutable-data"
    assert out != original


def test_biterror_validation():
    with pytest.raises(ValueError):
        BitErrorModel(1.5)


def test_corrupted_send_dropped_by_crc(corrupt_world):
    tb, devs, model = corrupt_world
    pds = [d.alloc_pd() for d in devs]
    cqB = devs[1].create_cq()
    qpA = devs[0].create_ud_qp(pds[0], devs[0].create_cq(), port=9000)
    qpB = devs[1].create_ud_qp(pds[1], cqB, port=9001)
    dst = devs[1].reg_mr(64, Access.local_only(), pds[1])
    qpB.post_recv(RecvWR(sges=[Sge(dst)]))
    src = devs[0].reg_mr(bytearray(b"will-be-mangled"), Access.local_only(), pds[0])
    qpA.post_send(SendWR(
        opcode=WrOpcode.SEND, sges=[Sge(src)], dest=qpB.address, signaled=False,
    ))
    tb.sim.run(until=100 * MS)
    assert qpB.crc_drops == 1
    assert not cqB.poll()
    assert bytes(dst.view(0, 15)) == b"\x00" * 15  # nothing placed


def test_corrupted_write_record_never_touches_memory(corrupt_world):
    tb, devs, model = corrupt_world
    pds = [d.alloc_pd() for d in devs]
    cqB = devs[1].create_cq()
    qpA = devs[0].create_ud_qp(pds[0], devs[0].create_cq(), port=9000)
    qpB = devs[1].create_ud_qp(pds[1], cqB, port=9001)
    sink = devs[1].reg_mr(4096, Access.remote_write(), pds[1])
    src = devs[0].reg_mr(bytearray(b"Z" * 1000), Access.local_only(), pds[0])
    qpA.post_send(SendWR(
        opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
        dest=qpB.address, remote_stag=sink.stag, remote_offset=0, signaled=False,
    ))
    tb.sim.run(until=100 * MS)
    assert qpB.crc_drops == 1
    assert bytes(sink.view(0, 1000)) == b"\x00" * 1000


def test_partial_corruption_rate_partially_delivers():
    tb = build_testbed(costs=zero_cost_model())
    nets = install_stacks(tb)
    devs = [RnicDevice(n) for n in nets]
    nets[1].udp.corruption = BitErrorModel(0.3, seed=3)
    pds = [d.alloc_pd() for d in devs]
    cqB = devs[1].create_cq()
    qpA = devs[0].create_ud_qp(pds[0], devs[0].create_cq(), port=9000)
    qpB = devs[1].create_ud_qp(pds[1], cqB, port=9001)
    dst = devs[1].reg_mr(64, Access.local_only(), pds[1])
    n = 60
    for _ in range(n):
        qpB.post_recv(RecvWR(sges=[Sge(dst)]))
    src = devs[0].reg_mr(bytearray(b"ok"), Access.local_only(), pds[0])
    for _ in range(n):
        qpA.post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=qpB.address,
            signaled=False,
        ))
    tb.sim.run(until=500 * MS)
    delivered = cqB.completions_total
    assert delivered + qpB.crc_drops == n
    assert 0 < qpB.crc_drops < n
