"""DDP header encoding and segmentation/reassembly tests."""

import pytest

from repro.core.ddp.headers import (
    DdpSegment, HeaderError, OP_SEND, OP_WRITE, OP_WRITE_RECORD,
    QN_SEND, decode_read_request, decode_segment, encode_read_request,
)
from repro.core.ddp.segmentation import (
    ReassemblyError, UntaggedReassembly, plan_segments,
)
from repro.core.verbs.wr import RecvWR, Sge
from repro.memory.region import Access
from repro.memory.registry import StagRegistry


class TestHeaders:
    def test_untagged_roundtrip(self):
        seg = DdpSegment(
            opcode=OP_SEND, last=True, payload=b"data",
            qn=QN_SEND, msn=7, mo=1024,
        )
        out = decode_segment(seg.encode())
        assert (out.opcode, out.last, out.tagged) == (OP_SEND, True, False)
        assert (out.qn, out.msn, out.mo) == (QN_SEND, 7, 1024)
        assert out.payload == b"data"
        assert out.msg_id is None

    def test_tagged_roundtrip(self):
        seg = DdpSegment(
            opcode=OP_WRITE, last=False, payload=b"x" * 50,
            tagged=True, stag=0xABCD, to=1 << 40,
        )
        out = decode_segment(seg.encode())
        assert out.tagged and out.stag == 0xABCD and out.to == 1 << 40
        assert not out.last

    def test_ud_extension_roundtrip(self):
        seg = DdpSegment(
            opcode=OP_WRITE_RECORD, last=True, payload=b"p",
            tagged=True, stag=1, to=100,
            msg_id=42, msg_total=1000, msg_offset=900,
        )
        out = decode_segment(seg.encode(), ud=True)
        assert (out.msg_id, out.msg_total, out.msg_offset) == (42, 1000, 900)

    def test_ud_channel_rejects_missing_extension(self):
        seg = DdpSegment(opcode=OP_SEND, last=True, payload=b"p")
        with pytest.raises(HeaderError):
            decode_segment(seg.encode(), ud=True)

    def test_truncated_rejected(self):
        seg = DdpSegment(opcode=OP_SEND, last=True, payload=b"payload")
        data = seg.encode()
        with pytest.raises(HeaderError):
            decode_segment(data[:1])
        with pytest.raises(HeaderError):
            decode_segment(b"")

    def test_wire_size_accounting(self):
        seg = DdpSegment(opcode=OP_SEND, last=True, payload=b"12345")
        assert seg.wire_size == len(seg.encode())
        seg_ud = DdpSegment(
            opcode=OP_SEND, last=True, payload=b"12345",
            msg_id=1, msg_total=5,
        )
        assert seg_ud.wire_size == len(seg_ud.encode())
        assert seg_ud.wire_size == seg.wire_size + 24

    def test_udext_requires_total(self):
        seg = DdpSegment(opcode=OP_SEND, last=True, payload=b"", msg_id=5)
        with pytest.raises(HeaderError):
            seg.encode()

    def test_read_request_payload_roundtrip(self):
        payload = encode_read_request(1, 2, 3, 4, 5)
        assert decode_read_request(payload) == (1, 2, 3, 4, 5)
        with pytest.raises(HeaderError):
            decode_read_request(payload[:-1])


class TestPlanSegments:
    def test_exact_multiple(self):
        specs = plan_segments(3000, 1000)
        assert [(s.offset, s.length, s.last) for s in specs] == [
            (0, 1000, False), (1000, 1000, False), (2000, 1000, True),
        ]

    def test_remainder(self):
        specs = plan_segments(2500, 1000)
        assert specs[-1].offset == 2000 and specs[-1].length == 500
        assert specs[-1].last and not specs[0].last

    def test_single_segment(self):
        specs = plan_segments(10, 1000)
        assert len(specs) == 1 and specs[0].last

    def test_zero_byte_message_gets_one_segment(self):
        specs = plan_segments(0, 1000)
        assert len(specs) == 1
        assert specs[0].length == 0 and specs[0].last

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_segments(100, 0)
        with pytest.raises(ValueError):
            plan_segments(-1, 100)

    def test_coverage_is_exact_partition(self):
        specs = plan_segments(65537, 65465)
        assert sum(s.length for s in specs) == 65537
        assert specs[0].offset == 0
        for prev, cur in zip(specs, specs[1:]):
            assert cur.offset == prev.offset + prev.length


class TestUntaggedReassembly:
    def _wr(self, size=100):
        reg = StagRegistry()
        mr = reg.register(size, Access.local_only())
        return RecvWR(sges=[Sge(mr)]), mr

    def test_in_order_completion(self):
        wr, mr = self._wr()
        r = UntaggedReassembly(wr, 10)
        r.place(0, b"hello", last=False)
        assert not r.complete
        r.place(5, b"world", last=True)
        assert r.complete
        assert bytes(mr.view(0, 10)) == b"helloworld"

    def test_out_of_order_completion(self):
        wr, mr = self._wr()
        r = UntaggedReassembly(wr, 10)
        r.place(5, b"world", last=True)
        assert not r.complete  # saw last but bytes missing
        r.place(0, b"hello", last=False)
        assert r.complete

    def test_message_too_big_for_wr(self):
        wr, _ = self._wr(size=5)
        with pytest.raises(ReassemblyError):
            UntaggedReassembly(wr, 10)

    def test_segment_overrun_rejected(self):
        wr, _ = self._wr()
        r = UntaggedReassembly(wr, 10)
        with pytest.raises(ReassemblyError):
            r.place(8, b"toolong", last=True)

    def test_scatter_across_multiple_sges(self):
        reg = StagRegistry()
        m1 = reg.register(4, Access.local_only())
        m2 = reg.register(6, Access.local_only())
        wr = RecvWR(sges=[Sge(m1), Sge(m2)])
        r = UntaggedReassembly(wr, 10)
        r.place(0, b"abcdefghij", last=True)
        assert r.complete
        assert bytes(m1.view()) == b"abcd"
        assert bytes(m2.view()) == b"efghij"

    def test_zero_byte_message(self):
        wr, _ = self._wr()
        r = UntaggedReassembly(wr, 0)
        r.place(0, b"", last=True)
        assert r.complete
