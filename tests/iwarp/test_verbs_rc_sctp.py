"""RC-over-SCTP verbs tests (the standard's other LLP, RFC 5043 shape)."""

import pytest

from repro.core.verbs import RecvWR, SendWR, Sge, WrOpcode
from repro.core.verbs.device import DeviceError
from repro.memory.region import Access
from repro.simnet.engine import MS, SEC
from repro.simnet.loss import BernoulliLoss

RUN_LIMIT = 600 * SEC


@pytest.fixture
def rc_sctp(zero_testbed, zero_devices):
    devA, devB = zero_devices
    pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
    cqA, cqB = devA.create_cq(), devB.create_cq()
    listener = devB.rc_listen(4792, pdB, lambda: cqB, transport="sctp")
    qpA = devA.rc_connect((1, 4792), pdA, cqA, transport="sctp")
    accepted = listener.accept_future()
    zero_testbed.sim.run_until(qpA.ready, limit=RUN_LIMIT)
    zero_testbed.sim.run_until(accepted, limit=RUN_LIMIT)
    return dict(tb=zero_testbed, sim=zero_testbed.sim, devs=(devA, devB),
                pds=(pdA, pdB), cqs=(cqA, cqB), qps=(qpA, accepted.value))


def _poll(env, side, timeout=5000 * MS):
    fut = env["cqs"][side].poll_wait(timeout_ns=timeout)
    env["sim"].run_until(fut, limit=RUN_LIMIT)
    return fut.value


def test_unknown_transport_rejected(zero_devices):
    dev = zero_devices[0]
    with pytest.raises(DeviceError):
        dev.rc_connect((1, 1), 1, dev.create_cq(), transport="pigeon")
    with pytest.raises(DeviceError):
        dev.rc_listen(1, 1, dev.create_cq, transport="pigeon")


def test_establishment(rc_sctp):
    assert rc_sctp["qps"][0].state == "RTS"
    assert rc_sctp["qps"][1].state == "RTS"


def test_send_recv_multi_segment(rc_sctp):
    devA, devB = rc_sctp["devs"]
    size = 40_000
    payload = bytes((i * 5) & 0xFF for i in range(size))
    src = devA.reg_mr(bytearray(payload), Access.local_only(), rc_sctp["pds"][0])
    dst = devB.reg_mr(size, Access.local_only(), rc_sctp["pds"][1])
    rc_sctp["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
    rc_sctp["qps"][0].post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)]))
    wcs = _poll(rc_sctp, 1)
    assert wcs[0].ok and wcs[0].byte_len == size
    assert bytes(dst.view(0, size)) == payload


def test_rdma_write_placement(rc_sctp):
    devA, devB = rc_sctp["devs"]
    sink = devB.reg_mr(4096, Access.remote_write(), rc_sctp["pds"][1])
    src = devA.reg_mr(bytearray(b"over-sctp"), Access.local_only(), rc_sctp["pds"][0])
    rc_sctp["qps"][0].post_send(SendWR(
        opcode=WrOpcode.RDMA_WRITE, sges=[Sge(src)],
        remote_stag=sink.stag, remote_offset=64, signaled=False,
    ))
    rc_sctp["sim"].run(until=rc_sctp["sim"].now + 100 * MS)
    assert bytes(sink.view(64, 9)) == b"over-sctp"


def test_rdma_read(rc_sctp):
    devA, devB = rc_sctp["devs"]
    data = b"sctp-read" * 300
    region = devB.reg_mr(bytearray(data), Access.remote_read(), rc_sctp["pds"][1])
    sink = devA.reg_mr(len(data), Access.local_only(), rc_sctp["pds"][0])
    rc_sctp["qps"][0].post_send(SendWR(
        opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
        remote_stag=region.stag, remote_offset=0,
    ))
    wcs = _poll(rc_sctp, 0)
    assert wcs[0].ok and bytes(sink.view()) == data


def test_reliable_under_loss(rc_sctp):
    devA, devB = rc_sctp["devs"]
    rc_sctp["tb"].set_egress_loss(0, BernoulliLoss(0.03, seed=7))
    size = 60_000
    payload = bytes((i * 9) & 0xFF for i in range(size))
    src = devA.reg_mr(bytearray(payload), Access.local_only(), rc_sctp["pds"][0])
    dst = devB.reg_mr(size, Access.local_only(), rc_sctp["pds"][1])
    rc_sctp["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
    rc_sctp["qps"][0].post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)]))
    wcs = _poll(rc_sctp, 1, timeout=60 * SEC)
    assert wcs and wcs[0].ok
    assert bytes(dst.view(0, size)) == payload


def test_no_posted_receive_is_fatal(rc_sctp):
    devA, _ = rc_sctp["devs"]
    src = devA.reg_mr(bytearray(b"x"), Access.local_only(), rc_sctp["pds"][0])
    rc_sctp["qps"][0].post_send(SendWR(
        opcode=WrOpcode.SEND, sges=[Sge(src)], signaled=False,
    ))
    rc_sctp["sim"].run(until=rc_sctp["sim"].now + 200 * MS)
    assert rc_sctp["qps"][1].state == "ERROR"
    assert rc_sctp["qps"][0].state == "ERROR"  # TERMINATE propagated
