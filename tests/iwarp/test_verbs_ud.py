"""Datagram verbs tests: UD send/recv, RDMA Write-Record, UD RDMA Read.

These exercise the paper's §IV.B semantics directly at the verbs level,
including the loss behaviors of §IV.B.4 using deterministic loss
injection.
"""

import pytest

from repro.core.rdmap.engine import UD_REASSEMBLY_TIMEOUT_NS
from repro.core.verbs import (
    QpError, RecvWR, SendWR, Sge, WcStatus, WrOpcode,
)
from repro.memory.region import Access
from repro.simnet.engine import MS, SEC
from repro.simnet.loss import ExplicitLoss

RUN_LIMIT = 600 * SEC


@pytest.fixture
def ud(zero_testbed, zero_devices):
    """Two UD QPs + PDs + CQs on the zero-cost testbed."""
    devA, devB = zero_devices
    pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
    cqA, cqB = devA.create_cq(), devB.create_cq()
    qpA = devA.create_ud_qp(pdA, cqA, port=9000)
    qpB = devB.create_ud_qp(pdB, cqB, port=9001)
    return {
        "tb": zero_testbed, "sim": zero_testbed.sim,
        "devs": (devA, devB), "pds": (pdA, pdB),
        "cqs": (cqA, cqB), "qps": (qpA, qpB),
    }


def _poll(env, side, timeout=5000 * MS):
    fut = env["cqs"][side].poll_wait(timeout_ns=timeout)
    env["sim"].run_until(fut, limit=RUN_LIMIT)
    return fut.value


class TestUdSendRecv:
    def test_delivery_with_source_address(self, ud):
        devA, devB = ud["devs"]
        src = devA.reg_mr(bytearray(b"datagram"), Access.local_only(), ud["pds"][0])
        dst = devB.reg_mr(64, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        wcs = _poll(ud, 1)
        assert wcs and wcs[0].ok
        # §IV.B item 4: completions report the sender's address and port.
        assert wcs[0].src == (0, 9000)
        assert wcs[0].byte_len == 8
        assert bytes(dst.view(0, 8)) == b"datagram"

    def test_multi_segment_message_reassembles(self, ud):
        devA, devB = ud["devs"]
        size = 200_000  # > 64 KB: stack-level segmentation (§IV.B.4)
        payload = bytes(i & 0xFF for i in range(size))
        src = devA.reg_mr(bytearray(payload), Access.local_only(), ud["pds"][0])
        dst = devB.reg_mr(size, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        wcs = _poll(ud, 1)
        assert wcs[0].ok and wcs[0].byte_len == size
        assert bytes(dst.view(0, size)) == payload

    def test_no_posted_receive_drops_and_qp_survives(self, ud):
        devA, devB = ud["devs"]
        src = devA.reg_mr(bytearray(b"x"), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        ud["sim"].run(until=50 * MS)
        qpB = ud["qps"][1]
        assert qpB.rx.drops_no_recv_posted == 1
        assert qpB.state == "RTS"  # §IV.B item 2: no error state on UD
        # And the QP still works afterwards.
        dst = devB.reg_mr(16, Access.local_only(), ud["pds"][1])
        qpB.post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=qpB.address,
        ))
        wcs = _poll(ud, 1)
        assert wcs and wcs[0].ok

    def test_message_larger_than_recv_errors_that_wr(self, ud):
        devA, devB = ud["devs"]
        src = devA.reg_mr(bytearray(1000), Access.local_only(), ud["pds"][0])
        small = devB.reg_mr(10, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(small)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        wcs = _poll(ud, 1)
        assert wcs[0].status is WcStatus.LOCAL_LENGTH_ERROR

    def test_lost_fragment_means_no_completion_then_poll_timeout(self, ud):
        devA, devB = ud["devs"]
        ud["tb"].set_egress_loss(0, ExplicitLoss([2]))
        src = devA.reg_mr(bytearray(9000), Access.local_only(), ud["pds"][0])
        dst = devB.reg_mr(9000, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        # §IV.B.1: the CQ must be polled with a timeout to detect loss.
        wcs = _poll(ud, 1, timeout=20 * MS)
        assert wcs == []

    def test_lost_segment_of_large_message_reaps_partial(self, ud):
        devA, devB = ud["devs"]
        # Drop one mid-message 64K segment: ~45 fragments per segment.
        ud["tb"].set_egress_loss(0, ExplicitLoss([50]))
        size = 200_000
        src = devA.reg_mr(bytearray(size), Access.local_only(), ud["pds"][0])
        dst = devB.reg_mr(size, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        ud["sim"].run(until=UD_REASSEMBLY_TIMEOUT_NS + 100 * MS)
        wcs = ud["cqs"][1].poll()
        assert wcs and wcs[0].status is WcStatus.PARTIAL_MESSAGE
        assert 0 < wcs[0].byte_len < size
        assert ud["qps"][1].rx.reaped_partial == 1

    def test_unsignaled_send_produces_no_completion(self, ud):
        devA, devB = ud["devs"]
        src = devA.reg_mr(bytearray(8), Access.local_only(), ud["pds"][0])
        dst = devB.reg_mr(8, Access.local_only(), ud["pds"][1])
        ud["qps"][1].post_recv(RecvWR(sges=[Sge(dst)]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
            signaled=False,
        ))
        _poll(ud, 1)
        assert ud["cqs"][0].poll() == []

    def test_signaled_send_completes_at_llp_handoff(self, ud):
        devA, _ = ud["devs"]
        src = devA.reg_mr(bytearray(8), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=ud["qps"][1].address,
        ))
        wcs = _poll(ud, 0)
        # Source completes even though no receive was posted at the
        # target: completion == handoff to the LLP, not delivery.
        assert wcs[0].ok and wcs[0].opcode is WrOpcode.SEND

    def test_send_without_dest_rejected(self, ud):
        devA, _ = ud["devs"]
        src = devA.reg_mr(bytearray(8), Access.local_only(), ud["pds"][0])
        with pytest.raises(QpError):
            ud["qps"][0].post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(src)]))

    def test_many_peers_one_qp(self, zero_testbed, zero_devices):
        devA, devB = zero_devices
        pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
        cqB = devB.create_cq()
        server = devB.create_ud_qp(pdB, cqB, port=5300)
        dst = devB.reg_mr(4096, Access.local_only(), pdB)
        for _ in range(3):
            server.post_recv(RecvWR(sges=[Sge(dst)]))
        clients = [devA.create_ud_qp(pdA, devA.create_cq()) for _ in range(3)]
        for i, qp in enumerate(clients):
            mr = devA.reg_mr(bytearray(bytes([i]) * 4), Access.local_only(), pdA)
            qp.post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(mr)],
                                dest=server.address))
        srcs = set()
        for _ in range(3):
            fut = cqB.poll_wait(timeout_ns=5000 * MS)
            zero_testbed.sim.run_until(fut, limit=RUN_LIMIT)
            srcs.add(fut.value[0].src)
        assert len(srcs) == 3  # one shared QP served three distinct peers


class TestWriteRecord:
    def _sink(self, ud, size=4096):
        devB = ud["devs"][1]
        return devB.reg_mr(size, Access.remote_write(), ud["pds"][1])

    def test_one_sided_completion_without_posted_receive(self, ud):
        devA, _ = ud["devs"]
        sink = self._sink(ud)
        payload = b"write-record" * 10
        src = devA.reg_mr(bytearray(payload), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        wcs = _poll(ud, 1)
        wc = wcs[0]
        assert wc.ok and wc.opcode is WrOpcode.RDMA_WRITE_RECORD
        assert wc.src == (0, 9000)
        assert wc.validity.complete
        assert wc.validity.ranges() == [(0, len(payload))]
        assert bytes(sink.view(0, len(payload))) == payload

    def test_placement_at_offset(self, ud):
        devA, _ = ud["devs"]
        sink = self._sink(ud)
        src = devA.reg_mr(bytearray(b"ABCD"), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=100,
        ))
        wcs = _poll(ud, 1)
        assert wcs[0].base_offset == 100
        assert bytes(sink.view(100, 4)) == b"ABCD"

    def test_lost_last_segment_loses_whole_message(self, ud):
        """§VI.A.2: 'Loss of this final packet results in the loss of the
        entire message' — no completion is ever raised."""
        devA, _ = ud["devs"]
        size = 200_000
        sink = self._sink(ud, size)
        # First, count the frames one such message takes on the wire, so
        # the loss can target exactly the final one.
        src = devA.reg_mr(bytearray(size), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        _poll(ud, 1)
        frames = ud["tb"].hosts[0].port.tx_frames
        # Now drop exactly the last frame of the second, identical message.
        ud["tb"].set_egress_loss(0, ExplicitLoss([frames]))
        reaped_before = ud["qps"][1].rx.reaped_partial
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        ud["sim"].run(until=ud["sim"].now + UD_REASSEMBLY_TIMEOUT_NS + 100 * MS)
        assert ud["cqs"][1].poll() == []
        assert ud["qps"][1].rx.reaped_partial == reaped_before + 1

    def test_lost_middle_segment_completes_with_gap(self, ud):
        """§VI.A.2: segments are placed as they arrive; the completion on
        the LAST segment declares what is valid."""
        devA, _ = ud["devs"]
        size = 200_000
        sink = self._sink(ud, size)
        # Segment 2 of 4 spans frames ~46-90; drop one of them.
        ud["tb"].set_egress_loss(0, ExplicitLoss([50]))
        payload = bytes(i & 0xFF for i in range(size))
        src = devA.reg_mr(bytearray(payload), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        wcs = _poll(ud, 1)
        wc = wcs[0]
        assert wc.ok
        assert not wc.validity.complete
        assert len(wc.validity.gaps()) == 1
        gap_off, gap_len = wc.validity.gaps()[0]
        # Every valid byte range really is in target memory.
        for off, length in wc.validity.ranges():
            assert bytes(sink.view(off, length)) == payload[off : off + length]
        assert wc.byte_len == size - gap_len

    def test_bad_stag_reported_not_fatal(self, ud):
        devA, _ = ud["devs"]
        src = devA.reg_mr(bytearray(16), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=0xBAD, remote_offset=0,
        ))
        ud["sim"].run(until=50 * MS)
        assert ud["qps"][1].rx.remote_access_errors == 1
        assert ud["qps"][1].state == "RTS"

    def test_sink_without_remote_write_rejected(self, ud):
        devA, devB = ud["devs"]
        sink = devB.reg_mr(64, Access.local_only(), ud["pds"][1])  # no REMOTE_WRITE
        src = devA.reg_mr(bytearray(16), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        ud["sim"].run(until=50 * MS)
        assert ud["qps"][1].rx.remote_access_errors == 1
        assert bytes(sink.view(0, 16)) == b"\x00" * 16  # nothing placed

    def test_write_beyond_sink_bounds_rejected(self, ud):
        devA, _ = ud["devs"]
        sink = self._sink(ud, size=64)
        src = devA.reg_mr(bytearray(128), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
            dest=ud["qps"][1].address, remote_stag=sink.stag, remote_offset=0,
        ))
        ud["sim"].run(until=50 * MS)
        assert ud["qps"][1].rx.remote_access_errors == 1

    def test_concurrent_messages_tracked_independently(self, ud):
        devA, _ = ud["devs"]
        sink = self._sink(ud, 8192)
        for i in range(4):
            src = devA.reg_mr(
                bytearray(bytes([i + 1]) * 100), Access.local_only(), ud["pds"][0]
            )
            ud["qps"][0].post_send(SendWR(
                opcode=WrOpcode.RDMA_WRITE_RECORD, sges=[Sge(src)],
                dest=ud["qps"][1].address, remote_stag=sink.stag,
                remote_offset=i * 100,
            ))
        seen = []
        for _ in range(4):
            wcs = _poll(ud, 1)
            seen.append(wcs[0].base_offset)
        assert sorted(seen) == [0, 100, 200, 300]
        for i in range(4):
            assert bytes(sink.view(i * 100, 100)) == bytes([i + 1]) * 100


class TestUdRdmaRead:
    def test_read_over_datagrams(self, ud):
        """The paper's future-work extension: UD-based RDMA Read."""
        devA, devB = ud["devs"]
        data = b"remote-content" * 50
        src_region = devB.reg_mr(bytearray(data), Access.remote_read(), ud["pds"][1])
        sink = devA.reg_mr(len(data), Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            dest=ud["qps"][1].address,
            remote_stag=src_region.stag, remote_offset=0,
        ))
        wcs = _poll(ud, 0)
        wc = wcs[0]
        assert wc.ok and wc.opcode is WrOpcode.RDMA_READ
        assert wc.validity.complete
        assert bytes(sink.view()) == data

    def test_read_larger_than_segment(self, ud):
        devA, devB = ud["devs"]
        size = 150_000
        data = bytes((i * 3) & 0xFF for i in range(size))
        src_region = devB.reg_mr(bytearray(data), Access.remote_read(), ud["pds"][1])
        sink = devA.reg_mr(size, Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            dest=ud["qps"][1].address,
            remote_stag=src_region.stag, remote_offset=0,
        ))
        wcs = _poll(ud, 0)
        assert wcs[0].ok and bytes(sink.view()) == data

    def test_read_with_lost_response_completes_partial(self, ud):
        devA, devB = ud["devs"]
        size = 150_000
        src_region = devB.reg_mr(bytearray(size), Access.remote_read(), ud["pds"][1])
        sink = devA.reg_mr(size, Access.local_only(), ud["pds"][0])
        # Drop a frame of the response train (host 1 egress).
        ud["tb"].set_egress_loss(1, ExplicitLoss([10]))
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            dest=ud["qps"][1].address,
            remote_stag=src_region.stag, remote_offset=0,
        ))
        ud["sim"].run(until=UD_REASSEMBLY_TIMEOUT_NS + 100 * MS)
        wcs = ud["cqs"][0].poll()
        assert wcs
        assert wcs[0].status in (WcStatus.PARTIAL_MESSAGE, WcStatus.SUCCESS)

    def test_read_protection_error_reported(self, ud):
        devA, devB = ud["devs"]
        region = devB.reg_mr(64, Access.local_only(), ud["pds"][1])  # no REMOTE_READ
        sink = devA.reg_mr(64, Access.local_only(), ud["pds"][0])
        ud["qps"][0].post_send(SendWR(
            opcode=WrOpcode.RDMA_READ, sges=[Sge(sink)],
            dest=ud["qps"][1].address,
            remote_stag=region.stag, remote_offset=0,
        ))
        ud["sim"].run(until=50 * MS)
        assert ud["qps"][1].rx.remote_access_errors == 1


class TestRdModes:
    def test_rd_sendrecv_reliable_under_loss(self, zero_testbed, zero_devices):
        from repro.simnet.loss import BernoulliLoss

        devA, devB = zero_devices
        pdA, pdB = devA.alloc_pd(), devB.alloc_pd()
        cqA, cqB = devA.create_cq(), devB.create_cq()
        qpA = devA.create_ud_qp(pdA, cqA, port=9100, reliable=True)
        qpB = devB.create_ud_qp(pdB, cqB, port=9101, reliable=True)
        zero_testbed.set_egress_loss(0, BernoulliLoss(0.1, seed=6))
        dst = devB.reg_mr(1024, Access.local_only(), pdB)
        msgs = 30
        for _ in range(msgs):
            qpB.post_recv(RecvWR(sges=[Sge(dst)]))
        src = devA.reg_mr(bytearray(b"R" * 100), Access.local_only(), pdA)
        for _ in range(msgs):
            qpA.post_send(SendWR(
                opcode=WrOpcode.SEND, sges=[Sge(src)], dest=qpB.address,
                signaled=False,
            ))
        received = 0
        for _ in range(msgs):
            fut = cqB.poll_wait(timeout_ns=5000 * MS)
            zero_testbed.sim.run_until(fut, limit=RUN_LIMIT)
            if fut.value and fut.value[0].ok:
                received += 1
        assert received == msgs  # reliability: nothing lost
