"""MPA layer tests: CRC, FPDU framing, markers, full connections."""

import pytest

from repro.core.mpa.crc import CrcError, append_crc, crc32, split_and_verify
from repro.core.mpa.fpdu import (
    FramingError, MAX_ULPDU, build_fpdu, fpdu_size, pad_for, parse_fpdu,
)
from repro.core.mpa.markers import MARKER_SIZE, MarkedStreamReader, MarkedStreamWriter, marker_count_for
from repro.core.mpa.connection import MpaConnection, OPERATIONAL
from repro.simnet.engine import SEC
from repro.transport.stacks import install_stacks


class TestCrc:
    def test_roundtrip(self):
        assert split_and_verify(append_crc(b"payload")) == b"payload"

    def test_corruption_detected(self):
        framed = bytearray(append_crc(b"payload"))
        framed[2] ^= 0xFF
        with pytest.raises(CrcError):
            split_and_verify(bytes(framed))

    def test_trailer_corruption_detected(self):
        framed = bytearray(append_crc(b"payload"))
        framed[-1] ^= 0x01
        with pytest.raises(CrcError):
            split_and_verify(bytes(framed))

    def test_too_short(self):
        with pytest.raises(CrcError):
            split_and_verify(b"ab")

    def test_crc32_deterministic(self):
        assert crc32(b"abc") == crc32(b"abc")
        assert crc32(b"abc") != crc32(b"abd")


class TestFpdu:
    def test_padding_math(self):
        # header is 2 bytes; total pre-CRC must be 4-aligned.
        assert pad_for(0) == 2
        assert pad_for(2) == 0
        assert pad_for(3) == 3
        assert pad_for(6) == 0

    def test_size_accounting(self):
        for n in (0, 1, 2, 3, 100, 1408):
            assert fpdu_size(n) == len(build_fpdu(b"x" * n))
            assert fpdu_size(n) % 4 == 0

    def test_roundtrip(self):
        ulpdu = b"hello world"
        frame = build_fpdu(ulpdu)
        parsed, consumed = parse_fpdu(frame, 0)
        assert parsed == ulpdu and consumed == len(frame)

    def test_partial_buffer_returns_none(self):
        frame = build_fpdu(b"data")
        assert parse_fpdu(frame[:-1], 0) is None
        assert parse_fpdu(b"", 0) is None

    def test_corrupted_fpdu_raises(self):
        frame = bytearray(build_fpdu(b"data"))
        frame[3] ^= 0x80
        with pytest.raises(CrcError):
            parse_fpdu(bytes(frame), 0)

    def test_oversized_ulpdu_rejected(self):
        with pytest.raises(FramingError):
            build_fpdu(b"x" * (MAX_ULPDU + 1))

    def test_crc_disabled_mode(self):
        frame = build_fpdu(b"data", crc_enabled=False)
        parsed, consumed = parse_fpdu(frame, 0, crc_enabled=False)
        assert parsed == b"data"
        assert len(frame) == fpdu_size(4, crc_enabled=False)

    def test_back_to_back_parse_with_offset(self):
        stream = build_fpdu(b"one") + build_fpdu(b"three")
        first, n1 = parse_fpdu(stream, 0)
        second, n2 = parse_fpdu(stream, n1)
        assert (first, second) == (b"one", b"three")
        assert n1 + n2 == len(stream)


class TestMarkers:
    def test_marker_positions_every_512(self):
        w = MarkedStreamWriter()
        wire, inserted = w.emit_fpdu(b"a" * 1200)
        # Marker at stream position 0, 512, 1024.
        assert inserted == 3
        assert len(wire) == 1200 + 3 * MARKER_SIZE

    def test_roundtrip_chunked_arbitrarily(self):
        w, r = MarkedStreamWriter(), MarkedStreamReader()
        data = [bytes([i]) * (37 * i % 900 + 1) for i in range(1, 40)]
        wire = bytearray()
        for d in data:
            out, _ = w.emit_fpdu(d)
            wire += out
        recovered = bytearray()
        # Feed in pathological 1-byte chunks.
        for i in range(len(wire)):
            recovered += r.feed(bytes(wire[i : i + 1]))
        assert bytes(recovered) == b"".join(data)
        assert r.markers_stripped == w.markers_emitted

    def test_disabled_markers_pass_through(self):
        w = MarkedStreamWriter(enabled=False)
        wire, inserted = w.emit_fpdu(b"z" * 2000)
        assert inserted == 0 and wire == b"z" * 2000
        r = MarkedStreamReader(enabled=False)
        assert r.feed(wire) == wire

    def test_marker_pointer_values(self):
        w, r = MarkedStreamWriter(), MarkedStreamReader()
        wire, _ = w.emit_fpdu(b"q" * 600)
        r.feed(wire)
        # The marker inside the FPDU (at position 512) points back to the
        # FPDU start at stream position 0... which is itself a marker
        # boundary, so the in-FPDU back-distance is 512.
        assert r.last_marker_pointer in (0, 512)

    def test_marker_count_helper_matches_writer(self):
        w = MarkedStreamWriter()
        pos = 0
        for size in (100, 511, 512, 2000, 3):
            expected = marker_count_for(size, pos)
            wire, inserted = w.emit_fpdu(b"m" * size)
            assert inserted == expected
            pos += len(wire)

    def test_spacing_validation(self):
        with pytest.raises(ValueError):
            MarkedStreamWriter(spacing=3)
        with pytest.raises(ValueError):
            MarkedStreamReader(spacing=4)


class TestMpaConnection:
    def _pair(self, zero_testbed, markers=True, crc=True):
        nets = install_stacks(zero_testbed)
        listener = nets[1].tcp.listen(4000)
        server_conn = {}
        listener.on_accept = lambda sock: server_conn.setdefault(
            "mpa", MpaConnection(sock, initiator=False, markers=markers, crc=crc)
        )
        cli_sock = nets[0].tcp.connect((1, 4000))
        cli = MpaConnection(cli_sock, initiator=True, markers=markers, crc=crc)
        zero_testbed.sim.run_until(cli.ready, limit=5 * SEC)
        return cli, server_conn["mpa"], zero_testbed.sim

    def test_negotiation_reaches_operational(self, zero_testbed):
        cli, srv, sim = self._pair(zero_testbed)
        assert cli.state == OPERATIONAL
        assert srv.state == OPERATIONAL

    def test_ulpdus_delivered_intact_both_ways(self, zero_testbed):
        cli, srv, sim = self._pair(zero_testbed)
        got_s, got_c = [], []
        srv.on_ulpdu = got_s.append
        cli.on_ulpdu = got_c.append
        msgs = [bytes([i]) * (i * 100 + 1) for i in range(8)]
        for m in msgs:
            cli.send_ulpdu(m)
            srv.send_ulpdu(m[::-1])
        sim.run(until=sim.now + 1 * SEC)
        assert got_s == msgs
        assert got_c == [m[::-1] for m in msgs]

    def test_capability_mismatch_fails(self, zero_testbed):
        nets = install_stacks(zero_testbed)
        listener = nets[1].tcp.listen(4000)
        holder = {}
        listener.on_accept = lambda sock: holder.setdefault(
            "mpa", MpaConnection(sock, initiator=False, markers=False)
        )
        cli_sock = nets[0].tcp.connect((1, 4000))
        MpaConnection(cli_sock, initiator=True, markers=True)
        zero_testbed.sim.run(until=5 * SEC)
        assert holder["mpa"].state == "FAILED"

    def test_markerless_mode_works(self, zero_testbed):
        cli, srv, sim = self._pair(zero_testbed, markers=False)
        got = []
        srv.on_ulpdu = got.append
        cli.send_ulpdu(b"no-markers")
        sim.run(until=sim.now + 1 * SEC)
        assert got == [b"no-markers"]

    def test_counters(self, zero_testbed):
        cli, srv, sim = self._pair(zero_testbed)
        srv.on_ulpdu = lambda u: None
        for _ in range(5):
            cli.send_ulpdu(b"x" * 700)
        sim.run(until=sim.now + 1 * SEC)
        assert cli.ulpdus_sent == 5
        assert srv.ulpdus_received == 5
