"""FSM conformance via checker-generated paths.

:func:`iwarpcheck.explore.event_paths_covering_all_edges` emits one
event path per declared arc; replaying every path through the live
``_set_state`` helpers proves the runtime validators accept exactly the
declared tables — every declared transition is taken (which is what
drives the runtime coverage sanitizer to 100% without waivers), and
every undeclared move raises the machine's own error type.

This is the SCTP and MPA tables' first direct table-level coverage; the
QP and TCP machines ride along so the four machines stay symmetric.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS = REPO_ROOT / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from iwarpcheck.explore import event_paths_covering_all_edges  # noqa: E402
from iwarpcheck.model import MACHINE_NAMES, machines_by_name  # noqa: E402

from repro.core.fsm import (  # noqa: E402
    add_transition_observer,
    remove_transition_observer,
)
from repro.core.mpa.connection import MpaConnection, MpaError  # noqa: E402
from repro.core.verbs.qp import QpError, QueuePair  # noqa: E402
from repro.transport.sctp import SctpAssociation, SctpError  # noqa: E402
from repro.transport.tcp.connection import TcpConnection, TcpError  # noqa: E402

#: machine name -> (class, error type, attrs the error detail reads).
SKELETONS = {
    "QP": (QueuePair, QpError, {"qp_num": 7}),
    "TCP": (TcpConnection, TcpError, {"local_port": 4000, "remote": ("peer", 4001)}),
    "MPA": (MpaConnection, MpaError, {}),
    "SCTP": (
        SctpAssociation,
        SctpError,
        {"local_port": 5000, "remote": ("peer", 5001)},
    ),
}

MACHINES = machines_by_name()


def make_skeleton(name: str, state: str):
    """A bare instance with just enough attributes for ``_set_state``:
    the state itself plus whatever the error-detail f-string reads."""
    cls, _error, attrs = SKELETONS[name]
    obj = object.__new__(cls)
    obj.state = state
    for attr, value in attrs.items():
        setattr(obj, attr, value)
    return obj


@pytest.mark.parametrize("name", MACHINE_NAMES)
def test_covering_paths_replay_through_set_state(name):
    machine = MACHINES[name]
    paths = event_paths_covering_all_edges(machine)
    assert paths, f"{name} has no covering paths"
    hops = set()
    for path in paths:
        obj = make_skeleton(name, machine.initial)
        for src, _event, dst in path:
            assert obj.state == src
            obj._set_state(dst)
            assert obj.state == dst
            hops.add((src, dst))
    # Together the paths take every declared (from, to) pair — this is
    # exactly what drives the runtime sanitizer to 100% coverage.
    assert hops == set(machine.declared_pairs())


@pytest.mark.parametrize("name", MACHINE_NAMES)
def test_undeclared_moves_raise(name):
    machine = MACHINES[name]
    _cls, error, _attrs = SKELETONS[name]
    for src in sorted(machine.states):
        allowed = machine.table.get(src, frozenset())
        for dst in sorted(machine.states - allowed - {src}):
            obj = make_skeleton(name, src)
            with pytest.raises(error):
                obj._set_state(dst)
            assert obj.state == src, "failed transition must not move the state"


@pytest.mark.parametrize("name", MACHINE_NAMES)
def test_same_state_set_is_silent_noop(name):
    machine = MACHINES[name]
    observed = []

    def observer(machine_name, src, dst):
        observed.append((machine_name, src, dst))

    add_transition_observer(observer)
    try:
        for state in sorted(machine.states):
            obj = make_skeleton(name, state)
            obj._set_state(state)
            assert obj.state == state
    finally:
        remove_transition_observer(observer)
    assert observed == [], "a same-state set must not reach the observers"
