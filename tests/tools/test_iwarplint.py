"""iwarplint self-tests: every rule family fires exactly where a
violation fixture plants one, and stays silent on clean code — including
the real stack under ``src/``."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS = REPO_ROOT / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from iwarplint import invariants as inv  # noqa: E402
from iwarplint import lint_paths  # noqa: E402
from iwarplint.driver import all_rules, module_name_for  # noqa: E402


# ---------------------------------------------------------------------------
# Fixture-tree plumbing
# ---------------------------------------------------------------------------


def write_tree(root: Path, files: dict) -> Path:
    """Write ``{relative/path.py: source}`` under root, creating the
    ``__init__.py`` chain so files get real dotted module names."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        d = path.parent
        while d != root:
            init = d / "__init__.py"
            if not init.exists():
                init.write_text("")
            d = d.parent
    return root


def codes(violations):
    return [v.rule for v in violations]


def line_of(root: Path, rel: str, marker: str) -> int:
    for idx, text in enumerate((root / rel).read_text().splitlines(), start=1):
        if marker in text:
            return idx
    raise AssertionError(f"marker {marker!r} not found in {rel}")


#: A conformant repro.core.verbs.qp — the mirrored table matches
#: iwarplint.invariants.QP_TABLE exactly and all writes go through the
#: validated helper.
CLEAN_QP = """
    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"
    RTS = "RTS"
    SQD = "SQD"
    ERROR = "ERROR"

    QP_TRANSITIONS = {
        RESET: frozenset({INIT, RTS, ERROR}),
        INIT: frozenset({RTR, RESET, ERROR}),
        RTR: frozenset({RTS, RESET, ERROR}),
        RTS: frozenset({SQD, RESET, ERROR}),
        SQD: frozenset({RTS, RESET, ERROR}),
        ERROR: frozenset({RESET}),
    }

    class QueuePair:
        def __init__(self):
            self.state = RESET

        def _set_state(self, new_state):
            if new_state == self.state:
                return
            if new_state not in QP_TRANSITIONS.get(self.state, frozenset()):
                raise ValueError(new_state)
            self.state = new_state

        def modify_qp(self, new_state):
            self._set_state(new_state)
"""


# ---------------------------------------------------------------------------
# Driver basics
# ---------------------------------------------------------------------------


class TestDriver:
    def test_module_naming_walks_init_chain(self, tmp_path):
        root = write_tree(tmp_path, {"repro/core/ddp/foo.py": "x = 1\n"})
        assert module_name_for(root / "repro/core/ddp/foo.py") == "repro.core.ddp.foo"
        loose = tmp_path / "loose.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == "loose"

    def test_all_rule_families_registered(self):
        table = all_rules()
        for code in ("IW001", "IW101", "IW102", "IW103", "IW201", "IW202",
                     "IW203", "IW204", "IW301", "IW302", "IW303", "IW401",
                     "IW402", "IW403", "IW501"):
            assert code in table

    def test_syntax_error_reported_as_iw001(self, tmp_path):
        root = write_tree(tmp_path, {"repro/simnet/bad.py": "def broken(:\n"})
        assert codes(lint_paths([root])) == ["IW001"]

    def test_select_filters_by_family_prefix(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/transport/helper.py": """
                import time
                from repro.core.verbs import wr

                NOW = time.time()
            """,
        })
        assert codes(lint_paths([root], select=["IW1"])) == ["IW101"]
        assert codes(lint_paths([root], select=["IW401"])) == ["IW401"]

    def test_clean_tree_is_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP,
            "repro/apps/demo.py": """
                from repro.core.verbs import qp
            """,
            "repro/simnet/engine.py": """
                import random

                RNG = random.Random(42)

                def pick(items):
                    return RNG.choice(sorted(items))
            """,
        })
        assert lint_paths([root]) == []


# ---------------------------------------------------------------------------
# IW1xx — layering
# ---------------------------------------------------------------------------


class TestLayering:
    def test_upward_import_fires_iw101(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/transport/helper.py": """
                from repro.core.verbs import wr  # upward
            """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW101"
        assert v.line == line_of(root, "repro/transport/helper.py", "# upward")

    def test_layer_skip_fires_iw102(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/apps/demo.py": """
                from repro.core.ddp import headers
            """,
        })
        assert codes(lint_paths([root])) == ["IW102"]

    def test_sanctioned_skip_is_silent(self, tmp_path):
        # THE paper's sanctioned skip: verbs framing datagrams straight
        # onto the transport, bypassing MPA (section IV.B).
        root = write_tree(tmp_path, {
            "repro/core/verbs/udqp.py": """
                from repro.transport.rudp import RudpSocket
                from repro.transport.udp import UDP_HEADER
            """,
        })
        assert lint_paths([root]) == []

    def test_off_allowlist_module_fires_iw103(self, tmp_path):
        # socketif -> simnet is sanctioned ONLY for the event loop.
        root = write_tree(tmp_path, {
            "repro/core/socketif/shim.py": """
                from repro.simnet.loss import BernoulliLoss
            """,
        })
        assert codes(lint_paths([root])) == ["IW103"]

    def test_stdlib_and_support_imports_are_unrestricted(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/simnet/engine.py": """
                import heapq
                import itertools
                from repro.memory.region import Access
            """,
        })
        assert lint_paths([root]) == []

    def test_type_checking_imports_are_exempt(self, tmp_path):
        # An ``if TYPE_CHECKING:`` import never executes, so it creates
        # no runtime layering edge — even an otherwise-upward one.
        root = write_tree(tmp_path, {
            "repro/transport/helper.py": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.core.verbs import wr
            """,
        })
        assert lint_paths([root]) == []

    def test_type_checking_guard_does_not_shield_runtime_imports(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/transport/helper.py": """
                import typing

                if typing.TYPE_CHECKING:
                    from repro.core.verbs import wr
                from repro.core.verbs import cq  # runtime, upward
            """,
        })
        assert codes(lint_paths([root])) == ["IW101"]


# ---------------------------------------------------------------------------
# IW2xx — FSM conformance
# ---------------------------------------------------------------------------


class TestFsm:
    def test_direct_state_write_fires_iw201(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP + """
        def force_ready(self):
            self.state = RTS  # bypasses the helper
    """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW201"
        assert v.line == line_of(root, "repro/core/verbs/qp.py", "bypasses the helper")

    def test_init_may_assign_initial_state_only(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP.replace(
                "self.state = RESET", "self.state = RTS"
            ),
        })
        assert codes(lint_paths([root])) == ["IW201"]

    def test_guarded_illegal_transition_fires_iw202(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP + """
        def demote(self):
            if self.state == RTS:
                self._set_state(RTR)  # RTS -> RTR is not in the table
    """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW202"
        assert "RTS -> RTR" in v.message

    def test_negated_guard_propagates_after_early_raise(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP + """
        def drain(self):
            if self.state != RTS:
                raise ValueError("not ready")
            self._set_state(SQD)  # legal: state proven RTS here
    """,
        })
        assert lint_paths([root]) == []

    def test_guarded_legal_and_any_target_are_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP + """
        def ladder(self):
            if self.state == INIT:
                self._set_state(RTR)

        def die(self):
            if self.state in (RTS, SQD):
                self._set_state(ERROR)  # ERROR is reachable from anywhere
    """,
        })
        assert lint_paths([root]) == []

    def test_undeclared_state_fires_iw203(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP + """
        def wedge(self):
            self._set_state("LIMBO")
    """,
        })
        assert codes(lint_paths([root])) == ["IW203"]

    def test_table_drift_fires_iw204(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP.replace(
                "RTS: frozenset({SQD, RESET, ERROR}),",
                "RTS: frozenset({RESET, ERROR}),",  # lost the SQD edge
            ),
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW204"
        assert "RTS" in v.message

    def test_unguarded_helper_call_left_to_runtime(self, tmp_path):
        # No enclosing guard: the source set is unknowable statically, so
        # the runtime validation inside _set_state owns the check.
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": CLEAN_QP + """
        def recycle(self):
            self._set_state(RESET)
    """,
        })
        assert lint_paths([root]) == []


# ---------------------------------------------------------------------------
# IW3xx — wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_undeclared_format_fires_iw301(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/ddp/headers.py": """
                import struct

                _ROGUE = struct.Struct("!HHI")  # not in the manifest
            """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW301"
        assert "!HHI" in v.message

    def test_manifest_size_disagreement_fires_iw302(self, tmp_path, monkeypatch):
        monkeypatch.setitem(inv.WIRE_FORMATS["repro.core.ddp.headers"], "!BB", 3)
        root = write_tree(tmp_path, {
            "repro/core/ddp/headers.py": """
                import struct

                _CTRL = struct.Struct("!BB")
            """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW302"
        assert "packs 2 bytes" in v.message

    def test_non_literal_format_fires_iw303(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/mpa/fpdu.py": """
                import struct

                def pack_len(fmt, n):
                    return struct.pack(fmt, n)
            """,
        })
        assert codes(lint_paths([root])) == ["IW303"]

    def test_declared_formats_are_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/transport/rudp.py": """
                import struct

                _HEADER = struct.Struct("!BQ")
                _ACK_ECHO = struct.Struct("!Q")
                _SACK_RANGE = struct.Struct("!QQ")
            """,
        })
        assert lint_paths([root]) == []

    def test_unwatched_modules_are_ignored(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/apps/tool.py": """
                import struct

                _ANYTHING = struct.Struct("!HHHH")
            """,
        })
        assert lint_paths([root]) == []


# ---------------------------------------------------------------------------
# IW4xx — determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_read_fires_iw401(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/simnet/clocky.py": """
                import time

                def stamp():
                    return time.time()  # wall clock
            """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW401"
        assert v.line == line_of(root, "repro/simnet/clocky.py", "wall clock")

    def test_unseeded_randomness_fires_iw402(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/transport/jitter.py": """
                import random

                def wobble():
                    return random.random()

                def make_rng():
                    return random.Random()
            """,
        })
        assert codes(lint_paths([root])) == ["IW402", "IW402"]

    def test_seeded_rng_is_the_sanctioned_pattern(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/simnet/noise.py": """
                import random

                def make_rng(seed):
                    return random.Random(seed)
            """,
        })
        assert lint_paths([root]) == []

    def test_set_iteration_fires_iw403(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/rdmap/sweep.py": """
                def flush(pending: set):
                    for item in pending:  # hash order
                        item.cancel()
            """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW403"
        assert v.line == line_of(root, "repro/core/rdmap/sweep.py", "hash order")

    def test_sorted_and_reductions_over_sets_are_silent(self, tmp_path):
        # Regression for the false positive iwarplint originally raised
        # on simnet/loss.py: any(...) over a set cannot observe order.
        root = write_tree(tmp_path, {
            "repro/simnet/lossy.py": """
                def check(indices: set):
                    bad = any(i < 1 for i in indices)
                    total = sum(i for i in indices)
                    for i in sorted(indices):
                        print(i)
                    return bad, total, {i * 2 for i in indices}
            """,
        })
        assert lint_paths([root]) == []

    def test_out_of_scope_modules_unrestricted(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/apps/cli.py": """
                import time

                def wall():
                    return time.time()
            """,
        })
        assert lint_paths([root]) == []


# ---------------------------------------------------------------------------
# IW5xx — metric naming
# ---------------------------------------------------------------------------


class TestMetricNaming:
    def test_two_segment_name_fires_iw501(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": """
                def instrument(obs):
                    obs.counter("verbs.posts").inc()  # two segments
            """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW501"
        assert v.line == line_of(root, "repro/core/verbs/qp.py", "two segments")

    def test_unknown_layer_fires_iw501(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/transport/rudp_extra.py": """
                def instrument(obs):
                    obs.gauge("llp.rudp.cwnd").set(1)
            """,
        })
        (v,) = lint_paths([root])
        assert v.rule == "IW501"
        assert "unknown layer 'llp'" in v.message

    def test_uppercase_and_bad_chars_fire_iw501(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/simnet/porty.py": """
                def instrument(obs):
                    obs.histogram("simnet.Port.queue-depth")
            """,
        })
        assert codes(lint_paths([root])) == ["IW501"]

    def test_conformant_names_are_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/core/verbs/qp.py": """
                def instrument(obs):
                    obs.counter("verbs.qp.posts", op="send").inc()
                    obs.gauge("transport.tcp.cwnd_bytes").set(1)
                    obs.histogram("verbs.cq.poll_batch", buckets=(1, 2))
            """,
        })
        assert lint_paths([root]) == []

    def test_computed_names_left_to_runtime(self, tmp_path):
        # Pull collectors build names from prefixes; the registry's own
        # validate_name covers those on every collect().
        root = write_tree(tmp_path, {
            "repro/transport/rudp_extra.py": """
                def instrument(obs, key):
                    obs.counter("transport.rudp." + key).inc()
            """,
        })
        assert lint_paths([root]) == []

    def test_non_repro_modules_out_of_scope(self, tmp_path):
        loose = tmp_path / "scratch.py"
        loose.write_text('def f(obs):\n    obs.counter("nope")\n')
        assert lint_paths([loose]) == []


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


class TestPragmas:
    def test_line_pragma_suppresses_named_rule(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/simnet/clocky.py": """
                import time

                def stamp():
                    return time.time()  # iwarplint: disable=IW401
            """,
        })
        assert lint_paths([root]) == []

    def test_line_pragma_does_not_suppress_other_rules(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/simnet/clocky.py": """
                import time

                def stamp():
                    return time.time()  # iwarplint: disable=IW403
            """,
        })
        assert codes(lint_paths([root])) == ["IW401"]

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/simnet/clocky.py": """
                # iwarplint: disable-file=IW401
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert lint_paths([root]) == []


# ---------------------------------------------------------------------------
# The real stack, and the CLI entry points
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_src_is_clean(self):
        assert lint_paths([REPO_ROOT / "src"]) == []

    def test_cli_clean_run_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", "src"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_reports_violations_with_exit_one(self, tmp_path):
        write_tree(tmp_path, {
            "repro/simnet/clocky.py": """
                import time

                NOW = time.time()
            """,
        })
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", str(tmp_path)],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 1
        assert "IW401" in proc.stdout

    def test_cli_missing_path_exits_two(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", str(tmp_path / "nope")],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 2

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "IW201" in proc.stdout and "IW403" in proc.stdout

    def test_cli_json_format_reports_violations(self, tmp_path):
        write_tree(tmp_path, {
            "repro/simnet/clocky.py": """
                import time

                NOW = time.time()
            """,
        })
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", str(tmp_path), "--format", "json"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["tool"] == "iwarplint"
        assert payload["count"] == len(payload["violations"]) == 1
        assert payload["files"] == 1
        violation = payload["violations"][0]
        assert violation["rule"] == "IW401"
        assert violation["path"].endswith("clocky.py")
        assert violation["line"] > 0

    def test_cli_json_format_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", "src", "--format", "json"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["violations"] == []

    def test_cli_unknown_select_code_exits_two(self):
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", "src", "--select", "IW9,IW201"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 2
        assert "IW9" in proc.stderr and "IW201" not in proc.stderr

    def test_cli_valid_select_prefix_accepted(self):
        proc = subprocess.run(
            [sys.executable, "-m", "iwarplint", "src", "--select", "IW2"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
