"""iwarpcheck self-tests: every rule code fires exactly where a seeded
fixture plants a violation (with the promised counterexample trace),
stays silent on the real machines and the real RC product, and the
coverage sanitizer + waiver manifest behave per DESIGN §7."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS = REPO_ROOT / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from iwarpcheck.explore import (  # noqa: E402
    check_machine,
    event_paths_covering_all_edges,
    reachable_paths,
)
from iwarpcheck.model import Machine, load_machines, machines_by_name  # noqa: E402
from iwarpcheck.product import (  # noqa: E402
    ProductInvariant,
    ProductMachine,
    ProductRule,
    check_product,
    rc_product,
)
from iwarpcheck.sanitizer import (  # noqa: E402
    RecordsError,
    TransitionRecorder,
    WaiverError,
    coverage_findings,
    coverage_summary,
    load_records,
    parse_waivers,
)

from repro.core import fsm as fsm_module  # noqa: E402
from repro.core.fsm import transition  # noqa: E402


def make_machine(table, events, initial="A", terminals=("C",), name="M"):
    return Machine(
        name=name,
        initial=initial,
        terminals=frozenset(terminals),
        table={src: frozenset(dsts) for src, dsts in table.items()},
        events=events,
    )


def codes(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# Single-machine rules (IC1xx)
# ---------------------------------------------------------------------------


def test_ic101_event_references_undeclared_state():
    machine = make_machine(
        {"A": {"B"}, "B": {"C"}},
        {("A", "go"): "B", ("B", "fin"): "C", ("D", "ghost"): "C"},
    )
    findings = check_machine(machine)
    assert codes(findings) == ["IC101"]
    assert "'D'" in findings[0].message


def test_ic102_event_not_permitted_by_pair_table():
    machine = make_machine(
        {"A": {"B"}, "B": {"C"}},
        {("A", "go"): "B", ("B", "fin"): "C", ("B", "loop"): "B"},
    )
    findings = check_machine(machine)
    assert codes(findings) == ["IC102"]
    # Minimal trace: reach B, then take the offending self-loop.
    assert findings[0].trace == (("A", "go", "B"), ("B", "loop", "B"))


def test_ic103_dead_declared_transition():
    machine = make_machine(
        {"A": {"B", "C"}, "B": {"C"}},
        {("A", "go"): "B", ("B", "fin"): "C"},
    )
    findings = check_machine(machine)
    assert codes(findings) == ["IC103"]
    assert "A -> C" in findings[0].message


def test_ic104_unreachable_state():
    machine = make_machine(
        {"A": {"B"}, "B": {"C"}, "D": {"C"}},
        {("A", "go"): "B", ("B", "fin"): "C", ("D", "leak"): "C"},
    )
    findings = check_machine(machine)
    assert codes(findings) == ["IC104"]
    assert "state D" in findings[0].message


def test_ic105_no_path_to_terminal():
    machine = make_machine(
        {"A": {"B", "C"}},
        {("A", "go"): "B", ("A", "alt"): "C"},
    )
    findings = check_machine(machine)
    assert codes(findings) == ["IC105"]
    assert findings[0].trace == (("A", "go", "B"),)


def test_reachable_paths_are_minimal():
    machine = make_machine(
        {"A": {"B"}, "B": {"C"}, "C": {}},
        {("A", "go"): "B", ("B", "fin"): "C", ("A", "skip"): "B"},
        terminals=("C",),
    )
    paths = reachable_paths(machine)
    assert paths["A"] == []
    assert len(paths["C"]) == 2


def test_covering_paths_cover_every_event_arc():
    machine = make_machine(
        {"A": {"B"}, "B": {"C"}},
        {("A", "go"): "B", ("B", "fin"): "C"},
    )
    paths = event_paths_covering_all_edges(machine)
    last_arcs = {path[-1] for path in paths}
    assert last_arcs == {("A", "go", "B"), ("B", "fin", "C")}


def test_real_machines_are_clean():
    for machine in load_machines():
        assert check_machine(machine) == [], machine.name


# ---------------------------------------------------------------------------
# Product rules (IC2xx)
# ---------------------------------------------------------------------------


def comp(name, initial, table, events, terminals=()):
    return make_machine(table, events, initial=initial, terminals=terminals, name=name)


A = comp("A", "X", {"X": {"Y"}}, {("X", "adv"): "Y"}, terminals=("Y",))
B = comp("B", "P", {"P": {"Q"}}, {("P", "adv"): "Q"}, terminals=("Q",))

ADV_A = ProductRule("adv_a", guard={"a": frozenset({"X"})}, update={"a": "Y"})


def make_product(rules, invariants=(), terminal=None):
    return ProductMachine(
        name="FIXTURE",
        components=("a", "b"),
        machines={"a": A, "b": B},
        initial={"a": "X", "b": "P"},
        rules=tuple(rules),
        invariants=tuple(invariants),
        terminal=terminal or {},
    )


def test_ic201_rule_moves_component_illegally():
    back = ProductRule("back_a", guard={"a": frozenset({"Y"})}, update={"a": "X"})
    findings = check_product(make_product([ADV_A, back]))
    assert codes(findings) == ["IC201"]
    assert "moves a Y -> X" in findings[0].message
    assert findings[0].trace[-1] == ("Y/P", "back_a", "<illegal>")


def test_ic202_always_invariant_violation_with_trace():
    invariant = ProductInvariant(
        "y-implies-q",
        kind="always",
        when={"a": frozenset({"Y"})},
        require={"b": frozenset({"Q"})},
    )
    findings = check_product(make_product([ADV_A], invariants=[invariant]))
    assert codes(findings) == ["IC202"]
    assert "y-implies-q" in findings[0].message
    assert findings[0].trace == (("X/P", "adv_a", "Y/P"),)


def test_ic203_leads_to_invariant_violation():
    invariant = ProductInvariant(
        "y-leads-to-q",
        kind="leads-to",
        when={"a": frozenset({"Y"})},
        require={"b": frozenset({"Q"})},
    )
    findings = check_product(make_product([ADV_A], invariants=[invariant]))
    assert codes(findings) == ["IC203"]


def test_ic204_no_path_to_terminal_composite():
    findings = check_product(
        make_product([ADV_A], terminal={"a": frozenset({"X"})})
    )
    assert codes(findings) == ["IC204"]
    assert findings[0].trace == (("X/P", "adv_a", "Y/P"),)


def test_ic205_dead_product_rule():
    never = ProductRule("never", guard={"a": frozenset({"Z"})})
    findings = check_product(make_product([ADV_A, never]))
    assert codes(findings) == ["IC205"]
    assert "'never'" in findings[0].message


def test_state_explosion_is_a_hard_error():
    with pytest.raises(RuntimeError, match="exceeded"):
        check_product(make_product([ADV_A]), max_states=1)


def test_real_rc_product_is_clean():
    assert check_product(rc_product(machines_by_name())) == []


# ---------------------------------------------------------------------------
# Runtime sanitizer (IC3xx)
# ---------------------------------------------------------------------------


class _Box:
    def __init__(self, state):
        self.state = state


def test_recorder_observes_shared_transition_helper():
    # Detach any session-wide observers (the IWARP_FSM_COVERAGE
    # recorder, if the suite runs under ``make verify-fsm``) so this
    # test's toy "FIX" machine never leaks into the real recording.
    saved = fsm_module._observers[:]
    del fsm_module._observers[:]
    recorder = TransitionRecorder()
    try:
        recorder.install()
        box = _Box("A")
        table = {"A": frozenset({"B"}), "B": frozenset({"A"})}
        transition(box, "FIX", table, "B", ValueError)
        transition(box, "FIX", table, "B", ValueError)  # same-state no-op
        transition(box, "FIX", table, "A", ValueError)
        recorder.uninstall()
        assert recorder.counts == {("FIX", "A", "B"): 1, ("FIX", "B", "A"): 1}
        # Uninstalled: further transitions are invisible.
        transition(_Box("A"), "FIX", {"A": frozenset({"B"})}, "B", ValueError)
        assert sum(recorder.counts.values()) == 2
    finally:
        fsm_module._observers[:] = saved


def test_records_round_trip(tmp_path):
    recorder = TransitionRecorder()
    recorder("QP", "RESET", "INIT")
    recorder("QP", "RESET", "INIT")
    path = tmp_path / "records.json"
    recorder.write(str(path))
    assert load_records(str(path)) == {("QP", "RESET", "INIT"): 2}


def test_malformed_records_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99}')
    with pytest.raises(RecordsError):
        load_records(str(path))


def test_waiver_parsing():
    waivers = parse_waivers(
        "# comment\n\nQP RESET -> INIT: constructor-only path\n"
    )
    assert len(waivers) == 1
    assert waivers[0].key == ("QP", "RESET", "INIT")
    assert waivers[0].reason == "constructor-only path"
    with pytest.raises(WaiverError, match="malformed"):
        parse_waivers("QP RESET INIT missing arrow\n")


FIX = make_machine(
    {"A": {"B"}, "B": {"C"}},
    {("A", "go"): "B", ("B", "fin"): "C"},
    name="FIX",
)


def test_ic301_undeclared_runtime_transition():
    findings = coverage_findings(
        {("FIX", "A", "B"): 1, ("FIX", "B", "C"): 1, ("FIX", "A", "C"): 1}, [FIX]
    )
    assert codes(findings) == ["IC301"]
    assert "A -> C" in findings[0].message


def test_ic302_unexercised_transition_and_waiver():
    records = {("FIX", "A", "B"): 1}
    findings = coverage_findings(records, [FIX])
    assert codes(findings) == ["IC302"]
    assert "B -> C" in findings[0].message
    waivers = parse_waivers("FIX B -> C: teardown path needs fault injection\n")
    assert coverage_findings(records, [FIX], waivers) == []


def test_ic303_waiver_for_undeclared_transition():
    waivers = parse_waivers("FIX C -> A: no such transition\n")
    findings = coverage_findings(
        {("FIX", "A", "B"): 1, ("FIX", "B", "C"): 1}, [FIX], waivers
    )
    assert codes(findings) == ["IC303"]


def test_ic304_stale_waiver():
    waivers = parse_waivers("FIX B -> C: stale\n")
    findings = coverage_findings(
        {("FIX", "A", "B"): 1, ("FIX", "B", "C"): 1}, [FIX], waivers
    )
    assert codes(findings) == ["IC304"]


def test_coverage_summary_counts():
    waivers = parse_waivers("FIX B -> C: pending\n")
    summary = coverage_summary({("FIX", "A", "B"): 1}, [FIX], waivers)
    assert summary == {"FIX": {"declared": 2, "covered": 1, "waived": 1}}


# ---------------------------------------------------------------------------
# CLI contract: exit codes and formats
# ---------------------------------------------------------------------------


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "iwarpcheck", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_cli_check_clean_json():
    proc = run_cli("--format", "json")
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["tool"] == "iwarpcheck"
    assert payload["count"] == 0
    assert "RC-PRODUCT" in payload["machines"]


def test_cli_unknown_machine_is_usage_error():
    proc = run_cli("check", "--machine", "NOPE")
    assert proc.returncode == 2
    assert "unknown machine" in proc.stderr


def test_cli_missing_records_is_usage_error(tmp_path):
    proc = run_cli("coverage", str(tmp_path / "missing.json"))
    assert proc.returncode == 2


def _write_records(path, skip=()):
    transitions = []
    for machine in load_machines():
        for src, dst in sorted(machine.declared_pairs()):
            if (machine.name, src, dst) in skip:
                continue
            transitions.append(
                {"machine": machine.name, "from": src, "to": dst, "count": 1}
            )
    path.write_text(json.dumps({"version": 1, "transitions": transitions}))


def test_cli_coverage_full_recording_passes(tmp_path):
    records = tmp_path / "records.json"
    _write_records(records)
    report = tmp_path / "report.json"
    proc = run_cli("coverage", str(records), "--output", str(report))
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(report.read_text())
    assert payload["count"] == 0
    for stats in payload["summary"].values():
        assert stats["covered"] == stats["declared"]


def test_cli_coverage_gap_fails_with_ic302(tmp_path):
    records = tmp_path / "records.json"
    _write_records(records, skip={("SCTP", "ESTABLISHED", "SHUTDOWN_SENT")})
    proc = run_cli("coverage", str(records), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert codes_from_payload(payload) == ["IC302"]


def codes_from_payload(payload):
    return [finding["rule"] for finding in payload["findings"]]


def test_cli_check_writes_output_report(tmp_path):
    report = tmp_path / "model-check.json"
    proc = run_cli("--output", str(report))
    assert proc.returncode == 0
    payload = json.loads(report.read_text())
    assert payload["mode"] == "check"
    assert payload["findings"] == []
