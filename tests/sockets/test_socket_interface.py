"""iWARP socket interface (shim) tests: datagram, stream, interception."""

import pytest

from repro.core.socketif import (
    Interceptor, IwSocketInterface, NativeSocketApi, SOCK_DGRAM, SOCK_STREAM,
    SocketError,
)
from repro.core.verbs import RnicDevice
from repro.simnet.engine import MS, SEC

RUN_LIMIT = 600 * SEC


@pytest.fixture
def apis(zero_testbed, zero_stacks):
    devs = [RnicDevice(n) for n in zero_stacks]
    return (
        zero_testbed,
        IwSocketInterface(devs[0], rdma_mode=True, pool_slots=8, pool_slot_bytes=8192),
        IwSocketInterface(devs[1], rdma_mode=True, pool_slots=8, pool_slot_bytes=8192),
    )


@pytest.fixture
def sr_apis(zero_testbed, zero_stacks):
    devs = [RnicDevice(n) for n in zero_stacks]
    return (
        zero_testbed,
        IwSocketInterface(devs[0], rdma_mode=False, pool_slots=8, pool_slot_bytes=8192),
        IwSocketInterface(devs[1], rdma_mode=False, pool_slots=8, pool_slot_bytes=8192),
    )


def _echo_once(tb, a, b, payload):
    """b echoes one datagram; returns what a got back."""
    result = {}

    def server():
        fd = b.socket(SOCK_DGRAM, port=7000)
        got = yield b.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)
        data, src = got
        b.sendto(fd, b"echo:" + data, src)

    def client():
        fd = a.socket(SOCK_DGRAM)
        a.sendto(fd, payload, (1, 7000))
        got = yield a.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)
        result["data"] = got[0] if got else None

    tb.sim.process(server())
    done = tb.sim.process(client()).finished
    tb.sim.run_until(done, limit=RUN_LIMIT)
    return result["data"]


class TestDgram:
    def test_echo_write_record_mode(self, apis):
        tb, a, b = apis
        assert _echo_once(tb, a, b, b"payload") == b"echo:payload"

    def test_echo_sendrecv_mode(self, sr_apis):
        tb, a, b = sr_apis
        assert _echo_once(tb, a, b, b"payload") == b"echo:payload"

    def test_large_datagram_write_record(self, apis):
        tb, a, b = apis
        payload = bytes(i & 0xFF for i in range(50_000))
        assert _echo_once(tb, a, b, payload) == b"echo:" + payload

    def test_recvfrom_timeout_returns_none(self, apis):
        tb, a, _ = apis
        result = {}

        def client():
            fd = a.socket(SOCK_DGRAM)
            result["got"] = yield a.recvfrom_future(fd, 100, timeout_ns=5 * MS)

        done = tb.sim.process(client()).finished
        tb.sim.run_until(done, limit=RUN_LIMIT)
        assert result["got"] is None

    def test_bufsize_truncates(self, apis):
        tb, a, b = apis
        result = {}

        def server():
            fd = b.socket(SOCK_DGRAM, port=7001)
            got = yield b.recvfrom_future(fd, 4, timeout_ns=5 * SEC)
            result["got"] = got

        def client():
            fd = a.socket(SOCK_DGRAM)
            a.sendto(fd, b"0123456789", (1, 7001))
            yield 0

        tb.sim.process(client())
        done = tb.sim.process(server()).finished
        tb.sim.run_until(done, limit=RUN_LIMIT)
        assert result["got"][0] == b"0123"

    def test_oversized_untagged_datagram_rejected(self, sr_apis):
        _, a, _ = sr_apis
        fd = a.socket(SOCK_DGRAM)
        with pytest.raises(SocketError):
            a.sendto(fd, b"x" * 10_000, (1, 7000))  # > pool slot 8192

    def test_getsockname(self, apis):
        _, a, _ = apis
        fd = a.socket(SOCK_DGRAM, port=4321)
        assert a.getsockname(fd) == (0, 4321)

    def test_bad_fd_raises(self, apis):
        _, a, _ = apis
        with pytest.raises(SocketError):
            a.sendto(999, b"x", (1, 1))

    def test_close_releases_fd(self, apis):
        _, a, _ = apis
        fd = a.socket(SOCK_DGRAM)
        n = a.open_fds()
        a.close(fd)
        assert a.open_fds() == n - 1

    def test_one_advertisement_per_peer(self, apis):
        """§VI.B.1: buffers are not re-advertised per message."""
        tb, a, b = apis
        regs_before = {}

        def server():
            fd = b.socket(SOCK_DGRAM, port=7002)
            got = yield b.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)
            assert got is not None
            # After the first message the peer's ring exists; no further
            # registrations may happen for subsequent messages.
            regs_before["n"] = b.device.registry.registrations
            for _ in range(4):
                got = yield b.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)
                assert got is not None

        def client():
            fd = a.socket(SOCK_DGRAM)
            for i in range(5):
                a.sendto(fd, bytes([i]) * 100, (1, 7002))
                yield 1 * MS

        srv = tb.sim.process(server())
        tb.sim.process(client())
        tb.sim.run_until(srv.finished, limit=RUN_LIMIT)
        assert b.device.registry.registrations == regs_before["n"]


class TestStream:
    def test_connect_send_recv(self, apis):
        tb, a, b = apis
        result = {}

        def server():
            lfd = b.socket(SOCK_STREAM)
            b.listen(lfd, 8080)
            cfd = yield b.accept_future(lfd)
            got = b""
            while len(got) < 10:
                got += yield b.recv_future(cfd, 1 << 16)
            b.send(cfd, got.upper())

        def client():
            fd = a.socket(SOCK_STREAM)
            yield a.connect_future(fd, (1, 8080))
            a.send(fd, b"streamdata")
            result["got"] = yield a.recv_future(fd, 1 << 16)

        tb.sim.process(server())
        done = tb.sim.process(client()).finished
        tb.sim.run_until(done, limit=RUN_LIMIT)
        assert result["got"] == b"STREAMDATA"

    def test_large_stream_transfer(self, apis):
        tb, a, b = apis
        payload = bytes((i * 13) & 0xFF for i in range(300_000))
        result = {"got": b""}

        def server():
            lfd = b.socket(SOCK_STREAM)
            b.listen(lfd, 8081)
            cfd = yield b.accept_future(lfd)
            while len(result["got"]) < len(payload):
                result["got"] += yield b.recv_future(cfd, 1 << 20)

        def client():
            fd = a.socket(SOCK_STREAM)
            yield a.connect_future(fd, (1, 8081))
            a.send(fd, payload)

        srv = tb.sim.process(server())
        tb.sim.process(client())
        tb.sim.run_until(srv.finished, limit=RUN_LIMIT)
        assert result["got"] == payload

    def test_send_before_connect_raises(self, apis):
        _, a, _ = apis
        fd = a.socket(SOCK_STREAM)
        with pytest.raises(SocketError):
            a.send(fd, b"early")

    def test_stream_ops_on_dgram_fd_rejected(self, apis):
        _, a, _ = apis
        fd = a.socket(SOCK_DGRAM)
        with pytest.raises(SocketError):
            a.send(fd, b"x")


class TestNativeAndInterceptor:
    def test_native_dgram_echo(self, zero_testbed, zero_stacks):
        tb = zero_testbed
        a = NativeSocketApi(zero_stacks[0])
        b = NativeSocketApi(zero_stacks[1])
        assert _echo_once(tb, a, b, b"native") == b"echo:native"

    def test_native_stream(self, zero_testbed, zero_stacks):
        tb = zero_testbed
        a = NativeSocketApi(zero_stacks[0])
        b = NativeSocketApi(zero_stacks[1])
        result = {}

        def server():
            lfd = b.socket(SOCK_STREAM)
            b.listen(lfd, 8082)
            cfd = yield b.accept_future(lfd)
            data = yield b.recv_future(cfd, 100)
            b.send(cfd, data[::-1])

        def client():
            fd = a.socket(SOCK_STREAM)
            yield a.connect_future(fd, (1, 8082))
            a.send(fd, b"abc")
            result["got"] = yield a.recv_future(fd, 100)

        tb.sim.process(server())
        done = tb.sim.process(client()).finished
        tb.sim.run_until(done, limit=RUN_LIMIT)
        assert result["got"] == b"cba"

    def test_interceptor_routes_dgram_to_iwarp(self, zero_testbed, zero_stacks):
        tb = zero_testbed
        devs = [RnicDevice(n) for n in zero_stacks]
        iw = [IwSocketInterface(d, pool_slots=4, pool_slot_bytes=4096) for d in devs]
        nat = [NativeSocketApi(n) for n in zero_stacks]
        # Intercept datagrams only.
        ia = Interceptor(nat[0], iw[0], intercept_dgram=True, intercept_stream=False)
        ib = Interceptor(nat[1], iw[1], intercept_dgram=True, intercept_stream=False)
        assert _echo_once(tb, ia, ib, b"through-shim") == b"echo:through-shim"
        # The iWARP devices saw the traffic (registrations happened).
        assert devs[0].registry.registrations > 0

    def test_interceptor_passthrough_when_disabled(self, zero_testbed, zero_stacks):
        tb = zero_testbed
        nat = [NativeSocketApi(n) for n in zero_stacks]
        ia = Interceptor(nat[0], None)
        ib = Interceptor(nat[1], None)
        assert _echo_once(tb, ia, ib, b"plain") == b"echo:plain"
