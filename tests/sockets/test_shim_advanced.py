"""Advanced socket-shim scenarios: ring wrap, concurrent peers, stream
interception, and error paths."""

import pytest

from repro.core.socketif import (
    Interceptor, IwSocketInterface, NativeSocketApi, SOCK_DGRAM, SOCK_STREAM,
)
from repro.core.verbs import RnicDevice
from repro.simnet.engine import MS, SEC

RUN_LIMIT = 600 * SEC


@pytest.fixture
def world(zero_testbed, zero_stacks):
    devs = [RnicDevice(n) for n in zero_stacks]

    def make(dev, pool_slots=8, pool_slot_bytes=8192, **kw):
        return IwSocketInterface(
            dev, pool_slots=pool_slots, pool_slot_bytes=pool_slot_bytes, **kw
        )

    return zero_testbed, devs, make


class TestWriteRecordRing:
    def test_ring_wrap_preserves_messages(self, world):
        tb, devs, make = world
        a = make(devs[0], rdma_mode=True, ring_bytes=4096)
        b = make(devs[1], rdma_mode=True, ring_bytes=4096)
        # Note: ring size is what *B* advertises; B's interface config
        # governs the ring A writes into.
        got = []

        def server():
            fd = b.socket(SOCK_DGRAM, port=7100)
            while len(got) < 6:
                r = yield b.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)
                assert r is not None
                got.append(r[0])

        def client():
            fd = a.socket(SOCK_DGRAM)
            # 6 x 1.5 KB through a 4 KB ring: several wraps.
            for i in range(6):
                a.sendto(fd, bytes([i]) * 1500, (1, 7100))
                yield 2 * MS  # consumer keeps up, as the design assumes

        srv = tb.sim.process(server())
        tb.sim.process(client())
        tb.sim.run_until(srv.finished, limit=RUN_LIMIT)
        assert got == [bytes([i]) * 1500 for i in range(6)]

    def test_message_exceeding_ring_falls_back_to_sendrecv(self, world):
        tb, devs, make = world
        a = make(devs[0], rdma_mode=True, ring_bytes=2048,
                 pool_slot_bytes=65536)
        b = make(devs[1], rdma_mode=True, ring_bytes=2048,
                 pool_slot_bytes=65536)
        got = {}

        def server():
            fd = b.socket(SOCK_DGRAM, port=7101)
            got["r"] = yield b.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)

        def client():
            fd = a.socket(SOCK_DGRAM)
            a.sendto(fd, b"L" * 10_000, (1, 7101))  # > ring_bytes
            yield 0

        srv = tb.sim.process(server())
        tb.sim.process(client())
        tb.sim.run_until(srv.finished, limit=RUN_LIMIT)
        assert got["r"][0] == b"L" * 10_000


class TestConcurrentPeers:
    def test_many_clients_one_server_socket(self, world):
        tb, devs, make = world
        a = make(devs[0], rdma_mode=True)
        b = make(devs[1], rdma_mode=True)
        sources = []

        def server():
            fd = b.socket(SOCK_DGRAM, port=7200)
            for _ in range(4):
                r = yield b.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)
                assert r is not None
                sources.append(r[1])
                b.sendto(fd, b"ack:" + r[0][:4], r[1])

        def client(i, acks):
            fd = a.socket(SOCK_DGRAM)
            a.sendto(fd, bytes([i]) * 64, (1, 7200))
            r = yield a.recvfrom_future(fd, 65536, timeout_ns=5 * SEC)
            acks.append(r[0])

        acks = []
        srv = tb.sim.process(server())
        for i in range(4):
            tb.sim.process(client(i, acks))
        tb.sim.run_until(srv.finished, limit=RUN_LIMIT)
        tb.sim.run(until=tb.sim.now + 50 * MS)
        assert len(set(sources)) == 4     # four distinct peer addresses
        assert len(acks) == 4             # each got its own reply
        # The server registered one ring per peer (plus its scratch).
        assert len(b._fds) == 1


class TestInterceptorStream:
    def test_stream_interception_end_to_end(self, zero_testbed, zero_stacks):
        tb = zero_testbed
        devs = [RnicDevice(n) for n in zero_stacks]
        iw = [IwSocketInterface(d, pool_slots=4, pool_slot_bytes=8192)
              for d in devs]
        nat = [NativeSocketApi(n) for n in zero_stacks]
        ia = Interceptor(nat[0], iw[0], intercept_stream=True)
        ib = Interceptor(nat[1], iw[1], intercept_stream=True)
        result = {}

        def server():
            lfd = ib.socket(SOCK_STREAM)
            ib.listen(lfd, 8200)
            cfd = yield ib.accept_future(lfd)
            data = yield ib.recv_future(cfd, 1 << 16)
            ib.send(cfd, data[::-1])

        def client():
            fd = ia.socket(SOCK_STREAM)
            yield ia.connect_future(fd, (1, 8200))
            ia.send(fd, b"intercepted")
            result["got"] = yield ia.recv_future(fd, 1 << 16)

        tb.sim.process(server())
        done = tb.sim.process(client()).finished
        tb.sim.run_until(done, limit=RUN_LIMIT)
        assert result["got"] == b"detpecretni"
        # Traffic rode iWARP, not native TCP.
        assert zero_stacks[1].tcp.open_connections() >= 1  # MPA underneath
        assert devs[0].registry.registrations > 0

    def test_unknown_fd_raises(self, zero_stacks):
        nat = NativeSocketApi(zero_stacks[0])
        interceptor = Interceptor(nat, None)
        with pytest.raises(KeyError):
            interceptor.sendto(("bogus", 1), b"x", (1, 1))

    def test_mixed_routing(self, zero_testbed, zero_stacks):
        """Datagrams intercepted, streams native, in one interceptor."""
        tb = zero_testbed
        devs = [RnicDevice(n) for n in zero_stacks]
        iw = [IwSocketInterface(d, pool_slots=4, pool_slot_bytes=4096)
              for d in devs]
        nat = [NativeSocketApi(n) for n in zero_stacks]
        ia = Interceptor(nat[0], iw[0], intercept_dgram=True,
                         intercept_stream=False)
        ib = Interceptor(nat[1], iw[1], intercept_dgram=True,
                         intercept_stream=False)
        result = {}

        def server():
            dfd = ib.socket(SOCK_DGRAM, port=7300)
            lfd = ib.socket(SOCK_STREAM)
            ib.listen(lfd, 8300)
            r = yield ib.recvfrom_future(dfd, 4096, timeout_ns=5 * SEC)
            ib.sendto(dfd, b"dgram-ok", r[1])
            cfd = yield ib.accept_future(lfd)
            yield ib.recv_future(cfd, 4096)
            ib.send(cfd, b"stream-ok")

        def client():
            dfd = ia.socket(SOCK_DGRAM)
            ia.sendto(dfd, b"ping", (1, 7300))
            result["dgram"] = (yield ia.recvfrom_future(dfd, 4096, timeout_ns=5 * SEC))[0]
            sfd = ia.socket(SOCK_STREAM)
            yield ia.connect_future(sfd, (1, 8300))
            ia.send(sfd, b"hello")
            result["stream"] = yield ia.recv_future(sfd, 4096)

        tb.sim.process(server())
        done = tb.sim.process(client()).finished
        tb.sim.run_until(done, limit=RUN_LIMIT)
        assert result["dgram"] == b"dgram-ok"
        assert result["stream"] == b"stream-ok"
