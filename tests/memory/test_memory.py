"""Tests for registered memory, STag registry, validity maps, accounting."""

import pytest

from repro.memory.accounting import FootprintModel, MemoryMeter
from repro.memory.region import Access, MemoryAccessError, MemoryRegion
from repro.memory.registry import StagRegistry
from repro.memory.validity import ValidityMap


class TestAccess:
    def test_composite_rights(self):
        assert Access.remote_write() & Access.REMOTE_WRITE
        assert Access.remote_write() & Access.LOCAL_READ
        assert not (Access.local_only() & Access.REMOTE_WRITE)
        assert Access.full() & Access.REMOTE_READ


class TestMemoryRegion:
    def _mr(self, size=100, access=Access.full()):
        return MemoryRegion(0x10, bytearray(size), access, pd_handle=1)

    def test_local_write_and_read(self):
        mr = self._mr()
        mr.write(10, b"abc")
        assert bytes(mr.read(10, 3)) == b"abc"

    def test_remote_write_requires_right(self):
        mr = self._mr(access=Access.local_only())
        with pytest.raises(MemoryAccessError):
            mr.write(0, b"x", remote=True)
        mr.write(0, b"x")  # local is fine

    def test_remote_read_requires_right(self):
        mr = self._mr(access=Access.remote_write())
        with pytest.raises(MemoryAccessError):
            mr.read(0, 1, remote=True)

    def test_bounds_enforced(self):
        mr = self._mr(size=10)
        with pytest.raises(MemoryAccessError):
            mr.write(8, b"abc")
        with pytest.raises(MemoryAccessError):
            mr.read(-1, 2)

    def test_invalidated_region_rejects_access(self):
        mr = self._mr()
        mr.invalidate()
        with pytest.raises(MemoryAccessError):
            mr.read(0, 1)

    def test_view_is_zero_copy(self):
        mr = self._mr()
        view = mr.view(5, 10)
        mr.write(5, b"hello")
        assert bytes(view[:5]) == b"hello"  # sees the write, no copy

    def test_key_advertisement(self):
        mr = self._mr(size=100)
        key = mr.key(10, 50)
        assert (key.stag, key.offset, key.length) == (0x10, 10, 50)
        with pytest.raises(MemoryAccessError):
            mr.key(90, 20)

    def test_pages_rounds_up(self):
        assert MemoryRegion(1, bytearray(1), Access.full(), 0).pages == 1
        assert MemoryRegion(1, bytearray(4096), Access.full(), 0).pages == 1
        assert MemoryRegion(1, bytearray(4097), Access.full(), 0).pages == 2

    def test_requires_bytearray(self):
        with pytest.raises(TypeError):
            MemoryRegion(1, b"immutable", Access.full(), 0)

    def test_write_watch_fires_on_overlap(self):
        mr = self._mr(size=100)
        hits = []
        handle = mr.add_write_watch(50, 1, lambda off, ln: hits.append((off, ln)))
        mr.write(0, b"x" * 10)       # no overlap
        mr.write(45, b"y" * 10)      # covers byte 50
        assert hits == [(45, 10)]
        mr.remove_write_watch(handle)
        mr.write(50, b"z")
        assert len(hits) == 1


class TestStagRegistry:
    def test_register_and_resolve(self):
        reg = StagRegistry()
        mr = reg.register(64, Access.remote_write(), pd_handle=7)
        got = reg.resolve(mr.stag, 0, 64, Access.REMOTE_WRITE, pd_handle=7)
        assert got is mr

    def test_unknown_stag(self):
        reg = StagRegistry()
        with pytest.raises(MemoryAccessError):
            reg.resolve(0xDEAD, 0, 1, Access.REMOTE_WRITE)

    def test_pd_mismatch_rejected(self):
        reg = StagRegistry()
        mr = reg.register(64, Access.remote_write(), pd_handle=1)
        with pytest.raises(MemoryAccessError):
            reg.resolve(mr.stag, 0, 1, Access.REMOTE_WRITE, pd_handle=2)

    def test_rights_checked_at_resolve(self):
        reg = StagRegistry()
        mr = reg.register(64, Access.remote_read(), pd_handle=1)
        with pytest.raises(MemoryAccessError):
            reg.resolve(mr.stag, 0, 1, Access.REMOTE_WRITE, pd_handle=1)

    def test_bounds_checked_at_resolve(self):
        reg = StagRegistry()
        mr = reg.register(64, Access.remote_write())
        with pytest.raises(MemoryAccessError):
            reg.resolve(mr.stag, 60, 10, Access.REMOTE_WRITE)

    def test_deregistered_stag_never_aliases(self):
        reg = StagRegistry()
        mr = reg.register(64, Access.remote_write())
        old_stag = mr.stag
        reg.deregister(mr)
        mr2 = reg.register(64, Access.remote_write())
        assert mr2.stag != old_stag
        with pytest.raises(MemoryAccessError):
            reg.resolve(old_stag, 0, 1, Access.REMOTE_WRITE)

    def test_double_deregister_rejected(self):
        reg = StagRegistry()
        mr = reg.register(8)
        reg.deregister(mr)
        with pytest.raises(MemoryAccessError):
            reg.deregister(mr)

    def test_pinned_bytes(self):
        reg = StagRegistry()
        reg.register(100)
        reg.register(200)
        assert reg.pinned_bytes() == 300
        assert len(reg) == 2

    def test_register_existing_buffer(self):
        reg = StagRegistry()
        buf = bytearray(b"hello")
        mr = reg.register(buf)
        mr.write(0, b"HELLO")
        assert buf == b"HELLO"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StagRegistry().register(-1)


class TestValidityMap:
    def test_empty(self):
        v = ValidityMap(100)
        assert v.valid_bytes() == 0
        assert not v.complete
        assert v.gaps() == [(0, 100)]
        assert v.fraction_valid() == 0.0

    def test_single_chunk(self):
        v = ValidityMap(100)
        v.add(10, 20)
        assert v.ranges() == [(10, 20)]
        assert v.covered(10, 20)
        assert not v.covered(9, 2)
        assert v.gaps() == [(0, 10), (30, 70)]

    def test_adjacent_chunks_merge(self):
        v = ValidityMap(100)
        v.add(0, 10)
        v.add(10, 10)
        assert v.ranges() == [(0, 20)]

    def test_overlapping_chunks_merge(self):
        v = ValidityMap(100)
        v.add(0, 30)
        v.add(20, 30)
        assert v.ranges() == [(0, 50)]

    def test_out_of_order_completion(self):
        v = ValidityMap(30)
        v.add(20, 10)
        v.add(0, 10)
        assert not v.complete
        v.add(10, 10)
        assert v.complete
        assert v.ranges() == [(0, 30)]

    def test_idempotent_adds(self):
        v = ValidityMap(50)
        v.add(5, 10)
        v.add(5, 10)
        assert v.valid_bytes() == 10

    def test_bounds_validated(self):
        v = ValidityMap(10)
        with pytest.raises(ValueError):
            v.add(5, 10)
        with pytest.raises(ValueError):
            v.add(-1, 2)

    def test_zero_length_ignored(self):
        v = ValidityMap(10)
        v.add(5, 0)
        assert v.valid_bytes() == 0
        assert v.covered(3, 0)

    def test_zero_total_complete(self):
        v = ValidityMap(0)
        assert v.complete
        assert v.fraction_valid() == 1.0

    def test_equality(self):
        a, b = ValidityMap(10), ValidityMap(10)
        a.add(0, 5)
        b.add(0, 5)
        assert a == b
        b.add(6, 2)
        assert a != b

    def test_iteration(self):
        v = ValidityMap(100)
        v.add(0, 10)
        v.add(50, 10)
        assert list(v) == [(0, 10), (50, 10)]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ValidityMap(-1)


class TestFootprintModel:
    def test_socket_only_prediction_near_paper(self):
        m = FootprintModel()
        assert 26.0 < m.socket_only_improvement_percent() < 30.0

    def test_improvement_grows_with_clients(self):
        m = FootprintModel()
        vals = [m.improvement_percent(n) for n in (100, 1000, 10_000)]
        assert vals[0] < vals[1] < vals[2]
        assert 22.0 < vals[2] < 26.0  # paper: 24.1 %

    def test_ud_cheaper_per_client(self):
        m = FootprintModel()
        assert m.ud_per_client() < m.rc_per_client()

    def test_totals_affine_in_clients(self):
        m = FootprintModel()
        assert m.rc_total(10) - m.rc_total(9) == m.rc_per_client()
        assert m.ud_total(10) - m.ud_total(0) == 10 * m.ud_per_client()

    def test_negative_clients_rejected(self):
        with pytest.raises(ValueError):
            FootprintModel().rc_total(-1)

    def test_sweep(self):
        m = FootprintModel()
        sweep = m.sweep([10, 100])
        assert set(sweep) == {10, 100}


class TestMemoryMeter:
    def test_alloc_free_roundtrip(self):
        meter = MemoryMeter(FootprintModel())
        base = meter.bytes_now
        meter.alloc("udp_socket")
        meter.alloc("app_call", count=3)
        assert meter.count("app_call") == 3
        meter.free("app_call", count=3)
        meter.free("udp_socket")
        assert meter.bytes_now == base

    def test_high_water_tracks_peak(self):
        meter = MemoryMeter(FootprintModel())
        meter.alloc("tcp_socket", count=10)
        peak = meter.bytes_now
        meter.free("tcp_socket", count=10)
        assert meter.high_water == peak

    def test_overfree_rejected(self):
        meter = MemoryMeter(FootprintModel())
        with pytest.raises(ValueError):
            meter.free("udp_socket")

    def test_unknown_kind_rejected(self):
        meter = MemoryMeter(FootprintModel())
        with pytest.raises(ValueError):
            meter.alloc("flux_capacitor")

    def test_meter_matches_closed_form(self):
        m = FootprintModel()
        meter = MemoryMeter(m)
        n = 42
        meter.alloc("tcp_socket", n)
        meter.alloc("rc_qp", n)
        meter.alloc("app_call", n)
        assert meter.bytes_now == m.rc_total(n)
