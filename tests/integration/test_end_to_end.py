"""Cross-layer integration tests: every layer at once, under stress."""


from repro.bench.harness import VerbsEndpointPair
from repro.core.verbs import RecvWR, SendWR, Sge, WrOpcode
from repro.memory.region import Access
from repro.simnet.engine import MS, SEC
from repro.simnet.loss import BernoulliLoss

RUN_LIMIT = 3000 * SEC


class TestLatencyOrdering:
    """The paper's headline latency relationships hold by construction of
    the calibrated model; these tests pin them against regression."""

    def test_small_message_ud_beats_rc(self):
        ud = VerbsEndpointPair.build("ud_sendrecv").pingpong_latency_us(64, iters=8)
        rc = VerbsEndpointPair.build("rc_sendrecv").pingpong_latency_us(64, iters=8)
        # Paper: ~27-28 us vs ~33 us.
        assert 22 < ud < 32
        assert 28 < rc < 40
        assert ud < rc

    def test_write_record_tracks_ud_sendrecv(self):
        sr = VerbsEndpointPair.build("ud_sendrecv").pingpong_latency_us(256, iters=8)
        wr = VerbsEndpointPair.build("ud_write_record").pingpong_latency_us(256, iters=8)
        assert abs(sr - wr) / sr < 0.1

    def test_midrange_crossover_rc_wins(self):
        """Fig. 5 medium panel: RC send/recv slightly best at 16-64 KB."""
        ud = VerbsEndpointPair.build("ud_sendrecv").pingpong_latency_us(32768, iters=6)
        rc = VerbsEndpointPair.build("rc_sendrecv").pingpong_latency_us(32768, iters=6)
        assert rc < ud

    def test_large_messages_ud_wins(self):
        """Fig. 5 large panel: UD better >= 128 KB."""
        ud = VerbsEndpointPair.build("ud_write_record").pingpong_latency_us(262144, iters=4)
        rc = VerbsEndpointPair.build("rc_sendrecv").pingpong_latency_us(262144, iters=4)
        assert ud < rc


class TestBandwidthOrdering:
    def test_write_record_dominates_large_messages(self):
        """Fig. 6: WR-R best at 512 KB, RC Write worst by ~3.5x."""
        wr = VerbsEndpointPair.build("ud_write_record").bandwidth_mbs(524288)["mbs"]
        rcw = VerbsEndpointPair.build("rc_rdma_write").bandwidth_mbs(524288)["mbs"]
        assert wr / rcw > 2.5
        assert 200 < wr < 300  # CPU-bound software-stack territory

    def test_ud_sendrecv_beats_rc_sendrecv(self):
        ud = VerbsEndpointPair.build("ud_sendrecv").bandwidth_mbs(262144)["mbs"]
        rc = VerbsEndpointPair.build("rc_sendrecv").bandwidth_mbs(262144)["mbs"]
        assert 1.05 < ud / rc < 2.0  # paper: +33.4 %


class TestLossBehaviour:
    def test_sendrecv_collapses_write_record_survives(self):
        """Figs. 7 vs 8 at 1 MB / 1 % loss."""
        size, rate = 1 << 20, 0.01
        sr = VerbsEndpointPair.build(
            "ud_sendrecv", loss=BernoulliLoss(rate, seed=3)
        ).bandwidth_mbs(size, messages=30)
        wr = VerbsEndpointPair.build(
            "ud_write_record", loss=BernoulliLoss(rate, seed=3)
        ).bandwidth_mbs(size, messages=30)
        assert sr["mbs"] < 30  # whole-message delivery collapsed
        assert wr["mbs"] > 150  # partial placement sustained

    def test_write_record_data_integrity_under_loss(self):
        """Every byte range a completion declares valid really holds the
        sender's bytes — across loss, fragmentation and segmentation."""
        pair = VerbsEndpointPair.build(
            "ud_write_record", loss=BernoulliLoss(0.02, seed=8)
        )
        sim = pair.sim
        size = 300_000
        sent_payload = bytes(pair.send_mrs[0].view(0, size))
        completions = []

        def receiver():
            while len(completions) < 1:
                wcs = yield pair.cqs[1].poll_wait(timeout_ns=400 * MS)
                if not wcs:
                    return
                completions.append(wcs[0])

        def sender():
            pair._post_message(0, size)
            yield 0

        sim.process(sender())
        rx = sim.process(receiver()).finished
        sim.run_until(rx, limit=RUN_LIMIT)
        if completions:  # the LAST segment may itself have been lost
            wc = completions[0]
            for off, length in wc.validity.ranges():
                assert bytes(pair.sinks[1].view(off, length)) == \
                    sent_payload[off : off + length]

    def test_rd_mode_delivers_everything_under_loss(self):
        pair = VerbsEndpointPair.build(
            "rd_sendrecv", loss=BernoulliLoss(0.05, seed=5)
        )
        out = pair.bandwidth_mbs(4096, messages=50, window=8)
        assert out["received_msgs"] == 50


class TestScalability:
    def test_ud_memory_advantage_is_monotone(self):
        from repro.memory.accounting import FootprintModel

        m = FootprintModel()
        prev = 0.0
        for n in (10, 100, 1000, 10_000, 100_000):
            cur = m.improvement_percent(n)
            assert cur > prev
            prev = cur
        # Asymptote stays below the socket-only bound (app state dilutes).
        assert prev < m.socket_only_improvement_percent()

    def test_single_ud_qp_serves_many_peers_rc_needs_n_connections(self):
        """The connection-scalability contrast behind the paper's pitch."""
        from repro.core.verbs import RnicDevice
        from repro.simnet.topology import build_testbed
        from repro.models.costs import zero_cost_model
        from repro.transport.stacks import install_stacks

        tb = build_testbed(costs=zero_cost_model())
        nets = install_stacks(tb)
        devs = [RnicDevice(n) for n in nets]
        pdA, pdB = devs[0].alloc_pd(), devs[1].alloc_pd()
        cqB = devs[1].create_cq()
        server = devs[1].create_ud_qp(pdB, cqB, port=5000)
        dst = devs[1].reg_mr(1024, Access.local_only(), pdB)
        n_peers = 20
        for _ in range(n_peers):
            server.post_recv(RecvWR(sges=[Sge(dst)]))
        mr = devs[0].reg_mr(bytearray(b"hi"), Access.local_only(), pdA)
        for _ in range(n_peers):
            qp = devs[0].create_ud_qp(pdA, devs[0].create_cq())
            qp.post_send(SendWR(opcode=WrOpcode.SEND, sges=[Sge(mr)],
                                dest=server.address, signaled=False))
        got = 0
        for _ in range(n_peers):
            fut = cqB.poll_wait(timeout_ns=1000 * MS)
            tb.sim.run_until(fut, limit=RUN_LIMIT)
            got += len(fut.value)
        assert got == n_peers
        # One UDP socket on the server side serves them all.
        assert nets[1].udp.bound_ports() == 1
        # Whereas TCP/RC would hold one connection per peer (sanity check
        # at transport level):
        assert nets[1].tcp.open_connections() == 0
