"""SACK wire-format round-trip properties.

The RUDP ACK codec grew a precomputed fast path (``!BQQ`` for SACK-less
ACKs, a length-8 decode shortcut), so the encode/decode pair is pinned
property-style: any cumulative point, any echo, any admissible range
set must survive the trip through real datagram bytes — including the
255-range count-byte boundary and the degenerate no-range shape the
fast path serves.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.transport.rudp import (
    KIND_ACK, RUDP_HEADER, RudpError, SACK_RANGES_MAX, decode_ack_payload,
    encode_ack,
)

_HEADER = struct.Struct("!BQ")

seq64 = st.integers(min_value=0, max_value=2**64 - 1)

#: Inclusive, well-formed [start, end] sequence ranges.
sack_range = st.tuples(seq64, seq64).map(lambda p: (min(p), max(p)))

range_sets = st.lists(sack_range, min_size=0, max_size=SACK_RANGES_MAX)


def _decode_datagram(datagram: bytes):
    """Split a full ACK datagram the way RudpSocket._on_datagram does."""
    kind, cum = _HEADER.unpack_from(datagram)
    assert kind == KIND_ACK
    return cum, decode_ack_payload(datagram[RUDP_HEADER:])


@settings(max_examples=300)
@given(cum=seq64, echo=seq64, ranges=range_sets)
def test_ack_roundtrip(cum, echo, ranges):
    datagram = encode_ack(cum, echo, ranges)
    got_cum, (got_echo, got_ranges) = _decode_datagram(datagram)
    assert got_cum == cum
    assert got_echo == echo
    assert got_ranges == ranges


@settings(max_examples=200)
@given(cum=seq64, echo=seq64)
def test_sackless_fast_path_bytes_match_slow_path(cum, echo):
    """The one-pack fast path must emit the exact bytes of the
    compositional encoding it replaced."""
    assert encode_ack(cum, echo, []) == (
        _HEADER.pack(KIND_ACK, cum) + struct.Struct("!Q").pack(echo)
    )


def test_count_byte_boundary_roundtrips():
    """Exactly 255 ranges — the count byte's ceiling — must round-trip."""
    ranges = [(2 * i, 2 * i + 1) for i in range(SACK_RANGES_MAX)]
    datagram = encode_ack(7, 3, ranges)
    assert datagram[RUDP_HEADER + 8] == 255
    _, (echo, got) = _decode_datagram(datagram)
    assert echo == 3
    assert got == ranges


def test_over_boundary_rejected():
    ranges = [(i, i) for i in range(SACK_RANGES_MAX + 1)]
    with pytest.raises(RudpError):
        encode_ack(1, 1, ranges)


@settings(max_examples=200)
@given(cum=seq64, echo=seq64, ranges=range_sets.filter(bool),
       cut=st.integers(min_value=1, max_value=16))
def test_truncated_trailing_range_dropped_cleanly(cum, echo, ranges, cut):
    """Chopping bytes off the last range loses only that range (the
    decoder uses what parsed cleanly, mirroring a short datagram)."""
    datagram = encode_ack(cum, echo, ranges)
    payload = datagram[RUDP_HEADER:len(datagram) - cut]
    got_echo, got_ranges = decode_ack_payload(payload)
    assert got_echo == echo
    assert got_ranges == ranges[:-1]


#: Bounded below 2**64 - 1 so the deliberate (end + 1, start) inversion
#: below cannot overflow the u64 wire field.
small_range_sets = st.lists(
    st.tuples(st.integers(0, 2**32), st.integers(0, 2**32)).map(
        lambda p: (min(p), max(p))
    ),
    min_size=0,
    max_size=SACK_RANGES_MAX,
)


@settings(max_examples=200)
@given(echo=seq64, ranges=small_range_sets)
def test_inverted_ranges_never_decoded(echo, ranges):
    """Decoders must ignore inverted (start > end) ranges wherever they
    appear, keeping every well-formed one."""
    raw = struct.Struct("!Q").pack(echo)
    wire = [(s, e) if i % 2 == 0 else (e + 1, s) for i, (s, e) in enumerate(ranges)]
    wanted = [r for r in wire if r[0] <= r[1]]
    if wire:
        raw += bytes([len(wire)]) + b"".join(
            struct.Struct("!QQ").pack(s, e) for s, e in wire
        )
    got_echo, got_ranges = decode_ack_payload(raw)
    assert got_echo == echo
    assert got_ranges == wanted
