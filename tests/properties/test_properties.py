"""Property-based tests (hypothesis) on core invariants.

Each property pins an invariant the reproduction leans on:

* validity maps behave like sets of byte intervals;
* MPA marker weaving + FPDU framing is the identity over any message
  train and any TCP chunking;
* DDP segmentation partitions any message exactly;
* untagged reassembly in any segment order recovers the message;
* the IP reassembly interval algebra never over- or under-counts;
* SIP encode/parse round-trips.
"""

from hypothesis import given, settings, strategies as st

from repro.core.ddp.segmentation import plan_segments, UntaggedReassembly
from repro.core.mpa.fpdu import build_fpdu, parse_fpdu
from repro.core.mpa.markers import MarkedStreamReader, MarkedStreamWriter
from repro.core.verbs.wr import RecvWR, Sge
from repro.memory.region import Access
from repro.memory.registry import StagRegistry
from repro.memory.validity import ValidityMap
from repro.apps.sip import messages


# ----------------------------------------------------------------------
# ValidityMap
# ----------------------------------------------------------------------

intervals = st.lists(
    st.tuples(st.integers(0, 999), st.integers(1, 200)).map(
        lambda t: (min(t[0], 999), min(t[1], 1000 - min(t[0], 999)))
    ),
    max_size=30,
)


@given(intervals)
def test_validity_matches_reference_set(chunks):
    v = ValidityMap(1000)
    reference = set()
    for off, length in chunks:
        if length <= 0:
            continue
        v.add(off, length)
        reference.update(range(off, off + length))
    assert v.valid_bytes() == len(reference)
    # ranges() exactly tiles the reference set.
    tiled = set()
    for off, length in v.ranges():
        chunk = set(range(off, off + length))
        assert not (tiled & chunk), "ranges overlap"
        tiled |= chunk
    assert tiled == reference
    # ranges and gaps partition the message.
    total = v.valid_bytes() + sum(l for _, l in v.gaps())
    assert total == 1000


@given(intervals, st.integers(0, 999), st.integers(1, 100))
def test_validity_covered_agrees_with_reference(chunks, off, length):
    length = min(length, 1000 - off)
    v = ValidityMap(1000)
    reference = set()
    for o, l in chunks:
        if l <= 0:
            continue
        v.add(o, l)
        reference.update(range(o, o + l))
    expected = all(b in reference for b in range(off, off + length))
    assert v.covered(off, length) == expected


# ----------------------------------------------------------------------
# MPA markers + framing
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.binary(min_size=0, max_size=3000), min_size=1, max_size=12),
    st.integers(1, 997),
)
def test_mpa_stream_roundtrip_any_chunking(ulpdus, chunk):
    w, r = MarkedStreamWriter(), MarkedStreamReader()
    wire = bytearray()
    for u in ulpdus:
        out, _ = w.emit_fpdu(build_fpdu(u))
        wire += out
    demarked = bytearray()
    for i in range(0, len(wire), chunk):
        demarked += r.feed(bytes(wire[i : i + chunk]))
    got, off = [], 0
    while True:
        parsed = parse_fpdu(demarked, off)
        if parsed is None:
            break
        got.append(parsed[0])
        off += parsed[1]
    assert got == ulpdus
    assert off == len(demarked)
    assert r.markers_stripped == w.markers_emitted


# ----------------------------------------------------------------------
# DDP segmentation
# ----------------------------------------------------------------------

@settings(deadline=None)
@given(st.integers(0, 500_000), st.integers(256, 70_000))
def test_plan_segments_partitions_exactly(total, max_payload):
    specs = plan_segments(total, max_payload)
    assert specs[-1].last and all(not s.last for s in specs[:-1])
    assert sum(s.length for s in specs) == total
    cursor = 0
    for s in specs:
        assert s.offset == cursor
        assert 0 <= s.length <= max_payload
        cursor += s.length


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=5000), st.integers(1, 700), st.randoms())
def test_untagged_reassembly_any_order(payload, max_seg, rng):
    reg = StagRegistry()
    mr = reg.register(len(payload), Access.local_only())
    wr = RecvWR(sges=[Sge(mr)])
    r = UntaggedReassembly(wr, len(payload))
    specs = plan_segments(len(payload), max_seg)
    order = list(specs)
    rng.shuffle(order)
    for spec in order:
        assert not r.complete or spec is None
        r.place(spec.offset, payload[spec.offset : spec.offset + spec.length], spec.last)
    assert r.complete
    assert bytes(mr.view(0, len(payload))) == payload


# ----------------------------------------------------------------------
# SIP messages
# ----------------------------------------------------------------------

@given(
    st.sampled_from(["REGISTER", "INVITE", "ACK", "BYE", "OPTIONS"]),
    st.integers(1, 1 << 30),
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=30),
)
def test_sip_request_roundtrip(method, cseq, call_id):
    msg = messages.build_request(method, call_id, cseq)
    parsed = messages.parse(msg.encode())
    assert parsed.is_request
    assert parsed.method == method
    assert parsed.call_id == call_id
    assert parsed.cseq.split()[0] == str(cseq)
    assert parsed.body == msg.body


@given(st.integers(100, 699), st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ abcdefghijklmnopqrstuvwxyz",
    min_size=1, max_size=20,
))
def test_sip_response_roundtrip(status, reason):
    req = messages.build_request("INVITE", "cid", 1)
    resp = messages.build_response(req, status, reason.strip() or "OK")
    parsed = messages.parse(resp.encode())
    assert not parsed.is_request
    assert parsed.status == status
    assert parsed.call_id == "cid"
