"""Property-based tests over full protocol stacks.

Heavier than the unit-level properties: each example drives a real
simulated exchange and checks an end-to-end invariant.
"""

from hypothesis import given, settings, strategies as st

from repro.core.mpa.crc import CrcError, append_crc, split_and_verify
from repro.memory.validity import ValidityMap
from repro.models.costs import default_cost_model, zero_cost_model
from repro.simnet.engine import SEC, Simulator
from repro.simnet.loss import BernoulliLoss
from repro.simnet.topology import build_testbed
from repro.transport.ip import IpStack
from repro.transport.rudp import RudpSocket
from repro.transport.sctp import SctpStack
from repro.transport.udp import UdpStack


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=400), min_size=1, max_size=25),
    st.floats(0.0, 0.2),
    st.integers(0, 1000),
)
def test_rudp_exactly_once_in_order_under_any_loss(messages, loss_rate, seed):
    """RUDP delivers every message exactly once, in order, for any loss
    rate it can survive within its retry budget."""
    tb = build_testbed(costs=zero_cost_model())
    tb.set_egress_loss(0, BernoulliLoss(loss_rate, seed=seed))
    socks = []
    for h in tb.hosts:
        ip = IpStack(h)
        udp = UdpStack(h, ip)
        socks.append(RudpSocket(udp.socket(6000), rto_ns=1_000_000,
                                max_retries=200))
    got = []
    socks[1].on_message = lambda d, src: got.append(d)
    for m in messages:
        socks[0].sendto(m, (1, 6000))
    tb.sim.run(until=120 * SEC)
    assert got == messages


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=1000), min_size=1, max_size=30),
    st.floats(0.0, 0.08),
    st.integers(0, 1000),
)
def test_sctp_boundaries_and_order_under_any_loss(messages, loss_rate, seed):
    """SCTP preserves message boundaries and order under loss."""
    tb = build_testbed(costs=zero_cost_model())
    tb.set_egress_loss(0, BernoulliLoss(loss_rate, seed=seed))
    stacks = []
    for h in tb.hosts:
        ip = IpStack(h)
        stacks.append(SctpStack(h, ip))
    listener = stacks[1].listen(3000)
    got = []
    listener.on_accept = lambda assoc: setattr(assoc, "on_message", got.append)
    cli = stacks[0].connect((1, 3000))
    for m in messages:
        cli.send_message(m)
    tb.sim.run(until=240 * SEC)
    assert got == messages


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=0, max_size=2000))
def test_crc_roundtrip_property(data):
    assert split_and_verify(append_crc(data)) == data


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=500), st.integers(0, 10_000))
def test_crc_detects_any_single_bit_flip(data, position_seed):
    framed = bytearray(append_crc(data))
    index = position_seed % len(framed)
    bit = (position_seed // len(framed)) % 8
    framed[index] ^= 1 << bit
    try:
        split_and_verify(bytes(framed))
        raised = False
    except CrcError:
        raised = True
    assert raised, "single-bit corruption slipped past the CRC"


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 490), st.integers(1, 200)), max_size=20))
def test_validity_union_is_commutative(chunks):
    """Adding chunks in any order yields the same map."""
    bounded = [(o, min(l, 500 - o)) for o, l in chunks if o < 500]
    a = ValidityMap(500)
    b = ValidityMap(500)
    for off, length in bounded:
        a.add(off, length)
    for off, length in reversed(bounded):
        b.add(off, length)
    assert a == b


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 10_000_000), st.integers(0, 1_000_000))
def test_cost_model_helpers_monotone(nbytes, smaller):
    m = default_cost_model()
    smaller = min(smaller, nbytes)
    assert m.crc_ns(nbytes) >= m.crc_ns(smaller) >= m.crc_fixed_ns
    assert m.copy_ns(nbytes) >= m.copy_ns(smaller) >= 0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 3)), min_size=1,
             max_size=60),
)
def test_engine_event_order_is_total(schedule):
    """Events fire in (time, insertion) order no matter how they were
    scheduled."""
    sim = Simulator()
    fired = []
    expected = []
    for i, (delay, _jitter) in enumerate(schedule):
        sim.schedule(delay, lambda i=i, d=delay: fired.append((d, i)))
        expected.append((delay, i))
    sim.run()
    assert fired == sorted(expected)
