"""Determinism seed matrix: the regression net under the hot-path work.

The timer-pool, zero-copy and batching refactors are only admissible if
the simulation they produce is *bit-identical* run to run — same event
count, same final clock, same delivery and repair counters, same
metrics snapshot — for any seed, with observability enabled or not.
This matrix runs a slimmed fig07 loss scenario twice per seed for five
seeds, in both metrics modes, and compares everything observable.
"""

import re

import pytest

from repro.bench.harness import VerbsEndpointPair
from repro.simnet.loss import BernoulliLoss

SEEDS = (1, 7, 11, 23, 42)

_ID_LABEL = re.compile(r'(\w+)="(\d+)"')


def _canonicalize(snapshot):
    """QP/CQ numbers come from process-global allocators, so the raw
    series keys differ between two otherwise identical runs.  Remap
    each label's distinct id numbers (in sorted order) to run-local
    indices so snapshots from different runs are comparable."""
    ids = {}
    for key in snapshot:
        for label, value in _ID_LABEL.findall(key):
            ids.setdefault(label, set()).add(int(value))
    index = {
        label: {str(n): str(i) for i, n in enumerate(sorted(values))}
        for label, values in ids.items()
    }
    return {
        _ID_LABEL.sub(
            lambda m: f'{m.group(1)}="{index[m.group(1)][m.group(2)]}"', key
        ): value
        for key, value in snapshot.items()
    }


def _run_fig07_once(seed: int, metrics: bool):
    """One slimmed fig07-style loss run: RD send/recv through 5 % loss
    (adaptive RTO + fast retransmit + SACK all get exercised), plus a
    UD leg whose fragmentation amplifies the same loss process."""
    deterministic = {}

    pair = VerbsEndpointPair.build(
        "rd_sendrecv",
        loss=BernoulliLoss(0.05, seed=seed),
        rd_opts={"rto_ns": 5_000_000},
        metrics=metrics,
    )
    out = pair.bandwidth_mbs(16384, messages=40, window=16)
    deterministic["rd"] = {
        "events": pair.sim.events_processed,
        "sim_ns": pair.sim.now,
        "received_msgs": out["received_msgs"],
        "received_bytes": out["received_bytes"],
        "rudp": pair.qps[0].rd.stats(),
    }
    snapshot = _canonicalize(pair.metrics_snapshot()) if metrics else None

    pair2 = VerbsEndpointPair.build(
        "ud_sendrecv", loss=BernoulliLoss(0.01, seed=seed), metrics=metrics,
    )
    out2 = pair2.bandwidth_mbs(65536, messages=20)
    deterministic["ud"] = {
        "events": pair2.sim.events_processed,
        "sim_ns": pair2.sim.now,
        "received_msgs": out2["received_msgs"],
        "received_bytes": out2["received_bytes"],
    }

    # The shape a perfgate/BENCH row would record for this scenario:
    # every field here lands in BENCH_hotpath.json rows, so run-to-run
    # equality of this dict is BENCH-row equality.
    bench_row = {
        "events": deterministic["rd"]["events"] + deterministic["ud"]["events"],
        "sim_ns": deterministic["rd"]["sim_ns"] + deterministic["ud"]["sim_ns"],
        "sim_bytes": out["received_bytes"] + out2["received_bytes"],
        "msgs": (out["received_msgs"] + out["partial_msgs"]
                 + out2["received_msgs"] + out2["partial_msgs"]),
    }
    return deterministic, bench_row, snapshot


@pytest.mark.parametrize("metrics", [False, True], ids=["metrics-off", "metrics-on"])
@pytest.mark.parametrize("seed", SEEDS)
def test_fig07_bit_identical_across_runs(seed, metrics):
    """Two runs of the same seed agree on everything observable."""
    det_a, bench_a, snap_a = _run_fig07_once(seed, metrics)
    det_b, bench_b, snap_b = _run_fig07_once(seed, metrics)
    assert det_a == det_b
    assert bench_a == bench_b
    assert snap_a == snap_b
    if metrics:
        assert snap_a, "metrics=True must produce a non-empty snapshot"


@pytest.mark.parametrize("seed", SEEDS)
def test_fig07_metrics_do_not_perturb(seed):
    """Observability must be a pure observer: the deterministic
    counters and BENCH row agree between metrics on and off."""
    det_off, bench_off, _ = _run_fig07_once(seed, metrics=False)
    det_on, bench_on, snap_on = _run_fig07_once(seed, metrics=True)
    assert det_off == det_on
    assert bench_off == bench_on
    assert snap_on is not None


def test_matrix_seeds_actually_differ():
    """Sanity: the matrix is not vacuous — different seeds produce
    different loss patterns, hence different event streams."""
    rows = {seed: _run_fig07_once(seed, metrics=False)[1]["events"]
            for seed in SEEDS}
    assert len(set(rows.values())) > 1
