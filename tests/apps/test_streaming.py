"""Streaming application tests (the Fig. 9 workload)."""

import pytest

from repro.apps.streaming import (
    MediaSource, StreamingClient, StreamingServer, UDP_MEDIA_PAYLOAD,
)
from repro.core.socketif import IwSocketInterface, NativeSocketApi
from repro.core.verbs import RnicDevice
from repro.simnet.engine import SEC
from repro.simnet.loss import BernoulliLoss
from repro.simnet.topology import build_testbed
from repro.transport.stacks import install_stacks

RUN_LIMIT = 600 * SEC


def _run_session(mode, rdma_mode=True, native=False, prebuffer=256 * 1024,
                 loss=None, paced=False):
    tb = build_testbed()
    nets = install_stacks(tb)
    media = MediaSource(bitrate_bps=8e6, duration_s=10)
    if native:
        api_s, api_c = NativeSocketApi(nets[0]), NativeSocketApi(nets[1])
    else:
        devs = [RnicDevice(n) for n in nets]
        api_s = IwSocketInterface(devs[0], rdma_mode=rdma_mode,
                                  pool_slots=32, pool_slot_bytes=4096)
        api_c = IwSocketInterface(devs[1], rdma_mode=rdma_mode,
                                  pool_slots=32, pool_slot_bytes=65536)
    if loss is not None:
        tb.set_egress_loss(0, loss)
    server = StreamingServer(api_s, tb.hosts[0], 5004, media, mode, paced=paced)
    server.start()
    client = StreamingClient(api_c, tb.hosts[1], (0, 5004), media, mode,
                             prebuffer_bytes=prebuffer)
    proc = client.run()
    tb.sim.run_until(proc.finished, limit=RUN_LIMIT)
    return client, server


class TestMediaSource:
    def test_total_bytes(self):
        m = MediaSource(bitrate_bps=8e6, duration_s=10)
        assert m.total_bytes == 10_000_000

    def test_packet_content_deterministic(self):
        m = MediaSource()
        assert m.packet(5) == m.packet(5)
        assert m.packet(5) != m.packet(6)
        assert len(m.packet(0)) == UDP_MEDIA_PAYLOAD

    def test_last_packet_short(self):
        m = MediaSource(bitrate_bps=8_000, duration_s=1)  # 1000 bytes
        sizes = [len(m.packet(i)) for i in range(m.packet_count())]
        assert sum(sizes) == m.total_bytes

    def test_out_of_range_packet(self):
        m = MediaSource(bitrate_bps=8_000, duration_s=1)
        with pytest.raises(IndexError):
            m.packet(m.packet_count())

    def test_validation(self):
        with pytest.raises(ValueError):
            MediaSource(bitrate_bps=0)


class TestStreaming:
    def test_udp_prebuffer_fills(self):
        client, server = _run_session("udp")
        assert not client.failed
        assert client.bytes_buffered >= 256 * 1024
        assert client.buffering_time_ms > 0

    def test_http_prebuffer_fills(self):
        client, _ = _run_session("http")
        assert not client.failed
        assert client.bytes_buffered >= 256 * 1024

    def test_udp_faster_than_http(self):
        """Fig. 9's qualitative claim at small scale."""
        udp_client, _ = _run_session("udp")
        http_client, _ = _run_session("http")
        assert udp_client.buffering_time_ms < http_client.buffering_time_ms

    def test_sendrecv_and_write_record_equivalent_through_shim(self):
        """§VI.B.1: 'almost identical in terms of performance'."""
        sr, _ = _run_session("udp", rdma_mode=False)
        wr, _ = _run_session("udp", rdma_mode=True)
        ratio = sr.buffering_time_ms / wr.buffering_time_ms
        assert 0.8 < ratio < 1.2

    def test_native_udp_works(self):
        client, _ = _run_session("udp", native=True)
        assert not client.failed

    def test_shim_overhead_small_when_paced(self):
        nat, _ = _run_session("udp", native=True, paced=True, prebuffer=128 * 1024)
        shim, _ = _run_session("udp", rdma_mode=True, paced=True, prebuffer=128 * 1024)
        overhead = shim.buffering_time_ms / nat.buffering_time_ms - 1
        assert overhead < 0.10  # paper: ~2 %

    def test_udp_tolerates_loss(self):
        client, _ = _run_session(
            "udp", loss=BernoulliLoss(0.01, seed=2), prebuffer=256 * 1024,
        )
        # Loss-tolerant: the session ends (possibly slightly short) and
        # most bytes arrived.
        assert client.bytes_buffered > 0.9 * 256 * 1024

    def test_server_statistics(self):
        client, server = _run_session("udp")
        assert server.clients_served == 1
        assert server.bytes_served >= client.bytes_buffered
