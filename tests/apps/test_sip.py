"""SIP application tests (the Figs. 10-11 workload)."""

import pytest

from repro.apps.sip import messages
from repro.apps.sip.client import SipClient
from repro.apps.sip.server import _split_sip_stream
from repro.apps.sip.workload import (
    SIP_PORT, build_sip_testbed, measure_memory, measure_response_time,
)
from repro.memory.accounting import FootprintModel
from repro.simnet.engine import MS, SEC

RUN_LIMIT = 600 * SEC


class TestMessages:
    def test_request_roundtrip(self):
        msg = messages.build_request("INVITE", "call-1", 1)
        parsed = messages.parse(msg.encode())
        assert parsed.method == "INVITE"
        assert parsed.call_id == "call-1"
        assert "audio" in parsed.body  # SDP offer present

    def test_response_echoes_transaction_headers(self):
        req = messages.build_request("REGISTER", "call-2", 3)
        resp = messages.build_response(req, 200, "OK")
        parsed = messages.parse(resp.encode())
        assert parsed.status == 200
        assert parsed.call_id == "call-2"
        assert parsed.cseq == req.headers["CSeq"]

    def test_realistic_sizes(self):
        invite = messages.build_request("INVITE", "c", 1).encode()
        assert 400 < len(invite) < 800
        bye = messages.build_request("BYE", "c", 2).encode()
        assert 250 < len(bye) < 600

    def test_parse_errors(self):
        with pytest.raises(messages.SipParseError):
            messages.parse(b"")
        with pytest.raises(messages.SipParseError):
            messages.parse(b"GARBAGE LINE\r\n\r\n")
        with pytest.raises(messages.SipParseError):
            messages.parse(b"SIP/2.0 abc\r\n\r\n")
        with pytest.raises(messages.SipParseError):
            messages.parse(b"\xff\xfe")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            messages.build_request("TEACH", "c", 1)

    def test_stream_splitter_content_length_framing(self):
        m1 = messages.build_request("INVITE", "a", 1).encode()
        m2 = messages.build_request("BYE", "b", 2).encode()
        buf = m1 + m2
        first, rest = _split_sip_stream(buf)
        assert first == m1
        second, rest = _split_sip_stream(rest)
        assert second == m2 and rest == b""
        # Partial message: nothing extracted.
        partial, rest = _split_sip_stream(m1[: len(m1) - 3])
        assert partial is None


class TestCalls:
    @pytest.mark.parametrize("mode", ["ud", "rc"])
    def test_full_call_flow(self, mode):
        bed = build_sip_testbed(mode)
        client = SipClient(bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT),
                           mode=mode)
        proc = client.run_call()
        bed.sim.run_until(proc.finished, limit=RUN_LIMIT)
        assert not client.failed
        assert client.calls_completed == 1
        assert len(client.response_times_ns) == 1
        assert bed.server.total_calls == 1
        assert bed.server.active_calls == 0  # BYE freed the call

    def test_register_flow(self):
        bed = build_sip_testbed("ud")
        client = SipClient(bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT))
        proc = client.run_call(do_register=True)
        bed.sim.run_until(proc.finished, limit=RUN_LIMIT)
        assert not client.failed

    def test_response_time_ud_beats_rc(self):
        ud = measure_response_time("ud", calls=4)
        rc = measure_response_time("rc", calls=4)
        assert ud["mean_ms"] < rc["mean_ms"]  # Fig. 10 direction

    def test_memory_measurement_matches_model(self):
        fm = FootprintModel()
        result = measure_memory("ud", 20)
        assert result["high_water_bytes"] == fm.ud_total(20)
        result = measure_memory("rc", 20)
        assert result["high_water_bytes"] == fm.rc_total(20)

    def test_memory_freed_after_calls_end(self):
        fm = FootprintModel()
        result = measure_memory("ud", 10)
        assert result["final_bytes"] == fm.app_base_bytes

    def test_server_counts_distinct_clients(self):
        bed = build_sip_testbed("ud")
        release = bed.sim.future()
        established = {"count": 0, "target": 5, "future": bed.sim.future()}
        clients = [
            SipClient(bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT),
                      user=f"u{i}")
            for i in range(5)
        ]
        for c in clients:
            c.hold_call(established, release)
        bed.sim.run_until(established["future"], limit=RUN_LIMIT)
        assert bed.server.active_calls == 5
        assert bed.meter.count("udp_socket") == 5
        release.set_result(True)
        bed.sim.run(until=bed.sim.now + 500 * MS)
        assert bed.server.active_calls == 0
        assert bed.meter.count("udp_socket") == 0
