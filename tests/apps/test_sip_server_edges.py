"""SIP server edge cases: parse errors, CANCEL, OPTIONS, RC disconnects,
memory bookkeeping on abnormal paths."""

import pytest

from repro.apps.sip import messages
from repro.apps.sip.client import SipClient
from repro.apps.sip.server import SipAppConfig, _split_sip_stream
from repro.apps.sip.workload import SIP_PORT, build_sip_testbed
from repro.core.socketif.interface import SOCK_DGRAM
from repro.simnet.engine import MS, SEC

RUN_LIMIT = 600 * SEC


def _raw_dgram_send(bed, payload: bytes):
    """Fire an arbitrary datagram at the server through the client shim."""
    fd = bed.client_api.socket(SOCK_DGRAM)
    bed.client_api.sendto(fd, payload, (0, SIP_PORT))
    return fd


class TestServerRobustness:
    def test_garbage_datagram_counted_not_fatal(self):
        bed = build_sip_testbed("ud")
        _raw_dgram_send(bed, b"\x00\x01\x02 not sip at all")
        bed.sim.run(until=100 * MS)
        assert bed.server.parse_errors == 1
        # Server still serves real calls afterwards.
        client = SipClient(bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT))
        proc = client.run_call()
        bed.sim.run_until(proc.finished, limit=RUN_LIMIT)
        assert not client.failed

    def test_options_ping(self):
        bed = build_sip_testbed("ud")
        result = {}

        def probe():
            fd = bed.client_api.socket(SOCK_DGRAM)
            msg = messages.build_request("OPTIONS", "ping-1", 1)
            bed.client_api.sendto(fd, msg.encode(), (0, SIP_PORT))
            got = yield bed.client_api.recvfrom_future(fd, 8192, timeout_ns=2 * SEC)
            result["resp"] = messages.parse(bytes(got[0]))

        done = bed.sim.process(probe()).finished
        bed.sim.run_until(done, limit=RUN_LIMIT)
        assert result["resp"].status == 200
        # OPTIONS creates no call state.
        assert bed.server.active_calls == 0

    def test_cancel_acknowledged(self):
        bed = build_sip_testbed("ud")
        result = {}

        def probe():
            fd = bed.client_api.socket(SOCK_DGRAM)
            msg = messages.build_request("CANCEL", "c-1", 1)
            bed.client_api.sendto(fd, msg.encode(), (0, SIP_PORT))
            got = yield bed.client_api.recvfrom_future(fd, 8192, timeout_ns=2 * SEC)
            result["resp"] = messages.parse(bytes(got[0]))

        done = bed.sim.process(probe()).finished
        bed.sim.run_until(done, limit=RUN_LIMIT)
        assert result["resp"].status == 200

    def test_duplicate_invite_creates_one_call(self):
        bed = build_sip_testbed("ud")

        def probe():
            fd = bed.client_api.socket(SOCK_DGRAM)
            msg = messages.build_request("INVITE", "dup-call", 1).encode()
            bed.client_api.sendto(fd, msg, (0, SIP_PORT))
            bed.client_api.sendto(fd, msg, (0, SIP_PORT))  # retransmission
            for _ in range(4):
                yield bed.client_api.recvfrom_future(fd, 8192, timeout_ns=2 * SEC)

        done = bed.sim.process(probe()).finished
        bed.sim.run_until(done, limit=RUN_LIMIT)
        assert bed.server.total_calls == 1

    def test_bye_without_invite_still_200(self):
        bed = build_sip_testbed("ud")
        result = {}

        def probe():
            fd = bed.client_api.socket(SOCK_DGRAM)
            msg = messages.build_request("BYE", "ghost", 1)
            bed.client_api.sendto(fd, msg.encode(), (0, SIP_PORT))
            got = yield bed.client_api.recvfrom_future(fd, 8192, timeout_ns=2 * SEC)
            result["resp"] = messages.parse(bytes(got[0]))

        done = bed.sim.process(probe()).finished
        bed.sim.run_until(done, limit=RUN_LIMIT)
        assert result["resp"].status == 200
        assert bed.server.active_calls == 0

    def test_ud_client_memory_freed_on_last_bye(self):
        bed = build_sip_testbed("ud")
        client = SipClient(bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT))
        proc = client.run_call()
        bed.sim.run_until(proc.finished, limit=RUN_LIMIT)
        bed.sim.run(until=bed.sim.now + 100 * MS)
        # §VI.B.2's UD bookkeeping: the port's state is torn down when
        # its calls end.
        assert bed.meter.count("udp_socket") == 0
        assert bed.meter.count("ud_qp") == 0

    def test_rc_client_memory_freed_on_disconnect(self):
        bed = build_sip_testbed("rc")
        client = SipClient(bed.client_api, bed.testbed.hosts[1], (0, SIP_PORT),
                           mode="rc")
        proc = client.run_call()
        bed.sim.run_until(proc.finished, limit=RUN_LIMIT)
        # The client closed its connection after the call; the server's
        # per-connection state must drain (recv timeout path).
        bed.sim.run(until=bed.sim.now + 11 * SEC)
        assert bed.meter.count("tcp_socket") == 0


class TestAppConfig:
    def test_invalid_modes_rejected(self):
        from repro.apps.sip.server import SipServer

        with pytest.raises(ValueError):
            SipServer(None, None, mode="carrier-pigeon")
        with pytest.raises(ValueError):
            SipClient(None, None, (0, 1), mode="smoke-signals")

    def test_config_defaults(self):
        cfg = SipAppConfig()
        assert cfg.parse_ns > 0 and cfg.build_ns > 0
        assert cfg.rc_accept_ns > cfg.rc_connect_ns > 0


class TestStreamSplitter:
    def test_no_content_length_defaults_zero(self):
        raw = b"OPTIONS sip:x SIP/2.0\r\nVia: z\r\n\r\n"
        msg, rest = _split_sip_stream(raw + b"NEXT")
        assert msg == raw
        assert rest == b"NEXT"

    def test_bad_content_length_treated_as_zero(self):
        raw = b"OPTIONS sip:x SIP/2.0\r\nContent-Length: soup\r\n\r\n"
        msg, rest = _split_sip_stream(raw)
        assert msg == raw and rest == b""

    def test_body_split_exact(self):
        raw = b"INVITE sip:x SIP/2.0\r\nContent-Length: 4\r\n\r\nBODY"
        msg, rest = _split_sip_stream(raw + b"tail")
        assert msg == raw and rest == b"tail"
