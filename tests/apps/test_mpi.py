"""Tests for the MPI-over-datagram-iWARP extension."""

import struct

import pytest

from repro.apps.mpi import (
    ANY_SOURCE, ANY_TAG, EAGER_THRESHOLD, MpiError, MpiWorld,
)


def test_world_validation():
    with pytest.raises(MpiError):
        MpiWorld(1)


def test_eager_send_recv():
    world = MpiWorld(2)

    def main(comm):
        if comm.rank == 0:
            comm.send(b"eager-payload", 1, tag=5)
            return "sent"
        got = yield comm.recv(0, 5)
        return got

    results = world.run(main)
    assert results[1] == (b"eager-payload", 0, 5)


def test_tag_matching_out_of_order():
    world = MpiWorld(2)

    def main(comm):
        if comm.rank == 0:
            comm.send(b"A", 1, tag=1)
            comm.send(b"B", 1, tag=2)
            return None
        # Receive tag 2 first even though tag 1 arrives first.
        b = yield comm.recv(0, 2)
        a = yield comm.recv(0, 1)
        return (a[0], b[0])

    results = world.run(main)
    assert results[1] == (b"A", b"B")


def test_any_source_any_tag():
    world = MpiWorld(3)

    def main(comm):
        if comm.rank == 0:
            out = []
            for _ in range(2):
                got = yield comm.recv(ANY_SOURCE, ANY_TAG)
                out.append(got[1])
            return sorted(out)
        comm.send(b"x", 0, tag=comm.rank)
        return None

    results = world.run(main)
    assert results[0] == [1, 2]


def test_rendezvous_write_record_path():
    """Messages above the eager threshold use Write-Record rendezvous."""
    world = MpiWorld(2)
    payload = bytes(i & 0xFF for i in range(EAGER_THRESHOLD * 4))

    def main(comm):
        if comm.rank == 0:
            comm.send(payload, 1, tag=3)
            return None
        got = yield comm.recv(0, 3)
        return got[0]

    results = world.run(main)
    assert results[1] == payload
    # The data really travelled as Write-Record (tagged arrivals at rank 1).
    # Check via the receiver QP's statistics: no reassembly errors and the
    # message was not delivered through an eager slot (too large anyway).
    assert world.comms[1].qp.rx.drops_malformed == 0


def test_barrier_synchronizes():
    world = MpiWorld(4)
    times = {}

    def main(comm):
        # Stagger ranks' arrival at the barrier.
        yield comm.sim.timeout((comm.rank + 1) * 1_000_000)
        yield from comm.barrier()
        times[comm.rank] = comm.sim.now
        return True

    world.run(main)
    # Nobody leaves the barrier before the slowest rank arrived (4 ms).
    assert min(times.values()) >= 4_000_000


@pytest.mark.parametrize("size", [2, 3, 4, 5, 8])
def test_bcast_all_sizes(size):
    world = MpiWorld(size)

    def main(comm):
        data = b"broadcast!" if comm.rank == 2 % size else None
        data = yield from comm.bcast(data, root=2 % size)
        return data

    results = world.run(main)
    assert all(r == b"broadcast!" for r in results)


@pytest.mark.parametrize("size", [2, 3, 4, 8])
def test_allreduce_sum(size):
    world = MpiWorld(size)

    def main(comm):
        total = yield from comm.allreduce_sum(float(comm.rank + 1))
        return total

    results = world.run(main)
    expected = size * (size + 1) / 2
    assert all(abs(r - expected) < 1e-9 for r in results)


def test_sendrecv_exchange():
    world = MpiWorld(2)

    def main(comm):
        peer = 1 - comm.rank
        got = yield comm.sendrecv(struct.pack("!i", comm.rank), peer, tag=4)
        return struct.unpack("!i", got[0])[0]

    results = world.run(main)
    assert results == [1, 0]


def test_bad_rank_rejected():
    world = MpiWorld(2)
    with pytest.raises(MpiError):
        world.comms[0].send(b"x", 7)
