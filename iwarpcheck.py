"""Repo-root shim: lets ``python -m iwarpcheck`` work from a checkout
without installing anything or exporting PYTHONPATH.

``python -m`` puts the current directory first on ``sys.path``, so this
module is what gets executed; it prepends ``tools/`` (where the real
package lives) and ``src/`` (the checker imports the live ``repro``
FSM modules to read their tables), re-resolves the import so
``iwarpcheck`` names the package, then delegates to its CLI.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.abspath(__file__))
# Force src/ then tools/ to the FRONT: if tools/ sits behind the repo
# root (pytest prepends the rootdir during collection), the re-import
# below would find this shim again and recurse instead of the package.
for _entry in (os.path.join(_ROOT, "src"), os.path.join(_ROOT, "tools")):
    if _entry in sys.path:
        sys.path.remove(_entry)
    sys.path.insert(0, _entry)
sys.modules.pop("iwarpcheck", None)

from iwarpcheck.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
