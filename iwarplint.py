"""Repo-root shim: lets ``python -m iwarplint src/`` work from a checkout
without installing anything or exporting PYTHONPATH.

``python -m`` puts the current directory first on ``sys.path``, so this
module is what gets executed; it prepends ``tools/`` (where the real
package lives) and re-resolves the import so ``iwarplint`` names the
package, then delegates to its CLI.
"""

import os
import sys

_TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "tools")
# Force tools/ to the FRONT: if it sits behind the repo root (pytest
# prepends the rootdir during collection), the re-import below would
# find this shim again and recurse instead of the real package.
if _TOOLS in sys.path:
    sys.path.remove(_TOOLS)
sys.path.insert(0, _TOOLS)
sys.modules.pop("iwarplint", None)

from iwarplint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
