#!/usr/bin/env bash
# Static-analysis gate: ruff + mypy + iwarplint + iwarpcheck.
#
# iwarplint and iwarpcheck are stdlib-only and always run. ruff and
# mypy run when installed (pip install -e '.[dev]') and are skipped
# with a notice otherwise, so the gate works in minimal containers too.
# Exit is nonzero if any tool that ran found a problem.

set -u
cd "$(dirname "$0")/.."

failed=0

run() {
    echo "==> $*"
    "$@" || failed=1
}

if command -v ruff >/dev/null 2>&1; then
    run ruff check src tests benchmarks
else
    echo "==> ruff: not installed, skipping (pip install -e '.[dev]')"
fi

if command -v mypy >/dev/null 2>&1; then
    run mypy src/repro
else
    echo "==> mypy: not installed, skipping (pip install -e '.[dev]')"
fi

run python -m iwarplint src/

run python -m iwarpcheck

# Opt-in wall-clock gate (timing-sensitive, so not part of the default
# static pass): IWARP_PERF_CHECK=1 scripts/check.sh
if [ "${IWARP_PERF_CHECK:-0}" = "1" ]; then
    run env PYTHONPATH=src python -m repro.bench.perfgate \
        --threshold "${PERF_THRESHOLD:-0.15}"
fi

exit "$failed"
