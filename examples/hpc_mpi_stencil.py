#!/usr/bin/env python
"""HPC scenario: a 1-D halo-exchange stencil over MPI-on-datagram-iWARP.

The paper's future-work direction (§VII) made concrete: ranks run a
Jacobi-style stencil, exchanging halo rows each iteration.  Halo
messages below the eager threshold travel as datagram send/recv; the
final full-domain gather is large enough to use the RDMA Write-Record
rendezvous path.  A global allreduce computes the residual.

Run:  python examples/hpc_mpi_stencil.py
"""

import struct

from repro.apps.mpi import MpiWorld

RANKS = 4
LOCAL_CELLS = 2048
ITERATIONS = 10
TAG_LEFT, TAG_RIGHT, TAG_GATHER = 11, 12, 13


def pack(values):
    return struct.pack(f"!{len(values)}d", *values)


def unpack(data):
    return list(struct.unpack(f"!{len(data) // 8}d", data))


def rank_main(comm):
    rank, size = comm.rank, comm.size
    # Initial condition: a hot spike on rank 0's left edge.
    cells = [0.0] * LOCAL_CELLS
    if rank == 0:
        cells[0] = 1000.0

    for _ in range(ITERATIONS):
        # -- halo exchange (eager datagram send/recv) -------------------
        left, right = rank - 1, rank + 1
        if left >= 0:
            comm.send(pack([cells[0]]), left, TAG_LEFT)
        if right < size:
            comm.send(pack([cells[-1]]), right, TAG_RIGHT)
        halo_left = halo_right = None
        if left >= 0:
            got = yield comm.recv(left, TAG_RIGHT)
            halo_left = unpack(got[0])[0]
        if right < size:
            got = yield comm.recv(right, TAG_LEFT)
            halo_right = unpack(got[0])[0]

        # -- Jacobi update ------------------------------------------------
        prev = cells
        cells = list(prev)
        for i in range(LOCAL_CELLS):
            lo = prev[i - 1] if i > 0 else (halo_left if halo_left is not None else prev[i])
            hi = prev[i + 1] if i < LOCAL_CELLS - 1 else (
                halo_right if halo_right is not None else prev[i])
            cells[i] = (lo + prev[i] + hi) / 3.0

        # -- global residual (allreduce) --------------------------------
        local_sq = sum((a - b) ** 2 for a, b in zip(cells, prev))
        residual = yield from comm.allreduce_sum(local_sq)

    # -- gather the full domain at rank 0 (Write-Record rendezvous:
    #    each contribution is 16 KB, above the eager threshold) ---------
    if rank == 0:
        domain = list(cells)
        for _ in range(size - 1):
            got = yield comm.recv()
            src = got[1]
            part = unpack(got[0])
            domain[src * LOCAL_CELLS : 0] = []  # keep list length bookkeeping simple
            domain.extend(part)
        total_heat = sum(domain[:LOCAL_CELLS * size])
        return (residual, total_heat)
    comm.send(pack(cells), 0, TAG_GATHER)
    return (residual, None)


def main() -> None:
    world = MpiWorld(RANKS)
    results = world.run(rank_main)
    residual = results[0][0]
    print(f"{RANKS} ranks x {LOCAL_CELLS} cells, {ITERATIONS} Jacobi iterations")
    print(f"final global residual: {residual:.6f}")
    print(f"simulated wall time: {world.sim.now / 1e6:.2f} ms, "
          f"{world.sim.events_processed} events")
    print("halo traffic rode eager datagrams; the 16 KB gather messages "
          "rode Write-Record rendezvous.")


if __name__ == "__main__":
    main()
