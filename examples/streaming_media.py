#!/usr/bin/env python
"""Media-streaming scenario: VLC over the iWARP socket shim (Fig. 9).

An unmodified socket application — a VLC-like media server and client —
runs over the iWARP socket interface exactly as the paper's LD_PRELOAD
shim would run the real VLC.  The script compares initial buffering time
for:

* UDP streaming over UD iWARP (send/recv mode),
* UDP streaming over UD iWARP (RDMA Write-Record mode),
* HTTP-over-RC streaming,
* UDP streaming over the native kernel stack (shim-overhead reference).

Run:  python examples/streaming_media.py
"""

from repro.apps.streaming import MediaSource, StreamingClient, StreamingServer
from repro.core.socketif import IwSocketInterface, NativeSocketApi
from repro.core.verbs import RnicDevice
from repro.simnet import SEC, build_testbed
from repro.transport.stacks import install_stacks

PREBUFFER = 2 << 20  # 2 MB


def run_session(mode: str, rdma_mode: bool = True, native: bool = False,
                paced: bool = False):
    tb = build_testbed()
    nets = install_stacks(tb)
    media = MediaSource(bitrate_bps=8e6, duration_s=60)  # 8 Mb/s SD stream
    if native:
        api_server, api_client = NativeSocketApi(nets[0]), NativeSocketApi(nets[1])
    else:
        devs = [RnicDevice(n) for n in nets]
        api_server = IwSocketInterface(devs[0], rdma_mode=rdma_mode,
                                       pool_slots=64, pool_slot_bytes=4096)
        api_client = IwSocketInterface(devs[1], rdma_mode=rdma_mode,
                                       pool_slots=64, pool_slot_bytes=65536)
    server = StreamingServer(api_server, tb.hosts[0], 5004, media, mode, paced=paced)
    server.start()
    client = StreamingClient(api_client, tb.hosts[1], (0, 5004), media, mode,
                             prebuffer_bytes=PREBUFFER)
    proc = client.run()
    tb.sim.run_until(proc.finished, limit=600 * SEC)
    assert not client.failed, "streaming session failed"
    return client


def main() -> None:
    print(f"Prebuffering {PREBUFFER >> 20} MB of an 8 Mb/s stream "
          f"(cache fill at full transport speed):\n")
    rows = [
        ("UD iWARP, send/recv", run_session("udp", rdma_mode=False)),
        ("UD iWARP, Write-Record", run_session("udp", rdma_mode=True)),
        ("RC iWARP, HTTP", run_session("http")),
        ("native UDP (reference)", run_session("udp", native=True)),
    ]
    for label, client in rows:
        print(f"  {label:26s} {client.buffering_time_ms:8.1f} ms "
              f"({client.packets_received} reads)")
    ud = min(rows[0][1].buffering_time_ms, rows[1][1].buffering_time_ms)
    http = rows[2][1].buffering_time_ms
    print(f"\nUD vs RC/HTTP buffering-time improvement: "
          f"{100 * (1 - ud / http):.1f}%  (paper Fig. 9: 74.1%)")

    # Shim overhead is measured against a *paced* live stream (§VI.B.2).
    nat = run_session("udp", native=True, paced=True)
    shim = run_session("udp", rdma_mode=True, paced=True)
    print(f"shim overhead on a live (bitrate-paced) stream: "
          f"{100 * (shim.buffering_time_ms / nat.buffering_time_ms - 1):.2f}%  "
          f"(paper: ~2%)")


if __name__ == "__main__":
    main()
