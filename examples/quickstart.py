#!/usr/bin/env python
"""Quickstart: datagram-iWARP in five minutes.

Builds the paper's two-node 10-GigE testbed, brings up a UD queue pair
on each host, and demonstrates the paper's core contribution — RDMA
Write-Record over unreliable datagrams — next to classic UD send/recv:

1. register memory and advertise a steering tag;
2. post a Write-Record: one-sided, no receive posted at the target;
3. poll the target completion queue (with a timeout — the datagram-iWARP
   way to survive loss) and read the validity map;
4. do the same exchange with two-sided send/recv for contrast.

Run:  python examples/quickstart.py
"""

from repro.core.verbs import RecvWR, RnicDevice, SendWR, Sge, WrOpcode
from repro.memory import Access
from repro.simnet import MS, build_testbed
from repro.transport.stacks import install_stacks


def main() -> None:
    # --- testbed: two hosts through a 10-GigE switch ------------------
    tb = build_testbed()
    sim = tb.sim
    nets = install_stacks(tb)
    dev_a, dev_b = RnicDevice(nets[0]), RnicDevice(nets[1])

    # --- verbs objects -------------------------------------------------
    pd_a, pd_b = dev_a.alloc_pd(), dev_b.alloc_pd()
    cq_a, cq_b = dev_a.create_cq(), dev_b.create_cq()
    qp_a = dev_a.create_ud_qp(pd_a, cq_a, port=9000)   # ready instantly:
    qp_b = dev_b.create_ud_qp(pd_b, cq_b, port=9001)   # no connection setup

    # --- memory ---------------------------------------------------------
    message = b"RDMA over unreliable datagrams!"
    src = dev_a.reg_mr(bytearray(message), Access.local_only(), pd_a)
    sink = dev_b.reg_mr(4096, Access.remote_write(), pd_b)  # advertised buffer

    def demo():
        # ---- RDMA Write-Record: one-sided, no posted receive ----------
        qp_a.post_send(SendWR(
            opcode=WrOpcode.RDMA_WRITE_RECORD,
            sges=[Sge(src)],
            dest=qp_b.address,                 # datagram verbs carry a dest
            remote_stag=sink.stag,
            remote_offset=128,
        ))
        wcs = yield cq_b.poll_wait(timeout_ns=100 * MS)  # timeout = loss detection
        wc = wcs[0]
        print(f"[{sim.now/1000:8.1f} us] Write-Record completion from {wc.src}")
        print(f"            valid ranges: {wc.validity.ranges()} at sink offset {wc.base_offset}")
        print(f"            sink now holds: {bytes(sink.view(128, len(message)))!r}")

        # ---- classic two-sided send/recv for contrast ------------------
        dst = dev_b.reg_mr(4096, Access.local_only(), pd_b)
        qp_b.post_recv(RecvWR(sges=[Sge(dst)]))
        qp_a.post_send(SendWR(
            opcode=WrOpcode.SEND, sges=[Sge(src)], dest=qp_b.address,
        ))
        wcs = yield cq_b.poll_wait(timeout_ns=100 * MS)
        wc = wcs[0]
        print(f"[{sim.now/1000:8.1f} us] send/recv completion: {wc.byte_len} bytes "
              f"from {wc.src}: {bytes(dst.view(0, wc.byte_len))!r}")

    done = sim.process(demo()).finished
    sim.run_until(done, limit=10_000 * MS)
    print("\nquickstart complete:",
          f"{tb.hosts[0].port.tx_frames + tb.hosts[1].port.tx_frames} frames on the wire,",
          f"{sim.events_processed} simulation events")


if __name__ == "__main__":
    main()
