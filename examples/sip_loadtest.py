#!/usr/bin/env python
"""SIP load test: response time and memory scalability (Figs. 10-11).

Runs a SIPp-like workload against the SIP server over both transports:

* sequential calls under light load → mean request/response time;
* a ramp of concurrent held calls → server memory high-water mark,
  compared with the closed-form footprint model.

Run:  python examples/sip_loadtest.py
"""

from repro.apps.sip.workload import (
    measure_memory, measure_response_time,
)
from repro.memory.accounting import FootprintModel


def main() -> None:
    print("Response time (light load, 12 calls each):")
    ud = measure_response_time("ud", calls=12)
    rc = measure_response_time("rc", calls=12)
    print(f"  UD: {ud['mean_ms']:.3f} ms    RC: {rc['mean_ms']:.3f} ms    "
          f"improvement {100 * (1 - ud['mean_ms'] / rc['mean_ms']):.1f}%  "
          f"(paper Fig. 10: 43.1%)")

    print("\nMemory with concurrent held calls (live measurement):")
    model = FootprintModel()
    for n in (50, 200, 500):
        rc_mem = measure_memory("rc", n)["high_water_bytes"]
        ud_mem = measure_memory("ud", n)["high_water_bytes"]
        imp = 100 * (rc_mem - ud_mem) / rc_mem
        print(f"  {n:5d} calls: RC {rc_mem/1024:8.1f} KiB  UD {ud_mem/1024:8.1f} KiB"
              f"  improvement {imp:5.2f}%  (model: {model.improvement_percent(n):5.2f}%)")

    print("\nClosed-form curve toward the paper's 10 000-call point:")
    for n in (100, 1000, 10_000, 100_000):
        print(f"  {n:7d} calls -> {model.improvement_percent(n):5.2f}%")
    print(f"  socket-size-only bound: {model.socket_only_improvement_percent():.2f}% "
          f"(paper: 28.1%); at 10 000: paper measured 24.1%")


if __name__ == "__main__":
    main()
