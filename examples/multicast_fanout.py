#!/usr/bin/env python
"""Multicast media fan-out over datagram-iWARP.

The paper singles this capability out: "a multicast capable iWARP
solution would be useful in providing high bandwidth media while
leveraging the other benefits of datagram-iWARP" (§IV.A).  This example
builds a five-host testbed, joins four hosts to a multicast group (a
shared UDP port), and streams one second of media to all of them with a
single send per packet — then contrasts the sender-side cost with
unicast fan-out to the same four receivers.

Run:  python examples/multicast_fanout.py
"""

from repro.apps.streaming import MediaSource
from repro.core.verbs import (
    RecvWR, RnicDevice, SendWR, Sge, WrOpcode, multicast_address,
)
from repro.memory import Access
from repro.simnet import MS, SEC, build_testbed
from repro.transport.stacks import install_stacks

GROUP_PORT = 5004
RECEIVERS = 4


def build_world():
    tb = build_testbed(1 + RECEIVERS)
    nets = install_stacks(tb)
    devs = [RnicDevice(n) for n in nets]
    return tb, devs


def run_fanout(multicast: bool):
    tb, devs = build_world()
    media = MediaSource(bitrate_bps=8e6, duration_s=1.0)
    packets = media.packet_count()

    # Receivers join the group (bind the group port) and prepost buffers.
    cqs = []
    for i in range(1, 1 + RECEIVERS):
        pd = devs[i].alloc_pd()
        cq = devs[i].create_cq(depth=1 << 14)
        qp = devs[i].create_ud_qp(pd, cq, port=GROUP_PORT)
        buf = devs[i].reg_mr(2048, Access.local_only(), pd)
        for _ in range(packets + 8):
            qp.post_recv(RecvWR(sges=[Sge(buf)]))
        cqs.append(cq)

    # Sender: one QP, one registered staging buffer.
    pd0 = devs[0].alloc_pd()
    sender = devs[0].create_ud_qp(pd0, devs[0].create_cq(depth=1 << 14))
    stage = devs[0].reg_mr(2048, Access.local_only(), pd0)

    unicast_dests = [(i, GROUP_PORT) for i in range(1, 1 + RECEIVERS)]

    def stream():
        for idx in range(packets):
            pkt = media.packet(idx)
            stage.write(0, pkt)
            dests = ([multicast_address(GROUP_PORT)] if multicast
                     else unicast_dests)
            for dest in dests:
                sender.post_send(SendWR(
                    opcode=WrOpcode.SEND, sges=[Sge(stage, 0, len(pkt))],
                    dest=dest, signaled=False,
                ))
            yield max(1, devs[0].host.cpu.free_at - tb.sim.now)

    done = tb.sim.process(stream()).finished
    tb.sim.run_until(done, limit=60 * SEC)
    tb.sim.run(until=tb.sim.now + 200 * MS)  # drain deliveries

    received = [cq.completions_total for cq in cqs]
    return {
        "packets": packets,
        "received": received,
        "sender_cpu_ms": devs[0].host.cpu.busy_ns / 1e6,
        "sender_frames": tb.hosts[0].port.tx_frames,
        "elapsed_ms": tb.sim.now / 1e6,
    }


def main() -> None:
    mc = run_fanout(multicast=True)
    uc = run_fanout(multicast=False)
    print(f"Streaming {mc['packets']} media packets to {RECEIVERS} receivers:\n")
    for label, r in (("multicast", mc), ("unicast x4", uc)):
        print(f"  {label:11s} sender CPU {r['sender_cpu_ms']:7.2f} ms, "
              f"{r['sender_frames']:5d} frames on the wire, "
              f"received per host: {r['received']}")
    assert all(r == mc["packets"] for r in mc["received"])
    saving = 100 * (1 - mc["sender_cpu_ms"] / uc["sender_cpu_ms"])
    print(f"\nmulticast saves {saving:.0f}% sender CPU and "
          f"{uc['sender_frames'] - mc['sender_frames']} wire frames — the "
          f"§IV.A case for multicast datagram-iWARP.")


if __name__ == "__main__":
    main()
