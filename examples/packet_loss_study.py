#!/usr/bin/env python
"""Packet-loss study: why RDMA Write-Record exists.

Streams 512 KB messages through ``tc``-style Bernoulli loss at the
sender's egress queue and contrasts the paper's three delivery models:

* **UD send/recv** — whole-message delivery: one lost fragment anywhere
  discards the message (Fig. 7's collapse);
* **UD RDMA Write-Record** — partial placement: every ~64 KB segment
  that arrives is placed and recorded; the completion's validity map
  tells the application which byte ranges to consume (Fig. 8's plateau);
* **RD send/recv** — reliable datagrams: everything arrives, at the cost
  of retransmission delay.

Run:  python examples/packet_loss_study.py
"""

from repro.bench.harness import VerbsEndpointPair
from repro.simnet.loss import BernoulliLoss

SIZE = 512 * 1024
RATES = (0.0, 0.001, 0.01, 0.05)
MODES = (
    ("ud_sendrecv", "UD send/recv (whole-message)"),
    ("ud_write_record", "UD Write-Record (partial placement)"),
    ("rd_sendrecv", "RD send/recv (reliable datagrams)"),
)


def main() -> None:
    print(f"512 KB messages, Bernoulli loss at the sender egress queue\n")
    header = f"{'loss rate':>10} | " + " | ".join(f"{label:>38}" for _, label in MODES)
    print(header)
    print("-" * len(header))
    for rate in RATES:
        cells = []
        for mode, _label in MODES:
            loss = BernoulliLoss(rate, seed=21) if rate else None
            pair = VerbsEndpointPair.build(mode, loss=loss)
            out = pair.bandwidth_mbs(SIZE, messages=24, window=8)
            whole = out["received_msgs"]
            partial = out["partial_msgs"]
            cells.append(
                f"{out['mbs']:7.1f} MB/s  {whole:3d} whole/{partial:3d} partial"
            )
        print(f"{rate:>9.1%} | " + " | ".join(f"{c:>38}" for c in cells))

    print(
        "\nReading the table: send/recv goodput collapses once messages span\n"
        "many fragments; Write-Record keeps banking the segments that arrive\n"
        "(partial messages still deliver most of their bytes); reliable\n"
        "datagrams trade peak bandwidth for robustness -- MTU-fit segments\n"
        "plus adaptive RTO, SACK, and fast retransmit keep delivery whole\n"
        "and goodput nearly flat even at 5% loss."
    )


if __name__ == "__main__":
    main()
